"""Fig. 9 — Number of nodes alive versus time.

Paper observations reproduced here: (1) "all the curves in the figure
drop abruptly at some critical points" — LEACH rotation equalises battery
drain so nodes die in a tight window; (2) lifetime (80 % exhausted)
extends by roughly +40 % (Scheme 1) and +130 % (Scheme 2) over pure
LEACH.  Shape criterion: gains of S1 in ~[15 %, 90 %], S2 in ~[60 %,
200 %], S2 > S1.
"""

import numpy as np

from repro.experiments import fig9_nodes_alive
from repro.metrics import network_lifetime_s

from conftest import run_once


def _lifetime(result, protocol, n_nodes):
    runs = [r for r in result.runs if r.protocol == protocol]
    vals = [
        network_lifetime_s(r.death_times_s, n_nodes, 0.8) for r in runs
    ]
    vals = [v for v in vals if v is not None]
    return float(np.mean(vals)) if vals else None


def test_fig9_nodes_alive(benchmark, preset, seeds, jobs):
    result = run_once(benchmark, fig9_nodes_alive, preset, seeds, jobs=jobs)
    print()
    print(result.render())

    n_nodes = result.runs[0].alive_counts[0]
    lt_leach = _lifetime(result, "pure_leach", n_nodes)
    lt_s1 = _lifetime(result, "scheme1", n_nodes)
    lt_s2 = _lifetime(result, "scheme2", n_nodes)
    assert lt_leach and lt_s1 and lt_s2, "lifetimes censored; extend horizon"

    gain_s1 = lt_s1 / lt_leach - 1.0
    gain_s2 = lt_s2 / lt_leach - 1.0
    print(f"lifetime gains vs pure LEACH: S1 {gain_s1:+.0%}, S2 {gain_s2:+.0%} "
          f"(paper: ~+40% / ~+130%)")

    # Shape: both schemes extend lifetime; S2 > S1; magnitudes in band.
    assert gain_s1 > 0.10
    assert gain_s2 > gain_s1
    assert gain_s2 > 0.5

    # Abrupt die-off: the 10%->90% dead window is short vs the lifetime.
    for proto, lifetime in (("pure_leach", lt_leach), ("scheme2", lt_s2)):
        runs = [r for r in result.runs if r.protocol == proto]
        deaths = sorted(t for t in runs[0].death_times_s if t is not None)
        if len(deaths) == n_nodes:
            k10 = deaths[int(0.1 * n_nodes)]
            k90 = deaths[int(0.9 * n_nodes) - 1]
            assert (k90 - k10) < 0.65 * lifetime
