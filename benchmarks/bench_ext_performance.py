"""Extended — the long-version network-performance metrics.

The paper defines average packet delay, aggregate throughput and
successful delivery rate (§IV-A) but defers their plots to the long
version (unavailable).  This bench regenerates them and checks the
orderings the paper's prose implies: Scheme 2 trades the worst delay and
delivery for its energy crown; pure LEACH has the lowest delay (no
gating); throughput grows with offered load until saturation.
"""

from repro.experiments import ext_performance

from conftest import run_once

LOADS = (5.0, 20.0)


def test_ext_performance(benchmark, preset, seeds, jobs):
    result = run_once(benchmark, ext_performance, preset, seeds, LOADS, jobs=jobs)
    print()
    print(result.render())

    delay_leach = result.series("pure LEACH delay_ms")
    delay_s2 = result.series("Scheme 2 delay_ms")
    tput_leach = result.series("pure LEACH tput_kbps")
    rate_leach = result.series("pure LEACH delivery")
    rate_s1 = result.series("Scheme 1 delivery")

    # Gating costs latency below saturation: Scheme 2 waits for fades,
    # LEACH never waits.  (At/-beyond saturation LEACH's own queueing and
    # collision delays can overtake — see EXPERIMENTS.md — so the ordering
    # is only asserted at the light-load point.)
    assert delay_s2[0] > delay_leach[0]

    # More offered load moves more bits (below saturation collapse).
    assert tput_leach[-1] > tput_leach[0]

    # Delivery rates are proper ratios and not degenerate.
    for r in rate_leach + rate_s1:
        assert 0.2 < r <= 1.0
