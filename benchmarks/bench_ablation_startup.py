"""Ablation — radio startup time (the Table II scan ambiguity).

DESIGN.md §2: the scan reads "the RFM radio needs 20 …"; we default to
20 µs and keep Schurgers et al.'s 466 µs synthesizer-lock figure as the
alternative.  The startup time is also the MAC's collision-vulnerability
window (a contender that passed its checks cannot be heard until its
radio is actually transmitting), so this ablation quantifies both the
energy and the contention effect of the choice.
"""

import dataclasses

from repro.config import Protocol
from repro.experiments import get_preset, render_table, run_scenario

from conftest import run_once


def _run(preset: str, startup_s: float, seed: int):
    tier = get_preset(preset)
    cfg = tier.config(Protocol.PURE_LEACH, load_pps=10.0, seed=seed)
    cfg = cfg.with_(
        energy=dataclasses.replace(cfg.energy, startup_time_s=startup_s)
    )
    return run_scenario(cfg, horizon_s=tier.rate_horizon_s,
                        sample_interval_s=tier.sample_interval_s)


def _sweep(preset: str, seeds):
    rows = []
    for startup_us in (20.0, 466.0):
        runs = [_run(preset, startup_us * 1e-6, s) for s in seeds]
        collisions = sum(r.collisions for r in runs) / len(runs)
        aborted = sum(r.dropped_retry for r in runs) / len(runs)
        epp = sum(
            r.energy_per_packet_j for r in runs if r.energy_per_packet_j
        ) / len(runs)
        delivery = sum(r.delivery_rate for r in runs if r.delivery_rate) / len(runs)
        rows.append([startup_us, collisions, aborted, epp * 1e3, delivery])
    return rows


def test_ablation_startup_time(benchmark, preset, seeds):
    rows = run_once(benchmark, _sweep, preset, seeds)
    print()
    print(render_table(
        ["startup_us", "collisions", "retry drops", "mJ/pkt", "delivery"],
        rows,
        title="ablation: radio startup time (pure LEACH, 10 pkt/s)",
    ))
    fast, slow = rows
    # A 23x larger vulnerability window must produce more collisions.
    assert slow[1] > fast[1]
    # And it costs delivery and/or energy.
    assert slow[4] <= fast[4] * 1.02
