"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables/figures.  Simulation
benches run ONCE per session (pedantic mode): the interesting output is
the regenerated table, printed after timing, not a latency distribution.
Select the tier with ``--preset`` (default "quick"; "full" is Table II
paper scale and takes tens of minutes for the lifetime sweeps).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--preset",
        action="store",
        default="quick",
        choices=("smoke", "quick", "full"),
        help="experiment scale tier for the figure benches",
    )
    parser.addoption(
        "--bench-seeds",
        action="store",
        default="1",
        help="comma-separated replication seeds",
    )
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=1,
        help="parallel simulation processes for the figure grids "
             "(tables are identical at any parallelism)",
    )


@pytest.fixture(scope="session")
def preset(request) -> str:
    return request.config.getoption("--preset")


@pytest.fixture(scope="session")
def seeds(request):
    raw = request.config.getoption("--bench-seeds")
    return tuple(int(s) for s in raw.split(","))


@pytest.fixture(scope="session")
def jobs(request) -> int:
    return request.config.getoption("--jobs")


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once and return its result (simulation benches
    are deterministic and far too heavy for statistical repetition)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
