"""Fig. 10 — Network lifetime versus traffic load (5–30 pkt/s).

Shape criteria (paper §IV-B): every curve decreases with load ("more
packet transmissions speed up a sensor's energy consumption"); Scheme 2
achieves the longest lifetime throughout; and the Scheme 1 vs pure LEACH
gap closes as the network saturates ("the difference ... becomes
invisible" because Scheme 1 is forced to the lowest threshold and turns
into a non-channel-adaptive protocol).
"""

import numpy as np

from repro.experiments import fig10_lifetime_vs_load

from conftest import run_once

LOADS = (5.0, 15.0, 30.0)  # decimated sweep keeps the bench affordable


def test_fig10_lifetime_vs_load(benchmark, preset, seeds, jobs):
    result = run_once(
        benchmark, fig10_lifetime_vs_load, preset, seeds, LOADS, jobs=jobs
    )
    print()
    print(result.render())

    leach = result.series("pure LEACH lifetime_s")
    s1 = result.series("Scheme 1 lifetime_s")
    s2 = result.series("Scheme 2 lifetime_s")
    assert all(v is not None for v in leach + s1 + s2), "censored lifetimes"

    # Monotone decreasing with load (small tolerance for sampler noise).
    for series in (leach, s1, s2):
        arr = np.asarray(series, dtype=float)
        assert np.all(arr[1:] <= arr[:-1] * 1.10)

    # Scheme 2 on top everywhere.
    for l, a, b in zip(leach, s1, s2):
        assert b >= a * 0.95 and b > l

    # The S1-LEACH relative gap shrinks from light load to saturation.
    gap_light = s1[0] / leach[0] - 1.0
    gap_heavy = s1[-1] / leach[-1] - 1.0
    print(f"S1 gap over LEACH: {gap_light:+.0%} at {LOADS[0]} pkt/s -> "
          f"{gap_heavy:+.0%} at {LOADS[-1]} pkt/s (paper: gap becomes invisible)")
    assert gap_heavy < gap_light
