"""Fig. 11 — Average energy consumed per delivered packet versus load.

Shape criteria (paper §IV-C): Scheme 1 spends ~30–40 % less energy per
successfully delivered packet than pure LEACH ("we can achieve about
30-40% [saving]"); pure LEACH's curve *decreases* with load ("sending
more packets per transmission can reduce the radio startup energy
overhead"); and the gap narrows as load grows ("the difference ... will
decrease if we further increase traffic load").
"""

from repro.experiments import fig11_energy_per_packet

from conftest import run_once

LOADS = (5.0, 15.0, 30.0)


def test_fig11_energy_per_packet(benchmark, preset, seeds, jobs):
    result = run_once(
        benchmark, fig11_energy_per_packet, preset, seeds, LOADS, jobs=jobs
    )
    print()
    print(result.render())

    leach = result.series("pure LEACH mJ/pkt")
    s1 = result.series("Scheme 1 mJ/pkt")
    savings = result.series("S1 saving %")
    assert all(v is not None for v in leach + s1 + savings)

    # Scheme 1 saves materially at every load (paper: 30-40%).
    for s in savings:
        assert 15.0 < s < 70.0, f"S1 saving {s:.0f}% out of plausible band"

    # Pure LEACH's per-packet energy must not grow materially with load:
    # burst/overhead amortisation pushes it down (clearly decreasing at
    # the full preset); at CI scale collision waste can offset part of
    # the effect, so the check tolerates a small rise (EXPERIMENTS.md).
    assert leach[-1] < leach[0] * 1.15

    # Known fidelity gap (EXPERIMENTS.md): the paper says the S1-LEACH gap
    # narrows toward saturation; in our substrate LEACH keeps paying for
    # collisions and outage losses at high load, so the saving stays
    # roughly flat instead of shrinking.  Guard against it *exploding*,
    # which would indicate a regression in the baseline.
    assert savings[-1] < savings[0] + 15.0
