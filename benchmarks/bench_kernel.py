"""Microbenchmarks — simulation-kernel and channel-model hot paths.

Unlike the figure benches these are true latency benchmarks (many
rounds): the event loop and the lazy channel samplers are the two hot
paths that bound how large a network the simulator can carry.
"""

import numpy as np

from repro.channel import RayleighFading
from repro.config import ChannelConfig, PhyConfig
from repro.channel import Link, LinkBudget
from repro.phy import AbicmTable
from repro.rng import RngRegistry
from repro.sim import Simulator


def test_kernel_event_throughput(benchmark):
    """Schedule+dispatch cost of the event heap (10k-event batches)."""

    def run_batch():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.call_in(0.001, tick)

        sim.call_in(0.001, tick)
        sim.run()
        return count

    result = benchmark(run_batch)
    assert result == 10_000


def test_fading_sampling_rate(benchmark):
    """Lazy AR(1) fading queries (1k-sample batches)."""
    fading = RayleighFading(0.1, RngRegistry(1).stream("bench"))
    state = {"t": 0.0}

    def sample_block():
        t = state["t"]
        acc = 0.0
        for _ in range(1000):
            t += 0.01
            acc += fading.power_gain(t)
        state["t"] = t
        return acc

    total = benchmark(sample_block)
    assert total > 0


def test_link_snr_query_rate(benchmark):
    """Full link SNR queries: pathloss + shadowing + fading (1k batches)."""
    cfg = ChannelConfig()
    link = Link(35.0, LinkBudget.from_config(cfg), cfg,
                RngRegistry(2).stream("bench"), "bench")
    state = {"t": 0.0}

    def sample_block():
        t = state["t"]
        acc = 0.0
        for _ in range(1000):
            t += 0.05
            acc += link.snr_db(t)
        state["t"] = t
        return acc

    benchmark(sample_block)


def test_abicm_mode_selection(benchmark):
    """Mode staircase lookups across the SNR range (vector of 10k)."""
    table = AbicmTable.from_config(PhyConfig())
    snrs = np.linspace(-5.0, 35.0, 10_000)

    def select_all():
        return sum(
            (table.mode_for_snr(float(s)) or table.lowest).index for s in snrs
        )

    result = benchmark(select_all)
    assert result > 0
