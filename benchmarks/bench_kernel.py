"""Microbenchmarks — simulation-kernel and channel-model hot paths.

Unlike the figure benches these are true latency benchmarks (many
rounds): the event loop and the lazy channel samplers are the two hot
paths that bound how large a network the simulator can carry.

Record a baseline (serially — this container has one CPU) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py \
        --benchmark-json=benchmarks/BENCH_kernel.json -q

``benchmarks/BENCH_kernel.json`` is committed so subsequent PRs have a
perf trajectory to compare against (``pytest-benchmark compare``).
"""

import numpy as np

from repro.channel import RayleighFading
from repro.config import ChannelConfig, NetworkConfig, PhyConfig, Protocol
from repro.channel import Link, LinkBudget
from repro.network import SensorNetwork
from repro.phy import AbicmTable
from repro.rng import RngRegistry
from repro.sim import Simulator


def test_kernel_event_throughput(benchmark):
    """Schedule+dispatch cost of the event heap (10k-event batches)."""

    def run_batch():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.call_in(0.001, tick)

        sim.call_in(0.001, tick)
        sim.run()
        return count

    result = benchmark(run_batch)
    assert result == 10_000


def test_kernel_push_pop_cancel_churn(benchmark):
    """Heap churn under MAC-like timer patterns: interleaved push/cancel
    (backoff timers invalidated by collision tones) plus the lazy-deletion
    pop path (10k live + 10k cancelled per batch)."""

    def churn():
        sim = Simulator()
        keep = []
        # Interleave: every other handle is cancelled before it can fire.
        for i in range(20_000):
            handle = sim.call_in(1.0 + (i % 997) * 1e-3, _noop)
            if i % 2:
                handle.cancel()
            else:
                keep.append(handle)
        # A second cancellation wave hits handles already in the heap.
        for handle in keep[::4]:
            handle.cancel()
        sim.run()
        return sim.events_processed

    result = benchmark(churn)
    assert result == 7_500  # 10k kept - 2.5k late-cancelled


def _noop():
    pass


def test_network_100_node_quick_run(benchmark):
    """End-to-end kernel load: a 100-node paper-scale network advanced
    20 simulated seconds (one full LEACH round).  This is the macro
    number that tracks whole-stack regressions; run it serially."""

    def run_network():
        cfg = NetworkConfig(
            n_nodes=100, protocol=Protocol.CAEM_ADAPTIVE, seed=1
        )
        net = SensorNetwork(cfg)
        net.run_until(20.0)
        return net.sim.events_processed

    events = benchmark.pedantic(
        run_network, rounds=1, iterations=1, warmup_rounds=0
    )
    assert events > 10_000


def test_fading_sampling_rate(benchmark):
    """Lazy AR(1) fading queries (1k-sample batches)."""
    fading = RayleighFading(0.1, RngRegistry(1).stream("bench"))
    state = {"t": 0.0}

    def sample_block():
        t = state["t"]
        acc = 0.0
        for _ in range(1000):
            t += 0.01
            acc += fading.power_gain(t)
        state["t"] = t
        return acc

    total = benchmark(sample_block)
    assert total > 0


def test_link_snr_query_rate(benchmark):
    """Full link SNR queries: pathloss + shadowing + fading (1k batches)."""
    cfg = ChannelConfig()
    link = Link(35.0, LinkBudget.from_config(cfg), cfg,
                RngRegistry(2).stream("bench"), "bench")
    state = {"t": 0.0}

    def sample_block():
        t = state["t"]
        acc = 0.0
        for _ in range(1000):
            t += 0.05
            acc += link.snr_db(t)
        state["t"] = t
        return acc

    benchmark(sample_block)


def test_abicm_mode_selection(benchmark):
    """Mode staircase lookups across the SNR range (vector of 10k)."""
    table = AbicmTable.from_config(PhyConfig())
    snrs = np.linspace(-5.0, 35.0, 10_000)

    def select_all():
        return sum(
            (table.mode_for_snr(float(s)) or table.lowest).index for s in snrs
        )

    result = benchmark(select_all)
    assert result > 0
