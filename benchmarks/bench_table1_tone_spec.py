"""Table I — tone-channel pulse pattern per data-channel state.

Regenerates the paper's Table I from the live ToneConfig and checks the
protocol-defined relationships (idle 1 ms/50 ms, receive 0.5 ms/10 ms,
single collision pulse).
"""

from repro.experiments import table1_tone_spec

from conftest import run_once


def test_table1_tone_spec(benchmark):
    result = run_once(benchmark, table1_tone_spec)
    print()
    print(result.render())

    states = result.series("state")
    durations = result.series("pulse duration (ms)")
    periods = result.series("pulse period (ms)")
    spec = dict(zip(states, zip(durations, periods)))
    assert spec["idle"] == (1.0, 50.0)
    assert spec["receive"] == (0.5, 10.0)
    assert spec["collision"][0] == 0.5 and spec["collision"][1] is None
