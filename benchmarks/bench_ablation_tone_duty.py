"""Ablation — tone-receiver monitoring duty cycle.

DESIGN.md §2: sensors that know the pulse schedule can duty-cycle the
tone receiver (default 15 %); naive always-on listening (100 %) burns
tone-RX power the whole time a gated scheme waits for a good channel.
This ablation shows why the modelling choice matters: with always-on
listening, the waiting cost cannibalises most of Scheme 2's transmit
savings — the effect that would otherwise flatten Figs. 8–10.
"""

import dataclasses

from repro.config import Protocol
from repro.experiments import get_preset, render_table, run_scenario

from conftest import run_once


def _energy_split(preset: str, duty: float, seeds):
    tier = get_preset(preset)
    total_tx, total_tone, total = 0.0, 0.0, 0.0
    for seed in seeds:
        cfg = tier.config(Protocol.CAEM_FIXED, load_pps=5.0, seed=seed)
        cfg = cfg.with_(tone=dataclasses.replace(cfg.tone, monitor_duty_cycle=duty))
        run = run_scenario(cfg, horizon_s=tier.rate_horizon_s,
                           sample_interval_s=tier.sample_interval_s)
        total_tx += run.energy_breakdown.get("data_tx", 0.0)
        total_tone += run.energy_breakdown.get("tone_rx", 0.0)
        total += run.total_consumed_j
    n = len(seeds)
    return total_tx / n, total_tone / n, total / n


def _sweep(preset: str, seeds):
    rows = []
    for duty in (0.15, 1.0):
        tx, tone, total = _energy_split(preset, duty, seeds)
        rows.append([duty, tx, tone, total, tone / total])
    return rows


def test_ablation_tone_duty(benchmark, preset, seeds):
    rows = run_once(benchmark, _sweep, preset, seeds)
    print()
    print(render_table(
        ["monitor duty", "data_tx J", "tone_rx J", "total J", "tone share"],
        rows,
        title="ablation: tone monitoring duty cycle (Scheme 2, 5 pkt/s)",
    ))
    cycled, always_on = rows
    # Always-on listening burns far more tone-RX energy ...
    assert always_on[2] > 3.0 * cycled[2]
    # ... and it dominates the budget, eroding the gating advantage.
    assert always_on[4] > cycled[4]
