#!/usr/bin/env python
"""Scale-tier benchmark: nodes versus wall clock and peak RSS.

Runs the ``ext-scale`` workload (constant-density Table II network, two
full LEACH rounds — see :func:`repro.experiments.scale.scale_config`) at
a ladder of network sizes and records the scaling curve:

* each size runs in a **fresh subprocess** so ``ru_maxrss`` is a true
  per-size peak, not the monotone maximum of the whole sweep;
* one trajectory entry (tier ``"scale"``) is appended to
  ``benchmarks/BENCH_run.json``, the same file the kernel bench feeds,
  so the nightly cache carries the curve forward;
* the committed pre-PR baseline (``benchmarks/BENCH_scale.json``,
  brute-force nearest-head + no pools, measured on the reference 1-CPU
  container) is compared per size, and ``--require-speedup X`` turns the
  largest baselined size into a gate: the run fails unless it is at
  least ``X`` times faster than the baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py                # quick ladder
    PYTHONPATH=src python benchmarks/bench_scale.py --nodes 100 300 1000 3000
    PYTHONPATH=src python benchmarks/bench_scale.py --require-speedup 1.5
    PYTHONPATH=src python benchmarks/bench_scale.py --with-brute   # also time
                                                   # the brute/no-pool path

Everything runs serially — the reference container has one CPU.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_scale.json"
TRAJECTORY_PATH = Path(__file__).resolve().parent / "BENCH_run.json"

DEFAULT_NODES = (100, 300, 1000)
HORIZON_S = 40.0  # two full 20 s LEACH rounds (matches BENCH_scale.json)


def _measure_single(n_nodes: int, rounds: int, brute: bool) -> dict:
    """One size, in-process: best-of-``rounds`` wall seconds + peak RSS."""
    from repro.config import Protocol
    from repro.experiments.scale import scale_config
    from repro.network import SensorNetwork

    cfg = scale_config(n_nodes, Protocol.CAEM_ADAPTIVE, seed=1)
    if brute:
        cfg = cfg.with_scale(
            spatial_index="brute", link_pool=False, reuse_head_stack=False
        )
    best = float("inf")
    events = 0
    for _ in range(rounds):
        net = SensorNetwork(cfg)
        t0 = time.perf_counter()
        net.run_until(HORIZON_S)
        elapsed = time.perf_counter() - t0
        events = net.sim.events_processed
        if elapsed < best:
            best = elapsed
    return {
        "nodes": n_nodes,
        "seconds": best,
        "rounds": rounds,
        "events": events,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "brute": brute,
    }


def _measure_subprocess(n_nodes: int, rounds: int, brute: bool) -> dict:
    """Run one size in a fresh interpreter (clean per-size peak RSS)."""
    cmd = [
        sys.executable, str(Path(__file__).resolve()),
        "--single", str(n_nodes), "--rounds", str(rounds),
    ]
    if brute:
        cmd.append("--brute")
    proc = subprocess.run(
        cmd, capture_output=True, text=True, cwd=str(REPO_ROOT)
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench subprocess for N={n_nodes} failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def _load_baseline() -> dict:
    try:
        doc = json.loads(BASELINE_PATH.read_text())
    except FileNotFoundError:
        return {}
    return {int(k): v for k, v in doc.get("baseline", {}).items()}


def _append_scale_trajectory(results: list, brute_results: list) -> None:
    from repro.api.bench import BenchReport, BenchResult, _append_trajectory

    report = BenchReport(tier="scale")
    for r in results:
        report.results.append(
            BenchResult(
                name=f"scale/quick-run-{r['nodes']}",
                seconds=r["seconds"],
                rounds=r["rounds"],
            )
        )
    for r in brute_results:
        report.results.append(
            BenchResult(
                name=f"scale/brute-no-pool-{r['nodes']}",
                seconds=r["seconds"],
                rounds=r["rounds"],
            )
        )
    _append_trajectory(TRAJECTORY_PATH, report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=list(DEFAULT_NODES),
                        help="network sizes to sweep (default: 100 300 1000)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="best-of-N rounds per size (default 2)")
    parser.add_argument("--with-brute", action="store_true",
                        help="also time the brute-force/no-pool path per size")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the largest baselined size runs at "
                             "least X times faster than BENCH_scale.json")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip appending to BENCH_run.json")
    parser.add_argument("--single", type=int, default=None,
                        help=argparse.SUPPRESS)  # subprocess worker mode
    parser.add_argument("--brute", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.single is not None:
        print(json.dumps(_measure_single(args.single, args.rounds, args.brute)))
        return 0

    baseline = _load_baseline()
    results = []
    brute_results = []
    print(f"scale benchmark: horizon {HORIZON_S:g} s, "
          f"best-of-{args.rounds}, serial (1-CPU container)")
    header = (f"{'nodes':>6} {'wall':>9} {'events':>9} {'kev/s':>7} "
              f"{'rss MB':>7} {'baseline':>9} {'speedup':>8}")
    print(header)
    for n in args.nodes:
        r = _measure_subprocess(n, args.rounds, brute=False)
        results.append(r)
        base = baseline.get(n)
        base_s = f"{base['seconds']:.3f}s" if base else "—"
        speed = f"{base['seconds'] / r['seconds']:.2f}x" if base else "—"
        print(f"{n:>6} {r['seconds']:>8.3f}s {r['events']:>9} "
              f"{r['events'] / r['seconds'] / 1e3:>7.1f} "
              f"{r['ru_maxrss_kb'] / 1024:>7.1f} {base_s:>9} {speed:>8}")
        if args.with_brute:
            b = _measure_subprocess(n, args.rounds, brute=True)
            brute_results.append(b)
            print(f"{'':>6} {b['seconds']:>8.3f}s {b['events']:>9} "
                  f"{b['events'] / b['seconds'] / 1e3:>7.1f} "
                  f"{b['ru_maxrss_kb'] / 1024:>7.1f} "
                  f"{'(brute/no-pool)':>18}")

    if not args.no_trajectory:
        _append_scale_trajectory(results, brute_results)
        print(f"appended scale entry to {TRAJECTORY_PATH}")

    if args.require_speedup is not None:
        gated = [r for r in results if r["nodes"] in baseline]
        if not gated:
            print("speedup gate: FAIL (no baselined size was run)")
            return 1
        top = max(gated, key=lambda r: r["nodes"])
        speedup = baseline[top["nodes"]]["seconds"] / top["seconds"]
        verdict = "OK" if speedup >= args.require_speedup else "FAIL"
        print(f"speedup gate at N={top['nodes']}: {speedup:.2f}x "
              f"(required {args.require_speedup:g}x) -> {verdict}")
        if verdict == "FAIL":
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
