#!/usr/bin/env python
"""Scale-tier benchmark: nodes versus wall clock and peak RSS.

Runs the ``ext-scale`` workload (constant-density Table II network, two
full LEACH rounds — see :func:`repro.experiments.scale.scale_config`) at
a ladder of network sizes and records the scaling curve:

* each size runs in a **fresh subprocess** so its memory high-water mark
  is a true per-size peak, not the monotone maximum of the whole sweep;
  the parent polls the child's ``/proc/<pid>/status`` ``VmHWM`` while it
  runs, so the recorded peak reflects mid-run transients (topology
  build, round formation) even when they dwarf the exit-time RSS;
* ``--backend`` picks the engine: ``event`` (the per-packet reference
  kernel), ``vector`` (the structure-of-arrays population engine, see
  :mod:`repro.vector`), or ``both`` to render the two curves side by
  side;
* one trajectory entry (tier ``"scale"``) is appended to
  ``benchmarks/BENCH_run.json``, the same file the kernel bench feeds,
  so the nightly cache carries the curve forward;
* committed baselines close the loop: event rows compare against
  ``benchmarks/BENCH_scale.json`` (the pre-PR-5 brute-force kernel) and
  vector rows compare against ``benchmarks/BENCH_vector.json`` (the
  tuned **event kernel** at the same ladder, measured on the reference
  1-CPU container) — so ``--backend vector --require-speedup 10`` gates
  the vector engine at >= 10x over the event kernel at the largest
  baselined size.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py                # quick ladder
    PYTHONPATH=src python benchmarks/bench_scale.py --nodes 100 300 1000 3000
    PYTHONPATH=src python benchmarks/bench_scale.py --require-speedup 1.5
    PYTHONPATH=src python benchmarks/bench_scale.py --backend vector \
                                                    --require-speedup 10
    PYTHONPATH=src python benchmarks/bench_scale.py --with-brute   # also time
                                                   # the brute/no-pool path

Everything runs serially — the reference container has one CPU.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_scale.json"
VECTOR_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_vector.json"
TRAJECTORY_PATH = Path(__file__).resolve().parent / "BENCH_run.json"

DEFAULT_NODES = (100, 300, 1000)
HORIZON_S = 40.0  # two full 20 s LEACH rounds (matches BENCH_scale.json)


def _measure_single(n_nodes: int, rounds: int, brute: bool,
                    backend: str, profile_dir: str = None) -> dict:
    """One size, in-process: best-of-``rounds`` wall seconds + peak RSS."""
    from repro.config import Protocol
    from repro.experiments.scale import scale_config

    cfg = scale_config(
        n_nodes, Protocol.CAEM_ADAPTIVE, seed=1, backend=backend
    )
    if brute:
        cfg = cfg.with_scale(
            spatial_index="brute", link_pool=False, reuse_head_stack=False
        )
    best = float("inf")
    events = 0
    if backend == "vector":
        from repro.api import RunOptions, simulate

        profile_path = None
        if profile_dir is not None:
            Path(profile_dir).mkdir(parents=True, exist_ok=True)
            profile_path = str(Path(profile_dir) / f"rounds_n{n_nodes}.json")
        opts = RunOptions(
            horizon_s=HORIZON_S, sample_interval_s=5.0,
            max_series_samples=64, profile_rounds=profile_path,
        )
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = simulate(cfg, opts)
            elapsed = time.perf_counter() - t0
            events = result.events_processed
            if elapsed < best:
                best = elapsed
    else:
        from repro.network import SensorNetwork

        for _ in range(rounds):
            net = SensorNetwork(cfg)
            t0 = time.perf_counter()
            net.run_until(HORIZON_S)
            elapsed = time.perf_counter() - t0
            events = net.sim.events_processed
            if elapsed < best:
                best = elapsed
    return {
        "nodes": n_nodes,
        "seconds": best,
        "rounds": rounds,
        "events": events,
        "backend": backend,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "brute": brute,
    }


def _vm_hwm_kb(pid: int) -> int:
    """The kernel-maintained peak-RSS high-water mark of ``pid``, in kB."""
    try:
        with open(f"/proc/{pid}/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _measure_subprocess(n_nodes: int, rounds: int, brute: bool,
                        backend: str, profile_dir: str = None) -> dict:
    """Run one size in a fresh interpreter (clean per-size peak RSS).

    The parent polls the child's ``VmHWM`` while it runs and keeps the
    maximum observed, so the recorded peak is the mid-run high-water
    mark, not whatever the RSS happens to be at exit.  (On systems
    without ``/proc`` the child's own ``ru_maxrss`` is used instead.)
    """
    cmd = [
        sys.executable, str(Path(__file__).resolve()),
        "--single", str(n_nodes), "--rounds", str(rounds),
        "--backend", backend,
    ]
    if brute:
        cmd.append("--brute")
    if profile_dir is not None:
        cmd += ["--profile-rounds", profile_dir]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=str(REPO_ROOT),
    )
    peak_kb = 0
    while proc.poll() is None:
        peak_kb = max(peak_kb, _vm_hwm_kb(proc.pid))
        time.sleep(0.05)
    stdout, stderr = proc.communicate()
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench subprocess for N={n_nodes} failed:\n{stderr}"
        )
    result = json.loads(stdout)
    if peak_kb > 0:
        result["peak_rss_kb"] = peak_kb
    return result


def _load_baseline(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        return {}
    return {int(k): v for k, v in doc.get("baseline", {}).items()}


def _append_scale_trajectory(results: list, brute_results: list) -> None:
    from repro.api.bench import BenchReport, BenchResult, _append_trajectory

    report = BenchReport(tier="scale")
    for r in results:
        prefix = "vector-run" if r["backend"] == "vector" else "quick-run"
        report.results.append(
            BenchResult(
                name=f"scale/{prefix}-{r['nodes']}",
                seconds=r["seconds"],
                rounds=r["rounds"],
            )
        )
    for r in brute_results:
        report.results.append(
            BenchResult(
                name=f"scale/brute-no-pool-{r['nodes']}",
                seconds=r["seconds"],
                rounds=r["rounds"],
            )
        )
    _append_trajectory(TRAJECTORY_PATH, report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=list(DEFAULT_NODES),
                        help="network sizes to sweep (default: 100 300 1000)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="best-of-N rounds per size (default 2)")
    parser.add_argument("--backend", default="event",
                        choices=("event", "vector", "both"),
                        help="engine(s) to time (default: event)")
    parser.add_argument("--with-brute", action="store_true",
                        help="also time the brute-force/no-pool path per size "
                             "(event backend only)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the largest baselined size runs at "
                             "least X times faster than its baseline "
                             "(BENCH_scale.json for the event backend, "
                             "BENCH_vector.json for the vector backend)")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip appending to BENCH_run.json")
    parser.add_argument("--profile-rounds", default=None, metavar="DIR",
                        help="write each vector run's per-round phase "
                             "timeline (JSON, see repro.vector.profile) "
                             "into DIR as rounds_n<N>.json")
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="S",
                        help="fail unless the largest size's wall time is "
                             "at most S seconds (the nightly N=1e5 "
                             "under-a-minute gate)")
    parser.add_argument("--single", type=int, default=None,
                        help=argparse.SUPPRESS)  # subprocess worker mode
    parser.add_argument("--brute", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.single is not None:
        print(json.dumps(
            _measure_single(args.single, args.rounds, args.brute,
                            args.backend, profile_dir=args.profile_rounds)
        ))
        return 0

    backends = (
        ["event", "vector"] if args.backend == "both" else [args.backend]
    )
    baselines = {
        "event": _load_baseline(BASELINE_PATH),
        "vector": _load_baseline(VECTOR_BASELINE_PATH),
    }
    results = []
    brute_results = []
    print(f"scale benchmark: horizon {HORIZON_S:g} s, "
          f"best-of-{args.rounds}, serial (1-CPU container)")
    header = (f"{'backend':>7} {'nodes':>6} {'wall':>9} {'events':>9} "
              f"{'kev/s':>7} {'rss MB':>7} {'baseline':>9} {'speedup':>8}")
    print(header)
    for n in args.nodes:
        for backend in backends:
            r = _measure_subprocess(
                n, args.rounds, brute=False, backend=backend,
                profile_dir=(args.profile_rounds
                             if backend == "vector" else None),
            )
            results.append(r)
            base = baselines[backend].get(n)
            base_s = f"{base['seconds']:.3f}s" if base else "—"
            speed = f"{base['seconds'] / r['seconds']:.2f}x" if base else "—"
            print(f"{backend:>7} {n:>6} {r['seconds']:>8.3f}s "
                  f"{r['events']:>9} "
                  f"{r['events'] / r['seconds'] / 1e3:>7.1f} "
                  f"{r['peak_rss_kb'] / 1024:>7.1f} {base_s:>9} {speed:>8}")
        if args.with_brute:
            b = _measure_subprocess(n, args.rounds, brute=True,
                                    backend="event")
            brute_results.append(b)
            print(f"{'event':>7} {n:>6} {b['seconds']:>8.3f}s "
                  f"{b['events']:>9} "
                  f"{b['events'] / b['seconds'] / 1e3:>7.1f} "
                  f"{b['peak_rss_kb'] / 1024:>7.1f} "
                  f"{'(brute/no-pool)':>18}")

    if not args.no_trajectory:
        _append_scale_trajectory(results, brute_results)
        print(f"appended scale entry to {TRAJECTORY_PATH}")

    if args.require_speedup is not None:
        # With both backends the gate applies to the vector rows — that
        # is the claim under test (vector vs the event-kernel baseline).
        gate_backend = "vector" if "vector" in backends else "event"
        baseline = baselines[gate_backend]
        gated = [r for r in results
                 if r["backend"] == gate_backend and r["nodes"] in baseline]
        if not gated:
            print("speedup gate: FAIL (no baselined size was run)")
            return 1
        top = max(gated, key=lambda r: r["nodes"])
        speedup = baseline[top["nodes"]]["seconds"] / top["seconds"]
        verdict = "OK" if speedup >= args.require_speedup else "FAIL"
        print(f"speedup gate [{gate_backend}] at N={top['nodes']}: "
              f"{speedup:.2f}x (required {args.require_speedup:g}x) "
              f"-> {verdict}")
        if verdict == "FAIL":
            return 1

    if args.max_seconds is not None:
        top = max(results, key=lambda r: r["nodes"])
        verdict = "OK" if top["seconds"] <= args.max_seconds else "FAIL"
        print(f"wall-time gate at N={top['nodes']}: {top['seconds']:.2f}s "
              f"(budget {args.max_seconds:g}s) -> {verdict}")
        if verdict == "FAIL":
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
