"""Fig. 12 — Standard deviation of queue length versus load.

The paper's short-term fairness metric, with buffers "substantially
large enough to accommodate all generated packets".  Shape criteria:
σ(queue) grows with load for every protocol; Scheme 2 (fixed 2 Mbps
gate) is much less fair than Scheme 1 at moderate/heavy load; Scheme 1
stays comparable to (or better than) the ungated baseline — "Scheme 1
exhibits a higher level of fairness in bandwidth allocation".
"""

from repro.experiments import fig12_queue_stddev

from conftest import run_once

LOADS = (5.0, 15.0, 30.0)


def test_fig12_queue_stddev(benchmark, preset, seeds, jobs):
    result = run_once(
        benchmark, fig12_queue_stddev, preset, seeds, LOADS, jobs=jobs
    )
    print()
    print(result.render())

    leach = result.series("pure LEACH σ(queue)")
    s1 = result.series("Scheme 1 σ(queue)")
    s2 = result.series("Scheme 2 σ(queue)")
    assert all(v is not None for v in leach + s1 + s2)

    # Unfairness grows with load.
    assert s2[-1] > s2[0]
    assert s1[-1] >= s1[0] * 0.8

    # Scheme 2 is the least fair at moderate+ load, by a wide margin.
    for i in range(1, len(LOADS)):
        assert s2[i] > 1.5 * s1[i], (
            f"Scheme 2 should starve nodes vs Scheme 1 at {LOADS[i]} pkt/s"
        )

    # Scheme 1 remains in the baseline's fairness ballpark.
    assert s1[-1] < 2.5 * leach[-1]
