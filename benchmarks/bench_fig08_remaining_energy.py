"""Fig. 8 — Average remaining power versus time.

Paper setup: 100 nodes, 10 J initial energy, 5 pkt/s per node, elapsed
time 0–600 s.  Shape criterion (DESIGN.md §4): the decline rate orders
pure LEACH > Scheme 1 > Scheme 2 — channel-adaptive gating saves energy,
the adaptive threshold gives part of it back for fairness.
"""

import numpy as np

from repro.experiments import fig8_remaining_energy

from conftest import run_once


def test_fig8_remaining_energy(benchmark, preset, seeds, jobs):
    result = run_once(benchmark, fig8_remaining_energy, preset, seeds, jobs=jobs)
    print()
    print(result.render())

    leach = np.asarray(result.series("pure LEACH"), dtype=float)
    s1 = np.asarray(result.series("Scheme 1"), dtype=float)
    s2 = np.asarray(result.series("Scheme 2"), dtype=float)

    # Everyone starts full and drains monotonically (within sampler noise).
    assert leach[0] == s1[0] == s2[0]
    for series in (leach, s1, s2):
        assert np.all(np.diff(series) <= 1e-9)

    # Shape: by the end of the window the ordering is LEACH < S1 <= S2.
    assert leach[-1] < s1[-1], "Scheme 1 must retain more energy than pure LEACH"
    assert s1[-1] <= s2[-1] * 1.02, "Scheme 2 must retain the most energy"

    # The gap must be material, not noise (paper: 'can greatly reduce').
    consumed_leach = leach[0] - leach[-1]
    consumed_s1 = s1[0] - s1[-1]
    assert consumed_s1 < 0.9 * consumed_leach
