"""Table II — physical simulation parameters.

Regenerates the parameter table from the live defaults and asserts the
values the scan preserves unambiguously.
"""

from repro.experiments import table2_parameters

from conftest import run_once


def test_table2_parameters(benchmark):
    result = run_once(benchmark, table2_parameters)
    print()
    print(result.render())

    rows = dict(zip(result.series("parameter"), result.series("value")))
    assert rows["Number of nodes"] == 100
    assert rows["Percentage of CH"] == "5%"
    assert rows["Transmit power (data)"] == "0.66 W"
    assert rows["Receive power (data)"] == "0.305 W"
    assert rows["Packet length"] == "2 kbit"
    assert rows["Contention window size"] == 10
    assert rows["Buffer size"] == "50 packets"
    assert rows["Initial battery energy"] == "10 J"
    assert "2 Mbps" in rows["Bandwidth (ABICM modes)"]
    assert "250 kbps" in rows["Bandwidth (ABICM modes)"]
