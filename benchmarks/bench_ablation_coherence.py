"""Ablation — fading coherence time.

The paper assumes quasi-static nodes ("coherence time of the order of
[100] ms").  Coherence sets how long a gated sensor waits for the channel
to fade *up* past its threshold: slower fading (longer coherence) means
longer waits and larger queues for Scheme 2, while the energy ordering is
preserved.  This is the central environmental sensitivity of CAEM.
"""

import dataclasses

from repro.config import Protocol
from repro.experiments import get_preset, render_table, run_scenario

from conftest import run_once


def _run(preset: str, coherence_s: float, seeds):
    tier = get_preset(preset)
    delays, qdrops, epps = [], [], []
    for seed in seeds:
        cfg = tier.config(Protocol.CAEM_FIXED, load_pps=5.0, seed=seed)
        cfg = cfg.with_(
            channel=dataclasses.replace(cfg.channel, fading_coherence_s=coherence_s)
        )
        run = run_scenario(cfg, horizon_s=tier.rate_horizon_s,
                           sample_interval_s=tier.sample_interval_s)
        delays.append(run.mean_delay_s * 1e3)
        qdrops.append(run.dropped_overflow)
        if run.energy_per_packet_j:
            epps.append(run.energy_per_packet_j * 1e3)
    n = len(seeds)
    return (sum(delays) / n, sum(qdrops) / n,
            sum(epps) / max(len(epps), 1))


def _sweep(preset: str, seeds):
    rows = []
    for coherence in (0.02, 0.1, 0.5):
        delay, drops, epp = _run(preset, coherence, seeds)
        rows.append([coherence, delay, drops, epp])
    return rows


def test_ablation_fading_coherence(benchmark, preset, seeds):
    rows = run_once(benchmark, _sweep, preset, seeds)
    print()
    print(render_table(
        ["coherence_s", "mean delay ms", "overflow drops", "mJ/pkt"],
        rows,
        title="ablation: fading coherence time (Scheme 2, 5 pkt/s)",
    ))
    fast, mid, slow = rows
    # Slow fading makes the wait for a good channel longer.
    assert slow[1] > fast[1], "longer coherence should increase delay"
