"""Energy substrate: model, battery, meter, radio state machines."""

import pytest

from repro.config import EnergyConfig
from repro.energy import Battery, EnergyMeter, RadioEnergyModel
from repro.errors import EnergyError, MacError
from repro.phy import DataRadio, DataRadioState, ToneRadio, ToneRadioState
from repro.sim import Simulator


@pytest.fixture()
def model():
    return RadioEnergyModel(EnergyConfig())


class TestRadioEnergyModel:
    def test_powers_match_table2(self, model):
        assert model.power_w("data_tx") == 0.66
        assert model.power_w("data_rx") == 0.305
        assert model.power_w("tone_tx") == pytest.approx(0.092)
        assert model.power_w("tone_rx") == pytest.approx(0.036)
        assert model.power_w("sleep") == pytest.approx(3.5e-6)

    def test_energy_is_power_times_time(self, model):
        assert model.energy_j("data_tx", 0.001) == pytest.approx(0.66e-3)

    def test_tx_of_2kbit_at_2mbps(self, model):
        # The headline per-packet cost: 1 ms * 0.66 W = 0.66 mJ.
        assert model.tx_energy_j(1e-3) == pytest.approx(0.66e-3)

    def test_startup_energy(self, model):
        assert model.startup_energy_j == pytest.approx(0.66 * 20e-6)

    def test_unknown_cause(self, model):
        with pytest.raises(EnergyError):
            model.power_w("warp_drive")

    def test_negative_duration(self, model):
        with pytest.raises(EnergyError):
            model.energy_j("sleep", -1.0)


class TestBattery:
    def test_draw_decrements(self):
        b = Battery(10.0)
        assert b.draw(2.5) == 2.5
        assert b.level_j == 7.5
        assert b.fraction == pytest.approx(0.75)

    def test_truncated_final_draw(self):
        b = Battery(1.0)
        assert b.draw(3.0) == 1.0
        assert b.level_j == 0.0 and b.is_depleted

    def test_depletion_callback_once(self):
        hits = []
        b = Battery(1.0, on_depleted=lambda: hits.append(True))
        b.draw(0.6)
        assert hits == []
        b.draw(0.6)
        assert hits == [True]
        b.draw(0.6)  # dead battery: no double-fire
        assert hits == [True]

    def test_dead_battery_supplies_nothing(self):
        b = Battery(1.0)
        b.draw(1.0)
        assert b.draw(0.5) == 0.0

    def test_can_supply(self):
        b = Battery(1.0)
        assert b.can_supply(1.0)
        assert not b.can_supply(1.1)

    def test_negative_draw_rejected(self):
        with pytest.raises(EnergyError):
            Battery(1.0).draw(-0.1)

    def test_invalid_capacity(self):
        with pytest.raises(EnergyError):
            Battery(0.0)

    def test_drawn_total(self):
        b = Battery(5.0)
        b.draw(1.0)
        b.draw(2.0)
        assert b.drawn_j == pytest.approx(3.0)

    def test_late_callback_install(self):
        b = Battery(1.0)
        hits = []
        b.set_depletion_callback(lambda: hits.append(1))
        b.draw(2.0)
        assert hits == [1]
        with pytest.raises(EnergyError):
            b.set_depletion_callback(lambda: None)


class TestEnergyMeter:
    def _meter(self, capacity=10.0):
        sim = Simulator()
        meter = EnergyMeter(sim, RadioEnergyModel(EnergyConfig()), Battery(capacity))
        return sim, meter

    def test_charge_by_duration(self):
        _, meter = self._meter()
        meter.charge("data_tx", 1.0)
        assert meter.by_cause["data_tx"] == pytest.approx(0.66)
        assert meter.battery.level_j == pytest.approx(10.0 - 0.66)

    def test_ledger_accumulates(self):
        _, meter = self._meter()
        meter.charge("data_tx", 1.0)
        meter.charge("data_tx", 1.0)
        meter.charge("tone_rx", 1.0)
        assert meter.by_cause["data_tx"] == pytest.approx(1.32)
        assert meter.total_j == pytest.approx(1.32 + 0.036)

    def test_unknown_cause_rejected(self):
        _, meter = self._meter()
        with pytest.raises(EnergyError):
            meter.charge("mystery", 1.0)

    def test_continuous_draw_integrates(self):
        sim, meter = self._meter()
        draw = meter.open_draw("tone_rx")
        sim.run_until(10.0)
        charged = draw.close(sim.now)
        assert charged == pytest.approx(0.36)
        assert meter.by_cause["tone_rx"] == pytest.approx(0.36)

    def test_continuous_draw_checkpoint(self):
        sim, meter = self._meter()
        draw = meter.open_draw("tone_rx")
        sim.run_until(5.0)
        draw.checkpoint(sim.now)
        assert meter.by_cause["tone_rx"] == pytest.approx(0.18)
        sim.run_until(10.0)
        draw.close(sim.now)
        assert meter.by_cause["tone_rx"] == pytest.approx(0.36)

    def test_closed_draw_charges_nothing_more(self):
        sim, meter = self._meter()
        draw = meter.open_draw("tone_rx")
        sim.run_until(1.0)
        draw.close(sim.now)
        sim.run_until(5.0)
        assert draw.checkpoint(sim.now) == 0.0

    def test_settle_all(self):
        sim, meter = self._meter()
        meter.open_draw("tone_rx")
        meter.open_draw("sleep")
        sim.run_until(2.0)
        meter.settle_all()
        assert meter.by_cause["tone_rx"] == pytest.approx(0.072)
        assert meter.by_cause["sleep"] == pytest.approx(7e-6)

    def test_charge_startup(self):
        _, meter = self._meter()
        meter.charge_startup()
        assert meter.by_cause["startup"] == pytest.approx(0.66 * 20e-6)

    def test_truncation_reflected_in_ledger(self):
        _, meter = self._meter(capacity=0.1)
        meter.charge("data_tx", 1.0)  # wants 0.66 J, only 0.1 available
        assert meter.by_cause["data_tx"] == pytest.approx(0.1)
        assert meter.battery.is_depleted


class TestDataRadio:
    def _radio(self):
        sim = Simulator()
        meter = EnergyMeter(sim, RadioEnergyModel(EnergyConfig()), Battery(10.0))
        return sim, meter, DataRadio(sim, meter, startup_time_s=466e-6)

    def test_wake_sequence_and_cost(self):
        sim, meter, radio = self._radio()
        ready = []
        radio.wake(lambda: ready.append(sim.now))
        assert radio.state is DataRadioState.STARTUP
        sim.run()
        assert ready == [pytest.approx(466e-6)]
        assert radio.state is DataRadioState.IDLE
        assert meter.by_cause["startup"] == pytest.approx(0.66 * 466e-6)

    def test_tx_charges_tx_power(self):
        sim, meter, radio = self._radio()
        radio.wake(lambda: None)
        sim.run()
        radio.start_tx()
        sim.call_in(0.004, radio.sleep)
        sim.run()
        assert meter.by_cause["data_tx"] == pytest.approx(0.66 * 0.004)
        assert radio.state is DataRadioState.SLEEP

    def test_wake_from_non_sleep_rejected(self):
        sim, _, radio = self._radio()
        radio.wake(lambda: None)
        with pytest.raises(MacError):
            radio.wake(lambda: None)

    def test_tx_requires_awake(self):
        _, _, radio = self._radio()
        with pytest.raises(MacError):
            radio.start_tx()

    def test_sleep_cancels_pending_wake(self):
        sim, _, radio = self._radio()
        ready = []
        radio.wake(lambda: ready.append(True))
        radio.sleep()
        sim.run()
        assert ready == [] and radio.state is DataRadioState.SLEEP

    def test_is_awake(self):
        sim, _, radio = self._radio()
        assert not radio.is_awake
        radio.wake(lambda: None)
        sim.run()
        assert radio.is_awake


class TestToneRadio:
    def test_monitor_charges_tone_rx(self):
        sim = Simulator()
        meter = EnergyMeter(sim, RadioEnergyModel(EnergyConfig()), Battery(10.0))
        tone = ToneRadio(sim, meter)
        tone.monitor()
        sim.call_in(1.0, tone.off)
        sim.run()
        assert meter.by_cause["tone_rx"] == pytest.approx(0.036)
        assert tone.state is ToneRadioState.OFF

    def test_idempotent_transitions(self):
        sim = Simulator()
        meter = EnergyMeter(sim, RadioEnergyModel(EnergyConfig()), Battery(10.0))
        tone = ToneRadio(sim, meter)
        tone.monitor()
        n = tone.transitions
        tone.monitor()
        assert tone.transitions == n  # no-op

    def test_is_on(self):
        sim = Simulator()
        meter = EnergyMeter(sim, RadioEnergyModel(EnergyConfig()), Battery(10.0))
        tone = ToneRadio(sim, meter)
        assert not tone.is_on
        tone.transmit()
        assert tone.is_on
