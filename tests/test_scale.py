"""Scale-tier guardrails: pools, bounded stats, the ext-scale experiment.

Three contracts are pinned here:

* **byte-identity** — the link/MAC reuse pools and the spatial index
  change zero output bytes: full ``RunResult`` equality with the scale
  machinery on versus off, on the fig8-style static smoke scenario and
  the ext-dynamics adversity smoke scenario (the golden-hash suite in
  ``test_perf_golden.py`` pins the pool-on default against the committed
  pre-optimization hashes, so together the two suites sandwich both
  paths);
* **bounded memory** — series decimation and the delay reservoir hold
  their caps, keep exact means, and stay deterministic;
* **no stale callbacks** — round teardown leaves nothing of a recycled
  head stack armed in the event queue, including at t ≥ 1e9 where a
  same-instant zombie would freeze the clock (the ``strictly_after``
  regression discipline).
"""

import math

import numpy as np
import pytest

from repro.api import RunOptions, get_experiment
from repro.api.engine import simulate
from repro.channel import Link, LinkBudget
from repro.config import ChannelConfig, NetworkConfig, Protocol, ScaleConfig
from repro.errors import ConfigError, ExperimentError, MacError
from repro.experiments.scale import scale_config
from repro.mac.tone import ToneBroadcaster
from repro.metrics import TimeSeriesCollector
from repro.network import SensorNetwork
from repro.network.stats import NetworkStats
from repro.rng import NormalBlockCache, RngRegistry
from repro.sim import Simulator

SCALE_OFF = dict(spatial_index="brute", link_pool=False, reuse_head_stack=False)


def _result_dict(cfg, options):
    out = simulate(cfg, options).to_dict()
    out.pop("wall_time_s")
    # Config metadata, not simulation output: the digest intentionally
    # differs between the pool-on and pool-off *configs*.
    out.pop("config_digest")
    return out


class TestPoolByteIdentity:
    """Pools + index on == off, to the last field, on the smoke goldens'
    scenarios (fig8-style static run and the ext-dynamics adversity run)."""

    def test_fig8_smoke_scenario_identical(self):
        cfg = NetworkConfig(n_nodes=12, seed=1).with_traffic(
            packets_per_second=5.0
        )
        opts = RunOptions(horizon_s=30.0, sample_interval_s=1.0)
        assert _result_dict(cfg, opts) == _result_dict(
            cfg.with_scale(**SCALE_OFF), opts
        )

    def test_ext_dynamics_smoke_scenario_identical(self):
        cfg = NetworkConfig(n_nodes=12, seed=1).with_dynamics(
            failure_rate_hz=0.01,
            mean_downtime_s=10.0,
            battery_jitter=0.3,
            regime_mean_interval_s=10.0,
            regime_sigma_db=3.0,
            bursty_fraction=0.5,
        )
        opts = RunOptions(
            horizon_s=40.0, sample_interval_s=1.0, stop_when_dead=True
        )
        assert _result_dict(cfg, opts) == _result_dict(
            cfg.with_scale(**SCALE_OFF), opts
        )

    def test_uplink_scenario_identical(self):
        cfg = NetworkConfig(n_nodes=12, seed=2).with_routing(mode="multihop")
        opts = RunOptions(horizon_s=30.0, sample_interval_s=1.0)
        assert _result_dict(cfg, opts) == _result_dict(
            cfg.with_scale(**SCALE_OFF), opts
        )

    @pytest.mark.parametrize("channel_cfg", [
        ChannelConfig(),                                    # fused path
        ChannelConfig(fading_kernel="jakes"),               # composed path
        ChannelConfig(rician_k=2.0),                        # composed path
        ChannelConfig(shadowing_sigma_db=0.0),              # no-draw shadowing
    ], ids=["fused", "jakes", "rician", "sigma0"])
    def test_rebound_link_equals_fresh_link(self, channel_cfg):
        budget = LinkBudget.from_config(channel_cfg)
        recycled = Link(20.0, budget, channel_cfg,
                        RngRegistry(9).stream("old"), "old", start_time_s=0.0)
        # Age the recycled link so its state is thoroughly non-initial.
        for i in range(1, 200):
            recycled.snr_db(0.05 * i)
        recycled.rebind(35.0, budget, RngRegistry(9).stream("new"), "new", 40.0)
        fresh = Link(35.0, budget, channel_cfg, RngRegistry(9).stream("new"),
                     "new", start_time_s=40.0)
        times = [40.0 + 0.03 * i for i in range(1, 400)]
        assert [recycled.snr_db(t) for t in times] == \
               [fresh.snr_db(t) for t in times]

    def test_rebound_cache_equals_fresh_cache(self):
        a = NormalBlockCache(np.random.default_rng(1), block_size=8)
        for _ in range(13):
            a.standard_normal()
        a.rebind(np.random.Generator(np.random.PCG64(77)))
        b = NormalBlockCache(np.random.Generator(np.random.PCG64(77)),
                             block_size=8)
        assert [a.standard_normal() for _ in range(30)] == \
               [b.standard_normal() for _ in range(30)]

    def test_registry_derive_matches_stream_without_caching(self):
        reg = RngRegistry(5)
        derived = reg.derive("once/only")
        assert "once/only" not in reg
        cached = RngRegistry(5).stream("once/only")
        assert derived.standard_normal(16).tolist() == \
               cached.standard_normal(16).tolist()

    def test_pools_actually_recycle(self):
        cfg = NetworkConfig(n_nodes=30, seed=1)
        net = SensorNetwork(cfg)
        net.run_until(45.0)  # several 20 s rounds... two boundaries
        assert net._link_pool  # members got pooled links
        pooled = set(map(id, net._link_pool.values()))
        attached = {
            id(n.mac.link) for n in net.nodes if n.mac.link is not None
        }
        assert attached <= pooled  # every live link came from the pool
        assert any(n._head_stack is not None for n in net.nodes)


class TestBoundedSeries:
    def _collector(self, cap):
        sim = Simulator()
        ticks = iter(range(10_000))
        col = TimeSeriesCollector(
            sim, 1.0, lambda: next(ticks), max_samples=cap
        )
        return sim, col

    def test_decimation_bounds_length_and_doubles_interval(self):
        sim, col = self._collector(8)
        col.start()
        sim.run_until(100.0)
        assert len(col.times) <= 9
        assert col.stride >= 8  # 101 samples needed several halvings
        # Uniform spacing at stride * base interval.
        gaps = {round(b - a, 6) for a, b in zip(col.times, col.times[1:])}
        assert gaps == {float(col.stride)}

    def test_decimated_series_is_subsample_of_exact(self):
        # The probe reads time-dependent state (like the real alive /
        # energy samplers), so a decimated series must equal the exact
        # series evaluated at the surviving sample times.
        sim_a = Simulator()
        exact = TimeSeriesCollector(sim_a, 1.0, lambda: sim_a.now * 2.0)
        exact.start()
        sim_a.run_until(60.0)
        sim_b = Simulator()
        bounded = TimeSeriesCollector(
            sim_b, 1.0, lambda: sim_b.now * 2.0, max_samples=8
        )
        bounded.start()
        sim_b.run_until(60.0)
        assert set(bounded.times) <= set(exact.times)
        assert bounded.values == [exact.values[exact.times.index(t)]
                                  for t in bounded.times]

    def test_exact_mode_untouched(self):
        sim, col = self._collector(None)
        col.max_samples = None
        col.start()
        sim.run_until(50.0)
        assert len(col.times) == 51 and col.stride == 1

    def test_rejects_tiny_or_odd_cap(self):
        sim = Simulator()
        with pytest.raises(ExperimentError):
            TimeSeriesCollector(sim, 1.0, lambda: 0, max_samples=1)
        with pytest.raises(ExperimentError):
            # Odd caps would overshoot by one sample before shrinking.
            TimeSeriesCollector(sim, 1.0, lambda: 0, max_samples=7)
        with pytest.raises(ExperimentError):
            RunOptions(horizon_s=10.0, max_series_samples=9)

    def test_engine_reports_stride(self):
        cfg = NetworkConfig(n_nodes=8, seed=1)
        res = simulate(cfg, RunOptions(horizon_s=40.0, sample_interval_s=0.5,
                                       max_series_samples=16))
        assert res.series_stride > 1
        assert len(res.sample_times_s) <= 17
        exact = simulate(cfg, RunOptions(horizon_s=40.0, sample_interval_s=0.5))
        assert exact.series_stride == 1
        # The bounded series is a subsample of the exact one.
        assert set(res.sample_times_s) <= set(exact.sample_times_s)


class TestDelayReservoir:
    def _stats(self, cap, seed=3):
        return NetworkStats(
            max_delay_samples=cap,
            reservoir_rng=RngRegistry(seed).stream("stats/reservoir"),
        )

    @staticmethod
    def _feed(stats, n, seed=0):
        from repro.traffic.packet import Packet

        rng = np.random.default_rng(seed)
        for i in range(n):
            p = Packet(source_id=i % 7, birth_s=0.0, size_bits=2048)
            stats.on_delivered([p], sender_id=0, now=float(rng.uniform(0, 9)))

    def test_cap_respected_and_mean_exact(self):
        bounded = self._stats(50)
        exact = NetworkStats()
        self._feed(bounded, 1000)
        self._feed(exact, 1000)
        assert len(bounded.delays_s) == 50
        assert bounded.delay_count == exact.delay_count == 1000
        assert bounded.mean_delay_s() == exact.mean_delay_s()
        # The reservoir is a subset of the true delays.
        assert set(bounded.delays_s) <= set(exact.delays_s)

    def test_reservoir_deterministic(self):
        a, b = self._stats(20), self._stats(20)
        self._feed(a, 500)
        self._feed(b, 500)
        assert a.delays_s == b.delays_s

    def test_exact_mode_is_default(self):
        stats = NetworkStats()
        self._feed(stats, 300)
        assert len(stats.delays_s) == 300

    def test_requires_rng(self):
        with pytest.raises(ValueError):
            NetworkStats(max_delay_samples=10)

    def test_hop_reservoir_bounded(self):
        from repro.traffic.packet import Packet

        stats = self._stats(10)
        for i in range(200):
            p = Packet(source_id=0, birth_s=0.0, size_bits=2048)
            stats.on_sink_delivered([p], [1 + i % 3], sender_id=0, now=1.0)
        assert len(stats.hop_counts) == 10
        assert stats.hop_count_n == 200
        assert stats.mean_hop_count() == pytest.approx(
            sum(1 + i % 3 for i in range(200)) / 200
        )

    def test_config_knob_reaches_stats(self):
        cfg = NetworkConfig(n_nodes=8, seed=1).with_scale(max_delay_samples=25)
        net = SensorNetwork(cfg)
        assert net.stats.max_delay_samples == 25
        net.run_until(30.0)
        assert len(net.stats.delays_s) <= 25
        assert net.stats.delay_count >= len(net.stats.delays_s)


class TestTeardownAudit:
    """No stale callbacks may survive head-stack recycling — including at
    t >= 1e9, where a same-instant zombie would freeze the clock."""

    @staticmethod
    def _stale_tone_events(net):
        stale = []
        for entry in net.sim._queue._heap:
            call = entry[3]
            if call.cancelled or call.fn is None:
                continue
            owner = getattr(call.fn, "__self__", None)
            if isinstance(owner, ToneBroadcaster) and not owner.is_running:
                stale.append(call)
        return stale

    def test_no_stale_tone_callbacks_across_rounds(self):
        cfg = NetworkConfig(n_nodes=20, seed=1)
        net = SensorNetwork(cfg)
        for t in (20.0, 40.0, 60.0):  # cross several round boundaries
            net.run_until(t + 0.001)
            assert self._stale_tone_events(net) == []

    def test_recycled_stack_quiescent_at_large_times(self):
        cfg = NetworkConfig(n_nodes=16, seed=2)
        net = SensorNetwork(cfg)
        net.sim._now = 1e9  # strictly_after regime: sub-ulp delays exist
        start = net.sim.now
        net.run_until(start + 41.0)  # two full rounds + re-formation
        assert net.sim.now > start
        assert self._stale_tone_events(net) == []
        recycled = [n for n in net.nodes if n._head_stack is not None]
        assert recycled  # rounds elected heads, stacks were pooled
        for node in recycled:
            channel, broadcaster, head_mac = node._head_stack
            if node.role.value != "head":
                assert not broadcaster.is_running
                assert broadcaster._pulse_handle is None
                assert not channel._active

    def test_broadcaster_reset_guards(self):
        sim = Simulator()
        cfg = NetworkConfig(n_nodes=4, seed=1)
        net = SensorNetwork(cfg)
        net.run_until(1.0)
        heads = [n for n in net.nodes if n.head_mac is not None]
        assert heads
        bc = heads[0].head_mac.broadcaster
        with pytest.raises(MacError):
            bc.reset()  # still running mid-round
        assert sim is not None

    def test_channel_reset_refuses_active_traffic(self):
        from repro.channel.medium import DataChannel

        chan = DataChannel(Simulator())
        chan.begin(1, 0.5)
        with pytest.raises(MacError):
            chan.reset()


class TestScaleConfig:
    def test_defaults_and_validation(self):
        cfg = ScaleConfig()
        assert cfg.spatial_index == "grid"
        assert cfg.link_pool and cfg.reuse_head_stack
        assert cfg.max_delay_samples is None
        with pytest.raises(ConfigError):
            ScaleConfig(spatial_index="quadtree")
        with pytest.raises(ConfigError):
            ScaleConfig(grid_min_heads=0)
        with pytest.raises(ConfigError):
            ScaleConfig(max_delay_samples=0)

    def test_dict_round_trip(self):
        cfg = NetworkConfig().with_scale(
            spatial_index="brute", link_pool=False, max_delay_samples=100
        )
        again = NetworkConfig.from_dict(cfg.to_dict())
        assert again == cfg
        assert again.scale.max_delay_samples == 100


class TestExtScaleExperiment:
    def test_scale_config_constant_density(self):
        a = scale_config(100, Protocol.CAEM_ADAPTIVE)
        b = scale_config(400, Protocol.CAEM_ADAPTIVE)
        assert a.field_size_m == 100.0
        assert b.field_size_m == pytest.approx(200.0)
        # Equal density ==> equal nodes per unit area.
        assert (100 / a.field_size_m ** 2) == pytest.approx(
            400 / b.field_size_m ** 2
        )
        assert a.scale.max_delay_samples is not None

    def test_smoke_run_and_store_round_trip(self):
        spec = get_experiment("ext-scale")
        fig = spec.run(preset="smoke", seeds=(1,), jobs=1)
        assert len(fig.rows) == 6  # 3 protocols x 2 sizes
        assert fig.headers[:2] == ["protocol", "nodes"]
        # Re-render from the recorded runs without re-simulating.
        again = spec.run(preset="smoke", seeds=(1,), runs=fig.runs)
        assert again.render() == fig.render()

    def test_cross_size_store_refused_not_mispaired(self):
        # Every ext-scale cell shares (protocol, load, seed, horizon), so
        # the store-resolution key must also carry the config digest:
        # re-rendering a store at different sizes has to fail loudly,
        # never silently pair the wrong network size to a row.
        spec = get_experiment("ext-scale")
        fig = spec.run(preset="smoke", seeds=(1,), node_counts=(30, 60))
        with pytest.raises(ExperimentError, match="missing"):
            spec.run(preset="smoke", seeds=(1,), node_counts=(24, 48),
                     runs=fig.runs)

    def test_cross_churn_store_refused_not_mispaired(self):
        # Same latent mis-pair class for ext-dynamics: its cells differ
        # only in the dynamics sub-config, so without the digest a
        # churn-rate subset re-render would silently show the wrong
        # rows.  The digest refuses it.
        spec = get_experiment("ext-dynamics")
        fig = spec.run(preset="smoke", seeds=(1,),
                       churn_rates_hz=(0.0, 0.01))
        with pytest.raises(ExperimentError, match="missing"):
            spec.run(preset="smoke", seeds=(1,), churn_rates_hz=(0.005,),
                     runs=fig.runs)
        # Matching grids still round-trip.
        again = spec.run(preset="smoke", seeds=(1,),
                         churn_rates_hz=(0.0, 0.01), runs=fig.runs)
        assert again.render() == fig.render()

    def test_runs_are_stamped_with_network_size(self):
        spec = get_experiment("ext-scale")
        fig = spec.run(preset="smoke", seeds=(1,), node_counts=(30,))
        assert {r.n_nodes for r in fig.runs} == {30}

    def test_deterministic_fields_jobs_parity(self):
        spec = get_experiment("ext-scale")
        serial = spec.run(preset="smoke", seeds=(1,), jobs=1)
        twice = spec.run(preset="smoke", seeds=(1,), jobs=2)
        for a, b in zip(serial.runs, twice.runs):
            da, db = a.to_dict(), b.to_dict()
            da.pop("wall_time_s"), db.pop("wall_time_s")
            assert da == db

    def test_unknown_preset_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("ext-scale").run(preset="galactic")

    def test_bench_scale_workload_matches_baseline_manifest(self):
        # BENCH_scale.json documents the workload bench_scale.py times;
        # keep the two in lockstep so speedups stay apples-to-apples.
        import json
        from pathlib import Path

        doc = json.loads(
            (Path(__file__).parent.parent / "benchmarks" / "BENCH_scale.json")
            .read_text()
        )
        assert doc["workload"]["horizon_s"] == 40.0
        cfg = scale_config(1000, Protocol.CAEM_ADAPTIVE, seed=1)
        assert cfg.seed == doc["workload"]["seed"]
        assert cfg.traffic.packets_per_second == doc["workload"]["load_pps"]
        assert cfg.field_size_m == pytest.approx(100.0 * math.sqrt(10.0))
        assert set(doc["baseline"]) == {"100", "300", "1000"}
