"""Full-network integration: LEACH rounds over the CAEM stack."""

import pytest

from repro.config import NetworkConfig, Protocol
from repro.network import NodeRole, SensorNetwork
from repro.sim import Tracer


def _small(protocol=Protocol.PURE_LEACH, seed=3, **kw):
    cfg = NetworkConfig(n_nodes=12, protocol=protocol, seed=seed, **kw)
    return cfg


class TestBasicOperation:
    def test_packets_flow_end_to_end(self):
        net = SensorNetwork(_small())
        net.run_until(30.0)
        assert net.stats.delivered > 50
        assert net.generated_packets() > 0

    def test_round_rotation(self):
        tracer = Tracer()
        net = SensorNetwork(_small(), tracer=tracer)
        net.run_until(65.0)  # 3+ rounds at 20 s
        rounds = tracer.of_kind("leach.round")
        assert len(rounds) >= 3
        heads = [tuple(r.data["heads"]) for r in rounds]
        # Rotation: not always the same head set.
        assert len(set(heads)) > 1

    def test_head_role_flips(self):
        net = SensorNetwork(_small())
        net.run_until(10.0)
        roles = [n.role for n in net.nodes]
        assert roles.count(NodeRole.HEAD) >= 1
        assert roles.count(NodeRole.SENSOR) >= 10

    def test_all_three_protocols_run(self):
        for proto in Protocol:
            net = SensorNetwork(_small(protocol=proto))
            net.run_until(25.0)
            assert net.stats.total_delivered > 0, proto

    def test_determinism_same_seed(self):
        a = SensorNetwork(_small(seed=9))
        a.run_until(30.0)
        b = SensorNetwork(_small(seed=9))
        b.run_until(30.0)
        assert a.stats.delivered == b.stats.delivered
        assert a.mean_remaining_j() == pytest.approx(b.mean_remaining_j())
        assert a.sim.events_processed == b.sim.events_processed

    def test_different_seeds_differ(self):
        a = SensorNetwork(_small(seed=1))
        a.run_until(30.0)
        b = SensorNetwork(_small(seed=2))
        b.run_until(30.0)
        assert a.stats.delivered != b.stats.delivered

    def test_energy_conservation(self):
        """Drawn energy == initial - remaining, summed over nodes."""
        net = SensorNetwork(_small())
        net.run_until(20.0)
        net.settle_all()
        initial = 12 * net.cfg.energy.initial_energy_j
        remaining = sum(n.battery.level_j for n in net.nodes)
        assert net.total_consumed_j() == pytest.approx(initial - remaining)

    def test_energy_monotone_decreasing(self):
        net = SensorNetwork(_small())
        levels = []
        for t in (5.0, 10.0, 15.0, 20.0):
            net.run_until(t)
            levels.append(net.mean_remaining_j())
        assert all(a > b for a, b in zip(levels, levels[1:]))

    def test_delays_are_positive(self):
        net = SensorNetwork(_small())
        net.run_until(20.0)
        assert all(d > 0 for d in net.stats.delays_s)

    def test_conservation_of_packets(self):
        """generated = delivered + lost + dropped + still-queued (+in flight)."""
        net = SensorNetwork(_small())
        net.run_until(30.0)
        accounted = (
            net.stats.total_delivered
            + net.stats.lost_channel
            + net.dropped_overflow()
            + net.dropped_retry()
            + sum(len(n.buffer) for n in net.nodes)
        )
        # A handful may be mid-burst at the cut; allow that slack.
        assert abs(net.generated_packets() - accounted) <= 8 * len(net.nodes)


class TestDeathDynamics:
    def test_nodes_die_and_network_dies(self):
        import dataclasses

        cfg = _small()
        cfg = cfg.with_(
            energy=dataclasses.replace(cfg.energy, initial_energy_j=0.3)
        )
        net = SensorNetwork(cfg)
        net.run_until(120.0)
        assert net.alive_count < 12
        deaths = [n.death_time_s for n in net.nodes if n.death_time_s is not None]
        assert deaths and all(t > 0 for t in deaths)

    def test_dead_fraction_rule(self):
        import dataclasses

        cfg = _small().with_(
            dead_fraction=0.5,
            energy=dataclasses.replace(_small().energy, initial_energy_j=0.3),
        )
        net = SensorNetwork(cfg)
        net.run_until(200.0)
        if net.dead_fraction >= 0.5:
            assert net.is_dead

    def test_dead_nodes_stop_generating(self):
        import dataclasses

        cfg = _small().with_(
            energy=dataclasses.replace(_small().energy, initial_energy_j=0.2)
        )
        net = SensorNetwork(cfg)
        net.run_until(100.0)
        dead = [n for n in net.nodes if not n.alive]
        assert dead
        counts = {n.id: n.source.generated for n in dead}
        net.run_until(130.0)
        for n in dead:
            assert n.source.generated == counts[n.id]

    def test_leach_rotation_balances_death_times(self):
        """The paper: the die-off window is short under LEACH rotation.

        Rotation only balances drain when a battery outlives several CH
        terms, so run short (5 s) rounds; and like the fig9 bench, judge
        the *central* 10%→90% die-off window — the very first death is
        always an early outlier (the round-1 cluster head).
        """
        import dataclasses

        cfg = _small().with_(
            energy=dataclasses.replace(_small().energy, initial_energy_j=0.4),
            leach=dataclasses.replace(_small().leach, round_duration_s=5.0),
        )
        net = SensorNetwork(cfg)
        net.run_until(120.0)
        deaths = sorted(
            t for t in (n.death_time_s for n in net.nodes) if t is not None
        )
        assert len(deaths) == 12  # everyone died by the horizon
        k10 = deaths[int(0.1 * 12)]
        k90 = deaths[int(0.9 * 12) - 1]
        # Bound loosened 0.65 -> 0.7 when the reentrant-teardown fix in
        # CaemSensorMac._radio_ready landed: bursts begun in the very
        # event that killed the head are now requeued instead of
        # silently lost, so their senders retransmit and drain a touch
        # less evenly at this seed (ratio 0.659).  The rotation-balances
        # property itself is unchanged.
        assert (k90 - k10) < 0.7 * deaths[-1]


class TestProtocolOrdering:
    """The paper's headline orderings, verified end-to-end."""

    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for proto in Protocol:
            net = SensorNetwork(_small(protocol=proto, seed=4))
            net.run_until(60.0)
            out[proto] = net
        return out

    def test_energy_ordering_leach_worst(self, runs):
        consumed = {p: runs[p].total_consumed_j() for p in Protocol}
        assert consumed[Protocol.PURE_LEACH] > consumed[Protocol.CAEM_ADAPTIVE]
        assert consumed[Protocol.CAEM_ADAPTIVE] > consumed[Protocol.CAEM_FIXED]

    def test_scheme2_worst_delay(self, runs):
        delays = {p: runs[p].stats.mean_delay_s() for p in Protocol}
        assert delays[Protocol.CAEM_FIXED] > delays[Protocol.PURE_LEACH]

    def test_scheme1_policy_was_exercised(self, runs):
        net = runs[Protocol.CAEM_ADAPTIVE]
        changes = sum(
            getattr(n.mac.policy, "lowers", 0) + getattr(n.mac.policy, "raises", 0)
            for n in net.nodes
        )
        assert changes > 0
