"""The network-dynamics subsystem: churn, regime shifts, adversity.

Four contracts are pinned here:

* **inertness** — the all-default dynamics block builds nothing and the
  static simulation is bit-identical (the golden SHA-256 render hashes
  in test_perf_golden.py are the byte-level proof; this module pins the
  structural side);
* **conservation** — every generated packet is accounted exactly once
  across delivered / lost / dropped / orphaned / still-queued, even when
  its source churn-fails mid-flight;
* **determinism** — scripted and stochastic timelines are bit-identical
  across same-seed runs, and ``ext-dynamics`` renders identically at any
  ``jobs`` parallelism and through a store round-trip;
* **semantics** — failed nodes go dark and sit out clustering, recovered
  nodes re-enter at the next round, regime shifts move every active
  link's mean SNR at once.
"""

import dataclasses
import json

import pytest

from repro.api import RunOptions, Scenario, get_experiment, simulate
from repro.api.store import ResultStore
from repro.channel import LinkBudget
from repro.config import DynamicsConfig, NetworkConfig, Protocol
from repro.dynamics import EventTimeline
from repro.errors import ConfigError
from repro.network import NodeRole, SensorNetwork
from repro.rng import RngRegistry
from repro.sim import Simulator, Tracer
from repro.traffic.sources import OnOffSource, PoissonSource


def _cfg(**dyn):
    cfg = NetworkConfig(n_nodes=12, protocol=Protocol.PURE_LEACH, seed=7)
    return cfg.with_dynamics(**dyn) if dyn else cfg


# ---------------------------------------------------------------------------
# Config block
# ---------------------------------------------------------------------------


class TestDynamicsConfig:
    def test_default_block_is_inert(self):
        cfg = NetworkConfig()
        assert cfg.dynamics == DynamicsConfig()
        assert not cfg.dynamics.enabled
        assert not cfg.dynamics.churn_enabled

    def test_each_knob_enables(self):
        assert DynamicsConfig(failure_rate_hz=0.1).enabled
        assert DynamicsConfig(scripted_failures=((1.0, 0),)).enabled
        assert DynamicsConfig(scripted_recoveries=((1.0, 0),)).enabled
        assert DynamicsConfig(battery_jitter=0.2).enabled
        assert DynamicsConfig(bursty_fraction=0.5).enabled
        assert DynamicsConfig(
            regime_mean_interval_s=5.0, regime_sigma_db=3.0
        ).enabled

    def test_regime_needs_interval_and_sigma(self):
        assert not DynamicsConfig(regime_mean_interval_s=5.0,
                                  regime_sigma_db=0.0).enabled
        assert not DynamicsConfig(regime_mean_interval_s=0.0).enabled

    @pytest.mark.parametrize("bad", [
        dict(failure_rate_hz=-1.0),
        dict(mean_downtime_s=-1.0),
        dict(battery_jitter=1.0),
        dict(battery_jitter=-0.1),
        dict(regime_mean_interval_s=-1.0),
        dict(regime_sigma_db=-1.0),
        dict(bursty_fraction=1.5),
        dict(scripted_failures=((-1.0, 0),)),
        dict(scripted_failures=((1.0, -2),)),
        dict(scripted_failures=((1.0, 1.5),)),
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigError):
            DynamicsConfig(**bad)

    def test_dict_round_trip_with_scripted_events(self):
        cfg = _cfg(
            failure_rate_hz=0.01,
            scripted_failures=((2.0, 3), (4.5, 0)),
            scripted_recoveries=((6.0, 3),),
            battery_jitter=0.25,
            regime_mean_interval_s=10.0,
            bursty_fraction=0.5,
        )
        # Through JSON: tuples become nested lists and must come back.
        data = json.loads(json.dumps(cfg.to_dict()))
        assert NetworkConfig.from_dict(data) == cfg

    def test_scenario_with_dynamics(self):
        s = Scenario().with_dynamics(failure_rate_hz=0.02)
        assert s.config.dynamics.failure_rate_hz == 0.02
        assert s.with_sub("dynamics", bursty_fraction=0.1) \
                .config.dynamics.bursty_fraction == 0.1


# ---------------------------------------------------------------------------
# Structural inertness when disabled
# ---------------------------------------------------------------------------


class TestDisabledIsInert:
    def test_no_timeline_no_tracking(self):
        net = SensorNetwork(_cfg())
        assert net.timeline is None
        assert net.stats.delivered_bits_by_source is None

    def test_homogeneous_batteries_and_sources(self):
        net = SensorNetwork(_cfg())
        base = net.cfg.energy.initial_energy_j
        assert all(n.battery.capacity_j == base for n in net.nodes)
        assert all(isinstance(n.source, PoissonSource) for n in net.nodes)

    def test_no_dynamics_streams_created(self):
        net = SensorNetwork(_cfg())
        net.run_until(15.0)
        assert not any(name.startswith("dynamics/")
                       for name in net.rngs.names())

    def test_run_result_dynamics_fields_inert(self):
        run = simulate(_cfg(), RunOptions(horizon_s=12.0, sample_interval_s=4.0))
        assert run.churn_failures == 0 and run.churn_recoveries == 0
        assert run.regime_shifts == 0 and run.orphaned == 0
        assert run.first_failure_s is None
        assert run.up_counts == []
        assert run.lifetime_effective_s == run.lifetime_s
        assert run.survivor_throughput_bps == 0.0
        if run.delivery_rate is not None:
            assert run.delivery_rate_offered == run.delivery_rate


# ---------------------------------------------------------------------------
# Scripted churn
# ---------------------------------------------------------------------------


class TestScriptedChurn:
    def test_fail_and_recover_apply_at_times(self):
        net = SensorNetwork(_cfg(scripted_failures=((3.0, 2),),
                                 scripted_recoveries=((9.0, 2),)))
        net.run_until(4.0)
        node = net.nodes[2]
        assert node.failed and not node.is_up and node.alive
        assert not node.source.is_running
        assert node.last_failure_s == 3.0
        assert net.up_count == 11 and net.alive_count == 12
        net.run_until(10.0)
        assert node.is_up and node.source.is_running
        assert net.stats.churn_failures == 1
        assert net.stats.churn_recoveries == 1
        assert net.stats.first_failure_s == 3.0

    def test_failed_node_sits_out_clustering(self):
        cfg = _cfg(scripted_failures=((3.0, 2),))
        net = SensorNetwork(cfg)
        # Across several rounds the down node must never attach nor head.
        round_s = cfg.leach.round_duration_s
        for k in range(1, 4):
            net.run_until(3.0 + k * round_s)
            node = net.nodes[2]
            assert not node.mac.is_attached
            assert node.role is not NodeRole.HEAD

    def test_recovered_node_rejoins_next_round(self):
        cfg = _cfg(scripted_failures=((3.0, 2),),
                   scripted_recoveries=((12.0, 2),))
        net = SensorNetwork(cfg)
        net.run_until(12.5)
        generated_down = net.nodes[2].source.generated
        # Next round boundary re-clusters the recovered node.
        net.run_until(45.0)
        node = net.nodes[2]
        assert node.is_up
        assert node.source.generated > generated_down
        assert node.mac.is_attached or node.role is NodeRole.HEAD

    def test_recovery_of_battery_dead_node_is_noop(self):
        net = SensorNetwork(_cfg(scripted_failures=((3.0, 2),),
                                 scripted_recoveries=((9.0, 2),)))
        net.run_until(4.0)
        net.nodes[2].battery.draw(1e9)
        assert not net.nodes[2].alive
        net.run_until(10.0)
        assert not net.nodes[2].is_up
        assert net.stats.churn_recoveries == 0

    def test_double_failure_counts_once(self):
        net = SensorNetwork(_cfg(scripted_failures=((3.0, 2), (4.0, 2))))
        net.run_until(5.0)
        assert net.stats.churn_failures == 1

    def test_scripted_kill_outranks_stochastic_repair(self):
        """A node on the kill list stays down until its scripted
        recovery, even when the Poisson repair chain fires meanwhile."""
        cfg = NetworkConfig(
            n_nodes=10, protocol=Protocol.PURE_LEACH, seed=11
        ).with_dynamics(
            failure_rate_hz=0.02,
            mean_downtime_s=8.0,
            scripted_failures=((5.0, 4),),
        )
        net = SensorNetwork(cfg)
        net.run_until(200.0)
        node = net.nodes[4]
        assert not node.alive or node.failed  # never revived

    def test_scripted_id_out_of_range_rejected(self):
        cfg = _cfg(scripted_failures=((1.0, 99),))
        with pytest.raises(ConfigError, match="node 99"):
            SensorNetwork(cfg)

    def test_head_failure_detaches_members(self):
        net = SensorNetwork(_cfg(scripted_failures=()))
        net.run_until(5.0)
        head = next(n for n in net.nodes if n.role is NodeRole.HEAD)
        members = [n for n in net.nodes
                   if n.mac.is_attached and n is not head]
        net._fail_node(head.id)
        assert head.failed and head.role is NodeRole.SENSOR
        for m in members:
            assert not m.mac.is_attached
        # The network keeps running and re-clusters next round.
        net.run_until(45.0)
        assert net.sim.now == 45.0


# ---------------------------------------------------------------------------
# Stochastic churn determinism
# ---------------------------------------------------------------------------


def _churn_trace(seed: int):
    cfg = NetworkConfig(
        n_nodes=10, protocol=Protocol.PURE_LEACH, seed=seed
    ).with_dynamics(failure_rate_hz=0.02, mean_downtime_s=8.0)
    tracer = Tracer()
    net = SensorNetwork(cfg, tracer=tracer)
    net.run_until(80.0)
    return net, [
        (a.time, a.kind, a.data.get("node"))
        for a in tracer.annotations
        if a.kind in ("node.fail", "node.recover")
    ]


class TestStochasticChurn:
    def test_same_seed_same_timeline(self):
        net_a, trace_a = _churn_trace(11)
        net_b, trace_b = _churn_trace(11)
        assert trace_a == trace_b
        assert net_a.stats.churn_failures == net_b.stats.churn_failures
        assert net_a.stats.orphaned == net_b.stats.orphaned

    def test_different_seed_different_timeline(self):
        _, trace_a = _churn_trace(11)
        _, trace_b = _churn_trace(12)
        assert trace_a != trace_b

    def test_failures_do_happen_and_recover(self):
        net, trace = _churn_trace(11)
        kinds = [kind for _, kind, _ in trace]
        assert "node.fail" in kinds and "node.recover" in kinds
        assert net.stats.first_failure_s == min(
            t for t, kind, _ in trace if kind == "node.fail"
        )

    def test_zero_downtime_means_permanent(self):
        cfg = NetworkConfig(
            n_nodes=10, protocol=Protocol.PURE_LEACH, seed=11
        ).with_dynamics(failure_rate_hz=0.05, mean_downtime_s=0.0)
        net = SensorNetwork(cfg)
        net.run_until(60.0)
        assert net.stats.churn_failures > 0
        assert net.stats.churn_recoveries == 0
        assert all(n.failed for n in net.nodes
                   if n.alive and n.last_failure_s is not None)


# ---------------------------------------------------------------------------
# Conservation: every packet accounted exactly once under churn
# ---------------------------------------------------------------------------


def _conservation_totals(net: SensorNetwork):
    """(generated, accounted) after quiescing in-flight bursts."""
    # Detach every MAC: an in-flight burst aborts on the ledger and its
    # packets requeue, so afterwards every undelivered packet the nodes
    # still own is sitting in a buffer.
    for node in net.nodes:
        if node.mac.is_attached:
            node.mac.detach()
    queued = sum(len(n.buffer) for n in net.nodes)
    s = net.stats
    accounted = (
        s.total_delivered
        + s.lost_channel
        + net.dropped_overflow()
        + net.dropped_retry()
        + s.orphaned
        + s.uplink_undelivered
        + queued
    )
    return net.generated_packets(), accounted


class TestChurnConservation:
    def test_counts_conserved_under_scripted_midround_churn(self):
        # Failures dropped mid-round at staggered instants: queues are
        # non-empty and bursts are frequently on the air at load 20.
        cfg = NetworkConfig(
            n_nodes=12, protocol=Protocol.CAEM_ADAPTIVE, seed=3
        ).with_traffic(packets_per_second=20.0).with_dynamics(
            scripted_failures=((5.03, 1), (5.07, 4), (11.31, 7), (26.2, 1)),
            scripted_recoveries=((15.0, 1), (30.0, 4)),
        )
        tracer = Tracer()
        net = SensorNetwork(cfg, tracer=tracer)
        net.run_until(35.0)
        assert net.stats.orphaned > 0, "churn must have orphaned packets"
        generated, accounted = _conservation_totals(net)
        assert generated == accounted
        # uid-level: nothing orphaned was also delivered (exactly-once).
        orphan_uids = set()
        for a in tracer.of_kind("node.fail"):
            orphan_uids.update(a.data["uids"])
        assert len(orphan_uids) == net.stats.orphaned

    def test_counts_conserved_under_stochastic_churn(self):
        cfg = NetworkConfig(
            n_nodes=12, protocol=Protocol.PURE_LEACH, seed=5
        ).with_traffic(packets_per_second=15.0).with_dynamics(
            failure_rate_hz=0.02, mean_downtime_s=10.0
        )
        net = SensorNetwork(cfg)
        net.run_until(60.0)
        generated, accounted = _conservation_totals(net)
        assert generated == accounted

    def test_counts_conserved_with_uplink_tier(self):
        # Churn + routed uplink: a failing head must strand its relay
        # cargo exactly once (uplink_stranded), not lose or double it.
        cfg = NetworkConfig(
            n_nodes=12, protocol=Protocol.CAEM_ADAPTIVE, seed=9
        ).with_traffic(packets_per_second=15.0).with_routing(
            mode="multihop"
        ).with_dynamics(failure_rate_hz=0.03, mean_downtime_s=10.0)
        net = SensorNetwork(cfg)
        net.run_until(60.0)
        # Quiesce relays too: leftovers return to up heads' buffers or
        # strand (the round-teardown path).
        net._teardown_round()
        generated, accounted = _conservation_totals(net)
        assert generated == accounted

    def test_delivered_and_orphaned_disjoint(self):
        cfg = NetworkConfig(
            n_nodes=12, protocol=Protocol.PURE_LEACH, seed=3
        ).with_traffic(packets_per_second=20.0).with_dynamics(
            scripted_failures=((5.03, 1), (11.31, 7),),
        )
        tracer = Tracer()
        net = SensorNetwork(cfg, tracer=tracer)
        delivered_uids = set()
        original = net.stats.on_delivered

        def spy(packets, sender_id, now):
            delivered_uids.update(p.uid for p in packets)
            original(packets, sender_id, now)

        net.stats.on_delivered = spy
        net.run_until(30.0)
        orphan_uids = set()
        for a in tracer.of_kind("node.fail"):
            orphan_uids.update(a.data["uids"])
        assert orphan_uids
        assert not (orphan_uids & delivered_uids)


# ---------------------------------------------------------------------------
# Regime shifts
# ---------------------------------------------------------------------------


class TestRegimeShifts:
    def _running_net(self, **dyn):
        net = SensorNetwork(_cfg(**dyn))
        net.run_until(2.0)
        return net

    def test_shift_moves_every_active_link(self):
        net = self._running_net()
        links = [n.mac.link for n in net.nodes if n.mac.link is not None]
        assert links
        before = [link.mean_snr_db for link in links]
        net._apply_regime_shift(5.0)
        for link, b in zip(links, before):
            assert link.mean_snr_db == pytest.approx(b + 5.0)
        # A second shift applies the delta, not the sum.
        net._apply_regime_shift(2.0)
        for link, b in zip(links, before):
            assert link.mean_snr_db == pytest.approx(b + 2.0)
        assert net.stats.regime_shifts == 2

    def test_links_born_under_regime_inherit_offset(self):
        net = self._running_net()
        net._apply_regime_shift(-6.0)
        net.run_until(25.0)  # at least one round boundary passed
        budget = LinkBudget.from_config(net.cfg.channel)
        fresh = [n for n in net.nodes if n.mac.link is not None]
        assert fresh
        for node in fresh:
            link = node.mac.link
            assert link.mean_snr_db == pytest.approx(
                budget.mean_snr_db(link.distance_m) - 6.0
            )

    def test_stochastic_regime_stream_determinism(self):
        def shifts(seed):
            cfg = NetworkConfig(
                n_nodes=10, protocol=Protocol.PURE_LEACH, seed=seed
            ).with_dynamics(regime_mean_interval_s=5.0, regime_sigma_db=4.0)
            tracer = Tracer()
            net = SensorNetwork(cfg, tracer=tracer)
            net.run_until(60.0)
            return [(a.time, a.data["offset_db"])
                    for a in tracer.of_kind("regime.shift")]

        a, b = shifts(21), shifts(21)
        assert a and a == b
        assert shifts(22) != a

    def test_shift_does_not_touch_channel_streams(self):
        """Shifting a link's mean must not consume link-stream draws:
        the shifted link keeps sampling the identical shadowing/fading
        noise, so same-time queries differ by exactly the offset."""
        from repro.channel import Link
        from repro.config import ChannelConfig

        cfg = ChannelConfig()
        budget = LinkBudget.from_config(cfg)
        plain = Link(35.0, budget, cfg, RngRegistry(5).stream("l"))
        shifted = Link(35.0, budget, cfg, RngRegistry(5).stream("l"))
        shifted.shift_mean_snr_db(10.0)
        for k in range(1, 40):
            t = 0.03 * k
            assert shifted.snr_db(t) - plain.snr_db(t) == pytest.approx(10.0)


# ---------------------------------------------------------------------------
# Heterogeneous batteries and bursty sources
# ---------------------------------------------------------------------------


class TestConstructionAdversity:
    def test_battery_jitter_bounds_and_determinism(self):
        cfg = _cfg(battery_jitter=0.4)
        base = cfg.energy.initial_energy_j
        caps_a = [n.battery.capacity_j for n in SensorNetwork(cfg).nodes]
        caps_b = [n.battery.capacity_j for n in SensorNetwork(cfg).nodes]
        assert caps_a == caps_b
        assert len(set(caps_a)) > 1
        assert all(0.6 * base <= c <= 1.4 * base for c in caps_a)

    def test_bursty_fraction_extremes(self):
        all_bursty = SensorNetwork(_cfg(bursty_fraction=1.0))
        assert all(isinstance(n.source, OnOffSource)
                   for n in all_bursty.nodes)
        # jitter-only dynamics keeps sources Poisson.
        none_bursty = SensorNetwork(_cfg(battery_jitter=0.1))
        assert all(isinstance(n.source, PoissonSource)
                   for n in none_bursty.nodes)

    def test_bursty_pick_is_deterministic(self):
        cfg = _cfg(bursty_fraction=0.5)
        picks_a = [isinstance(n.source, OnOffSource)
                   for n in SensorNetwork(cfg).nodes]
        picks_b = [isinstance(n.source, OnOffSource)
                   for n in SensorNetwork(cfg).nodes]
        assert picks_a == picks_b
        assert any(picks_a) and not all(picks_a)


# ---------------------------------------------------------------------------
# Engine harvest: churn-aware metrics
# ---------------------------------------------------------------------------


class TestEngineHarvest:
    def _run(self, **dyn):
        cfg = NetworkConfig(
            n_nodes=12, protocol=Protocol.PURE_LEACH, seed=3
        ).with_traffic(packets_per_second=15.0).with_dynamics(**dyn)
        return simulate(
            cfg, RunOptions(horizon_s=40.0, sample_interval_s=5.0)
        )

    def test_churn_fields_populated(self):
        run = self._run(failure_rate_hz=0.02, mean_downtime_s=10.0)
        assert run.churn_failures > 0
        assert run.first_failure_s is not None
        assert run.up_counts and len(run.up_counts) == len(run.alive_counts)
        # At some sample, churn had nodes down while batteries held.
        assert any(u < a for u, a in zip(run.up_counts, run.alive_counts))
        assert run.survivor_throughput_bps > 0

    def test_offered_denominator_excludes_orphans(self):
        run = self._run(
            scripted_failures=((5.03, 1), (11.31, 7)),
        )
        assert run.orphaned > 0
        assert run.delivery_rate_offered > run.delivery_rate
        expected = run.total_delivered / (run.generated - run.orphaned)
        assert run.delivery_rate_offered == pytest.approx(expected)

    def test_effective_lifetime_counts_permanent_failures(self):
        # Permanently fail most of the field early: the battery-based
        # lifetime never triggers, the churn-aware one must.
        kills = tuple((4.0 + 0.1 * i, i) for i in range(11))
        run = self._run(scripted_failures=kills)
        assert run.lifetime_s is None
        assert run.lifetime_effective_s is not None
        assert 4.0 <= run.lifetime_effective_s <= 5.2

    def test_survivor_throughput_excludes_down_sources(self):
        run = self._run(scripted_failures=((8.0, 1), (8.0, 2), (8.0, 3)))
        full = self._run()
        assert run.survivor_throughput_bps < full.throughput_bps
        assert full.survivor_throughput_bps == 0.0  # dynamics off: unset


# ---------------------------------------------------------------------------
# The ext-dynamics experiment
# ---------------------------------------------------------------------------


class TestExtDynamicsExperiment:
    def test_registered(self):
        spec = get_experiment("ext-dynamics")
        assert spec.kind == "extension"

    def test_smoke_render_and_store_round_trip(self, tmp_path):
        spec = get_experiment("ext-dynamics")
        fig = spec.run(
            preset="smoke", seeds=(1,), churn_rates_hz=(0.0, 0.01), jobs=1
        )
        assert len(fig.rows) == 6  # 3 protocols x 2 churn rates
        text = fig.render()
        assert "churn_hz" in text and "survivor_kbps" in text
        store = ResultStore(tmp_path / "runs.jsonl")
        store.extend(fig.runs)
        loaded = store.load()
        refig = spec.run(
            preset="smoke", seeds=(1,), churn_rates_hz=(0.0, 0.01),
            runs=loaded,
        )
        assert refig.render() == text

    @pytest.mark.slow
    def test_bit_identical_across_jobs(self):
        spec = get_experiment("ext-dynamics")
        serial = spec.run(preset="smoke", seeds=(1, 2), jobs=1)
        parallel = spec.run(preset="smoke", seeds=(1, 2), jobs=4)
        assert serial.render() == parallel.render()
        for a, b in zip(serial.runs, parallel.runs):
            da, db = dataclasses.asdict(a), dataclasses.asdict(b)
            da.pop("wall_time_s"), db.pop("wall_time_s")
            assert da == db


# ---------------------------------------------------------------------------
# Timeline unit behaviour
# ---------------------------------------------------------------------------


class TestEventTimeline:
    def _timeline(self, cfg_kwargs, n_nodes=4):
        sim = Simulator()
        applied = []
        tl = EventTimeline(
            sim,
            DynamicsConfig(**cfg_kwargs),
            RngRegistry(1),
            n_nodes,
            fail=lambda i: applied.append(("fail", sim.now, i)),
            recover=lambda i: applied.append(("recover", sim.now, i)),
            regime_shift=lambda o: applied.append(("regime", sim.now, o)),
        )
        return sim, tl, applied

    def test_scripted_order(self):
        sim, tl, applied = self._timeline(dict(
            scripted_failures=((2.0, 1), (1.0, 0)),
            scripted_recoveries=((3.0, 0),),
        ))
        tl.start()
        sim.run()
        assert applied == [
            ("fail", 1.0, 0), ("fail", 2.0, 1), ("recover", 3.0, 0),
        ]

    def test_start_is_idempotent(self):
        sim, tl, applied = self._timeline(dict(
            scripted_failures=((1.0, 0),),
        ))
        tl.start()
        tl.start()
        sim.run()
        assert len(applied) == 1

    def test_disabled_schedules_nothing(self):
        sim, tl, applied = self._timeline({})
        tl.start()
        sim.run()
        assert applied == [] and sim.now == 0.0

    def test_stochastic_chain_alternates_per_node(self):
        sim, tl, applied = self._timeline(dict(
            failure_rate_hz=0.05, mean_downtime_s=5.0
        ))
        tl.start()
        sim.run_until(400.0)
        for node in range(4):
            kinds = [k for k, _, i in applied if i == node]
            assert kinds, "every node's chain fires eventually"
            # Strict fail/recover alternation, starting with a failure.
            assert kinds == ["fail", "recover"] * (len(kinds) // 2) + (
                ["fail"] if len(kinds) % 2 else []
            )
