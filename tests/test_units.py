"""Unit-conversion helpers."""

import math

import numpy as np
import pytest

from repro.units import (
    db_to_linear,
    dbm_to_watts,
    joules,
    kbits,
    kbps,
    linear_to_db,
    mbps,
    microseconds,
    millijoules,
    milliseconds,
    ms,
    seconds,
    us,
    watts_to_dbm,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_three_db_doubles(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_negative_db(self):
        assert db_to_linear(-10.0) == pytest.approx(0.1)

    def test_roundtrip_scalar(self):
        for x in (0.01, 1.0, 37.5, 1e6):
            assert db_to_linear(linear_to_db(x)) == pytest.approx(x)

    def test_roundtrip_array(self):
        x = np.array([0.5, 1.0, 2.0, 100.0])
        out = db_to_linear(linear_to_db(x))
        np.testing.assert_allclose(out, x)

    def test_linear_to_db_zero_is_neg_inf(self):
        assert linear_to_db(0.0) == -math.inf

    def test_linear_to_db_negative_is_neg_inf(self):
        assert linear_to_db(-1.0) == -math.inf

    def test_array_zero_maps_to_neg_inf(self):
        out = linear_to_db(np.array([0.0, 1.0]))
        assert out[0] == -math.inf and out[1] == pytest.approx(0.0)

    def test_array_type_preserved(self):
        assert isinstance(db_to_linear(np.array([1.0, 2.0])), np.ndarray)

    def test_scalar_returns_python_float(self):
        assert isinstance(db_to_linear(3.0), float)


class TestPowerConversions:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_roundtrip(self):
        for w in (1e-6, 1e-3, 0.66, 10.0):
            assert dbm_to_watts(watts_to_dbm(w)) == pytest.approx(w)

    def test_paper_tx_power(self):
        # Table II: 0.66 W ~= 28.2 dBm.
        assert watts_to_dbm(0.66) == pytest.approx(28.195, abs=0.01)


class TestTimeAndDataHelpers:
    def test_seconds_identity(self):
        assert seconds(5) == 5.0

    def test_milliseconds(self):
        assert milliseconds(50) == pytest.approx(0.05)
        assert ms(50) == milliseconds(50)

    def test_microseconds(self):
        assert microseconds(20) == pytest.approx(2e-5)
        assert us(20) == microseconds(20)

    def test_rates(self):
        assert kbps(250) == 250e3
        assert mbps(2) == 2e6

    def test_sizes(self):
        assert kbits(2) == 2000.0

    def test_energy(self):
        assert joules(10) == 10.0
        assert millijoules(5) == pytest.approx(5e-3)
