"""CAEM sensor/cluster-head MAC behaviour (single-cluster cell)."""

import pytest

from repro.config import MacConfig, Protocol
from repro.mac import SensorMacState

from mac_harness import feed_packets, make_cell, start_cell


class TestHappyPath:
    def test_single_burst_delivered(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        assert len(cell.delivered) == 3
        assert cell.macs[0].stats.bursts_completed == 1
        assert cell.macs[0].state is SensorMacState.SLEEP
        assert len(cell.buffers[0]) == 0

    def test_burst_capped_at_max(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 20)
        cell.sim.run_until(3.0)
        # 20 packets over bursts of <= 8: at least 3 bursts.
        assert len(cell.delivered) == 20
        assert cell.macs[0].stats.bursts_completed >= 3

    def test_delivery_is_fifo(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 10)
        cell.sim.run_until(3.0)
        uids = [p.uid for p, _, _ in cell.delivered]
        assert uids == sorted(uids)

    def test_waits_for_sensing_delay(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        # First idle pulse arrives ~0.5 ms after attach (CH startup), well
        # inside the 8 ms sensing delay -> the burst must start only after
        # the second pulse (~50 ms).
        starts = cell.tracer.of_kind("mac.burst_start")
        assert starts and starts[0].time >= 0.05

    def test_tx_energy_accounted(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        meter = cell.meters[0]
        # Burst: (3*2000 + 128) bits at 2 Mbps = 3.064 ms at 0.66 W.
        assert meter.by_cause["data_tx"] == pytest.approx(0.66 * 3.064e-3, rel=1e-6)
        assert meter.by_cause["startup"] == pytest.approx(0.66 * 20e-6, rel=1e-6)
        assert meter.by_cause["tone_rx"] > 0.0

    def test_ch_rx_energy_accounted(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        assert cell.ch_meter.by_cause["data_rx"] == pytest.approx(
            0.305 * 3.064e-3, rel=1e-6
        )
        assert cell.ch_meter.by_cause["tone_tx"] > 0.0
        assert cell.ch_meter.by_cause["ch_idle"] > 0.0

    def test_mode_selection_recorded(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        start = cell.tracer.of_kind("mac.burst_start")[0]
        assert start.data["mode"] == 4  # 30 dB -> 2 Mbps

    def test_low_snr_uses_robust_mode(self):
        cell = make_cell(n_sensors=1, snr_db=5.0)  # supports mode 2 only
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        start = cell.tracer.of_kind("mac.burst_start")[0]
        assert start.data["mode"] == 2


class TestQualityGate:
    def test_scheme2_defers_below_threshold(self):
        cell = make_cell(n_sensors=1, protocol=Protocol.CAEM_FIXED, snr_db=15.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(2.0)
        assert len(cell.delivered) == 0
        assert cell.macs[0].stats.quality_deferrals > 10
        assert cell.macs[0].state is SensorMacState.MONITOR

    def test_scheme2_transmits_when_channel_recovers(self):
        cell = make_cell(n_sensors=1, protocol=Protocol.CAEM_FIXED, snr_db=15.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(2.0)
        cell.links[0].snr = 25.0  # channel recovers above 19.5 dB
        cell.sim.run_until(3.0)
        assert len(cell.delivered) == 3

    def test_pure_leach_ignores_quality(self):
        cell = make_cell(n_sensors=1, protocol=Protocol.PURE_LEACH, snr_db=15.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        assert len(cell.delivered) == 3
        assert cell.macs[0].stats.quality_deferrals == 0

    def test_outage_fallback_loses_packets(self):
        # Pure LEACH transmits even at -5 dB; mode 1 PER ~ 1 -> all lost.
        cell = make_cell(n_sensors=1, protocol=Protocol.PURE_LEACH, snr_db=-5.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(2.0)
        assert len(cell.delivered) == 0
        assert len(cell.lost) == 3
        # Energy was burned for nothing - the paper's waste scenario.
        assert cell.meters[0].by_cause["data_tx"] > 0.0

    def test_scheme2_no_energy_wasted_in_bad_channel(self):
        cell = make_cell(n_sensors=1, protocol=Protocol.CAEM_FIXED, snr_db=-5.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(2.0)
        assert "data_tx" not in cell.meters[0].by_cause
        assert len(cell.lost) == 0


class TestCollisions:
    def test_two_contenders_eventually_deliver(self):
        cell = make_cell(n_sensors=2, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        feed_packets(cell, 1, 3)
        cell.sim.run_until(3.0)
        assert len(cell.delivered) == 6
        senders = {s for _, s, _ in cell.delivered}
        assert senders == {0, 1}

    def test_collisions_detected_and_aborted(self):
        cell = make_cell(n_sensors=2, snr_db=30.0, seed=3)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        feed_packets(cell, 1, 3)
        cell.sim.run_until(3.0)
        total_aborts = sum(m.stats.bursts_aborted for m in cell.macs)
        if cell.channel.total_collisions:
            assert total_aborts >= 1
        # Nothing may be delivered out of a corrupted overlap.
        assert len(cell.delivered) == 6

    def test_retry_exhaustion_drops(self):
        # max_retries=0: a single collision exhausts the budget.
        cell = make_cell(
            n_sensors=2, snr_db=30.0,
            mac_cfg=MacConfig(max_retries=0),
        )
        start_cell(cell)
        feed_packets(cell, 0, 3)
        feed_packets(cell, 1, 3)
        cell.sim.run_until(3.0)
        dropped = sum(m.stats.packets_dropped_retry for m in cell.macs)
        delivered = len(cell.delivered)
        assert dropped + delivered == 6
        if cell.channel.total_collisions:
            assert dropped > 0

    def test_backoff_cancelled_when_channel_taken(self):
        cell = make_cell(n_sensors=2, snr_db=30.0, seed=5)
        start_cell(cell)
        # Sensor 0 gets a long burst; sensor 1 contends mid-burst.
        feed_packets(cell, 0, 8)
        cell.sim.run_until(0.055)  # sensor 0 on the air
        feed_packets(cell, 1, 3)
        cell.sim.run_until(3.0)
        assert len(cell.delivered) == 11


class TestLatencyEscapeHatch:
    def test_single_packet_sent_after_wait(self):
        cell = make_cell(
            n_sensors=1, snr_db=30.0,
            mac_cfg=MacConfig(min_burst_wait_s=0.2),
        )
        start_cell(cell)
        feed_packets(cell, 0, 1)
        cell.sim.run_until(0.15)
        assert len(cell.delivered) == 0  # below min burst, not stale yet
        cell.sim.run_until(1.0)
        assert len(cell.delivered) == 1

    def test_min_burst_triggers_immediately(self):
        cell = make_cell(
            n_sensors=1, snr_db=30.0,
            mac_cfg=MacConfig(min_burst_wait_s=100.0),
        )
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        assert len(cell.delivered) == 3


class TestDetachAndShutdown:
    def test_detach_mid_burst_recovers_packets(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 8)
        # Stop the round while the burst is (very likely) in the air.
        cell.sim.run_until(0.0525)
        mac = cell.macs[0]
        in_flight = mac.state is SensorMacState.TRANSMIT
        mac.detach()
        assert mac.state is SensorMacState.SLEEP
        assert len(cell.buffers[0]) == 8  # nothing lost
        assert cell.channel.is_idle
        if in_flight:
            assert mac.stats.bursts_attempted == 1

    def test_shutdown_is_permanent(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        cell.macs[0].shutdown()
        feed_packets(cell, 0, 5)
        cell.sim.run_until(1.0)
        assert len(cell.delivered) == 0
        assert cell.macs[0].state is SensorMacState.SLEEP

    def test_ch_stop_silences_cluster(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        cell.sim.run_until(0.2)
        cell.ch_mac.stop()
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        # No tone pulses -> sensor can monitor but never gets the idle cue.
        assert len(cell.delivered) == 0

    def test_reattach_after_detach_works(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        assert len(cell.delivered) == 3
        cell.macs[0].detach()
        from repro.mac import ClusterContext

        ctx = ClusterContext(0, cell.channel, cell.ch_mac.broadcaster, cell.ch_mac)
        cell.macs[0].attach(ctx, cell.links[0])  # re-attach, CH still running
        feed_packets(cell, 0, 3)
        cell.sim.run_until(2.0)
        assert len(cell.delivered) == 6


class TestClusterHeadMac:
    def test_double_start_rejected(self):
        import pytest as _pytest

        cell = make_cell()
        cell.ch_mac.start()
        from repro.errors import MacError

        with _pytest.raises(MacError):
            cell.ch_mac.start()

    def test_stop_idempotent(self):
        cell = make_cell()
        cell.ch_mac.start()
        cell.ch_mac.stop()
        cell.ch_mac.stop()
        assert not cell.ch_mac.is_running

    def test_counters(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 5)
        cell.sim.run_until(1.0)
        assert cell.ch_mac.packets_received == 5
        assert cell.ch_mac.packets_corrupted == 0
