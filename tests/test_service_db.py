"""The service result database: schema, migrations, fidelity, concurrency."""

import json
import sqlite3
import threading

import pytest

from repro.api import ResultStore, RunResult
from repro.errors import ExperimentError
from repro.service import (
    SCHEMA_VERSION,
    DbResultStore,
    ensure_schema,
    open_store,
    parse_predicate,
    query_runs,
    schema_version,
)
from repro.service.migrations import MIGRATIONS


def _run(seed=1, digest="d" * 64, experiment=None, protocol="scheme1",
         load=5.0, **extra):
    extra.setdefault("delivery_rate", 0.9)
    return RunResult(
        protocol=protocol,
        seed=seed,
        load_pps=load,
        horizon_s=30.0,
        n_nodes=12,
        config_digest=digest,
        experiment=experiment,
        sample_times_s=[1.0, 2.0, 3.0],
        mean_energy_j=[0.5, 0.25, 0.125],
        alive_counts=[12, 12, 11],
        generated=100,
        delivered=90,
        **extra,
    )


class TestOpenStore:
    def test_suffix_routing(self, tmp_path):
        assert isinstance(open_store(tmp_path / "a.sqlite"), DbResultStore)
        assert isinstance(open_store(tmp_path / "a.db"), DbResultStore)
        assert isinstance(open_store(tmp_path / "a.jsonl"), ResultStore)
        assert isinstance(open_store(tmp_path / "a.csv"), ResultStore)

    def test_bad_suffix_refused(self, tmp_path):
        with pytest.raises(ExperimentError, match="suffix"):
            DbResultStore(tmp_path / "a.txt")


class TestDbResultStore:
    def test_round_trip_full_fidelity(self, tmp_path):
        store = DbResultStore(tmp_path / "runs.sqlite")
        original = _run(experiment="fig8")
        store.append(original)
        (loaded,) = store.load()
        assert loaded.to_dict() == original.to_dict()
        assert len(store) == 1

    def test_insertion_order_preserved(self, tmp_path):
        store = DbResultStore(tmp_path / "runs.sqlite")
        runs = [_run(seed=s, digest=f"{s:064x}") for s in (3, 1, 2)]
        store.extend(runs)
        assert [r.seed for r in store] == [3, 1, 2]

    def test_query_pushdown_filters(self, tmp_path):
        store = DbResultStore(tmp_path / "runs.sqlite")
        store.extend([
            _run(seed=1, digest="a" * 64, experiment="fig8"),
            _run(seed=2, digest="a" * 64, experiment="fig8"),
            _run(seed=1, digest="b" * 64, experiment="fig10",
                 protocol="pure_leach"),
        ])
        assert len(store.query(experiment="fig8")) == 2
        assert len(store.query(experiment="fig8", seed=2)) == 1
        assert len(store.query(config_digest="b" * 64)) == 1
        assert len(store.query(protocol="pure_leach")) == 1
        assert len(store.query(experiment="nope")) == 0
        assert len(store.query(limit=2)) == 2

    def test_rows_for_digests_reports_sizes(self, tmp_path):
        store = DbResultStore(tmp_path / "runs.sqlite")
        run = _run(digest="a" * 64)
        store.append(run)
        store.append(_run(digest="b" * 64))
        rows = store.rows_for_digests({"a" * 64})
        assert len(rows) == 1
        loaded, nbytes = rows[0]
        assert loaded.config_digest == "a" * 64
        assert nbytes == len(json.dumps(run.to_dict()).encode())
        assert store.rows_for_digests(set()) == []

    def test_import_export_jsonl(self, tmp_path):
        jsonl = ResultStore(tmp_path / "runs.jsonl")
        jsonl.extend([_run(seed=s, digest=f"{s:064x}") for s in (1, 2)])
        db = DbResultStore(tmp_path / "runs.sqlite")
        assert db.import_from(jsonl) == 2
        assert [r.to_dict() for r in db] == [r.to_dict() for r in jsonl]
        out = tmp_path / "export.jsonl"
        assert db.export_to(out) == 2
        assert [r.to_dict() for r in ResultStore(out)] == \
            [r.to_dict() for r in db]

    def test_wal_mode_enabled(self, tmp_path):
        store = DbResultStore(tmp_path / "runs.sqlite")
        store.append(_run())
        conn = sqlite3.connect(str(store.path))
        try:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        finally:
            conn.close()
        assert mode.lower() == "wal"


class TestMigrations:
    def test_fresh_db_is_current(self, tmp_path):
        store = DbResultStore(tmp_path / "runs.sqlite")
        conn = sqlite3.connect(str(store.path))
        try:
            assert schema_version(conn) == SCHEMA_VERSION
        finally:
            conn.close()

    def test_stepwise_upgrade_from_v1(self, tmp_path):
        # Build a version-1 file by hand (what an old build would leave).
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(str(path), isolation_level=None)
        version, statements = MIGRATIONS[0]
        assert version == 1
        for statement in statements:
            conn.execute(statement)
        conn.execute("PRAGMA user_version = 1")
        conn.execute(
            "INSERT INTO runs (experiment, config_digest, seed, protocol,"
            " load_pps, horizon_s, n_nodes, format_version, payload)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            ("fig8", "c" * 64, 1, "scheme1", 5.0, 30.0, 12, 1,
             json.dumps(_run(digest="c" * 64).to_dict())),
        )
        conn.close()
        # Opening with the current build upgrades in place, keeping rows.
        store = DbResultStore(path)
        assert len(store) == 1
        conn = sqlite3.connect(str(path))
        try:
            assert schema_version(conn) == SCHEMA_VERSION
            indexes = {
                row[0] for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='index'"
                )
            }
        finally:
            conn.close()
        assert "idx_runs_digest" in indexes  # migration 2 applied

    def test_newer_schema_refused_loudly(self, tmp_path):
        path = tmp_path / "future.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 7}")
        conn.commit()
        conn.close()
        with pytest.raises(ExperimentError, match="upgrade repro"):
            DbResultStore(path)

    def test_runner_is_idempotent(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        DbResultStore(path)
        conn = sqlite3.connect(str(path), isolation_level=None)
        try:
            ensure_schema(conn)  # second pass: no-op, no error
            assert schema_version(conn) == SCHEMA_VERSION
        finally:
            conn.close()


class TestFormatVersion:
    def test_newer_row_format_refused(self, tmp_path):
        store = DbResultStore(tmp_path / "runs.sqlite")
        store.append(_run())
        conn = sqlite3.connect(str(store.path))
        conn.execute("UPDATE runs SET format_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(ExperimentError, match="format version 99"):
            store.load()


class TestQueryRuns:
    def test_predicates_and_key_filters(self, tmp_path):
        store = DbResultStore(tmp_path / "runs.sqlite")
        store.extend([
            _run(seed=1, digest="a" * 64, experiment="fig8",
                 delivery_rate=0.95),
            _run(seed=2, digest="b" * 64, experiment="fig8",
                 delivery_rate=0.40),
        ])
        rows = query_runs(
            store, experiment="fig8",
            where=[parse_predicate("delivery_rate>0.9")],
        )
        assert [r.seed for r in rows] == [1]
        # Same result off a flat-file store (no pushdown path).
        jsonl = ResultStore(tmp_path / "runs.jsonl")
        store.export_to(jsonl)
        rows2 = query_runs(
            jsonl, experiment="fig8",
            where=[parse_predicate("delivery_rate>0.9")],
        )
        assert [r.to_dict() for r in rows2] == [r.to_dict() for r in rows]

    def test_limit_applies_after_predicates(self, tmp_path):
        store = DbResultStore(tmp_path / "runs.sqlite")
        store.extend([
            _run(seed=s, digest=f"{s:064x}", delivery_rate=0.9 + s / 100)
            for s in range(1, 6)
        ])
        rows = query_runs(
            store, where=[parse_predicate("seed>=2")], limit=2,
        )
        assert [r.seed for r in rows] == [2, 3]


class TestConcurrentAccess:
    def test_wal_reader_sees_consistent_rows_during_writes(self, tmp_path):
        """A reader polling while a writer appends never errors and only
        ever sees fully committed batches (WAL snapshot isolation)."""
        store = DbResultStore(tmp_path / "runs.sqlite")
        batches = 20
        batch_size = 5
        errors = []
        seen_counts = []
        done = threading.Event()

        def reader():
            try:
                while not done.is_set():
                    seen_counts.append(len(store))
            except Exception as exc:  # noqa: BLE001 - reported to assert
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for b in range(batches):
                store.extend([
                    _run(seed=b * batch_size + i,
                         digest=f"{b * batch_size + i:064x}")
                    for i in range(batch_size)
                ])
        finally:
            done.set()
            thread.join(timeout=10.0)
        assert not errors
        # Counts only ever land on committed batch boundaries and grow
        # monotonically (each extend() is one transaction).
        assert all(count % batch_size == 0 for count in seen_counts)
        assert seen_counts == sorted(seen_counts)
        assert len(store) == batches * batch_size


class TestAggregation:
    def _populate(self, store):
        rows = []
        for seed in (1, 2, 3):
            for proto, rate in (("scheme1", 0.9), ("pure_leach", 0.6)):
                rows.append(_run(
                    seed=seed, protocol=proto,
                    digest=f"{proto}-{seed}".ljust(64, "0"),
                    delivery_rate=rate + seed / 100.0,
                    mean_delay_s=0.1 * seed,
                ))
        store.extend(rows)
        return rows

    def test_sql_and_python_paths_agree(self, tmp_path):
        from repro.service import aggregate_runs

        db = DbResultStore(tmp_path / "r.sqlite")
        self._populate(db)
        flat = ResultStore(tmp_path / "r.jsonl")
        flat.extend(db.load())
        for agg in ("mean", "min", "max", "sum"):
            via_sql = aggregate_runs(
                db, ["protocol"], agg=agg,
                metrics=["delivery_rate", "mean_delay_s"],
            )
            via_python = aggregate_runs(
                flat, ["protocol"], agg=agg,
                metrics=["delivery_rate", "mean_delay_s"],
            )
            assert len(via_sql) == len(via_python) == 2
            for a, b in zip(via_sql, via_python):
                assert a["protocol"] == b["protocol"]
                assert a["n"] == b["n"] == 3
                assert a["delivery_rate"] == pytest.approx(
                    b["delivery_rate"]
                )
                assert a["mean_delay_s"] == pytest.approx(b["mean_delay_s"])

    def test_mean_over_seeds(self, tmp_path):
        from repro.service import aggregate_runs

        db = DbResultStore(tmp_path / "r.sqlite")
        self._populate(db)
        (grp,) = aggregate_runs(
            db, ["protocol"], agg="mean", metrics=["delivery_rate"],
            protocol="scheme1",
        )
        assert grp["delivery_rate"] == pytest.approx(0.92)

    def test_none_metrics_skipped_not_zeroed(self, tmp_path):
        from repro.service import aggregate_runs

        db = DbResultStore(tmp_path / "r.sqlite")
        db.extend([
            _run(seed=1, lifetime_s=None),
            _run(seed=2, digest="e" * 64, lifetime_s=30.0),
        ])
        (grp,) = aggregate_runs(
            db, ["protocol"], agg="mean", metrics=["lifetime_s"]
        )
        # SQL AVG and the Python fallback both skip NULL/None.
        assert grp["lifetime_s"] == pytest.approx(30.0)
        assert grp["n"] == 2

    def test_where_predicates_force_python_path(self, tmp_path):
        from repro.service import aggregate_runs

        db = DbResultStore(tmp_path / "r.sqlite")
        self._populate(db)
        groups = aggregate_runs(
            db, ["protocol"], agg="mean", metrics=["delivery_rate"],
            where=[parse_predicate("delivery_rate>0.8")],
        )
        (grp,) = groups
        assert grp["protocol"] == "scheme1"
        assert grp["n"] == 3

    def test_group_aliases_and_validation(self, tmp_path):
        from repro.service import aggregate_runs

        db = DbResultStore(tmp_path / "r.sqlite")
        self._populate(db)
        groups = aggregate_runs(
            db, ["load"], agg="mean", metrics=["delivery_rate"]
        )
        assert groups[0]["load_pps"] == 5.0
        with pytest.raises(ExperimentError, match="group"):
            aggregate_runs(db, ["payload"], agg="mean")
        with pytest.raises(ExperimentError, match="aggregate"):
            aggregate_runs(db, ["protocol"], agg="median")
        with pytest.raises(ExperimentError, match="unknown RunResult"):
            aggregate_runs(db, ["protocol"], metrics=["nope"])


class TestGc:
    def test_keeps_latest_generation_per_cell(self, tmp_path):
        from repro.service import collect_garbage

        db = DbResultStore(tmp_path / "r.sqlite")
        old = _run(seed=1, delivery_rate=0.1)
        new = _run(seed=1, delivery_rate=0.9)
        other = _run(seed=2, digest="e" * 64)
        db.extend([old, new, other])
        report = collect_garbage(db, keep_latest=1)
        assert report["deleted"] == 1
        assert report["groups"] == 2
        kept = db.load()
        assert len(kept) == 2
        # The *newest* generation of the duplicated cell survives.
        assert {r.delivery_rate for r in kept} == {0.9, other.delivery_rate}

    def test_distinct_cells_never_evicted(self, tmp_path):
        from repro.service import collect_garbage

        db = DbResultStore(tmp_path / "r.sqlite")
        db.extend([
            _run(seed=s, digest=f"{s:064x}", experiment=exp)
            for s in (1, 2) for exp in (None, "fig8")
        ])
        report = collect_garbage(db, keep_latest=1)
        assert report["deleted"] == 0
        assert len(db) == 4

    def test_keep_latest_k_and_dry_run(self, tmp_path):
        from repro.service import collect_garbage

        db = DbResultStore(tmp_path / "r.sqlite")
        db.extend([_run(seed=1, delivery_rate=i / 10.0) for i in range(5)])
        dry = collect_garbage(db, keep_latest=2, dry_run=True)
        assert dry["deleted"] == 3 and len(db) == 5
        assert dry["bytes_after"] == dry["bytes_before"]
        wet = collect_garbage(db, keep_latest=2)
        assert wet["deleted"] == 3 and len(db) == 2
        assert [r.delivery_rate for r in db.load()] == [0.3, 0.4]

    def test_reclaims_file_bytes(self, tmp_path):
        from repro.service import collect_garbage

        db = DbResultStore(tmp_path / "r.sqlite")
        db.extend([_run(seed=1) for _ in range(200)])
        report = collect_garbage(db, keep_latest=1)
        assert report["deleted"] == 199
        assert report["reclaimed_bytes"] > 0
        assert report["bytes_after"] < report["bytes_before"]

    def test_guards(self, tmp_path):
        from repro.service import collect_garbage

        with pytest.raises(ExperimentError, match="keep-latest"):
            collect_garbage(tmp_path / "r.sqlite", keep_latest=0)
        with pytest.raises(ExperimentError, match="no such"):
            collect_garbage(tmp_path / "missing.sqlite")
