"""Service-tier robustness: job abort semantics and HTTP hardening.

The job manager must never strand a long-poller (shutdown aborts queued
and running jobs and wakes their waiters), supervised jobs must land in
an explicit ``incomplete`` status with a quarantine report, and the HTTP
front must answer hostile input with structured JSON errors — 413 for
oversized bodies, 400 for malformed ones, 500 (no traceback) for bugs.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import registry
from repro.service import DbResultStore, JobManager, build_server
from repro.service.faults import FaultPlan, inject_faults

GRID_SPEC = {
    "axes": {"protocol": ["pure_leach"]},
    "preset": "smoke",
    "horizon_s": 5.0,
    "sample_interval_s": 1.0,
    "seeds": [1],
}


@pytest.fixture()
def server(tmp_path):
    srv = build_server(tmp_path / "service.sqlite", port=0, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.close()
        thread.join(timeout=5.0)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _post_raw(server, body, headers=None):
    request = urllib.request.Request(
        _url(server, "/campaigns"),
        data=body,
        headers=headers or {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _raw_http(server, request_bytes):
    """Send a hand-built HTTP request; return (status, parsed JSON body).

    Lets a test lie in the headers (a huge or garbage Content-Length)
    without a client library 'helpfully' fixing it.
    """
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(request_bytes)
        sock.settimeout(10)
        data = b""
        while b"\r\n\r\n" not in data:
            data += sock.recv(4096)
        head, _, body = data.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value)
        while len(body) < length:
            body += sock.recv(4096)
        return status, json.loads(body)


class TestHttpHardening:
    def test_oversized_body_is_413(self, server):
        status, body = _raw_http(
            server,
            b"POST /campaigns HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 10000000\r\n\r\n",
        )
        assert status == 413
        assert "too large" in body["error"]

    def test_malformed_content_length_is_400(self, server):
        status, body = _raw_http(
            server,
            b"POST /campaigns HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: banana\r\n\r\n",
        )
        assert status == 400
        assert "Content-Length" in body["error"]

    def test_malformed_json_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(server, b"{not json")
        assert excinfo.value.code == 400
        assert "not JSON" in json.loads(excinfo.value.read())["error"]

    def test_non_object_json_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(server, b"[1, 2, 3]")
        assert excinfo.value.code == 400
        assert "JSON object" in json.loads(excinfo.value.read())["error"]

    def test_empty_body_is_400(self, server):
        status, body = _raw_http(
            server, b"POST /campaigns HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        assert status == 400
        assert "body required" in body["error"]

    def test_internal_error_is_500_json_without_traceback(
        self, server, monkeypatch
    ):
        def broken():
            raise RuntimeError("wires crossed")

        monkeypatch.setattr(server.manager, "list", broken)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            with urllib.request.urlopen(_url(server, "/campaigns"),
                                        timeout=30):
                pass
        assert excinfo.value.code == 500
        body = excinfo.value.read().decode()
        payload = json.loads(body)
        assert payload["error"] == "internal error: RuntimeError: wires crossed"
        assert "Traceback" not in body


class TestJobAbortSemantics:
    def test_shutdown_aborts_queued_and_running_and_wakes_waiters(
        self, tmp_path, monkeypatch
    ):
        release = threading.Event()

        def hang(preset="smoke", seeds=(1,), jobs=1):
            release.wait(timeout=30.0)
            raise RuntimeError("released late")

        monkeypatch.setitem(
            registry._REGISTRY,
            "svc-hang",
            registry.ExperimentSpec(
                name="svc-hang", fn=hang, kind="extension"
            ),
        )
        manager = JobManager(DbResultStore(tmp_path / "db.sqlite"), workers=1)
        try:
            running = manager.submit({"experiment": "svc-hang"})
            queued = manager.submit(GRID_SPEC)
            deadline = time.monotonic() + 10.0
            while running.status != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)

            polled = {}

            def long_poll():
                polled["events"] = queued.wait_events(0, timeout=60.0)

            waiter = threading.Thread(target=long_poll, daemon=True)
            waiter.start()

            manager.shutdown()  # joins time out on the hung worker

            assert queued.status == "aborted"
            assert "before the job started" in queued.error
            assert running.status == "aborted"
            assert "while the job was running" in running.error
            # The long-poller woke with the terminal event, not a strand.
            waiter.join(timeout=10.0)
            assert not waiter.is_alive()
            assert [e["type"] for e in polled["events"]] == ["aborted"]
            # A later terminal transition must not overwrite the abort.
            release.set()
            time.sleep(0.2)
            assert running.status == "aborted"
        finally:
            release.set()

    def test_shutdown_with_idle_manager_is_clean(self, tmp_path):
        manager = JobManager(DbResultStore(tmp_path / "db.sqlite"))
        done = manager.submit(GRID_SPEC)
        assert done.wait(timeout=120.0)
        manager.shutdown()
        assert done.status == "done"  # terminal states survive shutdown


class TestSupervisedJobs:
    def test_crashing_job_lands_incomplete_with_report(self, tmp_path):
        spec = dict(
            GRID_SPEC, supervise=True, max_attempts=2, horizon_s=4.0
        )
        manager = JobManager(DbResultStore(tmp_path / "db.sqlite"))
        try:
            with inject_faults(FaultPlan(seed=1, worker_crash_rate=1.0)):
                record = manager.submit(spec)
                assert record.wait(timeout=240.0)
            assert record.status == "incomplete"
            assert record.quarantined == 1
            assert record.retries == 1  # attempt 2 of max_attempts=2
            assert record.report is not None
            assert record.report["incomplete"] is True
            assert record.report["quarantined_cells"]
            snap = record.snapshot()
            assert snap["status"] == "incomplete"
            assert snap["quarantined"] == 1
            assert snap["retries"] == 1
            assert snap["report"]["quarantined"] == 1
            assert record.events[-1]["type"] == "incomplete"
        finally:
            manager.shutdown()

    def test_supervised_job_completes_clean_without_faults(self, tmp_path):
        spec = dict(GRID_SPEC, supervise=True)
        manager = JobManager(DbResultStore(tmp_path / "db.sqlite"))
        try:
            record = manager.submit(spec)
            assert record.wait(timeout=240.0)
            assert record.status == "done", record.error
            assert record.quarantined == 0
            assert record.completed_cells == 1
        finally:
            manager.shutdown()

    def test_bad_supervision_settings_fail_at_submit(self, tmp_path):
        from repro.errors import ExperimentError

        manager = JobManager(DbResultStore(tmp_path / "db.sqlite"))
        try:
            with pytest.raises(ExperimentError, match="supervision"):
                manager.submit(dict(GRID_SPEC, cell_timeout_s="soon"))
            with pytest.raises(ExperimentError):
                manager.submit(dict(GRID_SPEC, supervise=True,
                                    max_attempts=0))
            assert manager.list() == []
        finally:
            manager.shutdown()
