"""Transmission policies: pure LEACH, Scheme 2, and the Scheme 1 controller."""

import math

import pytest

from repro.config import PhyConfig, PolicyConfig, Protocol
from repro.errors import ConfigError, PhyError
from repro.phy import AbicmTable
from repro.policy import (
    AdaptiveThresholdPolicy,
    AlwaysTransmitPolicy,
    FixedThresholdPolicy,
    ThresholdLadder,
    make_policy,
)


@pytest.fixture()
def ladder():
    return ThresholdLadder(AbicmTable.from_config(PhyConfig()))


class TestThresholdLadder:
    def test_four_classes(self, ladder):
        assert ladder.n_classes == len(ladder) == 4
        assert ladder.lowest_class == 0 and ladder.highest_class == 3

    def test_snr_ascending(self, ladder):
        snrs = [ladder.snr_db(k) for k in range(4)]
        assert snrs == sorted(snrs)

    def test_rates_match_modes(self, ladder):
        assert ladder.rate_bps(0) == 250e3
        assert ladder.rate_bps(3) == 2e6

    def test_clamp(self, ladder):
        assert ladder.clamp(-3) == 0
        assert ladder.clamp(9) == 3
        assert ladder.clamp(2) == 2

    def test_out_of_range(self, ladder):
        with pytest.raises(PhyError):
            ladder.snr_db(4)
        with pytest.raises(PhyError):
            ladder.rate_bps(-1)


class TestAlwaysTransmit:
    def test_allows_everything(self):
        p = AlwaysTransmitPolicy()
        for snr in (-50.0, 0.0, 40.0):
            assert p.allows(snr)

    def test_threshold_is_neg_inf(self):
        p = AlwaysTransmitPolicy()
        assert p.threshold_db() == -math.inf
        assert p.threshold_class() is None

    def test_observe_hooks_are_noops(self):
        p = AlwaysTransmitPolicy()
        p.observe_arrival(10, 1.0)
        p.observe_service(5, 2.0)
        p.reset()


class TestFixedThreshold:
    def test_defaults_to_highest(self, ladder):
        p = FixedThresholdPolicy(ladder)
        assert p.threshold_class() == 3
        assert p.threshold_db() == ladder.snr_db(3)

    def test_gates_on_threshold(self, ladder):
        p = FixedThresholdPolicy(ladder)
        th = ladder.snr_db(3)
        assert p.allows(th) and p.allows(th + 5)
        assert not p.allows(th - 0.01)

    def test_custom_class(self, ladder):
        p = FixedThresholdPolicy(ladder, klass=1)
        assert p.threshold_db() == ladder.snr_db(1)

    def test_invalid_class(self, ladder):
        with pytest.raises(ConfigError):
            FixedThresholdPolicy(ladder, klass=7)


class TestAdaptiveController:
    """The Fig. 6 pseudo-code, step by step."""

    def _policy(self, ladder, **kw):
        changes = []
        p = AdaptiveThresholdPolicy(
            ladder,
            PolicyConfig(**kw),
            on_change=lambda now, old, new: changes.append((old, new)),
        )
        return p, changes

    def _feed(self, policy, queue_lengths, start=0.0):
        """Feed one arrival per queue-length value."""
        for i, q in enumerate(queue_lengths):
            policy.observe_arrival(q, start + 0.01 * i)

    def test_starts_at_highest_class(self, ladder):
        p, _ = self._policy(ladder)
        assert p.threshold_class() == 3

    def test_not_armed_below_qstart(self, ladder):
        p, changes = self._policy(ladder)
        # Queue stays small: 10 samples (50 arrivals), never arms.
        self._feed(p, [3] * 50)
        assert not p.is_armed and p.threshold_class() == 3 and changes == []

    def test_arms_at_qstart(self, ladder):
        p, _ = self._policy(ladder)
        self._feed(p, [16] * 5)  # first sample sees q=16 >= 15
        assert p.is_armed

    def test_growing_queue_lowers_one_class_per_sample(self, ladder):
        p, changes = self._policy(ladder)
        # Samples at arrivals 5,10,15,...: queue 16,18,20,... all growing.
        self._feed(p, [16] * 5 + [18] * 5 + [20] * 5 + [22] * 5)
        # First sample arms (no deltaV yet); next three lower 3->2->1->0.
        assert p.threshold_class() == 0
        assert changes == [(3, 2), (2, 1), (1, 0)]

    def test_class_saturates_at_lowest(self, ladder):
        p, _ = self._policy(ladder)
        self._feed(p, [20] * 5 + [22] * 5 + [24] * 5 + [26] * 5 + [28] * 5 + [30] * 5)
        assert p.threshold_class() == 0  # clamped, no underflow

    def test_equal_samples_count_as_growth(self, ladder):
        # Paper: "if deltaV >= 0 ... lower the transmission threshold".
        p, changes = self._policy(ladder)
        self._feed(p, [16] * 10)
        assert changes == [(3, 2)]

    def test_draining_queue_snaps_to_highest(self, ladder):
        p, changes = self._policy(ladder)
        self._feed(p, [16] * 5 + [20] * 5 + [24] * 5)  # lowered twice -> class 1
        assert p.threshold_class() == 1
        self._feed(p, [18] * 5)  # deltaV < 0, still >= Q_start
        assert p.threshold_class() == 3
        assert changes[-1] == (1, 3)

    def test_drain_below_qstart_disarms_and_resets(self, ladder):
        p, _ = self._policy(ladder)
        self._feed(p, [16] * 5 + [20] * 5)
        assert p.is_armed and p.threshold_class() == 2
        self._feed(p, [4] * 5)
        assert not p.is_armed and p.threshold_class() == 3

    def test_sampling_interval_respected(self, ladder):
        p, _ = self._policy(ladder)
        self._feed(p, [20] * 4)  # only 4 arrivals: no sample yet
        assert p.samples_taken == 0 and not p.is_armed
        self._feed(p, [20])
        assert p.samples_taken == 1

    def test_custom_interval(self, ladder):
        p, _ = self._policy(ladder, sample_interval_packets=2)
        self._feed(p, [20, 20])
        assert p.samples_taken == 1

    def test_allows_follows_current_class(self, ladder):
        p, _ = self._policy(ladder)
        high = ladder.snr_db(3)
        low = ladder.snr_db(0)
        assert not p.allows(low + 0.1)
        self._feed(p, [16] * 5 + [18] * 5 + [20] * 5 + [22] * 5)  # down to class 0
        assert p.allows(low + 0.1)
        assert p.threshold_db() == ladder.snr_db(0) < high

    def test_reset_restores_initial(self, ladder):
        p, _ = self._policy(ladder)
        self._feed(p, [16] * 5 + [20] * 5)
        p.reset()
        assert p.threshold_class() == 3 and not p.is_armed
        assert p._last_sample is None

    def test_counters(self, ladder):
        p, _ = self._policy(ladder)
        self._feed(p, [16] * 5 + [20] * 5 + [24] * 5 + [18] * 5)
        assert p.lowers == 2 and p.raises == 1

    def test_initial_class_override(self, ladder):
        p = AdaptiveThresholdPolicy(ladder, PolicyConfig(initial_class=1))
        assert p.threshold_class() == 1

    def test_bad_initial_class(self, ladder):
        with pytest.raises(ConfigError):
            AdaptiveThresholdPolicy(ladder, PolicyConfig(initial_class=9))

    def test_negative_queue_rejected(self, ladder):
        p, _ = self._policy(ladder)
        with pytest.raises(ConfigError):
            p.observe_arrival(-1, 0.0)


class TestFactory:
    def test_dispatch(self, ladder):
        assert isinstance(
            make_policy(Protocol.PURE_LEACH, ladder), AlwaysTransmitPolicy
        )
        assert isinstance(
            make_policy(Protocol.CAEM_FIXED, ladder), FixedThresholdPolicy
        )
        assert isinstance(
            make_policy(Protocol.CAEM_ADAPTIVE, ladder), AdaptiveThresholdPolicy
        )

    def test_names(self, ladder):
        assert make_policy(Protocol.PURE_LEACH, ladder).name == "pure_leach"
        assert make_policy(Protocol.CAEM_FIXED, ladder).name == "scheme2"
        assert make_policy(Protocol.CAEM_ADAPTIVE, ladder).name == "scheme1"
