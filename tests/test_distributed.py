"""Distributed execution: lease board, loopback workers, chaos, server.

The distributed backend's whole promise is *indistinguishability*: any
worker count, any crash pattern, the campaign's output is byte-identical
to a serial run.  These tests exercise the lease state machine directly,
then the full HTTP loop with in-thread and subprocess workers — including
a SIGKILLed worker mid-campaign — and the campaign server's distributed
mode (shutdown lease release, overlap dedup, the /agg endpoint).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.api import Campaign, Scenario
from repro.config import Protocol
from repro.errors import ExperimentError
from repro.exec import ExecutorSpec, LeaseBoard, get_executor
from repro.exec.board import DONE, LEASED, PENDING, QUARANTINED
from repro.exec.worker import run_worker

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _campaign(loads=(5.0,), seeds=(1,)):
    base = Scenario.from_preset("smoke").with_runtime(
        horizon_s=2.0, sample_interval_s=1.0
    )
    return (
        Campaign(base, name="dist")
        .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_FIXED],
              load_pps=list(loads))
        .seeds(list(seeds))
    )


def _norm(runs):
    return [{**r.to_dict(), "wall_time_s": 0} for r in runs]


def _wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestLeaseBoard:
    def test_lease_is_fifo_and_counts_an_attempt(self):
        board = LeaseBoard(lease_timeout_s=30.0)
        board.submit(("a",), {"cell": 1}, describe="first")
        board.submit(("b",), {"cell": 2}, describe="second")
        lease = board.lease("w1")
        assert lease["describe"] == "first"
        assert lease["attempt"] == 1
        assert board.counts() == {
            PENDING: 1, LEASED: 1, DONE: 0, QUARANTINED: 0,
        }

    def test_submit_dedups_by_key_and_widens_attempts(self):
        board = LeaseBoard()
        first, shared = board.submit(("k",), {}, max_attempts=2)
        assert not shared
        second, shared = board.submit(("k",), {}, max_attempts=5)
        assert shared and second is first
        assert first.refs == 2
        assert first.max_attempts == 5
        # Only one lease comes out of the two submits.
        assert board.lease("w")["key"] == ["k"]
        assert board.lease("w") is None

    def test_expired_lease_requeues_with_a_failed_attempt(self):
        board = LeaseBoard(lease_timeout_s=0.05)
        item, _ = board.submit(("k",), {})
        board.lease("w1")
        time.sleep(0.1)
        board.sweep()
        assert item.status == PENDING
        assert item.attempts == 1
        assert "missed its heartbeat" in item.error
        # The next worker steals it; attempt counter keeps growing.
        assert board.lease("w2")["attempt"] == 2

    def test_heartbeat_keeps_a_lease_alive(self):
        board = LeaseBoard(lease_timeout_s=0.2)
        item, _ = board.submit(("k",), {})
        board.lease("w1")
        for _ in range(4):
            time.sleep(0.1)
            assert board.heartbeat("w1") == 1
        board.sweep()
        assert item.status == LEASED

    def test_attempts_exhausted_quarantines(self):
        board = LeaseBoard()
        item, _ = board.submit(("k",), {}, max_attempts=2)
        for n in (1, 2):
            lease = board.lease("w")
            assert lease["attempt"] == n
            board.fail(lease["lease_id"], f"boom {n}")
        assert item.status == QUARANTINED
        assert item.error == "boom 2"
        assert board.lease("w") is None

    def test_complete_first_wins(self):
        board = LeaseBoard()
        item, _ = board.submit(("k",), {})
        lease = board.lease("w1")
        assert board.complete(lease["lease_id"], {"v": 1})
        assert not board.complete(lease["lease_id"], {"v": 2})
        assert item.result == {"v": 1}

    def test_late_result_from_an_expired_lease_still_lands(self):
        board = LeaseBoard(lease_timeout_s=0.05)
        item, _ = board.submit(("k",), {})
        lease = board.lease("w-slow")
        time.sleep(0.1)
        board.sweep()  # expired → re-queued
        assert item.status == PENDING
        # The slow worker finishes anyway: deterministic work, take it.
        assert board.complete(lease["lease_id"], {"v": 1})
        assert item.status == DONE
        assert board.lease("w2") is None  # pulled back off the queue

    def test_release_all_refunds_the_attempt(self):
        board = LeaseBoard()
        item, _ = board.submit(("k",), {})
        board.lease("w1")
        assert item.attempts == 1
        assert board.release_all() == 1
        assert item.status == PENDING
        assert item.attempts == 0  # shutdown is not the cell's fault
        assert item.worker is None

    def test_retire_gcs_settled_unreferenced_items(self):
        board = LeaseBoard()
        item, _ = board.submit(("k",), {})
        lease = board.lease("w")
        board.complete(lease["lease_id"], {})
        board.retire(item)
        # Gone: a fresh submit of the key starts over.
        fresh, shared = board.submit(("k",), {})
        assert not shared and fresh is not item


class TestDistributedExecutor:
    """Full loop over loopback HTTP with in-thread workers."""

    def _run_with_workers(self, camp, n_workers=2, spec="distributed:lease=10"):
        executor = get_executor(ExecutorSpec.parse(spec))
        executor._ensure_server()
        stop = threading.Event()
        threads = [
            threading.Thread(
                target=run_worker,
                kwargs=dict(connect=executor.url, worker_id=f"w{i}",
                            stop=stop, poll_s=0.05),
                daemon=True,
            )
            for i in range(n_workers)
        ]
        for thread in threads:
            thread.start()
        try:
            return camp.run(executor=executor)
        finally:
            stop.set()
            executor.close()
            for thread in threads:
                thread.join(timeout=10)

    def test_two_workers_byte_identical_to_serial(self):
        camp = _campaign(loads=(5.0, 10.0))
        serial = camp.run()
        dist = self._run_with_workers(camp, n_workers=2)
        assert _norm(dist.runs) == _norm(serial.runs)

    def test_store_receives_results_in_grid_order(self):
        camp = _campaign(loads=(5.0, 10.0))
        collected = []

        class _Collector:
            def append(self, run):
                collected.append(run)

        executor = get_executor("distributed:lease=10")
        executor._ensure_server()
        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(connect=executor.url, stop=stop, poll_s=0.05),
            daemon=True,
        )
        worker.start()
        try:
            from repro.api.campaign import run_scenarios

            scenarios = camp.scenarios()
            results = run_scenarios(
                scenarios, store=_Collector(), executor=executor
            )
        finally:
            stop.set()
            executor.close()
            worker.join(timeout=10)
        # The write-behind flusher preserves the serial on-store order.
        assert [id(r) for r in collected] == [id(r) for r in results]

    def test_concurrent_campaigns_share_cells(self):
        """Two overlapping campaigns on one board: shared cells simulate
        once — the lease-time dedup the coordinator promises."""
        camp_a = _campaign(seeds=(1, 2))   # 4 cells
        camp_b = _campaign(seeds=(2, 3))   # 4 cells, 2 shared with A
        executor = get_executor("distributed:lease=10")
        executor._ensure_server()
        results = {}

        def run(name, camp):
            results[name] = camp.run(executor=executor)

        threads = [
            threading.Thread(target=run, args=("a", camp_a)),
            threading.Thread(target=run, args=("b", camp_b)),
        ]
        for thread in threads:
            thread.start()
        # Both grids submitted (6 unique keys, dedup already applied)
        # before any worker exists to lease them.
        assert _wait_for(
            lambda: sum(executor.board.counts().values()) == 6
        )
        stop = threading.Event()
        stats_box = []
        workers = [
            threading.Thread(
                target=lambda: stats_box.append(run_worker(
                    executor.url, stop=stop, poll_s=0.05,
                    worker_id=f"w{i}",
                )),
                daemon=True,
            )
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        try:
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive()
        finally:
            stop.set()
            executor.close()
            for worker in workers:
                worker.join(timeout=10)

        # 8 results delivered, 6 simulations run: zero duplicate sims.
        assert sum(s.cells_done for s in stats_box) == 6
        serial_a, serial_b = camp_a.run(), camp_b.run()
        assert _norm(results["a"].runs) == _norm(serial_a.runs)
        assert _norm(results["b"].runs) == _norm(serial_b.runs)
        # Shared cells are distinct result objects per campaign (each
        # campaign stamps its own provenance on its copy).
        shared_a = results["a"].runs[2]  # seed 2 rows in A
        shared_b = results["b"].runs[0]  # seed 2 rows in B
        assert shared_a is not shared_b


#: A fault plan that makes a worker lease a cell and then stall forever
#: (heartbeating all the while) — the deterministic stand-in for "busy
#: simulating when the OOM killer arrives".
HANG_FAULTS = json.dumps({"worker_hang_rate": 1.0, "hang_s": 600.0})


def _spawn_worker(url, worker_id, faults=None):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    env.pop("REPRO_FAULTS", None)
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", url, "--id", worker_id, "--poll", "0.05"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestChaosWorkerKill:
    """SIGKILL one of two subprocess workers mid-campaign: lease expiry
    reassigns its cells and the output stays byte-identical."""

    def test_campaign_survives_worker_sigkill(self):
        camp = _campaign(loads=(5.0, 10.0), seeds=(1, 2))  # 8 cells
        serial = camp.run()

        executor = get_executor("distributed:lease=2")
        executor._ensure_server()
        board = executor.board
        result_box = {}

        def drive():
            result_box["result"] = camp.run(executor=executor)

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        # The victim hangs on its first cell (holding the lease alive
        # via heartbeats), so it is deterministically mid-cell when
        # killed; the healthy worker joins only after that.
        victim = _spawn_worker(executor.url, "chaos-victim",
                               faults=HANG_FAULTS)
        healthy = None
        try:
            assert _wait_for(
                lambda: any(
                    item.worker == "chaos-victim" and item.status == LEASED
                    for item in list(board._items.values())
                ),
                timeout=60,
            ), "victim never leased a cell"
            healthy = _spawn_worker(executor.url, "chaos-healthy")
            # SIGKILL: no goodbye, no more heartbeats — only lease
            # expiry can recover the held cell.
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=10)
            driver.join(timeout=180)
            assert not driver.is_alive(), "campaign did not complete"
        finally:
            executor.close()
            for proc in (victim, healthy):
                if proc is not None:
                    if proc.poll() is None:
                        proc.kill()
                    proc.wait(timeout=10)

        assert _norm(result_box["result"].runs) == _norm(serial.runs)
        # The held cell went through a real expiry: one failed attempt.
        stats = board.workers()
        assert stats["chaos-healthy"]["cells_done"] == 8


GRID_SPEC = {
    "axes": {"protocol": ["pure_leach", "scheme2"]},
    "preset": "smoke",
    "horizon_s": 2.0,
    "sample_interval_s": 1.0,
    "seeds": [1],
}


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get_json(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
        return json.loads(resp.read())


def _post_json(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


@pytest.fixture()
def dist_server(tmp_path):
    from repro.service import build_server

    srv = build_server(
        tmp_path / "service.sqlite", port=0, quiet=True,
        distributed=True, lease_timeout_s=2.0,
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.close()
        thread.join(timeout=5.0)


class TestServerDistributed:
    def test_work_endpoints_require_distributed_mode(self, tmp_path):
        from repro.service import build_server

        srv = build_server(tmp_path / "plain.sqlite", port=0, quiet=True)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post_json(srv, "/work/lease", {"worker": "w"})
            assert err.value.code == 404
            with pytest.raises(ExperimentError, match="serve --distributed"):
                srv.manager.submit({**GRID_SPEC, "executor": "distributed"})
        finally:
            srv.close()
            thread.join(timeout=5.0)

    def test_executor_spec_conflicts_rejected(self, dist_server):
        with pytest.raises(ExperimentError, match="legacy supervision"):
            dist_server.manager.submit({
                **GRID_SPEC, "executor": "serial", "supervise": True,
            })

    def test_distributed_job_runs_via_work_endpoints(self, dist_server):
        _, submitted = _post_json(
            dist_server, "/campaigns",
            {**GRID_SPEC, "executor": "distributed"},
        )
        job_id = submitted["job_id"]
        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(connect=_url(dist_server, ""), stop=stop,
                        poll_s=0.05, worker_id="srv-w"),
            daemon=True,
        )
        worker.start()
        try:
            assert dist_server.manager.get(job_id).wait(timeout=120.0)
        finally:
            stop.set()
            worker.join(timeout=10)
        snap = _get_json(dist_server, f"/campaigns/{job_id}")
        assert snap["status"] == "done"
        assert snap["completed_cells"] == 2
        status = _get_json(dist_server, "/work/status")
        assert status["counts"]["done"] == 0  # settled cells retired
        assert "srv-w" in status["workers"]

        # The /agg endpoint reduces this job's own rows.
        agg = _get_json(
            dist_server,
            f"/campaigns/{job_id}/agg?agg=mean&group_by=protocol",
        )
        assert agg["count"] == 2
        protocols = {g["protocol"] for g in agg["groups"]}
        assert protocols == {"pure_leach", "scheme2"}
        assert all(g["n"] == 1 for g in agg["groups"])

    def test_shutdown_releases_leases_of_a_killed_worker(self, dist_server):
        """Satellite regression: a worker SIGKILLed mid-lease must not
        strand its cell in ``leased`` across JobManager.shutdown()."""
        _post_json(
            dist_server, "/campaigns",
            {**GRID_SPEC, "executor": "distributed"},
        )
        board = dist_server.manager.board
        # The worker hangs on its first cell, so it is guaranteed to be
        # holding a lease when the SIGKILL lands.
        proc = _spawn_worker(
            _url(dist_server, ""), "doomed", faults=HANG_FAULTS
        )
        try:
            assert _wait_for(
                lambda: board.counts()[LEASED] >= 1, timeout=60
            ), "worker never leased a cell"
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        dist_server.manager.shutdown()
        counts = board.counts()
        assert counts[LEASED] == 0, f"cell stranded in leased: {counts}"


class TestCacheOverlapDedup:
    """Two sequential campaigns sharing half their grid: the second
    re-simulates zero shared cells (digest dedup via the run cache) —
    under the distributed backend."""

    def test_overlapping_campaigns_share_completed_cells(self, tmp_path):
        from repro.service import DbResultStore, RunCache

        cache = RunCache(DbResultStore(tmp_path / "cache.sqlite"))
        camp_a = _campaign(seeds=(1, 2))  # 4 cells
        camp_b = _campaign(seeds=(2, 3))  # 4 cells, 2 shared

        executor = get_executor("distributed:lease=10")
        executor._ensure_server()
        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(connect=executor.url, stop=stop, poll_s=0.05),
            daemon=True,
        )
        worker.start()
        try:
            first = camp_a.run(executor=executor, cache=cache)
            assert (cache.stats.hits, cache.stats.misses) == (0, 4)
            second = camp_b.run(executor=executor, cache=cache)
        finally:
            stop.set()
            executor.close()
            worker.join(timeout=10)
        assert (cache.stats.hits, cache.stats.misses) == (2, 6)
        assert _norm(first.runs) == _norm(camp_a.run().runs)
        assert _norm(second.runs) == _norm(camp_b.run().runs)
