"""Tone channel: spec (Table I), broadcaster behaviour, energy."""

import pytest

from repro.config import EnergyConfig
from repro.energy import Battery, EnergyMeter, RadioEnergyModel
from repro.errors import MacError
from repro.mac import ToneBroadcaster, ToneChannelSpec, ToneKind
from repro.sim import Simulator


class _Listener:
    def __init__(self):
        self.pulses = []

    def on_tone_pulse(self, kind, time_s):
        self.pulses.append((kind, time_s))


def _broadcaster():
    sim = Simulator()
    meter = EnergyMeter(sim, RadioEnergyModel(EnergyConfig()), Battery(100.0))
    return sim, meter, ToneBroadcaster(sim, ToneChannelSpec(), meter)


class TestToneChannelSpec:
    def test_table1_values(self):
        spec = ToneChannelSpec()
        idle = spec.pulse(ToneKind.IDLE)
        assert idle.duration_s == pytest.approx(1e-3)
        assert idle.period_s == pytest.approx(50e-3)
        recv = spec.pulse(ToneKind.RECEIVE)
        assert recv.duration_s == pytest.approx(0.5e-3)
        assert recv.period_s == pytest.approx(10e-3)
        coll = spec.pulse(ToneKind.COLLISION)
        assert coll.duration_s == pytest.approx(0.5e-3)
        assert coll.period_s is None

    def test_duty_cycles_are_low(self):
        # §III-A's "energy efficient" claim: tiny tone duty cycles.
        spec = ToneChannelSpec()
        assert spec.pulse(ToneKind.IDLE).duty_cycle == pytest.approx(0.02)
        assert spec.pulse(ToneKind.RECEIVE).duty_cycle == pytest.approx(0.05)
        assert spec.pulse(ToneKind.COLLISION).duty_cycle == 0.0

    def test_rows_cover_all_states(self):
        assert [r.kind for r in ToneChannelSpec().rows()] == list(ToneKind)

    def test_classify_interval(self):
        spec = ToneChannelSpec()
        assert spec.classify_interval(0.050) is ToneKind.IDLE
        assert spec.classify_interval(0.010) is ToneKind.RECEIVE
        assert spec.classify_interval(0.015) is ToneKind.TRANSMIT
        with pytest.raises(MacError):
            spec.classify_interval(0.5)

    def test_intervals_unambiguous(self):
        # The three periodic intervals must not overlap at 25% tolerance.
        spec = ToneChannelSpec()
        for interval, kind in ((0.050, ToneKind.IDLE), (0.010, ToneKind.RECEIVE),
                               (0.015, ToneKind.TRANSMIT)):
            assert spec.classify_interval(interval) is kind


class TestToneBroadcaster:
    def test_idle_train_period(self):
        sim, _, bc = _broadcaster()
        lis = _Listener()
        bc.subscribe(lis)
        bc.start(ToneKind.IDLE)
        sim.run_until(0.2)
        times = [t for k, t in lis.pulses if k is ToneKind.IDLE]
        assert times == pytest.approx([0.0, 0.05, 0.10, 0.15, 0.20])

    def test_state_change_restarts_train(self):
        sim, _, bc = _broadcaster()
        lis = _Listener()
        bc.subscribe(lis)
        bc.start(ToneKind.IDLE)
        sim.run_until(0.06)  # pulses at 0, 0.05
        bc.set_state(ToneKind.RECEIVE)  # immediate receive pulse at 0.06
        sim.run_until(0.08)
        kinds = [k for k, _ in lis.pulses]
        assert kinds == [ToneKind.IDLE, ToneKind.IDLE, ToneKind.RECEIVE,
                         ToneKind.RECEIVE, ToneKind.RECEIVE]
        recv_times = [t for k, t in lis.pulses if k is ToneKind.RECEIVE]
        assert recv_times == pytest.approx([0.06, 0.07, 0.08])

    def test_collision_pulse_is_single(self):
        sim, _, bc = _broadcaster()
        lis = _Listener()
        bc.subscribe(lis)
        bc.start(ToneKind.COLLISION)
        sim.run_until(1.0)
        assert lis.pulses == [(ToneKind.COLLISION, 0.0)]

    def test_same_state_is_noop(self):
        sim, _, bc = _broadcaster()
        bc.start(ToneKind.IDLE)
        sim.run_until(0.01)
        bc.set_state(ToneKind.IDLE)  # must not restart the train
        sim.run_until(0.049)
        assert bc.pulses_emitted["idle"] == 1

    def test_stop_silences(self):
        sim, _, bc = _broadcaster()
        lis = _Listener()
        bc.subscribe(lis)
        bc.start()
        sim.run_until(0.01)
        bc.stop()
        sim.run_until(1.0)
        assert len(lis.pulses) == 1
        assert not bc.is_running

    def test_energy_charged_per_pulse(self):
        sim, meter, bc = _broadcaster()
        bc.start(ToneKind.IDLE)
        sim.run_until(0.5)  # pulses at 0, 0.05, ..., 0.5 -> 11 pulses
        expected = 11 * 1e-3 * 0.092
        assert meter.by_cause["tone_tx"] == pytest.approx(expected)

    def test_unsubscribe_stops_delivery(self):
        sim, _, bc = _broadcaster()
        lis = _Listener()
        bc.subscribe(lis)
        bc.start()
        sim.run_until(0.01)
        bc.unsubscribe(lis)
        sim.run_until(0.2)
        assert len(lis.pulses) == 1

    def test_double_subscribe_single_delivery(self):
        sim, _, bc = _broadcaster()
        lis = _Listener()
        bc.subscribe(lis)
        bc.subscribe(lis)
        bc.start()
        sim.run_until(0.01)
        assert len(lis.pulses) == 1

    def test_start_twice_rejected(self):
        _, _, bc = _broadcaster()
        bc.start()
        with pytest.raises(MacError):
            bc.start()

    def test_set_state_requires_running(self):
        _, _, bc = _broadcaster()
        with pytest.raises(MacError):
            bc.set_state(ToneKind.RECEIVE)

    def test_restart_after_stop(self):
        sim, _, bc = _broadcaster()
        bc.start()
        bc.stop()
        bc.start(ToneKind.RECEIVE)
        assert bc.current_kind is ToneKind.RECEIVE
