"""Configuration dataclasses: defaults, validation, round-trips."""

import dataclasses

import pytest

from repro.config import (
    ChannelConfig,
    EnergyConfig,
    LeachConfig,
    MacConfig,
    NetworkConfig,
    PhyConfig,
    PolicyConfig,
    Protocol,
    ToneConfig,
    TrafficConfig,
)
from repro.errors import ConfigError


class TestTableIIDefaults:
    """Defaults must match the paper's Table II."""

    def test_node_count(self):
        assert NetworkConfig().n_nodes == 100

    def test_ch_fraction(self):
        assert LeachConfig().ch_fraction == 0.05

    def test_data_powers(self):
        e = EnergyConfig()
        assert e.data_tx_power_w == 0.66
        assert e.data_rx_power_w == 0.305

    def test_tone_powers(self):
        e = EnergyConfig()
        assert e.tone_tx_power_w == pytest.approx(0.092)
        assert e.tone_rx_power_w == pytest.approx(0.036)

    def test_packet_length(self):
        assert PhyConfig().packet_length_bits == 2000

    def test_buffer_and_cw(self):
        assert TrafficConfig().buffer_packets == 50
        assert MacConfig().contention_window == 10

    def test_burst_limits(self):
        m = MacConfig()
        assert m.min_burst_packets == 3
        assert m.max_burst_packets == 8

    def test_retry_cap(self):
        assert MacConfig().max_retries == 6

    def test_abicm_rates(self):
        assert PhyConfig().rates_bps == (250e3, 450e3, 1e6, 2e6)

    def test_initial_energy(self):
        assert EnergyConfig().initial_energy_j == 10.0

    def test_scheme1_constants(self):
        p = PolicyConfig()
        assert p.sample_interval_packets == 5
        assert p.arm_queue_length == 15

    def test_tone_spec(self):
        t = ToneConfig()
        assert t.idle_period_s == pytest.approx(0.050)
        assert t.idle_duration_s == pytest.approx(0.001)
        assert t.receive_period_s == pytest.approx(0.010)
        assert t.receive_duration_s == pytest.approx(0.0005)
        assert t.collision_duration_s == pytest.approx(0.0005)


class TestValidation:
    def test_bad_pathloss_exponent(self):
        with pytest.raises(ConfigError):
            ChannelConfig(pathloss_exponent=0.0)

    def test_bad_fading_kernel(self):
        with pytest.raises(ConfigError):
            ChannelConfig(fading_kernel="magic")

    def test_rates_must_be_sorted(self):
        with pytest.raises(ConfigError):
            PhyConfig(rates_bps=(2e6, 1e6), mode_thresholds_db=(1.0, 2.0))

    def test_threshold_count_must_match(self):
        with pytest.raises(ConfigError):
            PhyConfig(mode_thresholds_db=(1.0, 2.0))

    def test_thresholds_must_be_sorted(self):
        with pytest.raises(ConfigError):
            PhyConfig(mode_thresholds_db=(17.0, 12.0, 8.0, 4.0))

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigError):
            EnergyConfig(data_tx_power_w=-1.0)

    def test_sleep_above_rx_rejected(self):
        with pytest.raises(ConfigError):
            EnergyConfig(sleep_power_w=1.0, data_rx_power_w=0.3)

    def test_burst_ordering(self):
        with pytest.raises(ConfigError):
            MacConfig(min_burst_packets=8, max_burst_packets=3)

    def test_idle_pulse_shorter_than_period(self):
        with pytest.raises(ConfigError):
            ToneConfig(idle_duration_s=0.06, idle_period_s=0.05)

    def test_ch_fraction_bounds(self):
        with pytest.raises(ConfigError):
            LeachConfig(ch_fraction=0.0)
        with pytest.raises(ConfigError):
            LeachConfig(ch_fraction=1.5)

    def test_source_model_names(self):
        with pytest.raises(ConfigError):
            TrafficConfig(source_model="fractal")

    def test_min_nodes(self):
        with pytest.raises(ConfigError):
            NetworkConfig(n_nodes=1)

    def test_dead_fraction_bounds(self):
        with pytest.raises(ConfigError):
            NetworkConfig(dead_fraction=0.0)

    def test_placement_names(self):
        with pytest.raises(ConfigError):
            NetworkConfig(placement="ring")

    def test_target_ber_bounds(self):
        with pytest.raises(ConfigError):
            PhyConfig(target_ber=0.7)


class TestProtocolEnum:
    def test_three_protocols(self):
        assert len(Protocol) == 3

    def test_labels_distinct(self):
        labels = {p.label for p in Protocol}
        assert len(labels) == 3

    def test_value_roundtrip(self):
        for p in Protocol:
            assert Protocol(p.value) is p


class TestConvenienceAndRoundtrip:
    def test_with_traffic(self):
        cfg = NetworkConfig().with_traffic(packets_per_second=25.0)
        assert cfg.traffic.packets_per_second == 25.0
        # Original untouched (frozen).
        assert NetworkConfig().traffic.packets_per_second == 5.0

    def test_with_protocol(self):
        cfg = NetworkConfig().with_protocol(Protocol.PURE_LEACH)
        assert cfg.protocol is Protocol.PURE_LEACH

    def test_with_top_level(self):
        cfg = NetworkConfig().with_(n_nodes=20, seed=9)
        assert cfg.n_nodes == 20 and cfg.seed == 9

    def test_dict_roundtrip(self):
        cfg = NetworkConfig(
            n_nodes=30,
            protocol=Protocol.CAEM_FIXED,
            traffic=TrafficConfig(packets_per_second=12.0),
        )
        again = NetworkConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_dict_roundtrip_through_json(self):
        import json

        cfg = NetworkConfig()
        blob = json.dumps(cfg.to_dict())
        again = NetworkConfig.from_dict(json.loads(blob))
        assert again == cfg

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            NetworkConfig().n_nodes = 5  # type: ignore[misc]
