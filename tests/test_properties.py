"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.channel import GaussMarkovShadowing, RayleighFading
from repro.config import MacConfig, PhyConfig
from repro.energy import Battery
from repro.mac import BackoffPolicy
from repro.metrics import jain_index, network_lifetime_s, queue_length_std
from repro.phy import AbicmTable, BPSK, QAM16, QPSK
from repro.policy import AdaptiveThresholdPolicy, ThresholdLadder
from repro.config import PolicyConfig
from repro.rng import RngRegistry
from repro.sim import EventQueue, Simulator
from repro.traffic import Packet, PacketBuffer
from repro.units import db_to_linear, linear_to_db

_TABLE = AbicmTable.from_config(PhyConfig())
_LADDER = ThresholdLadder(_TABLE)


class TestUnitProperties:
    @given(st.floats(min_value=-150, max_value=150))
    def test_db_roundtrip(self, db):
        assert linear_to_db(db_to_linear(db)) - db < 1e-9

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_linear_roundtrip(self, x):
        assert math.isclose(db_to_linear(linear_to_db(x)), x, rel_tol=1e-9)

    @given(st.floats(min_value=-100, max_value=100),
           st.floats(min_value=-100, max_value=100))
    def test_db_addition_is_linear_multiplication(self, a, b):
        assert math.isclose(
            db_to_linear(a + b), db_to_linear(a) * db_to_linear(b), rel_tol=1e-9
        )


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=60))
    def test_events_pop_in_time_order(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while (call := q.pop()) is not None:
            popped.append(call.time)
        assert popped == sorted(times)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                    max_size=40),
           st.data())
    def test_cancellation_never_loses_live_events(self, times, data):
        q = EventQueue()
        handles = [q.push(t, lambda: None) for t in times]
        to_cancel = data.draw(st.sets(
            st.integers(min_value=0, max_value=len(handles) - 1)))
        for i in to_cancel:
            handles[i].cancel()
        live = len(times) - len(to_cancel)
        assert len(q) == live
        popped = 0
        while q.pop() is not None:
            popped += 1
        assert popped == live

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1,
                    max_size=30))
    def test_simulator_clock_is_monotone(self, delays):
        sim = Simulator()
        observed = []
        for d in delays:
            sim.call_in(d, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert sim.now == max(delays)


class TestBerProperties:
    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_ber_is_probability(self, snr):
        for mod in (BPSK, QPSK, QAM16):
            p = mod.ber(snr)
            assert 0.0 <= p <= 0.5

    @given(st.floats(min_value=0.01, max_value=100.0),
           st.floats(min_value=1.01, max_value=3.0))
    def test_ber_monotone_in_snr(self, snr, factor):
        for mod in (BPSK, QAM16):
            assert mod.ber(snr * factor) <= mod.ber(snr) + 1e-15

    @given(st.floats(min_value=0.0, max_value=60.0),
           st.integers(min_value=1, max_value=10_000))
    def test_per_is_probability_and_monotone_in_bits(self, snr_db, bits):
        mode = _TABLE.highest
        per1 = mode.packet_error_rate(snr_db, bits)
        per2 = mode.packet_error_rate(snr_db, bits + 100)
        assert 0.0 <= per1 <= 1.0
        assert per2 >= per1 - 1e-12

    @given(st.floats(min_value=-20.0, max_value=60.0))
    def test_mode_selection_respects_thresholds(self, snr_db):
        mode = _TABLE.mode_for_snr(snr_db)
        if mode is None:
            assert snr_db < _TABLE.lowest.threshold_db
        else:
            assert snr_db >= mode.threshold_db
            # And no faster mode would be admissible.
            for other in _TABLE:
                if other.throughput_bps > mode.throughput_bps:
                    assert snr_db < other.threshold_db


class TestChannelProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.lists(st.floats(min_value=1e-4, max_value=5.0), min_size=1,
                    max_size=25))
    def test_fading_gain_positive_any_schedule(self, seed, gaps):
        fading = RayleighFading(0.1, RngRegistry(seed).stream("prop"))
        t = 0.0
        for gap in gaps:
            t += gap
            assert fading.power_gain(t) > 0.0

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.lists(st.floats(min_value=1e-4, max_value=10.0), min_size=1,
                    max_size=25))
    def test_shadowing_finite_any_schedule(self, seed, gaps):
        shadow = GaussMarkovShadowing(6.0, 3.0, RngRegistry(seed).stream("p"))
        t = 0.0
        for gap in gaps:
            t += gap
            v = shadow.value_db(t)
            assert math.isfinite(v)


class TestBatteryProperties:
    @given(st.floats(min_value=0.01, max_value=100.0),
           st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=50))
    def test_battery_never_negative_and_conserves(self, capacity, draws):
        b = Battery(capacity)
        total = 0.0
        for d in draws:
            total += b.draw(d)
        assert b.level_j >= 0.0
        assert math.isclose(b.level_j + total, capacity, rel_tol=1e-9)
        assert total <= capacity + 1e-9

    @given(st.floats(min_value=0.01, max_value=10.0))
    def test_depletion_flag_iff_empty(self, capacity):
        b = Battery(capacity)
        b.draw(capacity * 0.999)
        assert not b.is_depleted
        b.draw(capacity)
        assert b.is_depleted and b.level_j == 0.0


class TestBufferProperties:
    @given(st.integers(min_value=1, max_value=40),
           st.lists(st.integers(min_value=0, max_value=10), max_size=60))
    def test_fifo_order_and_conservation(self, capacity, take_sizes):
        buf = PacketBuffer(capacity=capacity)
        fed = []
        uid = 0
        taken = []
        for n in take_sizes:
            # Interleave: feed one, take n.
            p = Packet(0, float(uid), 100)
            uid += 1
            if buf.offer(p):
                fed.append(p.uid)
            taken.extend(x.uid for x in buf.take(n))
        taken.extend(x.uid for x in buf.take(len(buf)))
        assert taken == fed  # FIFO, nothing lost or duplicated
        assert buf.arrived == uid
        assert buf.arrived - buf.dropped == len(taken)

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=0, max_value=30))
    def test_never_exceeds_capacity(self, capacity, arrivals):
        buf = PacketBuffer(capacity=capacity)
        for i in range(arrivals):
            buf.offer(Packet(0, float(i), 100))
        assert len(buf) <= capacity


class TestBackoffProperties:
    @given(st.integers(min_value=0, max_value=20),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_backoff_within_bounds(self, retry, seed):
        policy = BackoffPolicy(MacConfig(), RngRegistry(seed).stream("b"))
        d = policy.delay_s(retry)
        assert 0.0 <= d <= policy.max_delay_s(retry)

    @given(st.integers(min_value=0, max_value=5))
    def test_max_delay_doubles(self, retry):
        policy = BackoffPolicy(MacConfig(), RngRegistry(0).stream("b"))
        assert math.isclose(
            policy.max_delay_s(retry + 1), 2 * policy.max_delay_s(retry)
        ) or policy.max_delay_s(retry + 1) == policy.max_delay_s(retry)


class TestPolicyProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=120))
    def test_class_always_in_range(self, queue_lengths):
        policy = AdaptiveThresholdPolicy(_LADDER, PolicyConfig())
        t = 0.0
        for q in queue_lengths:
            t += 0.01
            policy.observe_arrival(q, t)
            assert 0 <= policy.threshold_class() <= _LADDER.highest_class

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=120))
    def test_allows_iff_snr_clears_threshold(self, queue_lengths):
        policy = AdaptiveThresholdPolicy(_LADDER, PolicyConfig())
        t = 0.0
        for q in queue_lengths:
            t += 0.01
            policy.observe_arrival(q, t)
            th = policy.threshold_db()
            assert policy.allows(th + 0.1)
            assert not policy.allows(th - 0.1)


class TestMetricProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=1,
                    max_size=50))
    def test_queue_std_nonnegative(self, queues):
        assert queue_length_std(queues) >= 0.0

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=1,
                    max_size=50))
    def test_jain_bounds(self, shares):
        j = jain_index(shares)
        assert 1.0 / len(shares) - 1e-9 <= j <= 1.0 + 1e-9

    @given(st.lists(st.one_of(st.none(),
                              st.floats(min_value=0.1, max_value=1e4)),
                    min_size=1, max_size=80),
           st.floats(min_value=0.05, max_value=0.99))
    def test_lifetime_is_an_observed_death_or_none(self, deaths, frac):
        n = len(deaths)
        lt = network_lifetime_s(deaths, n, frac)
        observed = [d for d in deaths if d is not None]
        if lt is not None:
            assert lt in observed
            # At lt, the dead fraction strictly exceeds frac.
            dead_at = sum(1 for d in observed if d <= lt)
            assert dead_at / n > frac
