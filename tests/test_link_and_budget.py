"""Link budget, Link composition, CSI estimation."""

import numpy as np
import pytest

from repro.channel import (
    CsiEstimator,
    Link,
    LinkBudget,
    LogDistance,
    calibrate_noise_floor,
)
from repro.config import ChannelConfig
from repro.errors import ChannelError
from repro.rng import RngRegistry


def _budget(cfg=None):
    return LinkBudget.from_config(cfg or ChannelConfig())


class TestLinkBudget:
    def test_mean_snr_decreases_with_distance(self):
        b = _budget()
        assert b.mean_snr_db(10.0) > b.mean_snr_db(50.0) > b.mean_snr_db(100.0)

    def test_from_config_uses_parameters(self):
        cfg = ChannelConfig(noise_floor_dbm=-90.0)
        delta = -90.0 - ChannelConfig().noise_floor_dbm
        assert _budget(cfg).mean_snr_db(10.0) == pytest.approx(
            _budget().mean_snr_db(10.0) - delta
        )

    def test_calibration_roundtrip(self):
        model = LogDistance()
        floor = calibrate_noise_floor(model, 0.66, 35.0, target_mean_snr_db=20.0)
        b = LinkBudget(model, 0.66, floor)
        assert b.mean_snr_db(35.0) == pytest.approx(20.0)

    def test_default_operating_point(self):
        """Typical intra-cluster link (~20 m) lands near 20 dB mean SNR,
        putting all four ABICM modes in play (DESIGN §2)."""
        snr = _budget().mean_snr_db(20.0)
        assert 15.0 <= snr <= 25.0

    def test_rx_power(self):
        b = _budget()
        assert b.rx_power_dbm(10.0) - b.rx_power_dbm(100.0) == pytest.approx(30.0)

    def test_invalid_tx_power(self):
        with pytest.raises(ChannelError):
            LinkBudget(LogDistance(), 0.0, -72.0)


class TestLink:
    def _link(self, distance=35.0, name="l", seed=5, cfg=None):
        cfg = cfg or ChannelConfig()
        rng = RngRegistry(seed).stream(f"link/{name}")
        return Link(distance, _budget(cfg), cfg, rng, name=name)

    def test_mean_matches_budget(self):
        link = self._link(20.0)
        assert link.mean_snr_db == pytest.approx(_budget().mean_snr_db(20.0))

    def test_snr_varies_over_time(self):
        link = self._link()
        samples = [link.snr_db(t) for t in np.arange(0.0, 20.0, 0.5)]
        assert np.std(samples) > 1.0  # fading + shadowing really move it

    def test_snr_long_run_average_near_mean(self):
        # E[10 log10 g] for Rayleigh is -2.5 dB; allow that known offset.
        link = self._link(cfg=ChannelConfig(shadowing_sigma_db=0.0))
        samples = [link.snr_db(t) for t in np.arange(0.0, 3000.0, 1.0)]
        assert np.mean(samples) == pytest.approx(link.mean_snr_db - 2.5, abs=0.8)

    def test_same_time_queries_equal(self):
        link = self._link()
        assert link.snr_db(1.0) == link.snr_db(1.0)

    def test_deterministic_given_seed(self):
        a = self._link(name="same", seed=11)
        b = self._link(name="same", seed=11)
        ts = [0.1, 0.4, 2.0]
        assert [a.snr_db(t) for t in ts] == [b.snr_db(t) for t in ts]

    def test_negative_distance_rejected(self):
        with pytest.raises(ChannelError):
            self._link(distance=-1.0)


class TestCsiEstimator:
    def _link(self):
        cfg = ChannelConfig()
        return Link(30.0, _budget(cfg), cfg, RngRegistry(3).stream("l"), "l")

    def test_perfect_measurement_matches_link(self):
        link = self._link()
        est = CsiEstimator(link)
        sample = est.measure(2.0)
        assert sample.snr_db == pytest.approx(link.snr_db(2.0))

    def test_noisy_measurement_differs(self):
        link = self._link()
        est = CsiEstimator(link, error_sigma_db=2.0, rng=RngRegistry(4).stream("n"))
        errors = [est.measure(t).snr_db - link.snr_db(t) for t in np.arange(0, 50, 0.5)]
        assert np.std(errors) == pytest.approx(2.0, rel=0.3)

    def test_last_and_staleness(self):
        est = CsiEstimator(self._link())
        assert est.last is None
        assert est.staleness(5.0) == float("inf")
        est.measure(5.0)
        assert est.last.time_s == 5.0
        assert est.staleness(7.5) == pytest.approx(2.5)

    def test_error_requires_rng(self):
        with pytest.raises(ChannelError):
            CsiEstimator(self._link(), error_sigma_db=1.0)

    def test_negative_error_rejected(self):
        with pytest.raises(ChannelError):
            CsiEstimator(self._link(), error_sigma_db=-0.5)
