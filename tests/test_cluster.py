"""Topology and LEACH election."""

import numpy as np
import pytest

from repro.cluster import ClusterAssignment, LeachElection, Topology
from repro.config import LeachConfig
from repro.errors import ClusterError
from repro.rng import RngRegistry


class TestTopology:
    def test_uniform_placement_in_field(self):
        topo = Topology.uniform(100, 100.0, RngRegistry(1).stream("topo"))
        assert topo.n_nodes == 100
        assert np.all(topo.positions >= 0) and np.all(topo.positions <= 100)

    def test_grid_placement_deterministic(self):
        a = Topology.grid(25, 100.0)
        b = Topology.grid(25, 100.0)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_grid_holds_n_nodes(self):
        for n in (1, 7, 100):
            assert Topology.grid(n, 50.0).n_nodes == n

    def test_distance_symmetric_and_zero_diag(self):
        topo = Topology.uniform(20, 100.0, RngRegistry(2).stream("t"))
        for a in (0, 5, 19):
            assert topo.distance(a, a) == 0.0
            for b in (1, 7):
                assert topo.distance(a, b) == pytest.approx(topo.distance(b, a))

    def test_distance_matches_euclid(self):
        topo = Topology(np.array([[0.0, 0.0], [3.0, 4.0]]), 10.0)
        assert topo.distance(0, 1) == pytest.approx(5.0)

    def test_nearest(self):
        topo = Topology(np.array([[0.0, 0.0], [1.0, 0.0], [9.0, 9.0]]), 10.0)
        assert topo.nearest(0, [1, 2]) == 1
        assert topo.nearest(2, [0, 1]) == 1

    def test_nearest_empty_candidates(self):
        topo = Topology.grid(4, 10.0)
        with pytest.raises(ClusterError):
            topo.nearest(0, [])

    def test_invalid_positions(self):
        with pytest.raises(ClusterError):
            Topology(np.array([[0.0, 200.0]]), 100.0)
        with pytest.raises(ClusterError):
            Topology(np.zeros((0, 2)), 100.0)

    def test_distances_from_vector(self):
        topo = Topology.grid(9, 30.0)
        row = topo.distances_from(4)
        assert row.shape == (9,)
        assert row[4] == 0.0


class TestLeachElection:
    def _election(self, seed=1, **kw):
        return LeachElection(LeachConfig(**kw), RngRegistry(seed).stream("leach"))

    def test_threshold_formula(self):
        e = self._election()
        p = 0.05
        # Round 0: T = P; late in the epoch the threshold grows.
        assert e.threshold(0) == pytest.approx(p)
        assert e.threshold(10) == pytest.approx(p / (1 - p * 10))
        assert e.threshold(19) == pytest.approx(p / (1 - p * 19))

    def test_threshold_capped_at_one(self):
        e = self._election()
        assert e.threshold(19) <= 1.0

    def test_ch_fraction_over_epoch(self):
        # Over one epoch every node serves ~once -> fraction P per round.
        e = self._election(seed=7)
        alive = list(range(100))
        counts = []
        for r in range(20):
            counts.append(len(e.elect(r, alive)))
        assert sum(counts) == pytest.approx(100, abs=20)

    def test_no_node_serves_twice_per_epoch(self):
        e = self._election(seed=3)
        alive = list(range(100))
        served = []
        for r in range(20):
            served.extend(e.elect(r, alive))
        assert len(served) == len(set(served))

    def test_everyone_eligible_again_next_epoch(self):
        e = self._election(seed=5)
        alive = list(range(20))
        first_epoch = set()
        for r in range(20):
            first_epoch.update(e.elect(r, alive))
        second = e.elect(20, alive)  # new epoch
        assert set(second) <= set(alive)

    def test_at_least_one_head_always(self):
        e = self._election(seed=11)
        for r in range(50):
            assert len(e.elect(r, list(range(10)))) >= 1

    def test_dead_nodes_never_elected(self):
        e = self._election(seed=2)
        alive = [1, 3, 5]
        for r in range(10):
            assert set(e.elect(r, alive)) <= set(alive)

    def test_empty_network_rejected(self):
        with pytest.raises(ClusterError):
            self._election().elect(0, [])

    def test_shrinking_pool_restarts_epoch(self):
        e = self._election(ch_fraction=0.5, seed=4)  # epoch = 2 rounds
        alive = [0, 1]
        heads = [e.elect(r, alive) for r in range(6)]
        assert all(len(h) >= 1 for h in heads)

    def test_service_counts_balanced(self):
        e = self._election(seed=9)
        alive = list(range(50))
        for r in range(100):  # 5 epochs
            e.elect(r, alive)
        counts = np.array([e.service_counts.get(n, 0) for n in alive])
        # LEACH rotation: everyone served, spread is tight.
        assert counts.min() >= 1
        assert counts.max() - counts.min() <= 4


class TestClusterFormation:
    def test_membership_covers_alive(self):
        topo = Topology.uniform(30, 100.0, RngRegistry(6).stream("t"))
        e = LeachElection(LeachConfig(), RngRegistry(6).stream("e"))
        alive = list(range(30))
        asg = e.form_clusters(0, alive, topo.nearest)
        assert set(asg.membership) == set(alive)
        assert all(h in asg.heads for h in set(asg.membership.values()))

    def test_heads_map_to_themselves(self):
        topo = Topology.uniform(30, 100.0, RngRegistry(8).stream("t"))
        e = LeachElection(LeachConfig(), RngRegistry(8).stream("e"))
        asg = e.form_clusters(0, list(range(30)), topo.nearest)
        for h in asg.heads:
            assert asg.membership[h] == h

    def test_members_of(self):
        topo = Topology.grid(9, 30.0)
        e = LeachElection(LeachConfig(ch_fraction=0.34), RngRegistry(1).stream("e"))
        asg = e.form_clusters(0, list(range(9)), topo.nearest)
        total = sum(len(asg.members_of(h)) for h in asg.heads) + len(asg.heads)
        assert total == 9
        assert asg.n_clusters == len(asg.heads)

    def test_sensors_join_nearest_head(self):
        asg = ClusterAssignment(0, (0, 1), {0: 0, 1: 1, 2: 0})
        assert asg.members_of(0) == [2]
