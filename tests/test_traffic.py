"""Traffic substrate: packets, buffer, sources."""

import numpy as np
import pytest

from repro.errors import BufferOverflowError, ConfigError
from repro.rng import RngRegistry
from repro.sim import Simulator
from repro.traffic import (
    CbrSource,
    OnOffSource,
    Packet,
    PacketBuffer,
    PoissonSource,
    make_source,
)


class TestPacket:
    def test_unique_ids(self):
        a = Packet(1, 0.0, 2000)
        b = Packet(1, 0.0, 2000)
        assert a.uid != b.uid

    def test_age(self):
        p = Packet(1, 5.0, 2000)
        assert p.age_s(7.5) == pytest.approx(2.5)

    def test_frozen(self):
        p = Packet(1, 0.0, 2000)
        with pytest.raises(Exception):
            p.birth_s = 1.0  # type: ignore[misc]


class TestPacketBuffer:
    def test_fifo_order(self):
        buf = PacketBuffer(capacity=10)
        pkts = [Packet(1, float(i), 2000) for i in range(5)]
        for p in pkts:
            buf.offer(p)
        assert buf.take(3) == pkts[:3]
        assert buf.take(5) == pkts[3:]

    def test_overflow_drops_and_counts(self):
        buf = PacketBuffer(capacity=2)
        assert buf.offer(Packet(1, 0.0, 2000))
        assert buf.offer(Packet(1, 0.1, 2000))
        assert not buf.offer(Packet(1, 0.2, 2000))
        assert buf.dropped == 1 and buf.arrived == 3 and len(buf) == 2

    def test_strict_mode_raises(self):
        buf = PacketBuffer(capacity=1, strict=True)
        buf.offer(Packet(1, 0.0, 2000))
        with pytest.raises(BufferOverflowError):
            buf.offer(Packet(1, 0.1, 2000))

    def test_unbounded(self):
        buf = PacketBuffer(capacity=None)
        for i in range(500):
            assert buf.offer(Packet(1, float(i), 2000))
        assert len(buf) == 500 and not buf.is_full

    def test_requeue_front_preserves_order(self):
        buf = PacketBuffer(capacity=10)
        pkts = [Packet(1, float(i), 2000) for i in range(4)]
        for p in pkts:
            buf.offer(p)
        taken = buf.take(3)
        buf.requeue_front(taken[1:])  # two unsent packets go back
        assert buf.take(10) == [pkts[1], pkts[2], pkts[3]]

    def test_requeue_adjusts_served(self):
        buf = PacketBuffer(capacity=10)
        for i in range(4):
            buf.offer(Packet(1, float(i), 2000))
        taken = buf.take(4)
        assert buf.served == 4
        buf.requeue_front(taken[2:])
        assert buf.served == 2

    def test_peek_and_head_age(self):
        buf = PacketBuffer()
        assert buf.peek() is None
        assert buf.head_age_s(9.0) == 0.0
        p = Packet(1, 2.0, 2000)
        buf.offer(p)
        assert buf.peek() is p
        assert buf.head_age_s(9.0) == pytest.approx(7.0)

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            PacketBuffer().take(-1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PacketBuffer(capacity=0)


class TestPoissonSource:
    def _run(self, rate, horizon, seed=3):
        sim = Simulator()
        got = []
        src = PoissonSource(
            sim, 7, 2000, got.append, rate, RngRegistry(seed).stream("t")
        )
        src.start()
        sim.run_until(horizon)
        src.stop()
        return got, src

    def test_mean_rate(self):
        got, _ = self._run(rate=5.0, horizon=200.0)
        assert len(got) == pytest.approx(1000, rel=0.1)

    def test_interarrivals_exponential(self):
        got, _ = self._run(rate=10.0, horizon=300.0)
        gaps = np.diff([p.birth_s for p in got])
        assert gaps.mean() == pytest.approx(0.1, rel=0.1)
        # Exponential: std ~= mean.
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.15)

    def test_packets_carry_metadata(self):
        got, _ = self._run(rate=5.0, horizon=10.0)
        assert all(p.source_id == 7 and p.size_bits == 2000 for p in got)

    def test_stop_halts_generation(self):
        sim = Simulator()
        got = []
        src = PoissonSource(sim, 1, 2000, got.append, 50.0, RngRegistry(0).stream("t"))
        src.start()
        sim.run_until(1.0)
        n = len(got)
        src.stop()
        sim.run_until(5.0)
        assert len(got) == n and not src.is_running

    def test_start_idempotent(self):
        sim = Simulator()
        src = PoissonSource(sim, 1, 2000, lambda p: None, 5.0,
                            RngRegistry(0).stream("t"))
        src.start()
        src.start()
        assert sim.pending_events == 1

    def test_deterministic_given_seed(self):
        a, _ = self._run(rate=5.0, horizon=50.0, seed=11)
        b, _ = self._run(rate=5.0, horizon=50.0, seed=11)
        assert [p.birth_s for p in a] == [p.birth_s for p in b]

    def test_invalid_rate(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            PoissonSource(sim, 1, 2000, lambda p: None, 0.0,
                          RngRegistry(0).stream("t"))


class TestOtherSources:
    def test_cbr_exact_spacing(self):
        sim = Simulator()
        got = []
        CbrSource(sim, 1, 2000, got.append, 4.0).start()
        sim.run_until(2.0)
        assert [p.birth_s for p in got] == pytest.approx([0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0])

    def test_onoff_mean_rate_preserved(self):
        sim = Simulator()
        got = []
        src = OnOffSource(
            sim, 1, 2000, got.append, rate_pps=5.0, on_s=1.0, off_s=4.0,
            rng=RngRegistry(5).stream("oo"),
        )
        src.start()
        sim.run_until(400.0)
        rate = len(got) / 400.0
        assert rate == pytest.approx(5.0, rel=0.25)

    def test_factory_dispatch(self):
        sim = Simulator()
        rng = RngRegistry(0).stream("f")
        assert isinstance(
            make_source("poisson", sim, 1, 2000, lambda p: None, 5.0, rng),
            PoissonSource,
        )
        assert isinstance(
            make_source("cbr", sim, 1, 2000, lambda p: None, 5.0, rng), CbrSource
        )
        assert isinstance(
            make_source("onoff", sim, 1, 2000, lambda p: None, 5.0, rng), OnOffSource
        )
        with pytest.raises(ConfigError):
            make_source("fractal", sim, 1, 2000, lambda p: None, 5.0, rng)
