"""Shadowing and fading processes: statistics and lazy-sampling contracts."""

import numpy as np
import pytest

from repro.channel import GaussMarkovShadowing, RayleighFading
from repro.errors import ChannelError
from repro.rng import RngRegistry


def _rng(name="x", seed=7):
    return RngRegistry(seed).stream(name)


class TestShadowing:
    def test_stationary_marginal(self):
        # Sample many independent processes at a fixed late time.
        vals = []
        for i in range(4000):
            p = GaussMarkovShadowing(4.0, 3.0, _rng(f"s{i}"))
            vals.append(p.value_db(10.0))
        vals = np.asarray(vals)
        assert abs(vals.mean()) < 0.25
        assert vals.std() == pytest.approx(4.0, rel=0.05)

    def test_autocorrelation_decays_with_tau(self):
        lag = 3.0  # one time constant -> rho = exp(-1) ~ 0.368
        first, second = [], []
        for i in range(4000):
            p = GaussMarkovShadowing(4.0, 3.0, _rng(f"a{i}"))
            first.append(p.value_db(0.0))
            second.append(p.value_db(lag))
        rho = np.corrcoef(first, second)[0, 1]
        assert rho == pytest.approx(np.exp(-1.0), abs=0.06)

    def test_same_time_query_is_cached(self):
        p = GaussMarkovShadowing(4.0, 3.0, _rng())
        a = p.value_db(5.0)
        b = p.value_db(5.0)
        assert a == b

    def test_backwards_query_rejected(self):
        p = GaussMarkovShadowing(4.0, 3.0, _rng())
        p.value_db(5.0)
        with pytest.raises(ChannelError):
            p.value_db(4.0)

    def test_zero_sigma_is_identically_zero(self):
        p = GaussMarkovShadowing(0.0, 3.0, _rng())
        assert p.value_db(1.0) == 0.0
        assert p.value_db(100.0) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ChannelError):
            GaussMarkovShadowing(-1.0, 3.0, _rng())
        with pytest.raises(ChannelError):
            GaussMarkovShadowing(4.0, 0.0, _rng())

    def test_deterministic_given_seed(self):
        p1 = GaussMarkovShadowing(4.0, 3.0, _rng("same", 3))
        p2 = GaussMarkovShadowing(4.0, 3.0, _rng("same", 3))
        ts = [0.5, 1.0, 4.0, 9.0]
        assert [p1.value_db(t) for t in ts] == [p2.value_db(t) for t in ts]


class TestRayleighFading:
    def test_unit_mean_power(self):
        gains = []
        for i in range(6000):
            f = RayleighFading(0.1, _rng(f"f{i}"))
            gains.append(f.power_gain(1.0))
        assert np.mean(gains) == pytest.approx(1.0, rel=0.05)

    def test_power_gain_is_exponential(self):
        # For exponential(1): P(g > 1) = e^-1, var = 1.
        gains = np.array([
            RayleighFading(0.1, _rng(f"e{i}")).power_gain(0.5) for i in range(6000)
        ])
        assert np.mean(gains > 1.0) == pytest.approx(np.exp(-1.0), abs=0.03)
        assert np.var(gains) == pytest.approx(1.0, rel=0.12)

    def test_correlation_kernels(self):
        f_exp = RayleighFading(0.1, _rng(), kernel="exponential")
        assert f_exp.correlation(0.0) == pytest.approx(1.0)
        assert f_exp.correlation(0.1) == pytest.approx(np.exp(-1.0))
        f_jakes = RayleighFading(0.1, _rng("j"), kernel="jakes")
        assert f_jakes.correlation(0.0) == pytest.approx(1.0)
        # J0 crosses zero; at large lag magnitude is < 1.
        assert abs(f_jakes.correlation(1.0)) < 0.5

    def test_short_gap_highly_correlated(self):
        f = RayleighFading(0.1, _rng())
        a = f.power_gain(0.0)
        b = f.power_gain(1e-4)  # << coherence time
        assert b == pytest.approx(a, rel=0.2)

    def test_same_time_query_stationary(self):
        """Paper assumption 3: gain constant over one packet's queries."""
        f = RayleighFading(0.1, _rng())
        assert f.power_gain(2.0) == f.power_gain(2.0)

    def test_complex_gain_matches_power(self):
        f = RayleighFading(0.1, _rng())
        h = f.complex_gain(3.0)
        assert abs(h) ** 2 == pytest.approx(f.power_gain(3.0))

    def test_rician_k_shifts_distribution(self):
        # Strong LOS -> power concentrates near 1.
        gains = np.array([
            RayleighFading(0.1, _rng(f"r{i}"), rician_k=10.0).power_gain(0.5)
            for i in range(3000)
        ])
        assert np.mean(gains) == pytest.approx(1.0, rel=0.05)
        assert np.var(gains) < 0.5  # much tighter than Rayleigh's var 1

    def test_gain_db_matches_linear(self):
        f = RayleighFading(0.1, _rng())
        g = f.power_gain(1.0)
        assert f.gain_db(1.0) == pytest.approx(10 * np.log10(g))

    def test_backwards_query_rejected(self):
        f = RayleighFading(0.1, _rng())
        f.power_gain(1.0)
        with pytest.raises(ChannelError):
            f.power_gain(0.5)

    def test_invalid_params(self):
        with pytest.raises(ChannelError):
            RayleighFading(0.0, _rng())
        with pytest.raises(ChannelError):
            RayleighFading(0.1, _rng(), kernel="sinc")
        with pytest.raises(ChannelError):
            RayleighFading(0.1, _rng(), rician_k=-1.0)

    def test_decorrelates_past_coherence_time(self):
        before, after = [], []
        for i in range(4000):
            f = RayleighFading(0.05, _rng(f"d{i}"))
            before.append(f.power_gain(0.0))
            after.append(f.power_gain(1.0))  # 20 coherence times later
        rho = np.corrcoef(before, after)[0, 1]
        assert abs(rho) < 0.05
