"""DataChannel: transmission ledger and collision detection."""

import pytest

from repro.channel import ChannelState, DataChannel
from repro.errors import MacError
from repro.sim import Simulator


@pytest.fixture()
def chan():
    return DataChannel(Simulator())


class TestStates:
    def test_starts_idle(self, chan):
        assert chan.state is ChannelState.IDLE and chan.is_idle

    def test_single_transmission_is_receive(self, chan):
        chan.begin(1, 0.005)
        assert chan.state is ChannelState.RECEIVE

    def test_overlap_is_collision(self, chan):
        chan.begin(1, 0.005)
        chan.begin(2, 0.005)
        assert chan.state is ChannelState.COLLISION

    def test_idle_after_all_end(self, chan):
        r1 = chan.begin(1, 0.005)
        r2 = chan.begin(2, 0.005)
        chan.abort(r1)
        assert chan.state is ChannelState.COLLISION
        chan.abort(r2)
        assert chan.state is ChannelState.IDLE


class TestCollisionSemantics:
    def test_both_records_corrupted(self, chan):
        r1 = chan.begin(1, 0.005)
        r2 = chan.begin(2, 0.005)
        assert r1.corrupted and r2.corrupted

    def test_clean_when_sequential(self, chan):
        r1 = chan.begin(1, 0.005)
        chan.end(r1)
        r2 = chan.begin(2, 0.005)
        assert not r1.corrupted and not r2.corrupted

    def test_three_way_collision_counts_once(self, chan):
        chan.begin(1, 0.005)
        chan.begin(2, 0.005)
        chan.begin(3, 0.005)
        assert chan.total_collisions == 1

    def test_new_collision_episode_counts_again(self, chan):
        r1 = chan.begin(1, 0.005)
        r2 = chan.begin(2, 0.005)
        chan.abort(r1)
        chan.abort(r2)
        r3 = chan.begin(3, 0.005)
        chan.begin(4, 0.005)
        assert chan.total_collisions == 2
        assert r3.corrupted

    def test_late_joiner_also_corrupted(self, chan):
        r1 = chan.begin(1, 0.005)
        r2 = chan.begin(2, 0.005)
        chan.abort(r2)
        # Channel still busy with r1 (already corrupted); a third arrival
        # collides with it.
        r3 = chan.begin(3, 0.005)
        assert r3.corrupted and r1.corrupted


class TestObservers:
    def test_on_busy_fires_on_first_only(self, chan):
        hits = []
        chan.on_busy = lambda rec: hits.append(rec.sender_id)
        chan.begin(1, 0.005)
        chan.begin(2, 0.005)
        assert hits == [1]

    def test_on_collision_receives_colliders(self, chan):
        got = []
        chan.on_collision = lambda recs: got.append(sorted(r.sender_id for r in recs))
        chan.begin(1, 0.005)
        chan.begin(2, 0.005)
        assert got == [[1, 2]]

    def test_on_idle_fires_when_cleared(self, chan):
        hits = []
        chan.on_idle = lambda: hits.append(True)
        r = chan.begin(1, 0.005)
        chan.end(r)
        assert hits == [True]


class TestMisuse:
    def test_double_transmit_same_sender(self, chan):
        chan.begin(1, 0.005)
        with pytest.raises(MacError):
            chan.begin(1, 0.005)

    def test_end_twice_rejected(self, chan):
        r = chan.begin(1, 0.005)
        chan.end(r)
        with pytest.raises(MacError):
            chan.end(r)

    def test_nonpositive_duration_rejected(self, chan):
        with pytest.raises(MacError):
            chan.begin(1, 0.0)

    def test_record_properties(self, chan):
        r = chan.begin(7, 0.004)
        assert r.planned_end_s == pytest.approx(chan.sim.now + 0.004)
        assert chan.active_senders == [7]
