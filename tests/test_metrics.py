"""Metrics: collectors, lifetime, fairness, summary."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.metrics import (
    TimeSeriesCollector,
    death_spread_s,
    first_death_s,
    jain_index,
    last_death_s,
    mean_snapshot_std,
    network_lifetime_s,
    queue_length_std,
    summarize,
)
from repro.sim import Simulator


class TestTimeSeriesCollector:
    def test_samples_on_cadence(self):
        sim = Simulator()
        values = iter(range(100))
        col = TimeSeriesCollector(sim, 1.0, lambda: next(values)).start()
        sim.run_until(5.0)
        assert col.times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert col.values == [0, 1, 2, 3, 4, 5]
        assert col.n_samples == 6

    def test_no_start_sample_option(self):
        sim = Simulator()
        col = TimeSeriesCollector(sim, 1.0, lambda: 7, sample_at_start=False).start()
        sim.run_until(2.5)
        assert col.times == [1.0, 2.0]

    def test_stop(self):
        sim = Simulator()
        col = TimeSeriesCollector(sim, 1.0, lambda: 1).start()
        sim.run_until(2.0)
        col.stop()
        sim.run_until(10.0)
        assert col.n_samples == 3

    def test_as_arrays(self):
        sim = Simulator()
        col = TimeSeriesCollector(sim, 0.5, lambda: sim.now * 2).start()
        sim.run_until(2.0)
        t, v = col.as_arrays()
        np.testing.assert_allclose(v, t * 2)

    def test_value_at(self):
        sim = Simulator()
        source = iter([10, 20, 30, 40])
        col = TimeSeriesCollector(sim, 1.0, lambda: next(source)).start()
        sim.run_until(3.0)
        assert col.value_at(1.5) == 20
        assert col.value_at(3.0) == 40
        with pytest.raises(ExperimentError):
            col.value_at(-0.1)

    def test_double_start_rejected(self):
        sim = Simulator()
        col = TimeSeriesCollector(sim, 1.0, lambda: 1).start()
        with pytest.raises(ExperimentError):
            col.start()

    def test_bad_interval(self):
        with pytest.raises(ExperimentError):
            TimeSeriesCollector(Simulator(), 0.0, lambda: 1)


class TestLifetime:
    def test_lifetime_at_fraction(self):
        deaths = [10.0, 20.0, 30.0, 40.0, None]
        # 5 nodes, 0.5 dead fraction -> need floor(2.5)+1 = 3 deaths.
        assert network_lifetime_s(deaths, 5, 0.5) == 30.0

    def test_censored_returns_none(self):
        deaths = [10.0, None, None, None, None]
        assert network_lifetime_s(deaths, 5, 0.5) is None

    def test_full_fraction_needs_all(self):
        deaths = [1.0, 2.0, 3.0]
        assert network_lifetime_s(deaths, 3, 1.0) == 3.0
        assert network_lifetime_s([1.0, 2.0, None], 3, 1.0) is None

    def test_paper_default_fraction(self):
        deaths = [float(i) for i in range(1, 101)]
        # 80% of 100 -> 81st death.
        assert network_lifetime_s(deaths, 100, 0.8) == 81.0

    def test_first_last_spread(self):
        deaths = [5.0, None, 9.0, 2.0]
        assert first_death_s(deaths) == 2.0
        assert last_death_s(deaths) == 9.0
        assert death_spread_s(deaths) == 7.0

    def test_no_deaths(self):
        assert first_death_s([None, None]) is None
        assert death_spread_s([None]) is None

    def test_validation(self):
        with pytest.raises(ExperimentError):
            network_lifetime_s([1.0], 0, 0.8)
        with pytest.raises(ExperimentError):
            network_lifetime_s([1.0], 5, 0.0)


class TestFairness:
    def test_queue_std(self):
        assert queue_length_std([3, 3, 3]) == 0.0
        assert queue_length_std([0, 10]) == pytest.approx(5.0)

    def test_mean_snapshot_std(self):
        snaps = [[0, 10], [0, 0], [2, 6]]
        assert mean_snapshot_std(snaps) == pytest.approx((5.0 + 0.0 + 2.0) / 3)

    def test_mean_snapshot_skips_empty(self):
        assert mean_snapshot_std([[], [1, 3]]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            queue_length_std([])
        with pytest.raises(ExperimentError):
            mean_snapshot_std([[], []])

    def test_jain_bounds(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_index([0, 0]) == 1.0

    def test_jain_negative_rejected(self):
        with pytest.raises(ExperimentError):
            jain_index([-1, 2])


class TestSummary:
    def test_single_value(self):
        s = summarize([4.2])
        assert s.n == 1 and s.mean == 4.2 and s.std == 0.0
        assert s.ci_low == s.ci_high == 4.2

    def test_mean_and_ci_cover_truth(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            vals = rng.normal(10.0, 2.0, size=8)
            s = summarize(list(vals))
            if s.ci_low <= 10.0 <= s.ci_high:
                hits += 1
        # 95% CI should cover ~95% of the time.
        assert hits / 200 == pytest.approx(0.95, abs=0.05)

    def test_none_dropped(self):
        s = summarize([1.0, None, 3.0])
        assert s.n == 2 and s.mean == 2.0

    def test_all_none_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([None, None])

    def test_str_formats(self):
        assert "±" in str(summarize([1.0, 2.0, 3.0]))
        assert "±" not in str(summarize([1.0]))

    def test_bad_confidence(self):
        with pytest.raises(ExperimentError):
            summarize([1.0, 2.0], confidence=1.5)
