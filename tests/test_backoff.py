"""Backoff policy: the paper's rand * 2^r * 20us * CW rule."""

import numpy as np
import pytest

from repro.config import MacConfig
from repro.errors import MacError
from repro.mac import BackoffPolicy
from repro.rng import RngRegistry


def _policy(seed=1, **kw):
    return BackoffPolicy(MacConfig(**kw), RngRegistry(seed).stream("backoff"))


class TestBackoffPolicy:
    def test_within_bounds_r0(self):
        p = _policy()
        for _ in range(200):
            d = p.delay_s(0)
            assert 0.0 <= d <= 20e-6 * 10  # 200 us max at r=0

    def test_doubles_with_retry(self):
        p = _policy()
        assert p.max_delay_s(0) == pytest.approx(200e-6)
        assert p.max_delay_s(1) == pytest.approx(400e-6)
        assert p.max_delay_s(6) == pytest.approx(200e-6 * 64)

    def test_exponent_saturates_at_max_retries(self):
        p = _policy()
        assert p.max_delay_s(6) == p.max_delay_s(20)

    def test_mean_is_half_max(self):
        p = _policy()
        draws = [p.delay_s(3) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(p.max_delay_s(3) / 2, rel=0.05)

    def test_uniform_distribution(self):
        p = _policy()
        draws = np.array([p.delay_s(0) for _ in range(4000)]) / p.max_delay_s(0)
        # Quartiles of U(0,1).
        assert np.quantile(draws, 0.25) == pytest.approx(0.25, abs=0.03)
        assert np.quantile(draws, 0.75) == pytest.approx(0.75, abs=0.03)

    def test_exhausted(self):
        p = _policy()
        assert not p.exhausted(0)
        assert not p.exhausted(6)
        assert p.exhausted(7)

    def test_negative_retry_rejected(self):
        with pytest.raises(MacError):
            _policy().delay_s(-1)

    def test_draw_counter(self):
        p = _policy()
        for _ in range(5):
            p.delay_s(0)
        assert p.draws == 5

    def test_custom_config(self):
        p = _policy(contention_window=5, backoff_slot_s=40e-6)
        assert p.max_delay_s(0) == pytest.approx(200e-6)

    def test_deterministic_given_seed(self):
        a = _policy(seed=9)
        b = _policy(seed=9)
        assert [a.delay_s(2) for _ in range(10)] == [b.delay_s(2) for _ in range(10)]
