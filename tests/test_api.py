"""The repro.api layer: registry, Scenario, Campaign, ResultStore, engine."""

import json

import pytest

from repro.api import (
    Campaign,
    ResultStore,
    RunOptions,
    RunResult,
    Scenario,
    get_experiment,
    list_experiments,
    run_scenarios,
    simulate,
)
from repro.api.registry import experiment
from repro.config import Protocol
from repro.errors import ExperimentError


def _smoke(protocol=Protocol.PURE_LEACH, **runtime):
    runtime.setdefault("horizon_s", 8.0)
    runtime.setdefault("sample_interval_s", 2.0)
    return Scenario.from_preset("smoke", protocol).with_runtime(**runtime)


class TestRegistry:
    def test_builtins_registered(self):
        names = {s.name for s in list_experiments()}
        assert {"fig8", "fig9", "fig10", "fig11", "fig12",
                "table1", "table2", "ext-perf"} <= names

    def test_lookup_and_kinds(self):
        assert get_experiment("fig9").kind == "figure"
        assert get_experiment("table1").kind == "table"
        assert get_experiment("ext-perf").kind == "extension"

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_registration_and_option_dispatch(self):
        @experiment("_test-exp", kind="extension", summary="scratch")
        def _exp(preset="quick"):
            return preset

        try:
            spec = get_experiment("_test-exp")
            assert spec.summary == "scratch"
            # Declared options pass through; undeclared ones are dropped.
            assert spec.run(preset="smoke", jobs=4, seeds=(1, 2)) == "smoke"
        finally:
            from repro.api import registry

            del registry._REGISTRY["_test-exp"]

    def test_conflicting_registration_rejected(self):
        @experiment("_test-dup")
        def _first():
            pass

        try:
            with pytest.raises(ExperimentError):
                @experiment("_test-dup")
                def _second():
                    pass
        finally:
            from repro.api import registry

            del registry._REGISTRY["_test-dup"]

    def test_idempotent_reregistration(self):
        def _fn():
            pass

        try:
            experiment("_test-idem")(_fn)
            experiment("_test-idem")(_fn)  # same function: no error
        finally:
            from repro.api import registry

            del registry._REGISTRY["_test-idem"]


class TestScenario:
    def test_overrides_do_not_mutate(self):
        base = _smoke()
        derived = base.with_load(20.0).with_seed(9).with_(n_nodes=14)
        assert base.config.traffic.packets_per_second == 5.0
        assert base.config.seed == 1
        assert derived.config.traffic.packets_per_second == 20.0
        assert derived.config.seed == 9
        assert derived.config.n_nodes == 14
        # Untouched sections are shared values, not re-validated copies.
        assert derived.config.energy == base.config.energy

    def test_with_sub_and_runtime(self):
        sc = _smoke().with_sub("mac", max_retries=1).with_runtime(
            stop_when_dead=True
        )
        assert sc.config.mac.max_retries == 1
        assert sc.options.stop_when_dead is True
        with pytest.raises(ExperimentError):
            sc.with_sub("warp_drive", speed=9)

    def test_from_preset_tags_and_protocol(self):
        sc = Scenario.from_preset("smoke", Protocol.CAEM_FIXED, load_pps=7.0)
        assert sc.tags["preset"] == "smoke"
        assert sc.config.protocol is Protocol.CAEM_FIXED
        assert sc.config.traffic.packets_per_second == 7.0

    def test_tagged_merges(self):
        sc = _smoke().tagged(a=1).tagged(b=2, a=3)
        assert sc.tags["a"] == 3 and sc.tags["b"] == 2

    def test_run_executes(self):
        run = _smoke().run()
        assert isinstance(run, RunResult)
        assert run.generated > 0

    def test_bad_runtime_rejected(self):
        with pytest.raises(ExperimentError):
            RunOptions(horizon_s=0.0)


class TestEngine:
    def test_simulate_matches_scenario_run(self):
        sc = _smoke(horizon_s=6.0)
        a = simulate(sc.config, sc.options).to_dict()
        b = sc.run().to_dict()
        a["wall_time_s"] = b["wall_time_s"] = 0.0  # only field allowed to vary
        assert a == b


class TestResultStore:
    def test_jsonl_roundtrip(self, tmp_path):
        runs = run_scenarios([_smoke(), _smoke().with_seed(2)])
        store = ResultStore(tmp_path / "runs.jsonl")
        store.extend(runs)
        loaded = ResultStore(tmp_path / "runs.jsonl").load()
        assert loaded == runs  # full fidelity, time series included

    def test_csv_scalar_roundtrip(self, tmp_path):
        run = _smoke().run()
        store = ResultStore(tmp_path / "runs.csv")
        store.append(run)
        (loaded,) = ResultStore(tmp_path / "runs.csv").load()
        assert loaded.protocol == run.protocol
        assert loaded.seed == run.seed
        assert loaded.delivered == run.delivered
        assert loaded.total_consumed_j == pytest.approx(run.total_consumed_j)
        assert loaded.mean_energy_j == []  # series are dropped by CSV

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            ResultStore(tmp_path / "runs.parquet")

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").load() == []


class TestCampaign:
    def test_grid_expansion_order_and_tags(self):
        camp = (
            Campaign(_smoke(), name="g")
            .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_FIXED],
                  load_pps=[2.0, 4.0])
            .seeds([1, 2])
        )
        scenarios = camp.scenarios()
        assert len(camp) == len(scenarios) == 8
        # Axis order: protocol (outer) x load x seed (inner).
        assert [s.config.seed for s in scenarios[:2]] == [1, 2]
        assert scenarios[0].config.protocol is Protocol.PURE_LEACH
        assert scenarios[-1].config.protocol is Protocol.CAEM_FIXED
        assert scenarios[3].tags["load_pps"] == 4.0

    def test_dotted_axis(self):
        camp = Campaign(_smoke()).over(**{"mac.max_retries": [0, 2]})
        retries = [s.config.mac.max_retries for s in camp.scenarios()]
        assert retries == [0, 2]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ExperimentError):
            Campaign(_smoke()).over(warp_factor=[1, 2])

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError):
            Campaign(_smoke()).over(load_pps=[])

    def test_select_and_store(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        camp = Campaign(_smoke(horizon_s=5.0)).over(load_pps=[2.0, 6.0])
        result = camp.run(store=store)
        assert len(result) == 2
        assert len(result.select(load_pps=6.0)) == 1
        assert len(store) == 2

    @pytest.mark.slow
    def test_quick_scale_figure_cross_parallelism_identical(self):
        """Registry + campaign determinism at quick scale (full lifetime
        sweeps; excluded from the default run — select with -m slow)."""
        fig = get_experiment("fig9")
        serial = fig.run(preset="quick", seeds=(1,), jobs=1)
        fanned = fig.run(preset="quick", seeds=(1,), jobs=3)
        assert serial.rows == fanned.rows
        assert serial.notes == fanned.notes

    def test_determinism_across_parallelism(self):
        """jobs=1 and jobs=4 must yield byte-identical metrics."""
        def build():
            return (
                Campaign(_smoke(horizon_s=6.0))
                .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE])
                .seeds([1, 2])
            )

        serial = build().run(jobs=1)
        parallel = build().run(jobs=4)
        assert len(serial.runs) == len(parallel.runs) == 4
        # wall_time_s is the only field allowed to differ.
        for rx, ry in zip(serial.runs, parallel.runs):
            a = json.dumps({**rx.to_dict(), "wall_time_s": 0}, sort_keys=True)
            b = json.dumps({**ry.to_dict(), "wall_time_s": 0}, sort_keys=True)
            assert a == b
