"""Crash-safety and forward-compatibility of the result stores.

Satellite coverage for the service PR: torn-tail JSONL tolerance,
row-level ``format_version`` gating, and the full missing-cell report
``run --from`` gives on a partial store.
"""

import json

import pytest

from repro.api import Campaign, ResultStore, Scenario
from repro.api.pairing import describe_key, pair_stored_runs, scenario_key
from repro.api.store import STORE_FORMAT_VERSION, check_format_version
from repro.config import Protocol
from repro.errors import ExperimentError


def _scenarios(n_seeds=2):
    base = Scenario.from_preset("smoke").with_runtime(
        horizon_s=5.0, sample_interval_s=1.0
    )
    campaign = (
        Campaign(base)
        .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE])
        .seeds(list(range(1, n_seeds + 1)))
    )
    return campaign.scenarios()


def _populated(tmp_path, scenarios):
    store = ResultStore(tmp_path / "runs.jsonl")
    from repro.api import run_scenarios

    runs = run_scenarios(scenarios, store=store)
    return store, runs


class TestTornTail:
    def test_truncated_trailing_record_is_tolerated(self, tmp_path):
        """A crash mid-append leaves a torn final line; the reader serves
        every completed row instead of refusing the whole file."""
        scenarios = _scenarios()
        store, runs = _populated(tmp_path, scenarios)
        raw = store.path.read_bytes()
        assert raw.endswith(b"\n")
        # Chop the file mid-way through the final record.
        store.path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
        survivors = store.load()
        assert len(survivors) == len(runs) - 1
        assert [r.to_dict() for r in survivors] == \
            [r.to_dict() for r in runs[:-1]]

    def test_append_after_torn_tail_would_be_detected(self, tmp_path):
        """Only a torn *final* line is forgiven: corruption mid-file (a
        torn line that got appended over) still raises loudly."""
        store, runs = _populated(tmp_path, _scenarios(n_seeds=1))
        lines = store.path.read_text().splitlines(keepends=True)
        lines[0] = lines[0][: len(lines[0]) // 2].rstrip("\n") + "\n"
        store.path.write_text("".join(lines))
        with pytest.raises(ExperimentError, match="corrupt record"):
            store.load()

    def test_empty_and_blank_lines_are_fine(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.path.write_text("\n")
        assert store.load() == []


class TestFormatVersion:
    def test_rows_are_stamped(self, tmp_path):
        store, _ = _populated(tmp_path, _scenarios(n_seeds=1))
        for line in store.path.read_text().splitlines():
            assert json.loads(line)["format_version"] == STORE_FORMAT_VERSION

    def test_legacy_unstamped_rows_accepted(self, tmp_path):
        """Pre-version stores (earlier PRs) load without complaint."""
        store, runs = _populated(tmp_path, _scenarios(n_seeds=1))
        stripped = []
        for line in store.path.read_text().splitlines():
            record = json.loads(line)
            record.pop("format_version")
            stripped.append(json.dumps(record))
        store.path.write_text("\n".join(stripped) + "\n")
        assert len(store.load()) == len(runs)

    @pytest.mark.parametrize("suffix", [".jsonl", ".csv"])
    def test_newer_rows_refused_with_upgrade_hint(self, tmp_path, suffix):
        store = ResultStore(tmp_path / f"runs{suffix}")
        scenarios = _scenarios(n_seeds=1)
        from repro.api import run_scenarios

        run_scenarios(scenarios[:1], store=store)
        if suffix == ".jsonl":
            record = json.loads(store.path.read_text())
            record["format_version"] = 99
            store.path.write_text(json.dumps(record) + "\n")
        else:
            import csv as csv_mod

            with store.path.open(newline="") as fh:
                rows = list(csv_mod.reader(fh))
            version_col = rows[0].index("format_version")
            for row in rows[1:]:
                row[version_col] = "99"
            with store.path.open("w", newline="") as fh:
                csv_mod.writer(fh).writerows(rows)
        with pytest.raises(ExperimentError, match="upgrade"):
            store.load()

    def test_check_format_version_contract(self):
        check_format_version(None, "x")  # legacy: fine
        check_format_version(STORE_FORMAT_VERSION, "x")
        with pytest.raises(ExperimentError, match="format version"):
            check_format_version(STORE_FORMAT_VERSION + 1, "x")
        with pytest.raises(ExperimentError, match="format_version"):
            check_format_version("banana", "x")
        with pytest.raises(ExperimentError, match="format version"):
            check_format_version(0, "x")


class TestMissingCellReport:
    def test_every_missing_cell_listed_not_just_first(self, tmp_path):
        """`run --from` on a partial store names ALL the holes."""
        scenarios = _scenarios(n_seeds=2)  # 4 cells
        _, runs = _populated(tmp_path, scenarios)
        paired, missing = pair_stored_runs(scenarios, runs[:1], "exp-x")
        assert len(missing) == 3
        assert missing == [scenario_key(s) for s in scenarios[1:]]
        assert paired[0] is not None and paired[1] is None
        # And each hole renders to a human-readable coordinate line.
        for key in missing:
            text = describe_key(key)
            assert "seed=" in text and "config=" in text

    def test_duplicate_rows_consumed_in_order(self, tmp_path):
        scenarios = _scenarios(n_seeds=1)[:1]
        _, runs = _populated(tmp_path, scenarios)
        doubled = list(runs) + list(runs)
        paired, missing = pair_stored_runs(
            scenarios * 2, doubled, "exp-x"
        )
        assert missing == []
        assert len(paired) == 2

    def test_other_experiment_stamp_rejected(self, tmp_path):
        scenarios = _scenarios(n_seeds=1)[:1]
        _, runs = _populated(tmp_path, scenarios)
        runs[0].experiment = "somebody-else"
        _, missing = pair_stored_runs(scenarios, runs, "exp-x")
        assert len(missing) == 1
