"""Crash-safety and forward-compatibility of the result stores.

Satellite coverage for the service PRs: torn-tail JSONL tolerance,
row-level ``format_version`` gating, the full missing-cell report
``run --from`` gives on a partial store, and WAL crash recovery when a
database writer is SIGKILLed mid-batch.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import Campaign, ResultStore, Scenario
from repro.api.pairing import describe_key, pair_stored_runs, scenario_key
from repro.api.store import STORE_FORMAT_VERSION, check_format_version
from repro.config import Protocol
from repro.errors import ExperimentError


def _scenarios(n_seeds=2):
    base = Scenario.from_preset("smoke").with_runtime(
        horizon_s=5.0, sample_interval_s=1.0
    )
    campaign = (
        Campaign(base)
        .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE])
        .seeds(list(range(1, n_seeds + 1)))
    )
    return campaign.scenarios()


def _populated(tmp_path, scenarios):
    store = ResultStore(tmp_path / "runs.jsonl")
    from repro.api import run_scenarios

    runs = run_scenarios(scenarios, store=store)
    return store, runs


class TestTornTail:
    def test_truncated_trailing_record_is_tolerated(self, tmp_path):
        """A crash mid-append leaves a torn final line; the reader serves
        every completed row instead of refusing the whole file."""
        scenarios = _scenarios()
        store, runs = _populated(tmp_path, scenarios)
        raw = store.path.read_bytes()
        assert raw.endswith(b"\n")
        # Chop the file mid-way through the final record.
        store.path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
        survivors = store.load()
        assert len(survivors) == len(runs) - 1
        assert [r.to_dict() for r in survivors] == \
            [r.to_dict() for r in runs[:-1]]

    def test_append_after_torn_tail_would_be_detected(self, tmp_path):
        """Only a torn *final* line is forgiven: corruption mid-file (a
        torn line that got appended over) still raises loudly."""
        store, runs = _populated(tmp_path, _scenarios(n_seeds=1))
        lines = store.path.read_text().splitlines(keepends=True)
        lines[0] = lines[0][: len(lines[0]) // 2].rstrip("\n") + "\n"
        store.path.write_text("".join(lines))
        with pytest.raises(ExperimentError, match="corrupt record"):
            store.load()

    def test_empty_and_blank_lines_are_fine(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.path.write_text("\n")
        assert store.load() == []


class TestFormatVersion:
    def test_rows_are_stamped(self, tmp_path):
        store, _ = _populated(tmp_path, _scenarios(n_seeds=1))
        for line in store.path.read_text().splitlines():
            assert json.loads(line)["format_version"] == STORE_FORMAT_VERSION

    def test_legacy_unstamped_rows_accepted(self, tmp_path):
        """Pre-version stores (earlier PRs) load without complaint."""
        store, runs = _populated(tmp_path, _scenarios(n_seeds=1))
        stripped = []
        for line in store.path.read_text().splitlines():
            record = json.loads(line)
            record.pop("format_version")
            stripped.append(json.dumps(record))
        store.path.write_text("\n".join(stripped) + "\n")
        assert len(store.load()) == len(runs)

    @pytest.mark.parametrize("suffix", [".jsonl", ".csv"])
    def test_newer_rows_refused_with_upgrade_hint(self, tmp_path, suffix):
        store = ResultStore(tmp_path / f"runs{suffix}")
        scenarios = _scenarios(n_seeds=1)
        from repro.api import run_scenarios

        run_scenarios(scenarios[:1], store=store)
        if suffix == ".jsonl":
            record = json.loads(store.path.read_text())
            record["format_version"] = 99
            store.path.write_text(json.dumps(record) + "\n")
        else:
            import csv as csv_mod

            with store.path.open(newline="") as fh:
                rows = list(csv_mod.reader(fh))
            version_col = rows[0].index("format_version")
            for row in rows[1:]:
                row[version_col] = "99"
            with store.path.open("w", newline="") as fh:
                csv_mod.writer(fh).writerows(rows)
        with pytest.raises(ExperimentError, match="upgrade"):
            store.load()

    def test_check_format_version_contract(self):
        check_format_version(None, "x")  # legacy: fine
        check_format_version(STORE_FORMAT_VERSION, "x")
        with pytest.raises(ExperimentError, match="format version"):
            check_format_version(STORE_FORMAT_VERSION + 1, "x")
        with pytest.raises(ExperimentError, match="format_version"):
            check_format_version("banana", "x")
        with pytest.raises(ExperimentError, match="format version"):
            check_format_version(0, "x")


class TestMissingCellReport:
    def test_every_missing_cell_listed_not_just_first(self, tmp_path):
        """`run --from` on a partial store names ALL the holes."""
        scenarios = _scenarios(n_seeds=2)  # 4 cells
        _, runs = _populated(tmp_path, scenarios)
        paired, missing = pair_stored_runs(scenarios, runs[:1], "exp-x")
        assert len(missing) == 3
        assert missing == [scenario_key(s) for s in scenarios[1:]]
        assert paired[0] is not None and paired[1] is None
        # And each hole renders to a human-readable coordinate line.
        for key in missing:
            text = describe_key(key)
            assert "seed=" in text and "config=" in text

    def test_duplicate_rows_consumed_in_order(self, tmp_path):
        scenarios = _scenarios(n_seeds=1)[:1]
        _, runs = _populated(tmp_path, scenarios)
        doubled = list(runs) + list(runs)
        paired, missing = pair_stored_runs(
            scenarios * 2, doubled, "exp-x"
        )
        assert missing == []
        assert len(paired) == 2

    def test_other_experiment_stamp_rejected(self, tmp_path):
        scenarios = _scenarios(n_seeds=1)[:1]
        _, runs = _populated(tmp_path, scenarios)
        runs[0].experiment = "somebody-else"
        _, missing = pair_stored_runs(scenarios, runs, "exp-x")
        assert len(missing) == 1


_WRITER_SCRIPT = """\
import json, sqlite3, sys, time

from repro.api.result import RunResult
from repro.api.store import STORE_FORMAT_VERSION
from repro.service import DbResultStore

db_path, runs_json = sys.argv[1], sys.argv[2]
runs = [RunResult.from_dict(d)
        for d in json.loads(open(runs_json).read())]

store = DbResultStore(db_path)
store.extend(runs[:2])  # a committed batch: must survive the crash

# Now die "mid-batch": rows INSERTed inside an open transaction, no
# COMMIT ever issued — exactly the window DbResultStore.extend is in
# when a box loses power.
conn = sqlite3.connect(db_path, isolation_level=None)
conn.execute("BEGIN IMMEDIATE")
for run in runs[2:]:
    conn.execute(
        "INSERT INTO runs (experiment, config_digest, seed, protocol, "
        "load_pps, horizon_s, n_nodes, format_version, payload) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
        (run.experiment, run.config_digest, run.seed, run.protocol,
         run.load_pps, run.horizon_s, run.n_nodes,
         STORE_FORMAT_VERSION, json.dumps(run.to_dict())),
    )
print("MIDBATCH", flush=True)
time.sleep(120)  # the parent SIGKILLs us here
"""


class TestWriterCrash:
    def test_sigkilled_writer_mid_batch_recovers_and_resumes(
        self, tmp_path
    ):
        """SIGKILL a database writer inside an uncommitted batch: WAL
        recovery keeps every committed batch and discards the torn one,
        and a manifest-tracked resume completes the campaign without
        re-simulating the survivors."""
        from repro.api import run_scenarios
        from repro.service import DbResultStore, RunCache

        scenarios = _scenarios(n_seeds=2)  # 4 cells
        runs = run_scenarios(scenarios)
        runs_json = tmp_path / "runs.json"
        runs_json.write_text(json.dumps([r.to_dict() for r in runs]))
        script = tmp_path / "writer.py"
        script.write_text(_WRITER_SCRIPT)
        db = tmp_path / "crash.sqlite"

        src = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, str(script), str(db), str(runs_json)],
            env=dict(os.environ, PYTHONPATH=src),
            stdout=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stdout.readline()  # blocks until mid-batch
            assert line.strip() == "MIDBATCH"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()

        # Reopen: the committed batch is there, the torn one is not.
        store = DbResultStore(db)
        survivors = store.load()
        assert [r.to_dict() for r in survivors] == \
            [r.to_dict() for r in runs[:2]]

        # Resume: the survivors are cache hits, only the torn batch's
        # cells re-simulate, and the manifest closes complete.
        cache = RunCache(store, manifest=True)
        resumed = cache.execute(scenarios)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.last_manifest.complete
        for a, b in zip(runs, resumed):
            da, db_ = a.to_dict(), b.to_dict()
            da.pop("wall_time_s"), db_.pop("wall_time_s")
            assert da == db_
