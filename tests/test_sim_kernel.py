"""Discrete-event kernel: scheduler, simulator, events."""

import pytest

from repro.errors import SchedulerError, SimulationError
from repro.sim import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        out = []
        q.push(2.0, out.append, ("b",))
        q.push(1.0, out.append, ("a",))
        q.push(3.0, out.append, ("c",))
        while (call := q.pop()) is not None:
            call.fn(*call.args)
        assert out == ["a", "b", "c"]

    def test_fifo_for_ties(self):
        q = EventQueue()
        order = [q.push(1.0, lambda: None).seq for _ in range(5)]
        popped = [q.pop().seq for _ in range(5)]
        assert popped == order

    def test_priority_breaks_ties_before_seq(self):
        q = EventQueue()
        q.push(1.0, lambda: "late", priority=5)
        hi = q.push(1.0, lambda: "early", priority=-5)
        assert q.pop() is hi

    def test_len_counts_live_only(self):
        q = EventQueue()
        h1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        h1.cancel()
        assert len(q) == 1

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert len(q) == 0

    def test_cancelled_not_popped(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        keep = q.push(2.0, lambda: None)
        h.cancel()
        assert q.pop() is keep
        assert q.pop() is None

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        h.cancel()
        assert q.peek_time() == 5.0

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(SchedulerError):
            q.push(float("nan"), lambda: None)

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert not q and q.pop() is None


class TestSimulatorScheduling:
    def test_run_executes_in_time_order(self):
        sim = Simulator()
        out = []
        sim.call_in(1.5, out.append, "late")
        sim.call_in(0.5, out.append, "early")
        sim.run()
        assert out == ["early", "late"]
        assert sim.now == 1.5

    def test_call_at_absolute(self):
        sim = Simulator()
        seen = {}
        sim.call_at(2.0, lambda: seen.setdefault("t", sim.now))
        sim.run()
        assert seen["t"] == 2.0

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.call_in(1.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulerError):
            sim.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulerError):
            Simulator().call_in(-0.1, lambda: None)

    def test_run_until_advances_clock_exactly(self):
        sim = Simulator()
        sim.call_in(10.0, lambda: None)
        sim.run_until(5.0)
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_includes_boundary(self):
        sim = Simulator()
        hits = []
        sim.call_at(5.0, hits.append, 1)
        sim.run_until(5.0)
        assert hits == [1]

    def test_run_until_composes(self):
        sim = Simulator()
        hits = []
        for t in (1.0, 2.0, 3.0):
            sim.call_at(t, hits.append, t)
        sim.run_until(1.5)
        assert hits == [1.0]
        sim.run_until(3.0)
        assert hits == [1.0, 2.0, 3.0]

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.run_until(4.0)
        with pytest.raises(SchedulerError):
            sim.run_until(3.0)

    def test_stop_breaks_run(self):
        sim = Simulator()
        out = []
        sim.call_in(1.0, lambda: (out.append("a"), sim.stop()))
        sim.call_in(2.0, out.append, "b")
        sim.run()
        assert out == ["a"]
        assert sim.pending_events == 1

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        out = []

        def first():
            out.append("first")
            sim.call_in(1.0, lambda: out.append("second"))

        sim.call_in(1.0, first)
        sim.run()
        assert out == ["first", "second"]
        assert sim.now == 2.0

    def test_cancelled_handle_not_executed(self):
        sim = Simulator()
        out = []
        h = sim.call_in(1.0, out.append, "x")
        h.cancel()
        sim.run()
        assert out == []

    def test_max_events_bound(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.call_in(float(i + 1), out.append, i)
        sim.run(max_events=3)
        assert out == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.call_in(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        err = {}

        def inner():
            try:
                sim.run()
            except SimulationError as exc:
                err["e"] = exc

        sim.call_in(1.0, inner)
        sim.run()
        assert "e" in err

    def test_reset(self):
        sim = Simulator()
        sim.call_in(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0 and sim.pending_events == 0

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        out = []
        for i in range(5):
            sim.call_at(1.0, out.append, i)
        sim.run()
        assert out == [0, 1, 2, 3, 4]


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event("e")
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]

    def test_fail_delivers_exception(self):
        sim = Simulator()
        ev = sim.event()
        got = []
        ev.add_callback(lambda e: got.append((e.failed, type(e.value))))
        ev.fail(RuntimeError("boom"))
        sim.run()
        assert got == [(True, RuntimeError)]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_late_callback_still_fires(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")
        sim.run()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == ["v"]

    def test_timeout_event(self):
        sim = Simulator()
        ev = sim.timeout(2.5, value="done")
        got = []
        ev.add_callback(lambda e: got.append((sim.now, e.value)))
        sim.run()
        assert got == [(2.5, "done")]

    def test_any_of_first_wins(self):
        sim = Simulator()
        slow = sim.timeout(5.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        comp = sim.any_of(slow, fast)
        got = []
        comp.add_callback(lambda e: got.append(e.value.value))
        sim.run()
        assert got == ["fast"]

    def test_all_of_collects_values(self):
        sim = Simulator()
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        comp = sim.all_of(a, b)
        got = []
        comp.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [("a", "b")]
        assert sim.now == 2.0

    def test_all_of_fails_fast(self):
        sim = Simulator()
        ok = sim.timeout(5.0)
        bad = sim.event()
        comp = sim.all_of(ok, bad)
        got = []
        comp.add_callback(lambda e: got.append(e.failed))
        bad.fail(ValueError("x"))
        sim.run_until(1.0)
        assert got == [True]

    def test_empty_composites_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of()
        with pytest.raises(SimulationError):
            sim.all_of()


class TestStrictScheduling:
    """The float-resolution guard shared by every periodic re-arm."""

    def test_strictly_after_normal_delay(self):
        from repro.sim import strictly_after

        assert strictly_after(10.0, 0.5) == 10.5

    def test_strictly_after_nudges_underflowed_target(self):
        import math

        from repro.sim import strictly_after

        now = 1e9
        tiny = 1e-12  # far below eps(1e9) ~ 1.2e-7
        assert now + tiny == now  # the raw target would not advance
        target = strictly_after(now, tiny)
        assert target > now
        assert target == math.nextafter(now, math.inf)

    def test_strictly_after_rejects_negative(self):
        from repro.sim import strictly_after

        with pytest.raises(SchedulerError):
            strictly_after(0.0, -1.0)

    def test_call_in_strict_advances_clock_at_large_times(self):
        """A periodic re-arm with an underflowing delay must not freeze
        the clock in a same-instant event storm (t >= 1e9 s regression)."""
        sim = Simulator(start_time=4e15)  # eps(4e15) ~ 0.5 s
        fired = []

        def rearm():
            fired.append(sim.now)
            if len(fired) < 100:
                sim.call_in_strict(0.05, rearm)  # 0.05 < eps: underflows

        sim.call_in_strict(0.05, rearm)
        sim.run(max_events=1000)
        assert len(fired) == 100
        # Strictly increasing times: the clock advanced at every firing.
        assert all(b > a for a, b in zip(fired, fired[1:]))

    def test_tone_train_advances_at_large_times(self):
        """The tone broadcaster's re-arm goes through the guard."""
        from repro.config import EnergyConfig
        from repro.energy import Battery, EnergyMeter, RadioEnergyModel
        from repro.mac import ToneBroadcaster, ToneChannelSpec, ToneKind

        sim = Simulator(start_time=1e15)  # eps(1e15) ~ 0.125 > pulse periods
        meter = EnergyMeter(
            sim, RadioEnergyModel(EnergyConfig()), Battery(10.0)
        )
        bcast = ToneBroadcaster(sim, ToneChannelSpec(), meter)
        bcast.start(ToneKind.IDLE)
        sim.run(max_events=500)
        assert sim.now > 1e15
        assert bcast.pulses_emitted["idle"] >= 100

    def test_network_settle_cadence_survives_large_offset(self):
        """Sub-resolution settle/round cadences keep the clock moving."""
        sim = Simulator(start_time=4e15)
        ticks = []

        def settle_tick():
            ticks.append(sim.now)
            if len(ticks) < 50:
                sim.call_in_strict(0.1, settle_tick)  # underflows at 4e15

        sim.call_in_strict(0.1, settle_tick)
        sim.run(max_events=200)
        assert len(ticks) == 50
        assert all(b > a for a, b in zip(ticks, ticks[1:]))

    def test_cbr_source_advances_at_large_times(self):
        """Traffic-source re-arms go through the guard too: a CBR interval
        below the clock resolution must not freeze the simulation."""
        from repro.traffic import make_source

        sim = Simulator(start_time=4e15)  # eps(4e15) ~ 0.5 s > 0.2 s interval
        got = []
        src = make_source("cbr", sim, 0, 100, got.append, 5.0, None)
        src.start()
        sim.run(max_events=50)
        assert len(got) == 50
        births = [p.birth_s for p in got]
        assert all(b > a for a, b in zip(births, births[1:]))
