"""The fault-injection harness and the supervised (fault-tolerant)
campaign executor.

Recovery machinery only counts if a test can make it fire on demand:
these tests inject deterministic worker crashes, hangs, torn store
writes and fsync failures (see ``repro.service.faults``) and assert the
supervisor's watchdog/retry/quarantine behaviour plus the stores'
crash-atomicity guarantees.
"""

import pytest

from repro.api import (
    Campaign,
    CampaignIncompleteError,
    ResultStore,
    Scenario,
    SupervisorConfig,
    run_scenarios,
    use_supervisor,
)
from repro.config import Protocol
from repro.errors import ReproError
from repro.service import DbResultStore
from repro.service.faults import (
    FAULTS_ENV,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    active_faults,
    inject_faults,
)


def _scenarios(n=2, horizon_s=5.0):
    base = Scenario.from_preset("smoke").with_runtime(
        horizon_s=horizon_s, sample_interval_s=1.0
    )
    camp = (
        Campaign(base)
        .over(protocol=[Protocol.PURE_LEACH])
        .seeds(list(range(1, n + 1)))
    )
    return camp.scenarios()


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ReproError, match="must be in"):
            FaultPlan(worker_crash_rate=1.5)
        with pytest.raises(ReproError, match="hang_s"):
            FaultPlan(hang_s=-1.0)

    def test_json_round_trip(self):
        plan = FaultPlan(seed=7, worker_crash_rate=0.3, torn_write_rate=0.1)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_knobs_rejected(self):
        with pytest.raises(ReproError, match="unknown fault knobs"):
            FaultPlan.from_json('{"worker_crash_rat": 1.0}')
        with pytest.raises(ReproError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_any_enabled(self):
        assert not FaultPlan().any_enabled
        assert FaultPlan(fsync_fail_rate=0.01).any_enabled


class TestFaultInjector:
    def test_roll_is_deterministic_and_rate_shaped(self):
        injector = FaultInjector(FaultPlan(seed=3))
        draws = [
            injector.roll("site", f"key-{i}", 0.3) for i in range(2000)
        ]
        assert draws == [
            injector.roll("site", f"key-{i}", 0.3) for i in range(2000)
        ]
        hit_rate = sum(draws) / len(draws)
        assert 0.25 < hit_rate < 0.35
        assert not any(
            injector.roll("site", f"key-{i}", 0.0) for i in range(100)
        )

    def test_roll_varies_with_seed_site_and_key(self):
        a = FaultInjector(FaultPlan(seed=1))
        b = FaultInjector(FaultPlan(seed=2))
        keys = [f"k{i}" for i in range(200)]
        assert [a.roll("s", k, 0.5) for k in keys] != \
            [b.roll("s", k, 0.5) for k in keys]
        assert [a.roll("s1", k, 0.5) for k in keys] != \
            [a.roll("s2", k, 0.5) for k in keys]

    def test_activation_via_environment(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_faults() is None
        with inject_faults(FaultPlan(seed=5, worker_crash_rate=1.0)):
            injector = active_faults()
            assert injector is not None
            assert injector.plan.worker_crash_rate == 1.0
        assert active_faults() is None

    def test_all_off_plan_is_inert(self, monkeypatch):
        with inject_faults(FaultPlan(seed=5)):
            assert active_faults() is None


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ReproError):
            SupervisorConfig(cell_timeout_s=0.0)
        with pytest.raises(ReproError):
            SupervisorConfig(max_attempts=0)

    def test_backoff_is_capped_exponential_with_jitter(self):
        sup = SupervisorConfig(backoff_base_s=0.25, backoff_cap_s=2.0)
        for attempt in range(1, 8):
            delay = sup.backoff_delay(0, attempt)
            nominal = min(2.0, 0.25 * 2 ** (attempt - 1))
            assert 0.5 * nominal <= delay <= nominal
        # Deterministic: same (seed, index, attempt) -> same delay.
        assert sup.backoff_delay(3, 2) == sup.backoff_delay(3, 2)
        assert sup.backoff_delay(3, 2) != sup.backoff_delay(4, 2)


class TestSupervisedExecutor:
    def test_clean_run_matches_plain_execution(self):
        scenarios = _scenarios(n=2)
        plain = run_scenarios(scenarios)
        supervised = run_scenarios(
            scenarios, supervise=SupervisorConfig(max_attempts=2)
        )
        for a, b in zip(plain, supervised):
            da, db = a.to_dict(), b.to_dict()
            da.pop("wall_time_s"), db.pop("wall_time_s")
            assert da == db

    def test_crash_every_attempt_quarantines(self):
        scenarios = _scenarios(n=1)
        sup = SupervisorConfig(
            max_attempts=2, backoff_base_s=0.01, backoff_cap_s=0.02
        )
        with inject_faults(FaultPlan(seed=1, worker_crash_rate=1.0)):
            with pytest.raises(CampaignIncompleteError) as err:
                run_scenarios(scenarios, supervise=sup)
        assert len(err.value.failures) == 1
        failure = err.value.failures[0]
        assert failure.attempts == 2
        assert "died without a result" in failure.error
        assert "persisted" in str(err.value)

    def test_allow_partial_returns_none_slots(self):
        scenarios = _scenarios(n=2)
        sup = SupervisorConfig(
            max_attempts=1, allow_partial=True,
            backoff_base_s=0.01, backoff_cap_s=0.02,
        )
        with inject_faults(FaultPlan(seed=1, worker_crash_rate=1.0)):
            results = run_scenarios(scenarios, supervise=sup)
        assert results == [None, None]

    def test_crash_then_retry_succeeds(self):
        """A seed where attempt 1 crashes and attempt 2 survives: the
        cell completes with attempts=2, nothing is quarantined."""
        from repro.api.pairing import scenario_key

        scenarios = _scenarios(n=1)
        base_key = "|".join(map(str, scenario_key(scenarios[0])))
        seed = next(
            s for s in range(500)
            if FaultInjector(FaultPlan(seed=s)).roll(
                "worker.crash", base_key + "|attempt=1", 0.5)
            and not FaultInjector(FaultPlan(seed=s)).roll(
                "worker.crash", base_key + "|attempt=2", 0.5)
        )
        events = []
        sup = SupervisorConfig(
            max_attempts=3, backoff_base_s=0.01, backoff_cap_s=0.02
        )
        with inject_faults(FaultPlan(seed=seed, worker_crash_rate=0.5)):
            results = run_scenarios(
                scenarios, supervise=sup, on_cell_event=events.append
            )
        assert len(results) == 1 and results[0] is not None
        kinds = [e["type"] for e in events]
        assert kinds == ["retry", "cell"]
        assert events[0]["kind"] == "crash"
        assert events[1]["attempts"] == 2
        # Identical to the unfaulted run: recovery never changes results.
        clean = run_scenarios(scenarios)
        da, db = clean[0].to_dict(), results[0].to_dict()
        da.pop("wall_time_s"), db.pop("wall_time_s")
        assert da == db

    def test_hang_trips_watchdog_and_is_retried(self):
        """An injected hang longer than the watchdog is killed and the
        retry (fresh attempt key -> no hang) completes the cell."""
        from repro.api.pairing import scenario_key

        scenarios = _scenarios(n=1, horizon_s=2.0)
        base_key = "|".join(map(str, scenario_key(scenarios[0])))
        seed = next(
            s for s in range(500)
            if FaultInjector(FaultPlan(seed=s)).roll(
                "worker.hang", base_key + "|attempt=1", 0.5)
            and not FaultInjector(FaultPlan(seed=s)).roll(
                "worker.hang", base_key + "|attempt=2", 0.5)
        )
        events = []
        sup = SupervisorConfig(
            cell_timeout_s=0.5, max_attempts=2,
            backoff_base_s=0.01, backoff_cap_s=0.02,
        )
        with inject_faults(
            FaultPlan(seed=seed, worker_hang_rate=0.5, hang_s=60.0)
        ):
            results = run_scenarios(
                scenarios, supervise=sup, on_cell_event=events.append
            )
        assert results[0] is not None
        retry = next(e for e in events if e["type"] == "retry")
        assert retry["kind"] == "timeout"

    def test_worker_exception_is_retried_with_traceback(self):
        """A raising cell (not a crash) carries its traceback into the
        quarantine record."""
        sc = _scenarios(n=1)[0]
        # Sabotage that only detonates inside the worker: a scripted
        # failure naming a node the network does not have is rejected
        # when the dynamics timeline is built, i.e. during scenario.run.
        bad = sc.with_dynamics(scripted_failures=[(1.0, 99_999)])
        sup = SupervisorConfig(
            max_attempts=2, backoff_base_s=0.01, backoff_cap_s=0.02
        )
        with pytest.raises(CampaignIncompleteError) as err:
            run_scenarios([bad], supervise=sup)
        assert "Traceback" in err.value.failures[0].error

    def test_ambient_supervisor_contextvar(self):
        scenarios = _scenarios(n=1)
        sup = SupervisorConfig(
            max_attempts=1, backoff_base_s=0.01, backoff_cap_s=0.02
        )
        with inject_faults(FaultPlan(seed=1, worker_crash_rate=1.0)):
            with use_supervisor(sup):
                with pytest.raises(CampaignIncompleteError):
                    run_scenarios(scenarios)
        # Outside the context the plain executor runs (no worker procs,
        # so the crash site is never consulted).
        with inject_faults(FaultPlan(seed=1, worker_crash_rate=1.0)):
            assert run_scenarios(scenarios)[0] is not None

    def test_supervised_store_flush_is_grid_ordered(self, tmp_path):
        scenarios = _scenarios(n=3)
        store = ResultStore(tmp_path / "sup.jsonl")
        sup = SupervisorConfig(max_attempts=1)
        run_scenarios(scenarios, jobs=2, store=store, supervise=sup)
        stored = store.load()
        serial = run_scenarios(scenarios)
        assert [r.seed for r in stored] == [r.seed for r in serial]


class TestStoreFaults:
    def test_torn_jsonl_append_leaves_loadable_prefix(self, tmp_path):
        scenarios = _scenarios(n=2)
        runs = run_scenarios(scenarios)
        store = ResultStore(tmp_path / "torn.jsonl")
        with inject_faults(FaultPlan(seed=1, torn_write_rate=1.0)):
            with pytest.raises(InjectedFault, match="torn"):
                store.extend(runs)
        survivors = store.load()
        assert len(survivors) == len(runs) - 1
        assert survivors[0].to_dict() == runs[0].to_dict()

    def test_torn_sqlite_batch_rolls_back_atomically(self, tmp_path):
        scenarios = _scenarios(n=2)
        runs = run_scenarios(scenarios)
        store = DbResultStore(tmp_path / "torn.sqlite")
        store.extend(runs[:1])
        with inject_faults(FaultPlan(seed=1, torn_write_rate=1.0)):
            with pytest.raises(InjectedFault):
                store.extend(runs[1:])
        # The failed batch must be all-or-nothing: only the first row.
        assert len(store.load()) == 1

    def test_fsync_failure_raises_but_rows_are_complete(self, tmp_path):
        scenarios = _scenarios(n=1)
        runs = run_scenarios(scenarios)
        store = ResultStore(tmp_path / "sync.jsonl")
        with inject_faults(FaultPlan(seed=1, fsync_fail_rate=1.0)):
            with pytest.raises(InjectedFault, match="fsync"):
                store.extend(runs)
        # The write itself completed (flush happened before the fsync
        # site) — rows are intact, only durability was unconfirmed.
        assert len(store.load()) == 1

    def test_no_env_no_overhead_path(self, monkeypatch, tmp_path):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        store = ResultStore(tmp_path / "plain.jsonl")
        runs = run_scenarios(_scenarios(n=1))
        store.extend(runs)
        assert len(store.load()) == 1
