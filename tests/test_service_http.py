"""The campaign server: submit → poll → stream → browse → re-render."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ExperimentError
from repro.service import DbResultStore, JobManager, build_server


@pytest.fixture()
def server(tmp_path):
    srv = build_server(tmp_path / "service.sqlite", port=0, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.close()
        thread.join(timeout=5.0)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get_json(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
        return json.loads(resp.read())


def _get_text(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
        return resp.read().decode()


def _post_json(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


GRID_SPEC = {
    "axes": {"protocol": ["pure_leach"]},
    "preset": "smoke",
    "horizon_s": 5.0,
    "sample_interval_s": 1.0,
    "seeds": [1],
}


class TestEndpoints:
    def test_health_and_experiments(self, server):
        health = _get_json(server, "/health")
        assert health["ok"] is True
        assert health["rows"] == 0
        assert health["schema_version"] >= 2
        listed = _get_json(server, "/experiments")["experiments"]
        names = {spec["name"] for spec in listed}
        assert {"fig8", "table1", "ext-dynamics"} <= names
        assert all({"name", "kind", "summary"} <= set(s) for s in listed)

    def test_submit_poll_stream_browse(self, server):
        status, submitted = _post_json(server, "/campaigns", GRID_SPEC)
        assert status == 202
        job_id = submitted["job_id"]
        assert submitted["status"] in ("queued", "running")

        assert server.manager.get(job_id).wait(timeout=120.0)
        snap = _get_json(server, f"/campaigns/{job_id}")
        assert snap["status"] == "done"
        assert snap["total_cells"] == 1
        assert snap["completed_cells"] == 1
        assert snap["cache"]["misses"] == 1

        # NDJSON event stream: replayable, ordered, terminal.
        lines = _get_text(
            server, f"/campaigns/{job_id}/events?timeout=5"
        ).strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["type"] for e in events] == ["plan", "cell", "done"]
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[1]["source"] == "sim"
        # Replay from an offset skips what was already seen.
        tail = _get_text(
            server, f"/campaigns/{job_id}/events?after=2&timeout=5"
        ).strip().splitlines()
        assert [json.loads(line)["type"] for line in tail] == ["done"]

        # The rows are browsable with predicates.
        browsed = _get_json(
            server, "/runs?protocol=pure_leach&where=delivery_rate>=0"
        )
        assert browsed["count"] == 1
        row = browsed["rows"][0]
        assert row["protocol"] == "pure_leach"
        assert "sample_times_s" not in row  # scalar summary by default
        full = _get_json(server, "/runs?full=1")
        assert "sample_times_s" in full["rows"][0]

        # Resubmitting the identical campaign is served from the cache.
        _, again = _post_json(server, "/campaigns", GRID_SPEC)
        assert server.manager.get(again["job_id"]).wait(timeout=60.0)
        snap2 = _get_json(server, f"/campaigns/{again['job_id']}")
        assert snap2["cache"]["hits"] == 1
        assert snap2["cache"]["misses"] == 0
        assert _get_json(server, "/health")["rows"] == 1  # nothing re-added

    def test_figure_job_renders_and_rerenders_from_rows(self, server):
        spec = {"experiment": "fig8", "preset": "smoke", "seeds": [1]}
        _, submitted = _post_json(server, "/campaigns", spec)
        job_id = submitted["job_id"]
        assert server.manager.get(job_id).wait(timeout=300.0)
        snap = _get_json(server, f"/campaigns/{job_id}")
        assert snap["status"] == "done", snap["error"]
        assert snap["has_figure"]
        rendered = _get_text(server, f"/campaigns/{job_id}/figure")
        assert "fig8:" in rendered
        # Re-render purely from the stored DB rows: byte-identical.
        rerendered = _get_text(
            server, f"/campaigns/{job_id}/figure?rerender=1"
        )
        assert rerendered == rendered

    def test_error_paths(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(server, "/campaigns", {"experiment": "fig99"})
        assert excinfo.value.code == 400
        assert "unknown experiment" in json.loads(
            excinfo.value.read())["error"]

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(server, "/campaigns/job-999")
        assert excinfo.value.code == 400

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(server, "/nope")
        assert excinfo.value.code == 404

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(server, "/runs?where=warp_factor%3E9")
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(server, "/runs?where=nonsense")
        assert excinfo.value.code == 400


class TestJobManager:
    def test_bad_specs_fail_at_submit(self, tmp_path):
        manager = JobManager(DbResultStore(tmp_path / "db.sqlite"))
        try:
            with pytest.raises(ExperimentError, match="experiment"):
                manager.submit({})
            with pytest.raises(ExperimentError, match="axes"):
                manager.submit({"axes": {}})
            with pytest.raises(ExperimentError, match="unknown campaign axis"):
                manager.submit({"axes": {"warp_speed": [9]}})
            assert manager.list() == []
        finally:
            manager.shutdown()

    def test_failed_job_reports_not_crashes(self, tmp_path, monkeypatch):
        """A job that blows up mid-run lands in 'failed' with the error
        recorded, and the worker thread survives to run the next job."""
        from repro.api import registry

        def boom(preset="smoke", seeds=(1,), jobs=1):
            raise RuntimeError("reactor scram")

        monkeypatch.setitem(
            registry._REGISTRY,
            "svc-boom",
            registry.ExperimentSpec(name="svc-boom", fn=boom, kind="extension"),
        )
        manager = JobManager(DbResultStore(tmp_path / "db.sqlite"))
        try:
            record = manager.submit({"experiment": "svc-boom"})
            assert record.wait(timeout=60.0)
            assert record.status == "failed"
            assert "reactor scram" in record.error
            assert record.events[-1]["type"] == "failed"
            # The worker is still alive: the next job completes.
            follow = manager.submit(GRID_SPEC)
            assert follow.wait(timeout=120.0)
            assert follow.status == "done"
        finally:
            manager.shutdown()
