"""Spatial-index equivalence: the grid must answer exactly like brute force.

The scale tier's grid index is only admissible because every nearest
query returns the *same node* the brute-force scan returns — including
exact-distance ties, which must resolve to the candidate earliest in the
candidate sequence (``np.argmin`` first-occurrence semantics).  These
property tests drive randomized topologies, duplicated positions, grid
placements (systematic ties) and out-of-field query points at both
implementations and require equality everywhere; they also pin the
lazy (matrix-free) Topology distance path to the matrix bit-for-bit,
and the vectorised multihop route planner to the original nested scan.
"""

import numpy as np
import pytest

from repro.cluster.topology import Topology
from repro.config import NetworkConfig
from repro.errors import ClusterError
from repro.network import SensorNetwork
from repro.routing import plan_routes
from repro.topology import GridIndex, GridNearest


def _random_topology(rng, n=None, field=None):
    n = int(rng.integers(2, 150)) if n is None else n
    field = float(rng.uniform(5.0, 400.0)) if field is None else field
    return Topology(rng.uniform(0.0, field, size=(n, 2)), field)


class TestGridNearestEquivalence:
    def test_matches_brute_force_on_random_topologies(self):
        rng = np.random.default_rng(1234)
        for _ in range(60):
            topo = _random_topology(rng)
            n = topo.n_nodes
            k = int(rng.integers(1, n + 1))
            cands = list(rng.choice(n, size=k, replace=False))
            adapter = GridNearest(topo, min_candidates=1)
            for node in range(n):
                assert adapter(node, cands) == topo.nearest(node, cands)

    def test_ties_resolve_to_first_candidate_in_sequence(self):
        # A grid placement puts many nodes at identical distances; the
        # winner must be whichever tied head appears first in the
        # candidate sequence, not the lower id.
        topo = Topology.grid(36, 120.0)
        rng = np.random.default_rng(7)
        for _ in range(40):
            k = int(rng.integers(1, 37))
            cands = list(rng.permutation(36)[:k])
            adapter = GridNearest(topo, min_candidates=1)
            for node in range(36):
                assert adapter(node, cands) == topo.nearest(node, cands)

    def test_duplicate_positions_tie_exactly(self):
        # Nodes stacked on the same point: distances are bit-equal, so
        # candidate order is the only discriminator.
        pts = np.array([[10.0, 10.0]] * 5 + [[30.0, 30.0]] * 5)
        topo = Topology(pts, 50.0)
        adapter = GridNearest(topo, min_candidates=1)
        for cands in ([3, 1, 8, 6], [8, 6, 3, 1], [4, 2], [9, 0]):
            for node in range(10):
                assert adapter(node, cands) == topo.nearest(node, cands)

    def test_query_point_outside_field(self):
        # Sink-style queries may lie far outside the indexed field.
        rng = np.random.default_rng(11)
        pts = rng.uniform(0.0, 100.0, size=(50, 2))
        index = GridIndex(pts, 100.0)
        for q in [(-80.0, -80.0), (250.0, 40.0), (50.0, -1.0), (99.9, 99.9)]:
            d = np.sqrt(((pts - np.asarray(q)) ** 2).sum(axis=1))
            assert index.nearest(*q) == int(np.argmin(d))

    def test_single_candidate(self):
        topo = _random_topology(np.random.default_rng(2), n=20)
        adapter = GridNearest(topo, min_candidates=1)
        for node in range(20):
            assert adapter(node, [13]) == 13

    def test_adapter_falls_back_below_min_candidates(self):
        topo = _random_topology(np.random.default_rng(3), n=30)
        adapter = GridNearest(topo, min_candidates=8)
        assert adapter(0, [5, 9]) == topo.nearest(0, [5, 9])
        assert adapter._index is None  # brute path taken, no index built

    def test_adapter_reuses_index_for_same_candidate_object(self):
        topo = _random_topology(np.random.default_rng(4), n=40)
        adapter = GridNearest(topo, min_candidates=1)
        cands = list(range(12))
        adapter(0, cands)
        built = adapter._index
        adapter(1, cands)
        assert adapter._index is built  # same round: same index
        adapter(1, list(range(12)))  # new list object = new round
        assert adapter._index is not built

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ClusterError):
            GridIndex(np.empty((0, 2)), 10.0)
        with pytest.raises(ClusterError):
            GridIndex(np.zeros((3, 3)), 10.0)
        with pytest.raises(ClusterError):
            GridIndex(np.zeros((3, 2)), 0.0)


class TestLazyTopologyEquivalence:
    """Matrix-free distances must be bit-identical to the matrix."""

    def _pair(self, seed, n=80, field=120.0):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0.0, field, size=(n, 2))
        return (
            Topology(pos, field, precompute_matrix=True),
            Topology(pos, field, precompute_matrix=False),
        )

    def test_distance_bitwise_equal(self):
        dense, lazy = self._pair(21)
        assert lazy._dist is None and dense._dist is not None
        for a in range(0, 80, 7):
            for b in range(80):
                assert dense.distance(a, b) == lazy.distance(a, b)

    def test_distances_from_bitwise_equal(self):
        dense, lazy = self._pair(22)
        for node in range(0, 80, 11):
            assert (dense.distances_from(node) == lazy.distances_from(node)).all()

    def test_nearest_identical(self):
        dense, lazy = self._pair(23)
        rng = np.random.default_rng(5)
        for _ in range(30):
            cands = list(rng.choice(80, size=int(rng.integers(1, 20)),
                                    replace=False))
            for node in range(0, 80, 5):
                assert dense.nearest(node, cands) == lazy.nearest(node, cands)

    def test_auto_threshold(self):
        rng = np.random.default_rng(6)
        small = Topology(rng.uniform(0, 10, size=(50, 2)), 10.0)
        assert small._dist is not None
        big = Topology(rng.uniform(0, 10, size=(700, 2)), 10.0)
        assert big._dist is None


class TestPlanRoutesEquivalence:
    """The vectorised multihop planner equals the original nested scan."""

    @staticmethod
    def _reference_plan(heads, topology):
        routes = {}
        ordered = sorted(heads)
        for h in ordered:
            d_sink = topology.sink_distance(h)
            best, best_d = None, d_sink
            for g in ordered:
                if g == h:
                    continue
                d_g = topology.sink_distance(g)
                if d_g < best_d and topology.distance(h, g) < d_sink:
                    best, best_d = g, d_g
            routes[h] = best
        return routes

    def test_matches_reference_on_random_head_sets(self):
        rng = np.random.default_rng(31)
        for _ in range(40):
            topo = _random_topology(rng, n=int(rng.integers(5, 60)))
            topo.place_sink(
                (float(rng.uniform(-50, topo.field_size_m + 50)),
                 float(rng.uniform(-50, topo.field_size_m + 50)))
            )
            k = int(rng.integers(1, topo.n_nodes + 1))
            heads = list(rng.choice(topo.n_nodes, size=k, replace=False))
            assert plan_routes("multihop", heads, topo) == \
                self._reference_plan(heads, topo)

    def test_direct_mode_unchanged(self):
        topo = _random_topology(np.random.default_rng(32), n=10)
        topo.place_sink(None)
        assert plan_routes("direct", [3, 7], topo) == {3: None, 7: None}


class TestNetworkUsesGrid:
    def test_brute_and_grid_networks_form_identical_clusters(self):
        for seed in (1, 5):
            cfg = NetworkConfig(n_nodes=60, seed=seed)
            grid_net = SensorNetwork(cfg)
            brute_net = SensorNetwork(
                cfg.with_scale(spatial_index="brute",
                               grid_min_heads=1)
            )
            grid_net.run_until(25.0)
            brute_net.run_until(25.0)
            assert isinstance(grid_net._nearest, GridNearest)
            assert [sorted(m.id for m in grid_net._members_of[h])
                    for h in sorted(grid_net._members_of)] == \
                   [sorted(m.id for m in brute_net._members_of[h])
                    for h in sorted(brute_net._members_of)]
