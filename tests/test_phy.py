"""PHY: modulation BER curves, coding model, ABICM table, frames."""


import numpy as np
import pytest

from repro.config import PhyConfig
from repro.errors import PhyError
from repro.phy import (
    BPSK,
    QAM16,
    QPSK,
    RATE_1_2,
    UNCODED,
    AbicmTable,
    ConvolutionalCode,
    by_name,
    evaluate_burst,
    plan_burst,
    qfunc,
    qfunc_inv,
    solve_threshold_db,
)
from repro.rng import RngRegistry
from repro.traffic import Packet


class TestQFunction:
    def test_known_values(self):
        assert qfunc(0.0) == pytest.approx(0.5)
        assert qfunc(1.0) == pytest.approx(0.158655, rel=1e-4)
        assert qfunc(3.0) == pytest.approx(1.3499e-3, rel=1e-3)

    def test_inverse_roundtrip(self):
        for p in (0.4, 0.1, 1e-3, 1e-6):
            assert qfunc(qfunc_inv(p)) == pytest.approx(p, rel=1e-9)

    def test_inverse_domain(self):
        with pytest.raises(PhyError):
            qfunc_inv(0.0)
        with pytest.raises(PhyError):
            qfunc_inv(1.0)


class TestModulation:
    def test_bpsk_qpsk_same_per_bit_ber(self):
        for snr in (0.5, 2.0, 8.0):
            assert BPSK.ber(snr) == pytest.approx(QPSK.ber(snr))

    def test_bpsk_known_point(self):
        # BER = Q(sqrt(2*gamma)); gamma=4.77 -> ~1e-3.
        assert BPSK.ber(4.77) == pytest.approx(1e-3, rel=0.05)

    def test_qam16_needs_more_snr(self):
        assert QAM16.ber(4.77) > BPSK.ber(4.77)

    def test_ber_monotone_decreasing(self):
        snrs = np.linspace(0.1, 50, 100)
        for mod in (BPSK, QAM16):
            bers = [mod.ber(s) for s in snrs]
            assert all(b1 >= b2 for b1, b2 in zip(bers, bers[1:]))

    def test_ber_capped_at_half(self):
        assert QAM16.ber(1e-9) <= 0.5

    def test_required_snr_inverts_ber(self):
        for mod in (BPSK, QPSK, QAM16):
            for target in (1e-3, 1e-5):
                snr = mod.required_snr_per_bit(target)
                assert mod.ber(snr) == pytest.approx(target, rel=1e-6)

    def test_negative_snr_rejected(self):
        with pytest.raises(PhyError):
            BPSK.ber(-1.0)

    def test_by_name(self):
        assert by_name("16-QAM") is QAM16
        with pytest.raises(PhyError):
            by_name("1024-QAM")


class TestCoding:
    def test_expansion(self):
        assert RATE_1_2.expansion == pytest.approx(2.0)
        assert UNCODED.expansion == 1.0

    def test_coded_bits_ceiling(self):
        code = ConvolutionalCode("r=2/3", 2 / 3, 4.0)
        assert code.coded_bits(100) == 150
        assert code.coded_bits(101) == 152  # ceil(151.5)

    def test_effective_snr_gain(self):
        assert RATE_1_2.effective_snr_linear(1.0) == pytest.approx(10 ** 0.5)

    def test_invalid_rate(self):
        with pytest.raises(PhyError):
            ConvolutionalCode("bad", 0.0, 1.0)
        with pytest.raises(PhyError):
            ConvolutionalCode("bad", 1.5, 1.0)

    def test_negative_gain(self):
        with pytest.raises(PhyError):
            ConvolutionalCode("bad", 0.5, -1.0)


class TestAbicmTable:
    @pytest.fixture()
    def table(self):
        return AbicmTable.from_config(PhyConfig())

    def test_four_modes_paper_rates(self, table):
        assert [m.throughput_bps for m in table] == [250e3, 450e3, 1e6, 2e6]

    def test_thresholds_ascend(self, table):
        th = [m.threshold_db for m in table]
        assert th == sorted(th)

    def test_ber_at_threshold_equals_target(self, table):
        for mode in table:
            assert mode.ber(mode.threshold_db) == pytest.approx(1e-5, rel=1e-3)

    def test_mode_selection_staircase(self, table):
        th = [m.threshold_db for m in table]
        assert table.mode_for_snr(th[0] - 1.0) is None  # outage
        assert table.mode_for_snr(th[0] + 0.1).index == 1
        assert table.mode_for_snr(th[2] + 0.1).index == 3
        assert table.mode_for_snr(99.0).index == 4

    def test_selection_boundary_inclusive(self, table):
        for mode in table:
            assert table.mode_for_snr(mode.threshold_db).index >= mode.index

    def test_airtime_of_2kbit_packet(self, table):
        # The headline ratio: 1 ms at 2 Mbps vs 8 ms at 250 kbps.
        assert table.highest.airtime_s(2000) == pytest.approx(1e-3)
        assert table.lowest.airtime_s(2000) == pytest.approx(8e-3)

    def test_highest_lowest(self, table):
        assert table.highest.index == 4 and table.lowest.index == 1
        assert table.n_modes == len(table) == 4

    def test_mode_by_index(self, table):
        assert table.mode_by_index(2).throughput_bps == 450e3
        with pytest.raises(PhyError):
            table.mode_by_index(9)

    def test_threshold_for_class(self, table):
        for k in range(4):
            assert table.threshold_for_class(k) == table.modes[k].threshold_db
        with pytest.raises(PhyError):
            table.threshold_for_class(4)

    def test_pinned_thresholds_respected(self):
        cfg = PhyConfig(mode_thresholds_db=(4.0, 8.0, 12.0, 17.0))
        table = AbicmTable.from_config(cfg)
        assert [m.threshold_db for m in table] == [4.0, 8.0, 12.0, 17.0]

    def test_per_decreases_with_snr(self, table):
        mode = table.highest
        pers = [mode.packet_error_rate(s, 2000) for s in (19.5, 22.0, 25.0)]
        assert pers[0] > pers[1] > pers[2]

    def test_per_saturates_to_one_in_deep_fade(self, table):
        assert table.highest.packet_error_rate(0.0, 2000) == pytest.approx(1.0)

    def test_solve_threshold_consistency(self):
        th = solve_threshold_db(BPSK, RATE_1_2, 1e-5)
        cfg_table = AbicmTable.from_config(PhyConfig())
        assert cfg_table.lowest.threshold_db == pytest.approx(th)


class TestBursts:
    @pytest.fixture()
    def table(self):
        return AbicmTable.from_config(PhyConfig())

    def _packets(self, n):
        return [Packet(1, 0.0, 2000) for _ in range(n)]

    def test_plan_airtime_includes_overhead(self, table):
        plan = plan_burst(self._packets(3), table.highest, 2000, overhead_bits=128)
        assert plan.airtime_s == pytest.approx((3 * 2000 + 128) / 2e6)
        assert plan.n_packets == 3
        assert plan.total_bits == 6128

    def test_empty_burst_rejected(self, table):
        with pytest.raises(PhyError):
            plan_burst([], table.highest, 2000, 128)

    def test_good_snr_delivers_everything(self, table):
        plan = plan_burst(self._packets(8), table.highest, 2000, 128)
        result = evaluate_burst(plan, 30.0, 2000, RngRegistry(1).stream("b"))
        assert result.all_delivered and len(result.delivered) == 8

    def test_deep_fade_corrupts_everything(self, table):
        plan = plan_burst(self._packets(5), table.highest, 2000, 128)
        result = evaluate_burst(plan, 3.0, 2000, RngRegistry(1).stream("b"))
        assert len(result.corrupted) == 5

    def test_per_statistics_at_threshold(self, table):
        # PER at threshold is ~2% for 2 kbit packets: check empirically.
        mode = table.lowest
        rng = RngRegistry(2).stream("stat")
        corrupted = total = 0
        for _ in range(400):
            plan = plan_burst(self._packets(8), mode, 2000, 0)
            res = evaluate_burst(plan, mode.threshold_db, 2000, rng)
            corrupted += len(res.corrupted)
            total += 8
        assert corrupted / total == pytest.approx(0.02, abs=0.01)
