"""Shared test harness: a one-cluster CAEM cell with controllable links.

Builds a cluster head plus ``n`` sensors on a single DataChannel, with
fake links whose SNR the tests set directly.  Used by the MAC tests and
the failure-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.channel import DataChannel
from repro.config import (
    EnergyConfig,
    MacConfig,
    PhyConfig,
    PolicyConfig,
    Protocol,
    ToneConfig,
)
from repro.energy import Battery, EnergyMeter, RadioEnergyModel
from repro.mac import (
    CaemClusterHeadMac,
    ClusterContext,
    ToneBroadcaster,
    ToneChannelSpec,
    build_sensor_mac,
)
from repro.phy import AbicmTable, DataRadio, ToneRadio
from repro.rng import RngRegistry
from repro.sim import Simulator, Tracer
from repro.traffic import Packet, PacketBuffer


class FakeLink:
    """A link whose SNR the test controls (constant until reassigned)."""

    def __init__(self, snr_db: float = 25.0):
        self.snr = snr_db
        self.queries: List[float] = []

    def snr_db(self, t: float) -> float:
        self.queries.append(t)
        return self.snr


@dataclass
class Cell:
    sim: Simulator
    channel: DataChannel
    ch_mac: CaemClusterHeadMac
    ch_meter: EnergyMeter
    macs: List
    links: List[FakeLink]
    buffers: List[PacketBuffer]
    meters: List[EnergyMeter]
    batteries: List[Battery]
    delivered: List = field(default_factory=list)
    lost: List = field(default_factory=list)
    tracer: Tracer = None


def make_cell(
    n_sensors: int = 1,
    protocol: Protocol = Protocol.PURE_LEACH,
    snr_db: float = 25.0,
    seed: int = 1,
    mac_cfg: MacConfig = None,
    phy_cfg: PhyConfig = None,
    energy_cfg: EnergyConfig = None,
    policy_cfg: PolicyConfig = None,
    sensor_battery_j: float = 1000.0,
    buffer_capacity: int = 50,
) -> Cell:
    """Build a single-cluster cell ready to run."""
    sim = Simulator()
    tracer = Tracer()
    rngs = RngRegistry(seed)
    mac_cfg = mac_cfg or MacConfig()
    phy_cfg = phy_cfg or PhyConfig()
    energy_cfg = energy_cfg or EnergyConfig()
    policy_cfg = policy_cfg or PolicyConfig()
    model = RadioEnergyModel(energy_cfg)
    abicm = AbicmTable.from_config(phy_cfg)
    spec = ToneChannelSpec(ToneConfig())

    # Cluster head (node id 1000).
    ch_battery = Battery(1e6)
    ch_meter = EnergyMeter(sim, model, ch_battery)
    ch_radio = DataRadio(sim, ch_meter, energy_cfg.startup_time_s)
    channel = DataChannel(sim)
    broadcaster = ToneBroadcaster(sim, spec, ch_meter)
    delivered: List = []
    lost: List = []
    ch_mac = CaemClusterHeadMac(
        sim, 1000, channel, broadcaster, ch_radio, phy_cfg,
        rngs.stream("ch/per"),
        on_delivered=lambda pkts, sender, now: delivered.extend(
            (p, sender, now) for p in pkts
        ),
        on_lost=lambda pkts, sender, now: lost.extend(
            (p, sender, now) for p in pkts
        ),
    )

    macs, links, buffers, meters, batteries = [], [], [], [], []
    for i in range(n_sensors):
        battery = Battery(sensor_battery_j)
        meter = EnergyMeter(sim, model, battery)
        data_radio = DataRadio(sim, meter, energy_cfg.startup_time_s)
        tone_radio = ToneRadio(sim, meter)
        buffer = PacketBuffer(capacity=buffer_capacity)
        mac = build_sensor_mac(
            protocol, sim, i, buffer, abicm, data_radio, tone_radio,
            mac_cfg, phy_cfg, policy_cfg, rngs.stream(f"mac/{i}"), tracer,
        )
        link = FakeLink(snr_db)
        macs.append(mac)
        links.append(link)
        buffers.append(buffer)
        meters.append(meter)
        batteries.append(battery)

    cell = Cell(
        sim=sim, channel=channel, ch_mac=ch_mac, ch_meter=ch_meter,
        macs=macs, links=links, buffers=buffers, meters=meters,
        batteries=batteries, delivered=delivered, lost=lost, tracer=tracer,
    )
    return cell


def start_cell(cell: Cell) -> None:
    """Start the CH and attach every sensor."""
    cell.ch_mac.start()
    ctx = ClusterContext(0, cell.channel, cell.ch_mac.broadcaster, cell.ch_mac)
    for mac, link in zip(cell.macs, cell.links):
        mac.attach(ctx, link)


def feed_packets(cell: Cell, sensor: int, n: int, size_bits: int = 2000) -> None:
    """Enqueue n packets on a sensor (as its traffic source would)."""
    mac = cell.macs[sensor]
    now = cell.sim.now
    for _ in range(n):
        pkt = Packet(sensor, now, size_bits)
        cell.buffers[sensor].offer(pkt)
        mac.policy.observe_arrival(len(cell.buffers[sensor]), now)
        mac.notify_arrival()
