"""Checkpoint manifests and kill-and-resume campaign semantics.

The tentpole guarantee: SIGKILL a sweep mid-flight, re-run it with
``--resume``, and (a) no completed cell is re-simulated, (b) the final
render is byte-identical to an uninterrupted run, at any ``--jobs``.
"""

import json
import os
import re
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

from repro.api import Campaign, ResultStore, Scenario, use_run_cache
from repro.api.pairing import scenario_key
from repro.config import Protocol
from repro.service import DbResultStore, RunCache, manifest_for_store
from repro.service.manifest import (
    DONE,
    PENDING,
    QUARANTINED,
    CampaignManifest,
    JsonManifestBackend,
    sidecar_path,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _scenarios(n_seeds=2):
    base = Scenario.from_preset("smoke").with_runtime(
        horizon_s=5.0, sample_interval_s=1.0
    )
    camp = (
        Campaign(base)
        .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE])
        .seeds(list(range(1, n_seeds + 1)))
    )
    return camp.scenarios()


class TestManifest:
    def test_fingerprint_is_content_addressed(self, tmp_path):
        scenarios = _scenarios()
        store = DbResultStore(tmp_path / "m.sqlite")
        a = manifest_for_store(store, scenarios, "exp-x")
        b = manifest_for_store(store, scenarios, "exp-x")
        assert a.fingerprint == b.fingerprint
        c = manifest_for_store(store, scenarios[:-1], "exp-x")
        d = manifest_for_store(store, scenarios, "exp-y")
        assert len({a.fingerprint, c.fingerprint, d.fingerprint}) == 3

    def test_done_cells_adopted_on_reopen(self, tmp_path):
        scenarios = _scenarios()
        store = DbResultStore(tmp_path / "m.sqlite")
        first = manifest_for_store(store, scenarios, "exp-x")
        first.record_done(scenario_key(scenarios[0]))
        reopened = manifest_for_store(store, scenarios, "exp-x")
        assert reopened.cells[0].status == DONE
        assert reopened.counts()[PENDING] == len(scenarios) - 1
        assert not reopened.complete

    def test_quarantine_resets_to_pending_on_reopen(self, tmp_path):
        scenarios = _scenarios()
        store = DbResultStore(tmp_path / "m.sqlite")
        first = manifest_for_store(store, scenarios, "exp-x")
        first.record_attempt(scenario_key(scenarios[0]))
        first.record_quarantine(scenario_key(scenarios[0]), "boom\ntrace")
        assert first.quarantined()[0].error == "boom\ntrace"
        assert first.report()["incomplete"] is True
        reopened = manifest_for_store(store, scenarios, "exp-x")
        assert reopened.cells[0].status == PENDING
        assert reopened.cells[0].attempts == 0

    def test_duplicate_cells_get_ordinals(self, tmp_path):
        scenarios = _scenarios()[:1] * 3
        store = DbResultStore(tmp_path / "m.sqlite")
        manifest = manifest_for_store(store, scenarios, None)
        assert [c.ordinal for c in manifest.cells] == [0, 1, 2]
        manifest.record_done(scenario_key(scenarios[0]), ordinal=1)
        assert [c.status for c in manifest.cells] == [PENDING, DONE, PENDING]

    def test_sidecar_backend_for_flat_stores(self, tmp_path):
        scenarios = _scenarios()
        store = ResultStore(tmp_path / "runs.jsonl")
        manifest = manifest_for_store(store, scenarios, "exp-x")
        manifest.record_done(scenario_key(scenarios[0]))
        sidecar = sidecar_path(store.path)
        assert sidecar.exists()
        ledger = json.loads(sidecar.read_text())
        payload = ledger["manifests"][manifest.fingerprint]
        assert payload["cells"][0]["status"] == DONE

    def test_damaged_sidecar_starts_fresh_not_crash(self, tmp_path):
        scenarios = _scenarios()
        store = ResultStore(tmp_path / "runs.jsonl")
        sidecar_path(store.path).write_text("{torn mid-write")
        manifest = manifest_for_store(store, scenarios, "exp-x")
        assert manifest.counts()[PENDING] == len(scenarios)

    def test_report_and_describe(self, tmp_path):
        scenarios = _scenarios()
        backend = JsonManifestBackend(tmp_path / "ledger.json")
        manifest = CampaignManifest.for_grid(backend, scenarios, "exp-x")
        manifest.record_attempt(scenario_key(scenarios[0]))
        manifest.record_quarantine(scenario_key(scenarios[0]), "why it died")
        assert manifest.cells[0].status == QUARANTINED
        report = manifest.report()
        assert report["quarantined"] == 1
        assert report["quarantined_cells"][0]["error"] == "why it died"
        assert "quarantined" in manifest.describe()

    def test_db_manifest_survives_reconnect(self, tmp_path):
        scenarios = _scenarios()
        path = tmp_path / "m.sqlite"
        manifest = manifest_for_store(DbResultStore(path), scenarios, "e")
        manifest.record_done(scenario_key(scenarios[0]))
        listed = DbResultStore(path).list_manifests()
        assert len(listed) == 1
        assert listed[0]["done"] == 1
        assert listed[0]["total"] == len(scenarios)


class TestCachedResume:
    def test_interrupted_campaign_resumes_without_resimulating(
        self, tmp_path
    ):
        """In-process kill-and-resume: simulate half, 'crash', resume —
        the second pass simulates only the missing half and the results
        are byte-identical to one uninterrupted pass."""
        scenarios = _scenarios(n_seeds=2)  # 4 cells
        store = DbResultStore(tmp_path / "resume.sqlite")

        cache = RunCache(store, manifest=True)
        with use_run_cache(cache):
            from repro.api import run_scenarios

            run_scenarios(scenarios[:2])  # the part that "finished"
        assert cache.stats.misses == 2

        resumed = RunCache(store, manifest=True)
        with use_run_cache(resumed):
            from repro.api import run_scenarios

            results = run_scenarios(scenarios)
        assert resumed.stats.hits == 2
        assert resumed.stats.misses == 2
        assert resumed.last_manifest is not None
        assert resumed.last_manifest.complete

        from repro.api import run_scenarios as rs

        uninterrupted = rs(scenarios)
        for a, b in zip(uninterrupted, results):
            da, db = a.to_dict(), b.to_dict()
            da.pop("wall_time_s"), db.pop("wall_time_s")
            da.pop("experiment"), db.pop("experiment")
            assert da == db


def _run_cli(args, cwd, timeout=240):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=timeout,
    )


def _rows(db_path):
    try:
        with sqlite3.connect(f"file:{db_path}?mode=ro", uri=True) as db:
            return db.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
    except sqlite3.Error:
        return 0


class TestKillAndResumeGate:
    """The PR's acceptance gate, as a test: SIGKILL mid-sweep, resume,
    assert zero re-simulation of completed cells + byte-identical
    render at a different --jobs."""

    ARGS = [
        "run", "fig8", "--preset", "smoke",
        "--seeds", "1", "2", "3", "4", "5", "6",
    ]
    TOTAL = 18  # fig8 smoke = 3 protocols x 6 seeds

    def test_sigkill_mid_sweep_then_resume(self, tmp_path):
        db = tmp_path / "gate.sqlite"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.ARGS,
             "--store", str(db), "--resume"],
            cwd=tmp_path, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 240
        killed = False
        while time.monotonic() < deadline and proc.poll() is None:
            if _rows(db) >= 2:
                proc.send_signal(signal.SIGKILL)
                killed = True
                break
            time.sleep(0.02)
        proc.wait(timeout=240)
        assert killed, "campaign finished before the poller could kill it"
        rows_at_kill = _rows(db)
        assert 0 < rows_at_kill < self.TOTAL

        resumed = _run_cli(
            [*self.ARGS, "--store", str(db), "--resume"], tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr
        stats = re.search(
            r"cache: (\d+)/(\d+) cells served from store \(\d+%\), "
            r"(\d+) simulated",
            resumed.stderr,
        )
        assert stats, resumed.stderr
        hits, total, simulated = map(int, stats.groups())
        assert total == self.TOTAL
        # Zero completed cells re-simulated: every stored row is a hit.
        assert hits == rows_at_kill
        assert simulated == self.TOTAL - rows_at_kill
        assert re.search(
            rf"manifest [0-9a-f]+: {self.TOTAL}/{self.TOTAL} cells done",
            resumed.stderr,
        )

        # Byte-identical to an uninterrupted run — at a different --jobs.
        clean = _run_cli([*self.ARGS, "--jobs", "2"], tmp_path)
        assert clean.returncode == 0, clean.stderr
        assert resumed.stdout == clean.stdout

    def test_resume_requires_a_store(self, tmp_path):
        result = _run_cli(["run", "fig8", "--resume"], tmp_path)
        assert result.returncode == 1
        assert "--resume needs" in result.stderr

    def test_resume_rejects_csv_store(self, tmp_path):
        result = _run_cli(
            ["run", "fig8", "--resume", "--store", "x.csv"], tmp_path
        )
        assert result.returncode == 1
        assert "scalar-only" in result.stderr


class TestChaosCampaign:
    """A campaign under injected worker crashes completes correctly:
    the supervisor retries crashed cells and the output stays identical
    to a fault-free run."""

    def test_campaign_survives_injected_crashes(self, tmp_path):
        args = ["run", "fig8", "--preset", "smoke", "--seeds", "1", "2",
                "--retries", "6"]
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env["REPRO_FAULTS"] = json.dumps(
            {"seed": 11, "worker_crash_rate": 0.4}
        )
        chaotic = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=tmp_path, env=env, capture_output=True, text=True,
            timeout=240,
        )
        assert chaotic.returncode == 0, chaotic.stderr
        clean = _run_cli(["run", "fig8", "--preset", "smoke",
                          "--seeds", "1", "2"], tmp_path)
        assert chaotic.stdout == clean.stdout
