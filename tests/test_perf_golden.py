"""Bit-reproducibility guardrails for the hot-path optimizations.

The allocation-free event kernel and the block-drawing channel RNG are
only admissible because they change **zero output bytes**.  This module
pins that contract three ways:

* golden-hash regression tests: one figure table and the ext-uplink
  experiment render to exactly the committed SHA-256 (hashes captured on
  the pre-optimization code at the same seeds/preset);
* stream-equivalence tests: :class:`repro.rng.NormalBlockCache` serves
  the bit-exact per-draw sequence of scalar ``Generator.normal`` calls,
  including across block boundaries and through the channel processes;
* perf-harness unit tests: baseline parsing and the regression gate of
  ``repro-caem bench``.

If an intentional modelling change legitimately alters an artefact,
recompute the hashes here in the same PR and say so in its description.
"""

import hashlib
import json
import math

import numpy as np
import pytest

from repro.api import get_experiment
from repro.api.bench import BenchReport, BenchResult, load_baseline_times
from repro.channel import Link, LinkBudget, RayleighFading
from repro.channel.shadowing import GaussMarkovShadowing
from repro.config import ChannelConfig
from repro.rng import NormalBlockCache, RngRegistry, as_normal_cache
from repro.sim import Simulator

# SHA-256 of the rendered artefacts at preset="smoke", seeds=(1,),
# loads_pps=(5.0, 15.0).  fig8 is the pre-optimization (PR 2) hash and
# pins both the hot-path byte-neutrality and the dynamics-off inertness
# (the default DynamicsConfig must leave the paper's figures untouched).
# ext-uplink was recomputed in PR 4: fixing the reentrant-teardown leak
# in CaemSensorMac._radio_ready (a burst begun in the same event in
# which its head died was silently lost instead of requeued) shifts the
# artefacts whose run-to-death scenarios hit the window (ext-uplink,
# and at smoke scale fig9/fig10/fig11/ext-perf; fig8/fig12/tables are
# unchanged).  That was a correctness fix, not drift: with the fix held
# constant, adding the whole dynamics subsystem changes zero bytes in
# any artefact (verified by re-rendering everything with only the MAC
# fix stashed), and conservation is asserted by tests/test_dynamics.py.
# ext-dynamics (seeds=(1,), default churn rates) pins the dynamics
# subsystem's own determinism.
GOLDEN = {
    "fig8": "c89564452d1ed196759895e49e595bf34390c68c1e73e5f8fd79691c3b5ca626",
    "ext-uplink": "a6872e863e1f7e3d9f37ecfd0b4c4e8816ea7d0e4b41082a9b3dff48a033eb89",
    "ext-dynamics": "49f678932281e51ea6680b57ef580a68c9ff3cdf1550068e1919297ecdb56919",
}


class TestGoldenArtefacts:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_render_is_byte_identical_to_pre_optimization(self, name):
        spec = get_experiment(name)
        fig = spec.run(
            preset="smoke", seeds=(1,), loads_pps=(5.0, 15.0), jobs=1
        )
        digest = hashlib.sha256(fig.render().encode("utf-8")).hexdigest()
        assert digest == GOLDEN[name], (
            f"{name} output changed — the hot-path optimizations must be "
            f"byte-neutral (got {digest})"
        )


class TestNormalBlockCacheStreamEquivalence:
    """The cache must reproduce the exact scalar-draw Generator sequence."""

    def _pair(self, seed=42):
        return (
            np.random.Generator(np.random.PCG64(seed)),
            NormalBlockCache(
                np.random.Generator(np.random.PCG64(seed)), block_size=16
            ),
        )

    def test_standard_normal_sequence_bit_identical(self):
        gen, cache = self._pair()
        # 100 draws cross the 16-wide block boundary six times.
        ours = [cache.standard_normal() for _ in range(100)]
        theirs = [float(gen.normal(0.0, 1.0)) for _ in range(100)]
        assert ours == theirs

    def test_scaled_normal_sequence_bit_identical(self):
        gen, cache = self._pair(7)
        sigma = math.sqrt(0.5)
        ours = [cache.normal(0.0, sigma) for _ in range(64)]
        theirs = [float(gen.normal(0.0, sigma)) for _ in range(64)]
        assert ours == theirs

    def test_block_size_does_not_change_the_stream(self):
        seeds = np.random.PCG64(3), np.random.PCG64(3)
        small = NormalBlockCache(np.random.Generator(seeds[0]), block_size=2)
        large = NormalBlockCache(np.random.Generator(seeds[1]), block_size=512)
        assert [small.standard_normal() for _ in range(50)] == [
            large.standard_normal() for _ in range(50)
        ]

    def test_as_normal_cache_passes_caches_through(self):
        cache = NormalBlockCache(np.random.default_rng(0))
        assert as_normal_cache(cache) is cache
        assert isinstance(
            as_normal_cache(np.random.default_rng(0)), NormalBlockCache
        )

    def test_rejects_nonpositive_block(self):
        with pytest.raises(ValueError):
            NormalBlockCache(np.random.default_rng(0), block_size=0)

    def test_fading_process_equals_manual_recurrence(self):
        """RayleighFading through the cache == the AR(1) bridge computed
        by hand from the same raw generator stream."""
        fading = RayleighFading(
            0.1, np.random.Generator(np.random.PCG64(11))
        )
        gen = np.random.Generator(np.random.PCG64(11))
        s = math.sqrt(0.5)
        x = 0.0 + s * float(gen.normal(0.0, 1.0))
        y = 0.0 + s * float(gen.normal(0.0, 1.0))
        t = 0.0
        for step in (0.01, 0.01, 0.05, 0.01):  # repeated gaps hit the memo
            t += step
            rho = math.exp(-step / 0.1)
            sigma = math.sqrt(max(0.0, 1.0 - rho * rho)) * s
            x = rho * x + sigma * float(gen.normal(0.0, 1.0))
            y = rho * y + sigma * float(gen.normal(0.0, 1.0))
            assert fading.power_gain(t) == x * x + y * y

    def test_shadowing_process_equals_manual_recurrence(self):
        shadow = GaussMarkovShadowing(
            4.0, 3.0, np.random.Generator(np.random.PCG64(13))
        )
        gen = np.random.Generator(np.random.PCG64(13))
        value = 0.0 + 4.0 * float(gen.normal(0.0, 1.0))
        t = 0.0
        for step in (0.5, 0.5, 2.0, 0.5):
            t += step
            rho = math.exp(-step / 3.0)
            value = rho * value + (4.0 * math.sqrt(1.0 - rho * rho)) * float(
                gen.normal(0.0, 1.0)
            )
            assert shadow.value_db(t) == value

    def test_link_shares_one_cache_across_processes(self):
        """Shadowing and fading interleave draws on the link's dedicated
        stream; the shared cache must preserve that exact order."""
        cfg = ChannelConfig()
        budget = LinkBudget.from_config(cfg)
        link = Link(35.0, budget, cfg, RngRegistry(5).stream("link"))
        gen = RngRegistry(5).stream("link")
        # Construction order: shadowing init (1 draw), fading init (2).
        shadow = 0.0 + cfg.shadowing_sigma_db * float(gen.normal(0.0, 1.0))
        s = math.sqrt(0.5)
        x = 0.0 + s * float(gen.normal(0.0, 1.0))
        y = 0.0 + s * float(gen.normal(0.0, 1.0))
        mean = float(budget.mean_snr_db(35.0))
        t = 0.0
        for step in (0.05, 0.05, 0.2):
            t += step
            # Per snr_db query: shadowing draws first, then fading x/y.
            rho_s = math.exp(-step / cfg.shadowing_tau_s)
            shadow = rho_s * shadow + (
                cfg.shadowing_sigma_db * math.sqrt(1.0 - rho_s * rho_s)
            ) * float(gen.normal(0.0, 1.0))
            rho_f = math.exp(-step / cfg.fading_coherence_s)
            sig_f = math.sqrt(max(0.0, 1.0 - rho_f * rho_f)) * s
            x = rho_f * x + sig_f * float(gen.normal(0.0, 1.0))
            y = rho_f * y + sig_f * float(gen.normal(0.0, 1.0))
            gain_db = 10.0 * math.log10(x * x + y * y)
            assert link.snr_db(t) == mean + shadow + gain_db

    def test_same_seed_links_remain_identical(self):
        cfg = ChannelConfig()
        budget = LinkBudget.from_config(cfg)
        a = Link(35.0, budget, cfg, RngRegistry(9).stream("l"))
        b = Link(35.0, budget, cfg, RngRegistry(9).stream("l"))
        times = [0.03 * i for i in range(1, 40)]
        assert [a.snr_db(t) for t in times] == [b.snr_db(t) for t in times]


class TestKernelSatellites:
    def test_clear_releases_callback_references(self):
        """A cleared queue must not pin node/packet object graphs."""
        sim = Simulator()
        payload = object()
        handle = sim.call_in(1.0, lambda p: None, payload)
        sim.reset()  # reset() goes through EventQueue.clear()
        assert handle.cancelled
        assert handle.fn is None
        assert handle.args == ()

    def test_clear_skips_already_cancelled_handles(self):
        from repro.sim import EventQueue

        q = EventQueue()
        h = q.push(1.0, lambda: None)
        h.cancel()
        q.push(2.0, lambda: None)
        q.clear()
        assert len(q) == 0 and q.pop() is None

    def test_timeout_advances_clock_at_large_times(self):
        """timeout() goes through strictly_after: a sub-resolution delay
        late in a long run must still fire strictly after now."""
        sim = Simulator(start_time=4e15)  # eps(4e15) ~ 0.5 s
        fired = []
        ev = sim.timeout(0.05, value="late")  # 0.05 < eps: would underflow
        ev.add_callback(lambda e: fired.append(sim.now))
        sim.run(max_events=10)
        assert fired and fired[0] > 4e15

    def test_timeout_ordinary_delay_unchanged(self):
        sim = Simulator()
        fired = []
        sim.timeout(2.5, value="v").add_callback(
            lambda e: fired.append((sim.now, e.value))
        )
        sim.run()
        assert fired == [(2.5, "v")]

    def test_cancel_after_pop_keeps_live_count_consistent(self):
        from repro.sim import EventQueue

        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.pop() is h
        h.cancel()  # cancelling a popped handle must not double-decrement
        assert len(q) == 1

    def test_events_processed_updates_during_run(self):
        """The counter must advance per event (it is a live progress
        metric), and a mid-run reset() must not be overwritten at exit."""
        sim = Simulator()
        seen = []
        sim.call_in(1.0, lambda: seen.append(sim.events_processed))
        sim.call_in(2.0, lambda: seen.append(sim.events_processed))
        sim.call_in(3.0, sim.reset)
        sim.run()
        assert seen == [1, 2]
        assert sim.events_processed == 0  # reset() ran last and sticks

    def test_trace_on_and_off_paths_agree(self):
        """The branch-free trace-off loop and the tracing loop must
        execute the same events in the same order."""
        from repro.sim import Tracer

        def drive(trace):
            sim = Simulator()
            sim.trace = trace
            out = []
            sim.call_in(1.0, lambda: out.append("a"))
            sim.call_in(1.0, lambda: out.append("b"))
            h = sim.call_in(1.5, lambda: out.append("x"))
            h.cancel()
            sim.call_in(2.0, lambda: out.append("c"))
            sim.run()
            return out, sim.events_processed

        tracer = Tracer(keep_kernel_events=True)
        assert drive(None) == drive(tracer)
        assert [r.time for r in tracer.records] == [1.0, 1.0, 2.0]


class TestBenchHarness:
    def test_load_baseline_times_reads_pytest_benchmark_json(self, tmp_path):
        doc = {
            "benchmarks": [
                {"name": "test_kernel_event_throughput", "stats": {"min": 0.01}},
                {"name": "test_network_100_node_quick_run", "stats": {"min": 0.6}},
                {"name": "unrelated", "stats": {"min": 1.0}},
            ]
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(doc))
        times = load_baseline_times(path)
        assert times == {
            "kernel/event-throughput": 0.01,
            "network/quick-run-100": 0.6,
        }

    def test_load_baseline_times_missing_file_is_empty(self, tmp_path):
        assert load_baseline_times(tmp_path / "nope.json") == {}

    def test_load_baseline_times_corrupt_file_is_an_error(self, tmp_path):
        from repro.errors import ReproError

        bad = tmp_path / "bad.json"
        bad.write_text('{"benchmarks": [{"name": "x", "stats": {}}]}')
        with pytest.raises(ReproError, match="not pytest-benchmark"):
            load_baseline_times(bad)

    def test_gate_refuses_partial_baseline(self, tmp_path):
        """A baseline matching only some gated benches must error: a
        renamed test would otherwise silently leave the CI gate."""
        from repro.api.bench import run_bench
        from repro.errors import ReproError

        partial = tmp_path / "partial.json"
        partial.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {
                            "name": "test_kernel_event_throughput",
                            "stats": {"min": 0.01},
                        }
                    ]
                }
            )
        )
        with pytest.raises(ReproError, match="push-pop-cancel-churn"):
            run_bench(
                tier="quick",
                baseline_path=partial,
                trajectory_path=None,
                fail_threshold=2.0,
            )

    def test_regression_gate(self):
        report = BenchReport(
            tier="quick",
            results=[
                BenchResult("a", seconds=0.5, rounds=1, baseline_s=1.0),
                BenchResult("b", seconds=2.5, rounds=1, baseline_s=1.0),
                BenchResult("c", seconds=9.9, rounds=1, baseline_s=None),
            ],
            fail_threshold=2.0,
        )
        assert not report.ok
        assert [r.name for r in report.regressions] == ["b"]
        rendered = report.render()
        assert "FAIL" in rendered and "b" in rendered

    def test_gate_passes_within_threshold(self):
        report = BenchReport(
            tier="quick",
            results=[BenchResult("a", 1.5, 1, baseline_s=1.0)],
            fail_threshold=2.0,
        )
        assert report.ok and "OK" in report.render()

    def test_speedup_property(self):
        assert BenchResult("a", 0.5, 1, baseline_s=1.0).speedup == 2.0
        assert BenchResult("a", 0.5, 1).speedup is None

    def test_gate_refuses_to_run_without_baseline(self, tmp_path):
        """--fail-threshold with a missing/mismatched baseline must error,
        not pass vacuously (the CI gate would otherwise be silently green)."""
        from repro.api.bench import run_bench
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="no baseline entries"):
            run_bench(
                tier="quick",
                baseline_path=tmp_path / "missing.json",
                trajectory_path=None,
                fail_threshold=2.0,
            )

    def test_cli_parser_accepts_bench(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "--tier", "quick", "--fail-threshold", "2.0"]
        )
        assert args.command == "bench"
        assert args.tier == "quick"
        assert args.fail_threshold == 2.0

    def test_cli_run_accepts_profile(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "table1", "--profile", "out.pstats"]
        )
        assert args.profile == "out.pstats"
