"""Generator-based simulation processes."""

import pytest

from repro.errors import ProcessError
from repro.sim import Interrupt, Simulator, spawn


class TestBasicProcesses:
    def test_timeout_yield(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(("start", sim.now))
            yield 1.5
            log.append(("after", sim.now))

        spawn(sim, proc())
        sim.run()
        assert log == [("start", 0.0), ("after", 1.5)]

    def test_yield_event(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def proc():
            value = yield ev
            got.append(value)

        spawn(sim, proc())
        sim.call_in(2.0, ev.succeed, "payload")
        sim.run()
        assert got == ["payload"]

    def test_process_return_value(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 99

        p = spawn(sim, proc())
        sim.run()
        assert p.triggered and p.value == 99

    def test_wait_on_process(self):
        sim = Simulator()
        order = []

        def child():
            yield 1.0
            order.append("child-done")
            return "result"

        def parent():
            value = yield spawn(sim, child())
            order.append(("parent-got", value))

        spawn(sim, parent())
        sim.run()
        assert order == ["child-done", ("parent-got", "result")]

    def test_exception_fails_process(self):
        sim = Simulator()

        def proc():
            yield 0.5
            raise ValueError("inner")

        p = spawn(sim, proc())
        sim.run()
        assert p.failed and isinstance(p.value, ValueError)

    def test_failed_event_thrown_into_process(self):
        sim = Simulator()
        ev = sim.event()
        caught = []

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        spawn(sim, proc())
        sim.call_in(1.0, ev.fail, RuntimeError("bad"))
        sim.run()
        assert caught == ["bad"]

    def test_bad_yield_type(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        p = spawn(sim, proc())
        sim.run()
        assert p.failed and isinstance(p.value, ProcessError)

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            spawn(sim, lambda: None)  # type: ignore[arg-type]

    def test_body_does_not_run_synchronously(self):
        sim = Simulator()
        ran = []

        def proc():
            ran.append(True)
            yield 0.1

        spawn(sim, proc())
        assert ran == []  # only runs once the simulator steps
        sim.run()
        assert ran == [True]


class TestInterrupts:
    def test_interrupt_caught(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield 100.0
            except Interrupt as intr:
                log.append(("interrupted", sim.now, intr.cause))

        p = spawn(sim, proc())
        sim.call_in(2.0, p.interrupt, "channel-busy")
        sim.run()
        assert log == [("interrupted", 2.0, "channel-busy")]

    def test_uncaught_interrupt_kills(self):
        sim = Simulator()

        def proc():
            yield 100.0

        p = spawn(sim, proc())
        sim.call_in(1.0, p.interrupt)
        sim.run()
        assert p.failed and isinstance(p.value, ProcessError)

    def test_interrupt_after_completion_is_noop(self):
        sim = Simulator()

        def proc():
            yield 1.0

        p = spawn(sim, proc())
        sim.run()
        p.interrupt()  # must not raise
        sim.run()
        assert not p.failed

    def test_stale_wait_does_not_resume_twice(self):
        sim = Simulator()
        resumed = []

        def proc():
            try:
                yield sim.timeout(5.0, value="timer")
            except Interrupt:
                value = yield sim.timeout(10.0, value="second")
                resumed.append(value)

        p = spawn(sim, proc())
        sim.call_in(1.0, p.interrupt)
        sim.run()
        # The original 5s timer fires at t=5 but must not wake the process,
        # which is now waiting on the 10s timer set at t=1 (fires at 11).
        assert resumed == ["second"]
        assert sim.now == 11.0

    def test_interrupt_is_alive_flag(self):
        sim = Simulator()

        def proc():
            yield 3.0

        p = spawn(sim, proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive
