"""Path-loss models."""

import numpy as np
import pytest

from repro.channel import FreeSpace, LogDistance, TwoRayGround
from repro.errors import ChannelError


class TestLogDistance:
    def test_reference_point(self):
        m = LogDistance(exponent=3.0, ref_loss_db=40.0, ref_distance_m=1.0)
        assert m.loss_db(1.0) == pytest.approx(40.0)

    def test_decade_slope(self):
        m = LogDistance(exponent=3.0, ref_loss_db=40.0)
        assert m.loss_db(10.0) - m.loss_db(1.0) == pytest.approx(30.0)
        assert m.loss_db(100.0) - m.loss_db(10.0) == pytest.approx(30.0)

    def test_monotone_in_distance(self):
        m = LogDistance()
        d = np.linspace(1.0, 150.0, 200)
        loss = m.loss_db(d)
        assert np.all(np.diff(loss) > 0)

    def test_clamps_below_min_distance(self):
        m = LogDistance(min_distance_m=1.0)
        assert m.loss_db(0.01) == pytest.approx(m.loss_db(1.0))

    def test_array_matches_scalar(self):
        m = LogDistance()
        d = np.array([2.0, 35.0, 90.0])
        np.testing.assert_allclose(
            m.loss_db(d), [m.loss_db(x) for x in d], rtol=1e-12
        )

    def test_invalid_exponent(self):
        with pytest.raises(ChannelError):
            LogDistance(exponent=0.0)

    def test_invalid_distance(self):
        m = LogDistance()
        with pytest.raises(ChannelError):
            m.loss_db(-5.0)
        with pytest.raises(ChannelError):
            m.loss_db(float("nan"))


class TestFreeSpace:
    def test_inverse_square_slope(self):
        m = FreeSpace()
        assert m.loss_db(20.0) - m.loss_db(2.0) == pytest.approx(20.0)

    def test_friis_at_915mhz(self):
        # lambda = c/915e6 ~= 0.3276 m; PL(1 m) = 20 log10(4 pi / lambda).
        m = FreeSpace(carrier_hz=915e6)
        assert m.loss_db(1.0) == pytest.approx(31.7, abs=0.1)

    def test_invalid_carrier(self):
        with pytest.raises(ChannelError):
            FreeSpace(carrier_hz=0.0)


class TestTwoRayGround:
    def test_matches_free_space_near(self):
        m = TwoRayGround(tx_height_m=1.0, rx_height_m=1.0)
        fs = FreeSpace()
        d = m.crossover_m * 0.5
        assert m.loss_db(d) == pytest.approx(fs.loss_db(d))

    def test_fourth_power_far(self):
        m = TwoRayGround(tx_height_m=1.0, rx_height_m=1.0)
        d1 = m.crossover_m * 2
        d2 = m.crossover_m * 20
        assert m.loss_db(d2) - m.loss_db(d1) == pytest.approx(40.0)

    def test_continuous_enough_at_crossover(self):
        m = TwoRayGround(tx_height_m=1.0, rx_height_m=1.0)
        below = m.loss_db(m.crossover_m * 0.999)
        above = m.loss_db(m.crossover_m * 1.001)
        assert abs(above - below) < 1.0

    def test_array_branch(self):
        m = TwoRayGround(tx_height_m=1.0, rx_height_m=1.0)
        d = np.array([m.crossover_m * 0.5, m.crossover_m * 4.0])
        out = m.loss_db(d)
        assert out.shape == (2,)
        assert out[1] > out[0]

    def test_invalid_heights(self):
        with pytest.raises(ChannelError):
            TwoRayGround(tx_height_m=0.0)
