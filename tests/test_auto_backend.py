"""``backend="auto"`` — engine selection as a pure function of config.

Auto must (a) pick the vector engine only for populations large enough
to benefit, (b) *never* pick it for a channel on the refuse list (Jakes
fading, Rician K > 0) — resolving to an engine that would refuse the
config is a bug by definition — and (c) resolve before digesting, so an
auto config pairs/caches identically to its explicit equivalent.
"""

import dataclasses

import pytest

from repro.config import NetworkConfig, Protocol
from repro.errors import ExperimentError
from repro.vector import (
    AUTO_VECTOR_MIN_NODES,
    resolve_backend,
    vector_refusal,
)


def _cfg(n_nodes, backend="auto", **channel):
    cfg = NetworkConfig(
        n_nodes=n_nodes, protocol=Protocol.PURE_LEACH, seed=1
    ).with_scale(backend=backend)
    if channel:
        cfg = dataclasses.replace(
            cfg, channel=dataclasses.replace(cfg.channel, **channel)
        )
    return cfg


class TestResolution:
    def test_small_population_resolves_to_event(self):
        assert resolve_backend(_cfg(100)) == "event"
        assert resolve_backend(_cfg(AUTO_VECTOR_MIN_NODES - 1)) == "event"

    def test_large_population_resolves_to_vector(self):
        assert resolve_backend(_cfg(AUTO_VECTOR_MIN_NODES)) == "vector"
        assert resolve_backend(_cfg(5000)) == "vector"

    def test_explicit_backends_pass_through(self):
        assert resolve_backend(_cfg(10, backend="event")) == "event"
        assert resolve_backend(_cfg(5000, backend="vector")) == "vector"
        # Pass-through is unconditional: an explicit (unsupported) choice
        # is the engine's ConfigError to raise, not ours to silently fix.
        assert resolve_backend(
            _cfg(10, backend="vector", fading_kernel="jakes")
        ) == "vector"

    def test_auto_never_selects_vector_for_jakes(self):
        for n in (100, AUTO_VECTOR_MIN_NODES, 100_000):
            cfg = _cfg(n, fading_kernel="jakes")
            assert vector_refusal(cfg) is not None
            assert resolve_backend(cfg) == "event"

    def test_auto_never_selects_vector_for_rician(self):
        for k in (0.5, 4.0, 10.0):
            cfg = _cfg(100_000, rician_k=k)
            assert vector_refusal(cfg) is not None
            assert resolve_backend(cfg) == "event"

    def test_rayleigh_exponential_has_no_refusal(self):
        assert vector_refusal(_cfg(100)) is None


class TestDigestTransparency:
    def test_auto_digests_like_its_explicit_equivalent(self):
        big = _cfg(AUTO_VECTOR_MIN_NODES)
        assert big.digest() == _cfg(
            AUTO_VECTOR_MIN_NODES, backend="vector"
        ).digest()
        small = _cfg(100)
        assert small.digest() == _cfg(100, backend="event").digest()
        # Refused channel: auto == event even at population scale.
        jakes = _cfg(100_000, fading_kernel="jakes")
        explicit = _cfg(100_000, backend="event", fading_kernel="jakes")
        assert jakes.digest() == explicit.digest()

    def test_to_dict_never_serialises_auto(self):
        big = _cfg(AUTO_VECTOR_MIN_NODES).to_dict()
        assert big["scale"]["backend"] == "vector"
        small = _cfg(100).to_dict()
        # "event" is the sparse default: the key is omitted entirely.
        assert "backend" not in small.get("scale", {})

    def test_round_trip_preserves_resolution(self):
        cfg = _cfg(AUTO_VECTOR_MIN_NODES)
        back = NetworkConfig.from_dict(cfg.to_dict())
        assert back.scale.backend == "vector"
        assert back.digest() == cfg.digest()


class TestDispatch:
    def test_auto_runs_on_the_resolved_engine(self, monkeypatch):
        """Drop the threshold so a 20-node run exercises the real
        auto -> vector dispatch path without population-scale cost."""
        from repro.api import RunOptions, simulate
        from repro.vector import support

        opts = RunOptions(horizon_s=5.0, sample_interval_s=2.5)
        explicit = simulate(_cfg(20, backend="vector"), opts)
        monkeypatch.setattr(support, "AUTO_VECTOR_MIN_NODES", 20)
        auto = simulate(_cfg(20), opts)
        da, db = auto.to_dict(), explicit.to_dict()
        da.pop("wall_time_s"), db.pop("wall_time_s")
        assert da == db

    def test_auto_runs_on_event_below_threshold(self):
        from repro.api import RunOptions, simulate

        opts = RunOptions(horizon_s=5.0, sample_interval_s=2.5)
        auto = simulate(_cfg(20), opts)
        explicit = simulate(_cfg(20, backend="event"), opts)
        da, db = auto.to_dict(), explicit.to_dict()
        da.pop("wall_time_s"), db.pop("wall_time_s")
        assert da == db

    def test_ext_scale_accepts_auto(self):
        from repro.api import get_experiment

        with pytest.raises(ExperimentError, match="unknown backend"):
            get_experiment("ext-scale").run(preset="smoke", backend="warp")
        # "auto" is in the accepted list: building scenarios must not
        # raise (running the smoke ladder here would be redundant with
        # test_scale.py; validation is the contract under test).
        from repro.experiments.scale import _BACKENDS

        assert "auto" in _BACKENDS

    def test_scale_config_accepts_auto(self):
        from repro.experiments.scale import scale_config

        cfg = scale_config(2000, Protocol.PURE_LEACH, backend="auto")
        assert cfg.scale.backend == "auto"
        assert resolve_backend(cfg) == "vector"
        small = scale_config(30, Protocol.PURE_LEACH, backend="auto")
        assert resolve_backend(small) == "event"
