"""``backend="auto"`` — engine selection as a pure function of config.

Auto must (a) pick the vector engine only for populations large enough
to benefit, (b) route *every* channel model there at scale now that the
refuse list is empty (Jakes fading and Rician K > 0 are vectorised and
equivalence-checked), and (c) resolve before digesting, so an auto
config pairs/caches identically to its explicit equivalent — and runs
stored before the envelope closed still re-render from their stores
without re-simulation.
"""

import dataclasses

import pytest

from repro.config import NetworkConfig, Protocol
from repro.errors import ExperimentError
from repro.vector import (
    AUTO_VECTOR_MIN_NODES,
    resolve_backend,
    vector_refusal,
)


def _cfg(n_nodes, backend="auto", **channel):
    cfg = NetworkConfig(
        n_nodes=n_nodes, protocol=Protocol.PURE_LEACH, seed=1
    ).with_scale(backend=backend)
    if channel:
        cfg = dataclasses.replace(
            cfg, channel=dataclasses.replace(cfg.channel, **channel)
        )
    return cfg


class TestResolution:
    def test_small_population_resolves_to_event(self):
        assert resolve_backend(_cfg(100)) == "event"
        assert resolve_backend(_cfg(AUTO_VECTOR_MIN_NODES - 1)) == "event"

    def test_large_population_resolves_to_vector(self):
        assert resolve_backend(_cfg(AUTO_VECTOR_MIN_NODES)) == "vector"
        assert resolve_backend(_cfg(5000)) == "vector"

    def test_explicit_backends_pass_through(self):
        assert resolve_backend(_cfg(10, backend="event")) == "event"
        assert resolve_backend(_cfg(5000, backend="vector")) == "vector"
        assert resolve_backend(
            _cfg(10, backend="vector", fading_kernel="jakes")
        ) == "vector"

    def test_auto_selects_vector_for_jakes_at_scale(self):
        # Flipped when the Jakes AR(1)-Doppler bridge was vectorised:
        # the kernel no longer keeps a large population on the event
        # engine.
        for n in (AUTO_VECTOR_MIN_NODES, 100_000):
            cfg = _cfg(n, fading_kernel="jakes")
            assert vector_refusal(cfg) is None
            assert resolve_backend(cfg) == "vector"
        assert resolve_backend(_cfg(100, fading_kernel="jakes")) == "event"

    def test_auto_selects_vector_for_rician_at_scale(self):
        for k in (0.5, 4.0, 10.0):
            cfg = _cfg(100_000, rician_k=k)
            assert vector_refusal(cfg) is None
            assert resolve_backend(cfg) == "vector"
        assert resolve_backend(_cfg(100, rician_k=4.0)) == "event"

    def test_refuse_list_is_empty(self):
        # The whole channel envelope is supported; any future refusal
        # reason re-enters through vector_refusal, not ad-hoc checks.
        assert vector_refusal(_cfg(100)) is None
        assert vector_refusal(_cfg(100, fading_kernel="jakes")) is None
        assert vector_refusal(_cfg(100, rician_k=10.0)) is None


class TestDigestTransparency:
    def test_auto_digests_like_its_explicit_equivalent(self):
        big = _cfg(AUTO_VECTOR_MIN_NODES)
        assert big.digest() == _cfg(
            AUTO_VECTOR_MIN_NODES, backend="vector"
        ).digest()
        small = _cfg(100)
        assert small.digest() == _cfg(100, backend="event").digest()

    def test_fading_kernels_digest_like_explicit_vector(self):
        # Jakes/Rician at scale now resolve to vector, so their auto
        # digests moved from the event equivalent to the vector one.
        for channel in (
            {"fading_kernel": "jakes"},
            {"rician_k": 4.0},
        ):
            auto = _cfg(100_000, **channel)
            vector = _cfg(100_000, backend="vector", **channel)
            event = _cfg(100_000, backend="event", **channel)
            assert auto.digest() == vector.digest()
            assert auto.digest() != event.digest()

    def test_to_dict_never_serialises_auto(self):
        big = _cfg(AUTO_VECTOR_MIN_NODES).to_dict()
        assert big["scale"]["backend"] == "vector"
        small = _cfg(100).to_dict()
        # "event" is the sparse default: the key is omitted entirely.
        assert "backend" not in small.get("scale", {})

    def test_round_trip_preserves_resolution(self):
        cfg = _cfg(AUTO_VECTOR_MIN_NODES)
        back = NetworkConfig.from_dict(cfg.to_dict())
        assert back.scale.backend == "vector"
        assert back.digest() == cfg.digest()


class TestDispatch:
    def test_auto_runs_on_the_resolved_engine(self, monkeypatch):
        """Drop the threshold so a 20-node run exercises the real
        auto -> vector dispatch path without population-scale cost."""
        from repro.api import RunOptions, simulate
        from repro.vector import support

        opts = RunOptions(horizon_s=5.0, sample_interval_s=2.5)
        explicit = simulate(_cfg(20, backend="vector"), opts)
        monkeypatch.setattr(support, "AUTO_VECTOR_MIN_NODES", 20)
        auto = simulate(_cfg(20), opts)
        da, db = auto.to_dict(), explicit.to_dict()
        da.pop("wall_time_s"), db.pop("wall_time_s")
        assert da == db

    def test_auto_dispatches_jakes_to_vector(self, monkeypatch):
        from repro.api import RunOptions, simulate
        from repro.vector import support

        opts = RunOptions(horizon_s=5.0, sample_interval_s=2.5)
        explicit = simulate(
            _cfg(20, backend="vector", fading_kernel="jakes"), opts
        )
        monkeypatch.setattr(support, "AUTO_VECTOR_MIN_NODES", 20)
        auto = simulate(_cfg(20, fading_kernel="jakes"), opts)
        da, db = auto.to_dict(), explicit.to_dict()
        da.pop("wall_time_s"), db.pop("wall_time_s")
        assert da == db

    def test_auto_runs_on_event_below_threshold(self):
        from repro.api import RunOptions, simulate

        opts = RunOptions(horizon_s=5.0, sample_interval_s=2.5)
        auto = simulate(_cfg(20), opts)
        explicit = simulate(_cfg(20, backend="event"), opts)
        da, db = auto.to_dict(), explicit.to_dict()
        da.pop("wall_time_s"), db.pop("wall_time_s")
        assert da == db

    def test_ext_scale_accepts_auto(self):
        from repro.api import get_experiment

        with pytest.raises(ExperimentError, match="unknown backend"):
            get_experiment("ext-scale").run(preset="smoke", backend="warp")
        # "auto" is in the accepted list: building scenarios must not
        # raise (running the smoke ladder here would be redundant with
        # test_scale.py; validation is the contract under test).
        from repro.experiments.scale import _BACKENDS

        assert "auto" in _BACKENDS

    def test_scale_config_accepts_auto(self):
        from repro.experiments.scale import scale_config

        cfg = scale_config(2000, Protocol.PURE_LEACH, backend="auto")
        assert cfg.scale.backend == "auto"
        assert resolve_backend(cfg) == "vector"
        small = scale_config(30, Protocol.PURE_LEACH, backend="auto")
        assert resolve_backend(small) == "event"


class TestStoredRunCompatibility:
    def test_event_backend_store_re_renders_without_resimulation(
        self, tmp_path, capsys
    ):
        """Runs stored before the envelope closed (explicit event
        backend, any channel) still re-render from ``--from`` — the
        pairing key carries the resolved backend, so widening auto's
        reach never orphans old rows."""
        from repro.api import get_experiment
        from repro.service import open_store

        store = open_store(tmp_path / "old.jsonl")
        figure = get_experiment("ext-scale").run(
            preset="smoke", seeds=(1,), backend="event"
        )
        store.extend(figure.runs)

        rendered = get_experiment("ext-scale").run(
            preset="smoke", seeds=(1,), backend="event",
            runs=store.load(),
        )
        assert rendered.rows == figure.rows
