"""ExecutorSpec: one value that names how a campaign executes.

The spec collapses the legacy ``jobs=``/``supervise=`` spellings into a
single declarative record.  These tests pin the parse grammar, the
legacy mapping, the resolution precedence, and — the contract that
matters — that every spelling of the same policy produces bit-identical
results.
"""

import pytest

from repro.api import (
    Campaign,
    ExecutorSpec,
    Scenario,
    SupervisorConfig,
    use_executor,
    use_supervisor,
)
from repro.api.campaign import resolve_executor
from repro.config import Protocol
from repro.errors import ExperimentError
from repro.exec import (
    EXECUTOR_KINDS,
    CampaignExecutor,
    PoolExecutor,
    SerialExecutor,
    SupervisedExecutor,
    get_executor,
)


def _campaign(n_seeds=1):
    base = Scenario.from_preset("smoke").with_runtime(
        horizon_s=2.0, sample_interval_s=1.0
    )
    return (
        Campaign(base, name="spec-equiv")
        .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_FIXED])
        .seeds(list(range(1, n_seeds + 1)))
    )


def _norm(runs):
    return [{**r.to_dict(), "wall_time_s": 0} for r in runs]


class TestParse:
    def test_kinds(self):
        assert EXECUTOR_KINDS == ("serial", "pool", "supervised", "distributed")
        for kind in EXECUTOR_KINDS:
            assert ExecutorSpec.parse(kind).kind == kind

    def test_bare_count_shorthand(self):
        assert ExecutorSpec.parse("pool:4") == ExecutorSpec(kind="pool", jobs=4)
        assert ExecutorSpec.parse("supervised:2").jobs == 2

    def test_key_value_options(self):
        spec = ExecutorSpec.parse("supervised:jobs=2,timeout=30,retries=1")
        assert (spec.jobs, spec.cell_timeout_s, spec.retries) == (2, 30.0, 1)
        assert spec.max_attempts == 2

    def test_distributed_options(self):
        spec = ExecutorSpec.parse(
            "distributed:bind=127.0.0.1:8400,lease=5,local=2"
        )
        assert spec.bind_address() == ("127.0.0.1", 8400)
        assert spec.lease_timeout_s == 5.0
        assert spec.local_workers == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="unknown executor kind"):
            ExecutorSpec.parse("threads:4")

    def test_unknown_option_rejected(self):
        with pytest.raises(ExperimentError, match="bad executor option"):
            ExecutorSpec.parse("pool:widht=4")

    def test_bad_value_rejected(self):
        with pytest.raises(ExperimentError, match="bad value"):
            ExecutorSpec.parse("pool:jobs=four")

    def test_validation(self):
        with pytest.raises(ExperimentError, match="jobs must be"):
            ExecutorSpec(kind="pool", jobs=0)
        with pytest.raises(ExperimentError, match="retries"):
            ExecutorSpec(kind="supervised", retries=-1)
        with pytest.raises(ExperimentError, match="lease_timeout_s"):
            ExecutorSpec(kind="distributed", lease_timeout_s=0.0)
        with pytest.raises(ExperimentError, match="bad distributed bind"):
            ExecutorSpec(kind="distributed", bind="nonsense").bind_address()

    def test_normalize_accepts_every_spelling(self):
        spec = ExecutorSpec(kind="pool", jobs=3)
        assert ExecutorSpec.normalize(spec) is spec
        assert ExecutorSpec.normalize("pool:3") == spec
        assert ExecutorSpec.normalize({"kind": "pool", "jobs": 3}) == spec
        with pytest.raises(ExperimentError, match="cannot interpret"):
            ExecutorSpec.normalize(3)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError, match="unknown executor fields"):
            ExecutorSpec.from_dict({"kind": "pool", "workers": 4})

    def test_to_dict_round_trip_omits_defaults(self):
        spec = ExecutorSpec.parse("supervised:jobs=2,retries=1")
        data = spec.to_dict()
        assert data == {"kind": "supervised", "jobs": 2, "retries": 1}
        assert ExecutorSpec.from_dict(data) == spec
        assert ExecutorSpec().to_dict() == {"kind": "serial"}

    def test_from_legacy(self):
        assert ExecutorSpec.from_legacy() == ExecutorSpec(kind="serial")
        assert ExecutorSpec.from_legacy(jobs=4) == ExecutorSpec(
            kind="pool", jobs=4
        )
        sup = SupervisorConfig(cell_timeout_s=10.0, max_attempts=2, seed=3)
        spec = ExecutorSpec.from_legacy(jobs=2, supervise=sup)
        assert spec.kind == "supervised"
        assert spec.supervisor() == sup.__class__(
            cell_timeout_s=10.0, max_attempts=2, seed=3
        )

    def test_describe_is_compact(self):
        assert ExecutorSpec.parse("pool:4").describe() == "pool jobs=4"
        assert "lease=5s" in ExecutorSpec.parse(
            "distributed:lease=5"
        ).describe()


class TestResolvePrecedence:
    def test_jobs_fallback(self):
        assert resolve_executor(1).kind == "serial"
        assert resolve_executor(4) == ExecutorSpec(kind="pool", jobs=4)

    def test_explicit_executor_wins(self):
        with use_supervisor(SupervisorConfig()):
            resolved = resolve_executor(4, None, "serial")
        assert resolved == ExecutorSpec(kind="serial")

    def test_live_instance_passes_through(self):
        live = SerialExecutor()
        assert resolve_executor(4, None, live) is live

    def test_explicit_supervise_beats_ambient_executor(self):
        sup = SupervisorConfig(max_attempts=5)
        with use_executor("pool:4"):
            resolved = resolve_executor(1, sup, None)
        assert resolved.kind == "supervised"
        assert resolved.max_attempts == 5

    def test_ambient_executor_beats_jobs(self):
        with use_executor("pool:3") as live:
            assert isinstance(live, PoolExecutor)
            assert resolve_executor(8) is live

    def test_ambient_supervisor_still_honoured(self):
        with use_supervisor(SupervisorConfig(max_attempts=4)):
            resolved = resolve_executor(2)
        assert resolved.kind == "supervised"
        assert (resolved.jobs, resolved.max_attempts) == (2, 4)

    def test_get_executor_instantiates_each_kind(self):
        assert isinstance(get_executor(ExecutorSpec()), SerialExecutor)
        pool = get_executor("pool:2")
        assert isinstance(pool, PoolExecutor)
        sup = get_executor({"kind": "supervised", "retries": 1})
        assert isinstance(sup, SupervisedExecutor)
        assert isinstance(sup, CampaignExecutor)


class TestEquivalence:
    """Every spelling of the same policy → bit-identical results."""

    def test_pool_spec_matches_legacy_jobs(self):
        camp = _campaign()
        legacy = camp.run(jobs=2)
        spec = camp.run(executor="pool:2")
        assert _norm(spec.runs) == _norm(legacy.runs)

    def test_supervised_spec_matches_legacy_supervise(self):
        camp = _campaign()
        sup = SupervisorConfig(max_attempts=2)
        legacy = camp.run(supervise=sup)
        spec = camp.run(executor="supervised:retries=1")
        assert _norm(spec.runs) == _norm(legacy.runs)

    def test_ambient_executor_reaches_campaign(self):
        camp = _campaign()
        serial = camp.run()
        with use_executor("pool:2"):
            ambient = camp.run(jobs=1)
        assert _norm(ambient.runs) == _norm(serial.runs)

    def test_executor_conflicts_with_legacy_arguments(self):
        camp = _campaign()
        with pytest.raises(ExperimentError, match="not both"):
            camp.run(jobs=2, executor="serial")
        with pytest.raises(ExperimentError, match="not both"):
            camp.run(supervise=SupervisorConfig(), executor="serial")
