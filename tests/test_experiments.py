"""Experiment harness: presets, runner, report, sweep, CLI, tables."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.config import NetworkConfig, Protocol
from repro.errors import ExperimentError
from repro.experiments import (
    get_preset,
    preset_config,
    render_table,
    run_scenario,
    sweep,
    table1_tone_spec,
    table2_parameters,
    write_csv,
)


class TestPresets:
    def test_full_matches_table2(self):
        cfg = preset_config("full", Protocol.PURE_LEACH)
        assert cfg.n_nodes == 100
        assert cfg.energy.initial_energy_j == 10.0
        assert cfg.leach.round_duration_s == 20.0

    def test_quick_is_smaller(self):
        full = preset_config("full", Protocol.PURE_LEACH)
        quick = preset_config("quick", Protocol.PURE_LEACH)
        assert quick.n_nodes < full.n_nodes
        assert quick.energy.initial_energy_j < full.energy.initial_energy_j

    def test_load_and_seed_wired(self):
        cfg = preset_config("smoke", Protocol.CAEM_FIXED, load_pps=17.0, seed=5)
        assert cfg.traffic.packets_per_second == 17.0
        assert cfg.seed == 5
        assert cfg.protocol is Protocol.CAEM_FIXED

    def test_unknown_preset(self):
        with pytest.raises(ExperimentError):
            get_preset("galactic")


class TestRunner:
    def test_run_scenario_collects_everything(self):
        cfg = preset_config("smoke", Protocol.PURE_LEACH)
        run = run_scenario(cfg, horizon_s=20.0, sample_interval_s=2.0)
        assert run.protocol == "pure_leach"
        assert len(run.sample_times_s) == len(run.mean_energy_j)
        assert len(run.alive_counts) == len(run.sample_times_s)
        assert run.generated > 0 and run.delivered > 0
        assert run.total_consumed_j > 0
        assert run.energy_per_packet_j > 0
        assert 0 < run.delivery_rate <= 1.0
        assert run.wall_time_s > 0
        assert len(run.death_times_s) == cfg.n_nodes

    def test_energy_series_decreasing(self):
        cfg = preset_config("smoke", Protocol.CAEM_ADAPTIVE)
        run = run_scenario(cfg, horizon_s=15.0, sample_interval_s=1.0)
        assert run.mean_energy_j[0] > run.mean_energy_j[-1]

    def test_stop_when_dead(self):
        cfg = preset_config("smoke", Protocol.PURE_LEACH)
        run = run_scenario(
            cfg, horizon_s=500.0, sample_interval_s=2.0, stop_when_dead=True
        )
        # Smoke tier batteries (0.5 J) cannot last 500 s.
        assert run.lifetime_s is not None
        assert run.sample_times_s[-1] < 500.0

    def test_collect_queues(self):
        cfg = preset_config("smoke", Protocol.CAEM_FIXED)
        run = run_scenario(
            cfg, horizon_s=10.0, sample_interval_s=2.0, collect_queues=True
        )
        assert run.queue_snapshots
        assert all(isinstance(s, list) for s in run.queue_snapshots)

    def test_bad_horizon(self):
        with pytest.raises(ExperimentError):
            run_scenario(preset_config("smoke", Protocol.PURE_LEACH), horizon_s=0.0)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, None]])
        lines = text.strip().splitlines()
        assert lines[0].startswith("a")
        assert "—" in lines[-1]

    def test_row_width_checked(self):
        with pytest.raises(ExperimentError):
            render_table(["a"], [[1, 2]])

    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", ["x", "y"], [[1, 2.0], [3, None]])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.0"
        assert lines[2] == "3,"


class TestTables:
    def test_table1_rows(self):
        t = table1_tone_spec()
        assert t.figure_id == "table1"
        states = t.series("state")
        assert states == ["idle", "receive", "transmit", "collision"]
        durations = t.series("pulse duration (ms)")
        assert durations == [1.0, 0.5, 0.5, 0.5]

    def test_table2_tracks_config(self):
        t = table2_parameters(NetworkConfig(n_nodes=42))
        rows = dict(zip(t.series("parameter"), t.series("value")))
        assert rows["Number of nodes"] == 42
        assert rows["Transmit power (data)"] == "0.66 W"
        assert rows["Buffer size"] == "50 packets"

    def test_series_unknown_column(self):
        with pytest.raises(ExperimentError):
            table1_tone_spec().series("nonexistent")


class TestSweep:
    def test_sweep_over_load(self):
        base = preset_config("smoke", Protocol.PURE_LEACH)
        result = sweep(
            base,
            parameter="load",
            values=[2.0, 8.0],
            transform=lambda cfg, v: cfg.with_traffic(packets_per_second=v),
            metrics={
                "delivered": lambda r: float(r.delivered),
                "energy": lambda r: r.total_consumed_j,
            },
            horizon_s=10.0,
            sample_interval_s=2.0,
        )
        assert [p.value for p in result.points] == [2.0, 8.0]
        delivered = result.column("delivered")
        assert delivered[1] > delivered[0]  # more load, more deliveries
        rows = result.rows(["delivered", "energy"])
        assert len(rows) == 2 and len(rows[0]) == 3

    def test_sweep_validation(self):
        base = preset_config("smoke", Protocol.PURE_LEACH)
        with pytest.raises(ExperimentError):
            sweep(base, "x", [], lambda c, v: c, {"m": lambda r: 1.0}, 10.0)
        with pytest.raises(ExperimentError):
            sweep(base, "x", [1], lambda c, v: c, {}, 10.0)

    def test_censored_metric_dropped(self):
        base = preset_config("smoke", Protocol.PURE_LEACH)
        result = sweep(
            base,
            parameter="load",
            values=[2.0],
            transform=lambda cfg, v: cfg.with_traffic(packets_per_second=v),
            metrics={"lifetime": lambda r: r.lifetime_s},  # None at 10 s horizon
            horizon_s=10.0,
        )
        assert result.column("lifetime") == [None]


class TestCli:
    def _run(self, *argv):
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = main(list(argv))
        return code, buf.getvalue()

    def test_table1(self):
        code, out = self._run("table1")
        assert code == 0 and "idle" in out and "50" in out

    def test_table2(self):
        code, out = self._run("table2")
        assert code == 0 and "0.66 W" in out

    def test_fig8_smoke(self):
        code, out = self._run("fig8", "--preset", "smoke")
        assert code == 0
        assert "pure LEACH" in out and "Scheme 2" in out

    def test_csv_output(self, tmp_path):
        code, out = self._run("table1", "--out", str(tmp_path))
        assert code == 0
        assert (tmp_path / "table1.csv").exists()

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            self._run("fig99")
