"""The head→sink uplink tier: routes, relays, accounting, death races.

Covers the routing subsystem end to end: next-hop planning, sink
placement, the relay MAC on the shared long-haul channel, exactly-once
packet accounting under mid-round cluster-head death (tracked through
Tracer provenance), and the documented radio/local delivery split.
"""

import dataclasses

import pytest

from repro.cluster import Topology
from repro.config import NetworkConfig, Protocol, RoutingConfig
from repro.errors import ClusterError, ConfigError
from repro.network import NodeRole, SensorNetwork
from repro.routing import plan_routes
from repro.sim import Tracer


def _routed(mode="direct", n_nodes=20, seed=3, sink=None, **kw):
    cfg = NetworkConfig(
        n_nodes=n_nodes, protocol=Protocol.CAEM_ADAPTIVE, seed=seed, **kw
    )
    return cfg.with_routing(mode=mode, sink_position=sink)


class TestRoutingConfig:
    def test_default_is_local_and_disabled(self):
        cfg = NetworkConfig()
        assert cfg.routing.mode == "local"
        assert not cfg.routing.enabled

    def test_enabled_modes(self):
        assert RoutingConfig(mode="direct").enabled
        assert RoutingConfig(mode="multihop").enabled

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            RoutingConfig(mode="flooding")

    def test_rejects_bad_sink(self):
        with pytest.raises(ConfigError):
            RoutingConfig(sink_position=(1.0,))
        with pytest.raises(ConfigError):
            RoutingConfig(sink_position=(float("nan"), 0.0))

    def test_dict_round_trip_with_routing(self):
        cfg = NetworkConfig().with_routing(
            mode="multihop", sink_position=(50.0, 150.0), max_hops=4
        )
        assert NetworkConfig.from_dict(cfg.to_dict()) == cfg


class TestSinkPlacement:
    def test_default_sink_is_field_centre(self):
        top = Topology.grid(9, 100.0)
        top.place_sink()
        assert top.sink_position == (50.0, 50.0)

    def test_sink_may_lie_outside_field(self):
        top = Topology.grid(9, 100.0)
        top.place_sink((50.0, 250.0))
        assert top.sink_distance(4) > 100.0

    def test_distance_requires_placement(self):
        top = Topology.grid(9, 100.0)
        with pytest.raises(ClusterError):
            top.sink_distance(0)


class TestRoutePlanning:
    def _topology(self):
        top = Topology.grid(25, 100.0)
        top.place_sink((50.0, 180.0))
        return top

    def test_direct_sends_every_head_to_sink(self):
        top = self._topology()
        routes = plan_routes("direct", [0, 6, 12], top)
        assert routes == {0: None, 6: None, 12: None}

    def test_requires_placed_sink(self):
        with pytest.raises(ClusterError):
            plan_routes("direct", [0], Topology.grid(9, 100.0))

    def test_multihop_progress_is_strictly_toward_sink(self):
        top = self._topology()
        heads = [0, 6, 12, 18, 24]
        routes = plan_routes("multihop", heads, top)
        for h, nxt in routes.items():
            if nxt is not None:
                assert top.sink_distance(nxt) < top.sink_distance(h)

    def test_multihop_is_loop_free(self):
        top = self._topology()
        heads = [0, 6, 12, 18, 24]
        routes = plan_routes("multihop", heads, top)
        for h in heads:
            seen, cur = set(), h
            while cur is not None:
                assert cur not in seen
                seen.add(cur)
                cur = routes[cur]

    def test_multihop_deterministic(self):
        top = self._topology()
        heads = [24, 0, 18, 6, 12]  # order must not matter
        assert plan_routes("multihop", heads, top) == plan_routes(
            "multihop", sorted(heads), top
        )


class TestLocalModeUntouched:
    """With routing disabled the paper's terminus is preserved."""

    def test_no_uplink_machinery_is_built(self):
        net = SensorNetwork(NetworkConfig(n_nodes=12, seed=3))
        net.run_until(25.0)
        assert net.sink is None
        assert net.uplink_channel is None
        assert not net._relays
        assert net.stats.hop_counts == []
        assert net.stats.cluster_delivered == 0
        assert net.stats.delivered_local > 0
        assert not any(n.startswith("uplink/") for n in net.rngs.names())

    def test_no_uplink_energy_causes(self):
        net = SensorNetwork(NetworkConfig(n_nodes=12, seed=3))
        net.run_until(25.0)
        breakdown = net.energy_breakdown()
        assert "uplink_tx" not in breakdown
        assert "uplink_rx" not in breakdown


class TestDirectUplink:
    def test_packets_reach_the_sink(self):
        net = SensorNetwork(_routed("direct", seed=3))
        net.run_until(30.0)
        s = net.stats
        assert s.delivered > 0
        assert s.cluster_delivered > 0
        # Radio/local split: nothing terminates at the head any more.
        assert s.delivered_local == 0
        assert net.sink.packets_received == s.delivered

    def test_hop_counts_are_one_or_two(self):
        """Direct mode: head-own data takes 1 hop, member data takes 2."""
        net = SensorNetwork(_routed("direct", seed=3))
        net.run_until(30.0)
        assert net.stats.hop_counts
        assert set(net.stats.hop_counts) <= {1, 2}

    def test_delays_measured_to_sink_are_positive(self):
        net = SensorNetwork(_routed("direct", seed=3))
        net.run_until(30.0)
        assert net.stats.delays_s
        assert all(d > 0 for d in net.stats.delays_s)

    def test_uplink_energy_is_ledgered_separately(self):
        net = SensorNetwork(_routed("direct", seed=3))
        net.run_until(30.0)
        breakdown = net.energy_breakdown()
        assert breakdown.get("uplink_tx", 0.0) > 0.0

    def test_determinism_same_seed(self):
        a = SensorNetwork(_routed("direct", seed=9))
        a.run_until(30.0)
        b = SensorNetwork(_routed("direct", seed=9))
        b.run_until(30.0)
        assert a.stats.delivered == b.stats.delivered
        assert a.stats.hop_counts == b.stats.hop_counts
        assert a.sim.events_processed == b.sim.events_processed


class TestMultihopUplink:
    def _cfg(self):
        base = NetworkConfig(
            n_nodes=30, protocol=Protocol.CAEM_ADAPTIVE, seed=3,
            leach=dataclasses.replace(
                NetworkConfig().leach, ch_fraction=0.15
            ),
        )
        return base.with_routing(mode="multihop", sink_position=(50.0, 180.0))

    def test_relaying_happens(self):
        net = SensorNetwork(self._cfg())
        net.run_until(40.0)
        s = net.stats
        assert s.delivered > 0
        # At least some packets took a head->head hop before the sink.
        assert max(s.hop_counts) >= 3

    def test_hop_cap_is_respected(self):
        net = SensorNetwork(self._cfg())
        net.run_until(40.0)
        cap = net.cfg.routing.max_hops
        assert all(h <= cap for h in net.stats.hop_counts)


class TestUplinkCollisions:
    """The shared channel's vulnerable window: simultaneous commits
    collide on the ledger and are retried."""

    def _harness(self, n_relays=2, max_retries=6):
        from repro.channel import Link, LinkBudget
        from repro.channel.medium import DataChannel
        from repro.config import ChannelConfig, EnergyConfig, PhyConfig
        from repro.energy import Battery, EnergyMeter, RadioEnergyModel
        from repro.network.stats import NetworkStats
        from repro.phy import AbicmTable
        from repro.rng import RngRegistry
        from repro.routing import Sink, UplinkRelay
        from repro.sim import Simulator

        sim = Simulator()
        stats = NetworkStats()
        sink = Sink((0.0, 0.0), on_delivered=stats.on_sink_delivered)
        channel = DataChannel(sim, name="uplink")
        chan_cfg = ChannelConfig()
        routing = RoutingConfig(mode="direct", max_retries=max_retries)
        abicm = AbicmTable.from_config(PhyConfig())
        model = RadioEnergyModel(EnergyConfig())
        rngs = RngRegistry(7)
        relays = []
        for i in range(n_relays):
            meter = EnergyMeter(sim, model, Battery(100.0))
            relay = UplinkRelay(
                sim, i, meter, channel, abicm, PhyConfig(), routing,
                rngs.stream(f"uplink/mac/{i}"), stats,
            )
            link = Link(10.0, LinkBudget.from_config(chan_cfg), chan_cfg,
                        rngs.stream(f"uplink/link/{i}"), start_time_s=0.0)
            relay.wire(link, None, sink)
            relays.append(relay)
        return sim, stats, relays

    def _packets(self, src, n):
        from repro.traffic.packet import Packet

        return [(Packet(src, 0.0, 2048), 0) for _ in range(n)]

    def test_simultaneous_commits_collide_and_retry(self):
        sim, stats, (a, b) = self._harness()
        # Both sense idle in the same instant -> both commit -> overlap.
        a.offer(self._packets(100, 3))
        b.offer(self._packets(200, 3))
        sim.run(max_events=10_000)
        assert a.bursts_collided + b.bursts_collided >= 2
        # The retry machinery recovered: everything still got through.
        assert stats.delivered == 6
        assert stats.uplink_dropped_retry == 0

    def test_retry_budget_sheds_burst(self):
        sim, stats, (a, b) = self._harness(max_retries=0)
        a.offer(self._packets(100, 3))
        b.offer(self._packets(200, 3))
        sim.run(max_events=10_000)
        # Zero retry budget: the first collision sheds both bursts.
        assert stats.uplink_dropped_retry == 6
        assert stats.delivered == 0

    def test_staggered_senders_do_not_collide(self):
        sim, stats, (a, b) = self._harness()
        a.offer(self._packets(100, 3))
        # B arrives well after A's turnaround window closed.
        sim.call_in(0.5, lambda: b.offer(self._packets(200, 3)))
        sim.run(max_events=10_000)
        assert a.bursts_collided == b.bursts_collided == 0
        assert stats.delivered == 6


class TestExactlyOnceAccounting:
    def _uid_sets(self, tracer):
        delivered, lost, dropped = [], [], []
        for a in tracer.of_kind("uplink.delivered"):
            delivered.extend(a.data["uids"])
        for a in tracer.of_kind("uplink.lost"):
            lost.extend(a.data["uids"])
        for a in tracer.of_kind("uplink.dropped"):
            dropped.extend(a.data["uids"])
        return delivered, lost, dropped

    def test_terminal_outcomes_are_disjoint(self):
        tracer = Tracer()
        net = SensorNetwork(_routed("direct", seed=3), tracer=tracer)
        net.run_until(40.0)
        delivered, lost, dropped = self._uid_sets(tracer)
        assert len(delivered) == len(set(delivered)), "double delivery"
        assert not set(delivered) & set(lost)
        assert not set(delivered) & set(dropped)
        assert not set(lost) & set(dropped)
        assert len(delivered) == net.stats.delivered

    def test_conservation_with_relay_tier(self):
        """Every generated packet is delivered, lost once, or still queued
        (same slack bound as the round-churn test: in-flight bursts)."""
        net = SensorNetwork(_routed("direct", seed=9))
        net.run_until(40.0)
        s = net.stats
        in_network = (
            sum(len(n.buffer) for n in net.nodes)
            + sum(r.queued for r in net._relays.values())
        )
        accounted = (
            s.delivered
            + s.lost_channel
            + s.uplink_undelivered
            + net.dropped_overflow()
            + net.dropped_retry()
            + in_network
        )
        assert abs(net.generated_packets() - accounted) <= 8 * len(net.nodes)


class TestHeadDeathMidRound:
    def _kill_a_head(self, net):
        heads = [n for n in net.nodes if n.role is NodeRole.HEAD and n.alive]
        assert heads
        victim = heads[0]
        members = list(net._members_of[victim.id])
        victim.battery.draw(victim.battery.level_j + 1.0)
        assert not victim.alive
        return victim, members

    def test_members_detach_and_relay_stops(self):
        net = SensorNetwork(_routed("direct", seed=6))
        net.run_until(7.0)
        victim, members = self._kill_a_head(net)
        assert victim.id not in net._relays
        assert victim.id not in net._members_of
        # Members of the dead head are powered down until the next round.
        for member in members:
            if member.alive:
                assert not member.mac.is_attached
        net.run_until(30.0)  # survives and re-clusters
        assert net.sim.now == 30.0

    def test_in_flight_packets_stranded_exactly_once(self):
        tracer = Tracer()
        net = SensorNetwork(_routed("direct", seed=6), tracer=tracer)
        net.run_until(7.0)
        before = net.stats.uplink_stranded
        self._kill_a_head(net)
        net.run_until(40.0)
        delivered, lost, dropped = [], [], []
        for a in tracer.of_kind("uplink.delivered"):
            delivered.extend(a.data["uids"])
        for a in tracer.of_kind("uplink.lost"):
            lost.extend(a.data["uids"])
        for a in tracer.of_kind("uplink.dropped"):
            dropped.extend(a.data["uids"])
        # Stranded packets (head death) never also count delivered/lost.
        assert not set(dropped) & set(delivered)
        assert not set(dropped) & set(lost)
        assert len(delivered) == len(set(delivered))
        assert net.stats.uplink_stranded >= before

    def test_denominators_stay_consistent(self):
        """The documented radio/local split survives head churn: routed
        runs never count local deliveries, and delivery_rate's numerator
        equals sink arrivals."""
        from repro.api import RunOptions, simulate

        cfg = _routed(
            "direct", seed=6,
            energy=dataclasses.replace(
                NetworkConfig().energy, initial_energy_j=0.6
            ),
        )
        result = simulate(cfg, RunOptions(horizon_s=80.0))
        assert result.delivered_local == 0
        assert result.total_delivered == result.delivered
        if result.generated:
            assert result.delivery_rate == pytest.approx(
                result.delivered / result.generated
            )
        # Hop/energy metrics harvested.
        assert result.mean_hop_count > 0
        assert result.uplink_energy_j > 0
        assert result.uplink_energy_j <= result.total_consumed_j


class TestRunResultUplinkFields:
    def test_round_trip_preserves_uplink_fields(self):
        from repro.api import RunOptions, RunResult, simulate

        cfg = _routed("direct", n_nodes=12, seed=3)
        result = simulate(cfg, RunOptions(horizon_s=20.0))
        clone = RunResult.from_dict(result.to_dict())
        assert clone.mean_hop_count == result.mean_hop_count
        assert clone.uplink_energy_j == result.uplink_energy_j
        assert clone.delay_p90_s == result.delay_p90_s

    def test_ext_uplink_registered(self):
        from repro.api import get_experiment

        spec = get_experiment("ext-uplink")
        assert spec.kind == "extension"
