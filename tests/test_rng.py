"""Named RNG streams: determinism and isolation."""

import numpy as np
import pytest

from repro.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_state(self):
        a = derive_seed(7, "fading/link-3")
        b = derive_seed(7, "fading/link-3")
        assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_different_names_differ(self):
        a = derive_seed(7, "fading/link-3")
        b = derive_seed(7, "fading/link-4")
        assert a.generate_state(4).tolist() != b.generate_state(4).tolist()

    def test_different_master_differ(self):
        a = derive_seed(7, "x")
        b = derive_seed(8, "x")
        assert a.generate_state(4).tolist() != b.generate_state(4).tolist()


class TestRngRegistry:
    def test_stream_cached(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_reproducible_across_registries(self):
        r1 = RngRegistry(42).stream("traffic/node-0")
        r2 = RngRegistry(42).stream("traffic/node-0")
        np.testing.assert_array_equal(r1.random(16), r2.random(16))

    def test_construction_order_irrelevant(self):
        ra = RngRegistry(9)
        rb = RngRegistry(9)
        # Touch streams in different orders.
        ra.stream("one"), ra.stream("two")
        rb.stream("two"), rb.stream("one")
        np.testing.assert_array_equal(
            ra.stream("one").random(8), rb.stream("one").random(8)
        )

    def test_streams_are_independent(self):
        reg = RngRegistry(3)
        a = reg.stream("a").random(1000)
        b = reg.stream("b").random(1000)
        # Not identical, and essentially uncorrelated.
        assert not np.allclose(a, b)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)

    def test_names_and_contains(self):
        reg = RngRegistry(0)
        reg.stream("alpha")
        assert "alpha" in reg
        assert "beta" not in reg
        assert "alpha" in reg.names()

    def test_master_seed_property(self):
        assert RngRegistry(17).master_seed == 17
