"""Failure injection: deaths and teardowns at the worst possible moments.

The paper's §III-B requires graceful degradation: "In case a cluster head
collapses or switches ... a sensor should power both radios off and enter
a sleep state."  These tests force deaths mid-round, mid-burst and
mid-backoff and assert the network never wedges, leaks transmissions, or
double-counts energy.
"""

import dataclasses


from repro.config import NetworkConfig, Protocol
from repro.mac import SensorMacState
from repro.network import NodeRole, SensorNetwork
from repro.phy import DataRadioState, ToneRadioState

from mac_harness import feed_packets, make_cell, start_cell


def _net(**kw):
    cfg = NetworkConfig(n_nodes=10, protocol=Protocol.PURE_LEACH, seed=6, **kw)
    return SensorNetwork(cfg)


class TestClusterHeadDeath:
    def test_members_detach_when_head_dies(self):
        net = _net()
        net.run_until(5.0)
        heads = [n for n in net.nodes if n.role is NodeRole.HEAD]
        assert heads
        victim = heads[0]
        # Drain the head's battery to force death.
        victim.battery.draw(victim.battery.level_j + 1.0)
        assert not victim.alive
        # Its members must be powered down, not stuck monitoring.
        for node in net.nodes:
            if node is victim or not node.alive:
                continue
            assert not node.mac.is_attached or node.mac.state is SensorMacState.SLEEP
        # Simulation continues without error.
        net.run_until(25.0)
        assert net.sim.now == 25.0

    def test_network_recovers_next_round(self):
        net = _net()
        net.run_until(5.0)
        victim = next(n for n in net.nodes if n.role is NodeRole.HEAD)
        victim.battery.draw(1e9)
        delivered_before = net.stats.delivered
        # Next round (t=20) re-clusters among survivors; traffic resumes.
        net.run_until(45.0)
        assert net.stats.delivered > delivered_before

    def test_dead_head_never_reelected(self):
        net = _net()
        net.run_until(5.0)
        victim = next(n for n in net.nodes if n.role is NodeRole.HEAD)
        victim.battery.draw(1e9)
        net.run_until(85.0)
        assert victim.role is NodeRole.HEAD or victim.head_mac is None
        # The dead node never appears as a head in later rounds.
        for node in net.nodes:
            if node.role is NodeRole.HEAD:
                assert node.alive


class TestSensorDeathMidTransaction:
    def test_death_mid_burst_clears_channel(self):
        cell = make_cell(n_sensors=1, snr_db=30.0, sensor_battery_j=1000.0)
        start_cell(cell)
        feed_packets(cell, 0, 8)
        cell.sim.run_until(0.0525)  # burst almost surely on the air
        mac = cell.macs[0]
        if mac.state is SensorMacState.TRANSMIT:
            cell.batteries[0].draw(1e9)  # battery event triggers nothing here;
            mac.shutdown()  # network wires depletion -> shutdown
            assert cell.channel.is_idle
            assert mac.data_radio.state is DataRadioState.SLEEP
            assert mac.tone_radio.state is ToneRadioState.OFF
        cell.sim.run_until(1.0)  # no stray callbacks blow up

    def test_death_mid_backoff_cancels_timer(self):
        cell = make_cell(n_sensors=1, snr_db=30.0)
        start_cell(cell)
        feed_packets(cell, 0, 3)
        # Run until the sensor is in backoff (just after the 2nd idle pulse).
        mac = cell.macs[0]
        t = 0.0
        while mac.state is not SensorMacState.BACKOFF and t < 0.3:
            t += 0.001
            cell.sim.run_until(t)
        if mac.state is SensorMacState.BACKOFF:
            mac.shutdown()
            cell.sim.run_until(1.0)
            assert mac.stats.bursts_attempted == 0

    def test_truncated_battery_on_burst(self):
        """A node whose battery empties mid-burst browns out; the meter
        records only what the battery could supply."""
        cell = make_cell(n_sensors=1, snr_db=30.0, sensor_battery_j=1000.0)
        start_cell(cell)
        # Leave just enough for the tone monitoring + startup, not the burst.
        cell.batteries[0].draw(cell.batteries[0].level_j - 1e-4)
        feed_packets(cell, 0, 3)
        cell.sim.run_until(1.0)
        assert cell.batteries[0].drawn_j <= 1000.0
        assert cell.batteries[0].level_j >= 0.0


class TestWholeNetworkDeath:
    def test_everything_dies_cleanly(self):
        net = _net(
            energy=dataclasses.replace(
                NetworkConfig(n_nodes=10).energy, initial_energy_j=0.05
            )
        )
        net.run_until(120.0)
        assert net.alive_count == 0
        assert net.is_dead
        # Clock can still be advanced with a dead network.
        net.run_until(140.0)
        assert net.sim.now == 140.0

    def test_stats_frozen_after_death(self):
        net = _net(
            energy=dataclasses.replace(
                NetworkConfig(n_nodes=10).energy, initial_energy_j=0.05
            )
        )
        net.run_until(120.0)
        delivered = net.stats.delivered
        generated = net.generated_packets()
        net.run_until(160.0)
        assert net.stats.delivered == delivered
        assert net.generated_packets() == generated

    def test_energy_never_negative_anywhere(self):
        net = _net(
            energy=dataclasses.replace(
                NetworkConfig(n_nodes=10).energy, initial_energy_j=0.08
            )
        )
        for t in range(5, 121, 5):
            net.run_until(float(t))
            net.settle_all()
            for node in net.nodes:
                assert node.battery.level_j >= 0.0


class TestRoundBoundaryRaces:
    def test_detach_during_backoff_everywhere(self):
        """Round boundaries constantly interrupt MAC transactions; nothing
        may leak across rounds."""
        cfg = NetworkConfig(
            n_nodes=10,
            protocol=Protocol.PURE_LEACH,
            seed=8,
            leach=dataclasses.replace(
                NetworkConfig(n_nodes=10).leach, round_duration_s=0.5
            ),
        )
        net = SensorNetwork(cfg)
        net.run_until(20.0)  # 40 rounds of churn
        # Invariant: at most one transmission ledger entry per live cluster,
        # and every sensor's state is consistent with its attachment.
        for node in net.nodes:
            if not node.alive:
                continue
            if not node.mac.is_attached:
                assert node.mac.state is SensorMacState.SLEEP

    def test_packets_survive_round_churn(self):
        cfg = NetworkConfig(
            n_nodes=10,
            protocol=Protocol.CAEM_FIXED,  # gating -> long queues -> churn hits
            seed=9,
            leach=dataclasses.replace(
                NetworkConfig(n_nodes=10).leach, round_duration_s=1.0
            ),
        )
        net = SensorNetwork(cfg)
        net.run_until(30.0)
        accounted = (
            net.stats.total_delivered
            + net.stats.lost_channel
            + net.dropped_overflow()
            + net.dropped_retry()
            + sum(len(n.buffer) for n in net.nodes)
        )
        assert abs(net.generated_packets() - accounted) <= 8 * len(net.nodes)
