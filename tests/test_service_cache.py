"""The content-addressed run cache: zero re-simulation, byte-identity."""

import pytest

from repro.api import Campaign, ResultStore, Scenario, use_run_cache
from repro.api.campaign import active_run_cache
from repro.config import Protocol
from repro.service import DbResultStore, RunCache


def _base():
    return Scenario.from_preset("smoke").with_runtime(
        horizon_s=6.0, sample_interval_s=2.0
    )


def _campaign(name="cache-test"):
    return (
        Campaign(_base(), name=name)
        .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE])
        .seeds([1])
    )


class TestRunCache:
    def test_identical_campaign_twice_is_pure_reads(self, tmp_path):
        db = DbResultStore(tmp_path / "runs.sqlite")
        first = RunCache(db)
        r1 = _campaign().run(cache=first)
        assert first.stats.misses == len(r1.runs)
        assert first.stats.hits == 0
        assert len(db) == len(r1.runs)

        second = RunCache(db)
        r2 = _campaign().run(cache=second)
        # Zero simulations on the second pass...
        assert second.stats.misses == 0
        assert second.stats.hits == len(r2.runs)
        assert second.stats.hit_rate == 1.0
        assert second.stats.bytes_saved > 0
        # ...nothing new written...
        assert len(db) == len(r1.runs)
        # ...and the results are byte-identical, in order.
        assert [a.to_dict() for a in r1.runs] == \
            [b.to_dict() for b in r2.runs]

    def test_partial_store_simulates_only_missing_cells(self, tmp_path):
        db = DbResultStore(tmp_path / "runs.sqlite")
        # Populate two of the four cells.
        small = Campaign(_base()).over(
            protocol=[Protocol.PURE_LEACH]
        ).seeds([1, 2])
        small.run(cache=RunCache(db))
        assert len(db) == 2

        big = Campaign(_base()).over(
            protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE]
        ).seeds([1, 2])
        cache = RunCache(db)
        result = big.run(cache=cache)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert len(db) == 4
        # Order is grid order regardless of hit/miss interleaving.
        assert [(r.protocol, r.seed) for r in result.runs] == [
            ("pure_leach", 1), ("pure_leach", 2),
            ("scheme1", 1), ("scheme1", 2),
        ]

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        db = DbResultStore(tmp_path / "runs.sqlite")
        _campaign().run(cache=RunCache(db))
        # Same grid coordinates, different sub-config => different digest
        # => every cell is simulated fresh, never mis-served.
        shifted = (
            Campaign(_base().with_sub("mac", max_retries=1), name="cache-test")
            .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE])
            .seeds([1])
        )
        cache = RunCache(db)
        shifted.run(cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_cached_rows_round_trip_through_user_store(self, tmp_path):
        """--store semantics survive the cache: every result (hit or
        miss) reaches the caller's store, in grid order."""
        db = DbResultStore(tmp_path / "runs.sqlite")
        _campaign().run(cache=RunCache(db))
        out = ResultStore(tmp_path / "out.jsonl")
        result = _campaign().run(cache=RunCache(db), store=out)
        assert [r.to_dict() for r in out.load()] == \
            [r.to_dict() for r in result.runs]

    def test_flat_file_store_backend(self, tmp_path):
        """The cache also works over a plain JSONL store (scan path)."""
        jsonl = ResultStore(tmp_path / "runs.jsonl")
        first = RunCache(jsonl)
        r1 = _campaign().run(cache=first)
        assert first.stats.misses == 2
        second = RunCache(jsonl)
        r2 = _campaign().run(cache=second)
        assert second.stats.misses == 0
        assert [a.to_dict() for a in r1.runs] == \
            [b.to_dict() for b in r2.runs]

    def test_events_emitted_in_both_paths(self, tmp_path):
        db = DbResultStore(tmp_path / "runs.sqlite")
        events = []
        _campaign().run(cache=RunCache(db, on_event=events.append))
        kinds = [e["type"] for e in events]
        assert kinds[0] == "plan"
        assert kinds.count("cell") == 2
        assert all(e["source"] == "sim" for e in events if e["type"] == "cell")
        events2 = []
        _campaign().run(cache=RunCache(db, on_event=events2.append))
        assert all(
            e["source"] == "cache" for e in events2 if e["type"] == "cell"
        )


class TestAmbientCache:
    def test_use_run_cache_scopes_the_context(self, tmp_path):
        db = DbResultStore(tmp_path / "runs.sqlite")
        cache = RunCache(db)
        assert active_run_cache() is None
        with use_run_cache(cache):
            assert active_run_cache() is cache
            _campaign().run()
        assert active_run_cache() is None
        assert cache.stats.misses == 2

    def test_figure_render_is_byte_identical_when_cached(self, tmp_path):
        """The acceptance criterion: a registered experiment re-run
        against a populated store performs zero simulations and renders
        byte-identical output."""
        from repro.experiments.figures import fig8_remaining_energy

        db = DbResultStore(tmp_path / "runs.sqlite")
        cold = RunCache(db)
        with use_run_cache(cold):
            first = fig8_remaining_energy(preset="smoke", seeds=(1,))
        assert cold.stats.misses == 3  # three protocols simulated
        assert cold.stats.hits == 0

        warm = RunCache(db)
        with use_run_cache(warm):
            second = fig8_remaining_energy(preset="smoke", seeds=(1,))
        assert warm.stats.misses == 0
        assert warm.stats.hits == 3
        assert second.render() == first.render()
        # Stored rows carry the experiment stamp (indexed read path).
        assert len(db.query(experiment="fig8")) == 3

    def test_experiment_stamp_isolation(self, tmp_path):
        """fig12 shares fig11's grid coordinates but must not be served
        fig11's rows (the experiment stamp discriminates)."""
        db = DbResultStore(tmp_path / "runs.sqlite")
        scenarios = [_base()]
        from repro.api import run_scenarios

        with use_run_cache(RunCache(db)):
            run_scenarios(scenarios, experiment="exp-a")
        cache = RunCache(db)
        with use_run_cache(cache):
            run_scenarios(scenarios, experiment="exp-b")
        assert cache.stats.misses == 1  # exp-a's row was not admitted

    @pytest.mark.slow
    def test_cache_results_identical_at_any_jobs(self, tmp_path):
        """Cache misses fan out over the process pool like plain runs;
        the assembled results stay bit-identical to jobs=1."""
        db1 = DbResultStore(tmp_path / "a.sqlite")
        db2 = DbResultStore(tmp_path / "b.sqlite")
        serial = _campaign().run(jobs=1, cache=RunCache(db1))
        fanned = _campaign().run(jobs=2, cache=RunCache(db2))
        # wall_time_s is the only field allowed to differ.
        assert [{**a.to_dict(), "wall_time_s": 0} for a in serial.runs] == \
            [{**b.to_dict(), "wall_time_s": 0} for b in fanned.runs]
