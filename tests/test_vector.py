"""Backend equivalence: the vector engine against the event kernel.

The contract under test is the one :mod:`repro.vector.equivalence`
formalises — golden ``RunResult`` fields (run identity, sampling
timeline, RNG-driven placement/election/dynamics replay, death
bookkeeping on death-free runs) are *equal*; per-packet statistics agree
within calibrated bands.  Tier-1 covers N in {50, 200} across all five
canonical scenarios (static/uplink/dynamics plus the Jakes-Doppler and
Rician K=4 fading kernels); the N=1000 golden sweep and the N=5000
statistical check run under ``-m slow``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import NetworkConfig
from repro.errors import ExperimentError
from repro.vector.equivalence import (
    SCENARIOS,
    STAT_BANDS,
    compare_backends,
    default_options,
    scenario_config,
)


def _assert_clean(report: dict, stats_strict: bool = True) -> None:
    assert not report["golden_mismatches"], (
        f"golden mismatch in {report['scenario']} "
        f"N={report['n_nodes']} seed={report['seed']}: "
        f"{report['golden_mismatches']}"
    )
    if stats_strict:
        detail = {
            f: report["stats"][f] for f in report["stat_failures"]
        }
        assert not report["stat_failures"], (
            f"statistical band miss in {report['scenario']} "
            f"N={report['n_nodes']} seed={report['seed']}: {detail}"
        )


class TestGoldenEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_n50(self, scenario):
        _assert_clean(compare_backends(scenario, 50, seed=3))

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_n200(self, scenario):
        _assert_clean(compare_backends(scenario, 200, seed=3))

    @pytest.mark.slow
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_n1000(self, scenario):
        _assert_clean(compare_backends(scenario, 1000, seed=3))

    @pytest.mark.slow
    def test_statistical_n5000(self):
        # Population scale: golden still exact, every band still holds
        # (delivery, throughput, energy, delay, generated volume).
        _assert_clean(compare_backends("static", 5000, seed=3))


class TestBackendSelection:
    def test_default_backend_unchanged(self):
        cfg = NetworkConfig(n_nodes=10, seed=1)
        assert cfg.scale.backend == "event"
        # Sparse serialisation: selecting the default never moves any
        # digest, so every pre-vector stored run stays addressable.
        assert cfg.digest() == cfg.with_scale(backend="event").digest()
        assert cfg.digest() != cfg.with_scale(backend="vector").digest()

    def test_dispatch_routes_to_vector(self):
        from repro.api import RunOptions, simulate

        cfg = scenario_config("static", 20, seed=3)
        opts = RunOptions(horizon_s=5.0, sample_interval_s=2.5)
        ev = simulate(cfg, opts)
        vec = simulate(cfg.with_scale(backend="vector"), opts)
        # Distinct engines, same run identity and timeline.
        assert vec.config_digest != ev.config_digest
        assert vec.sample_times_s == ev.sample_times_s
        assert vec.n_nodes == ev.n_nodes == 20

    def test_result_round_trips_through_store(self, tmp_path):
        from repro.api import RunOptions, simulate
        from repro.service import open_store

        cfg = scenario_config("static", 20, seed=3).with_scale(
            backend="vector"
        )
        run = simulate(cfg, RunOptions(horizon_s=5.0, sample_interval_s=2.5))
        store = open_store(tmp_path / "runs.sqlite")
        store.append(run)
        (back,) = store.load()
        assert back.to_dict() == run.to_dict()

    def test_full_channel_envelope_accepted(self):
        # The refuse list is empty: Jakes and Rician K>0 run on the
        # vector engine directly (they used to raise ConfigError).
        from repro.api import RunOptions, simulate
        from repro.vector.support import vector_refusal

        base = NetworkConfig(n_nodes=10, seed=1).with_scale(backend="vector")
        jakes = dataclasses.replace(
            base, channel=dataclasses.replace(
                base.channel, fading_kernel="jakes"
            )
        )
        rician = dataclasses.replace(
            base, channel=dataclasses.replace(base.channel, rician_k=4.0)
        )
        opts = RunOptions(horizon_s=1.0, sample_interval_s=0.5)
        for cfg in (jakes, rician):
            assert vector_refusal(cfg) is None
            run = simulate(cfg, opts)
            assert run.n_nodes == 10
            assert run.generated > 0

    def test_ext_scale_rejects_unknown_backend(self):
        from repro.api import get_experiment

        with pytest.raises(ExperimentError):
            get_experiment("ext-scale").run(
                preset="smoke", backend="quantum"
            )

    def test_ext_scale_runs_on_vector(self):
        from repro.api import get_experiment

        figure = get_experiment("ext-scale").run(
            preset="smoke", seeds=(1,), node_counts=(30,),
            backend="vector",
        )
        assert "backend=vector" in figure.notes
        assert all(row[3] is not None for row in figure.rows)  # delivery


class TestKdMembership:
    """The KD-tree nearest-head path must equal the brute row bit-for-bit."""

    @staticmethod
    def _brute(mem_pos, head_pos):
        import numpy as np

        diff = head_pos[None, :, :] - mem_pos[:, None, :]
        row = np.sqrt((diff ** 2).sum(axis=2))
        pick = np.argmin(row, axis=1)
        return pick.astype(np.int64), row[
            np.arange(mem_pos.shape[0]), pick
        ]

    def test_uniform_placement_matches_brute(self):
        import numpy as np

        from repro.vector.engine import _nearest_heads_kd

        rng = np.random.default_rng(11)
        head_pos = rng.uniform(0.0, 500.0, size=(300, 2))
        mem_pos = rng.uniform(0.0, 500.0, size=(4000, 2))
        pk, dk = _nearest_heads_kd(mem_pos, head_pos)
        pb, db = self._brute(mem_pos, head_pos)
        assert (pk == pb).all()
        assert (dk == db).all()

    def test_lattice_ties_match_brute(self):
        # Grid placements produce exact float ties (a member at a cell
        # centre is equidistant to four heads; distance 0 when it sits
        # on one) — the fallback must keep first-occurrence tie order.
        import numpy as np

        from repro.vector.engine import _nearest_heads_kd

        rng = np.random.default_rng(5)
        gx, gy = np.meshgrid(
            np.arange(15, dtype=float), np.arange(15, dtype=float)
        )
        head_pos = np.column_stack([gx.ravel(), gy.ravel()])
        rng.shuffle(head_pos)
        mem_pos = np.concatenate([
            head_pos[:60] + 0.5,   # 4-way ties at cell centres
            head_pos[:30],         # distance-0 ties
            rng.uniform(0.0, 14.0, size=(200, 2)),
        ])
        pk, dk = _nearest_heads_kd(mem_pos, head_pos)
        pb, db = self._brute(mem_pos, head_pos)
        assert (pk == pb).all()
        assert (dk == db).all()

    def test_engine_paths_agree_end_to_end(self):
        # Force both membership paths through a full run: identical
        # RunResult either way (the KD threshold only picks the faster
        # of two bit-equal implementations).
        import repro.vector.engine as eng
        from repro.api import RunOptions, simulate

        cfg = scenario_config("static", 400, seed=4).with_scale(
            backend="vector"
        )
        opts = RunOptions(horizon_s=10.0, sample_interval_s=5.0)
        old = eng._KD_MIN_HEADS
        try:
            eng._KD_MIN_HEADS = 10 ** 9
            brute = simulate(cfg, opts).to_dict()
            eng._KD_MIN_HEADS = 1
            kd = simulate(cfg, opts).to_dict()
        finally:
            eng._KD_MIN_HEADS = old
        brute.pop("wall_time_s")
        kd.pop("wall_time_s")
        assert brute == kd


class TestRoundProfiling:
    def test_profile_rounds_writes_timeline(self, tmp_path):
        from repro.api import RunOptions, simulate

        path = tmp_path / "rounds.json"
        cfg = scenario_config("static", 60, seed=3).with_scale(
            backend="vector"
        )
        opts = RunOptions(
            horizon_s=40.0, sample_interval_s=5.0,
            profile_rounds=str(path),
        )
        run = simulate(cfg, opts)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "profile_rounds/v1"
        assert doc["n_nodes"] == 60
        assert doc["steps"] == run.events_processed
        assert doc["rounds"] == len(doc["timeline"])
        # Every per-step phase shows up in the totals, and the timeline
        # rows carry the same keys.
        for phase in ("membership", "channel", "traffic", "mac", "energy"):
            assert phase in doc["phase_totals_s"]
        # A round that forms exactly at the horizon records its
        # membership cost with zero steps; every earlier round stepped.
        assert all(r["steps"] > 0 for r in doc["timeline"][:-1])

    def test_profiling_is_observational(self, tmp_path):
        from repro.api import RunOptions, simulate

        cfg = scenario_config("static", 60, seed=3).with_scale(
            backend="vector"
        )
        plain = simulate(
            cfg, RunOptions(horizon_s=10.0, sample_interval_s=5.0)
        ).to_dict()
        profiled = simulate(
            cfg,
            RunOptions(
                horizon_s=10.0, sample_interval_s=5.0,
                profile_rounds=str(tmp_path / "p.json"),
            ),
        ).to_dict()
        plain.pop("wall_time_s")
        profiled.pop("wall_time_s")
        assert plain == profiled


class TestHarnessCli:
    def test_parity_gate_exit_code(self, capsys):
        from repro.vector.equivalence import main

        assert main(["--nodes", "50", "--scenarios", "static"]) == 0
        out = capsys.readouterr().out
        assert "ok: golden" in out

    def test_band_table_covers_core_metrics(self):
        for field in ("delivery_rate", "throughput_bps",
                      "total_consumed_j", "mean_delay_s"):
            assert field in STAT_BANDS

    def test_default_options_match_ext_scale_window(self):
        opts = default_options()
        assert opts.horizon_s == 40.0
        assert opts.sample_interval_s == 5.0
