"""Backend equivalence: the vector engine against the event kernel.

The contract under test is the one :mod:`repro.vector.equivalence`
formalises — golden ``RunResult`` fields (run identity, sampling
timeline, RNG-driven placement/election/dynamics replay, death
bookkeeping on death-free runs) are *equal*; per-packet statistics agree
within calibrated bands.  Tier-1 covers N in {50, 200} across all three
canonical scenarios; the N=1000 golden sweep and the N=5000 statistical
check run under ``-m slow``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigError, ExperimentError
from repro.vector.equivalence import (
    SCENARIOS,
    STAT_BANDS,
    compare_backends,
    default_options,
    scenario_config,
)


def _assert_clean(report: dict, stats_strict: bool = True) -> None:
    assert not report["golden_mismatches"], (
        f"golden mismatch in {report['scenario']} "
        f"N={report['n_nodes']} seed={report['seed']}: "
        f"{report['golden_mismatches']}"
    )
    if stats_strict:
        detail = {
            f: report["stats"][f] for f in report["stat_failures"]
        }
        assert not report["stat_failures"], (
            f"statistical band miss in {report['scenario']} "
            f"N={report['n_nodes']} seed={report['seed']}: {detail}"
        )


class TestGoldenEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_n50(self, scenario):
        _assert_clean(compare_backends(scenario, 50, seed=3))

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_n200(self, scenario):
        _assert_clean(compare_backends(scenario, 200, seed=3))

    @pytest.mark.slow
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_n1000(self, scenario):
        _assert_clean(compare_backends(scenario, 1000, seed=3))

    @pytest.mark.slow
    def test_statistical_n5000(self):
        # Population scale: golden still exact, every band still holds
        # (delivery, throughput, energy, delay, generated volume).
        _assert_clean(compare_backends("static", 5000, seed=3))


class TestBackendSelection:
    def test_default_backend_unchanged(self):
        cfg = NetworkConfig(n_nodes=10, seed=1)
        assert cfg.scale.backend == "event"
        # Sparse serialisation: selecting the default never moves any
        # digest, so every pre-vector stored run stays addressable.
        assert cfg.digest() == cfg.with_scale(backend="event").digest()
        assert cfg.digest() != cfg.with_scale(backend="vector").digest()

    def test_dispatch_routes_to_vector(self):
        from repro.api import RunOptions, simulate

        cfg = scenario_config("static", 20, seed=3)
        opts = RunOptions(horizon_s=5.0, sample_interval_s=2.5)
        ev = simulate(cfg, opts)
        vec = simulate(cfg.with_scale(backend="vector"), opts)
        # Distinct engines, same run identity and timeline.
        assert vec.config_digest != ev.config_digest
        assert vec.sample_times_s == ev.sample_times_s
        assert vec.n_nodes == ev.n_nodes == 20

    def test_result_round_trips_through_store(self, tmp_path):
        from repro.api import RunOptions, simulate
        from repro.service import open_store

        cfg = scenario_config("static", 20, seed=3).with_scale(
            backend="vector"
        )
        run = simulate(cfg, RunOptions(horizon_s=5.0, sample_interval_s=2.5))
        store = open_store(tmp_path / "runs.sqlite")
        store.append(run)
        (back,) = store.load()
        assert back.to_dict() == run.to_dict()

    def test_unsupported_channel_refused(self):
        from repro.api import RunOptions, simulate

        base = NetworkConfig(n_nodes=10, seed=1).with_scale(backend="vector")
        jakes = dataclasses.replace(
            base, channel=dataclasses.replace(
                base.channel, fading_kernel="jakes"
            )
        )
        with pytest.raises(ConfigError):
            simulate(jakes, RunOptions(horizon_s=1.0, sample_interval_s=0.5))
        rician = dataclasses.replace(
            base, channel=dataclasses.replace(base.channel, rician_k=4.0)
        )
        with pytest.raises(ConfigError):
            simulate(rician, RunOptions(horizon_s=1.0, sample_interval_s=0.5))

    def test_ext_scale_rejects_unknown_backend(self):
        from repro.api import get_experiment

        with pytest.raises(ExperimentError):
            get_experiment("ext-scale").run(
                preset="smoke", backend="quantum"
            )

    def test_ext_scale_runs_on_vector(self):
        from repro.api import get_experiment

        figure = get_experiment("ext-scale").run(
            preset="smoke", seeds=(1,), node_counts=(30,),
            backend="vector",
        )
        assert "backend=vector" in figure.notes
        assert all(row[3] is not None for row in figure.rows)  # delivery


class TestHarnessCli:
    def test_parity_gate_exit_code(self, capsys):
        from repro.vector.equivalence import main

        assert main(["--nodes", "50", "--scenarios", "static"]) == 0
        out = capsys.readouterr().out
        assert "ok: golden" in out

    def test_band_table_covers_core_metrics(self):
        for field in ("delivery_rate", "throughput_bps",
                      "total_consumed_j", "mean_delay_s"):
            assert field in STAT_BANDS

    def test_default_options_match_ext_scale_window(self):
        opts = default_options()
        assert opts.horizon_s == 40.0
        assert opts.sample_interval_s == 5.0
