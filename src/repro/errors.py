"""Exception hierarchy for the CAEM reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "SchedulerError",
    "ProcessError",
    "ChannelError",
    "PhyError",
    "MacError",
    "EnergyError",
    "BatteryDepletedError",
    "BufferOverflowError",
    "ClusterError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """A configuration value is missing, malformed, or out of range."""


class SimulationError(ReproError, RuntimeError):
    """Generic failure inside the discrete-event simulation."""


class SchedulerError(SimulationError):
    """Misuse of the event scheduler (e.g. scheduling into the past)."""


class ProcessError(SimulationError):
    """A simulation process was driven incorrectly (bad yield, dead wait)."""


class ChannelError(ReproError):
    """Invalid channel-model parameter or query."""


class PhyError(ReproError):
    """Invalid physical-layer parameter (modulation, coding, mode table)."""


class MacError(ReproError):
    """MAC state machine was driven into an invalid transition."""


class EnergyError(ReproError):
    """Invalid energy-model operation."""


class BatteryDepletedError(EnergyError):
    """An energy draw was attempted on an exhausted battery."""


class BufferOverflowError(ReproError):
    """Raised by strict buffers when a packet cannot be admitted.

    The default network stack *drops* packets instead of raising; this
    exception exists for strict-mode buffers used in tests and analyses.
    """


class ClusterError(ReproError):
    """Cluster formation / LEACH election failure."""


class ExperimentError(ReproError):
    """An experiment harness was configured or driven incorrectly."""
