"""The vectorized population-scale engine (``ScaleConfig.backend="vector"``).

One :class:`VectorNetwork` holds every node's state in numpy
structure-of-arrays — positions, battery levels, ring-buffer queues,
Scheme-1 policy state, per-link AR(1) shadowing/fading states — and
advances the whole population in fixed channel-coherence steps
(``ChannelConfig.fading_coherence_s``) with batched array operations.

Where the two engines must agree exactly (the golden contract pinned by
:mod:`repro.vector.equivalence`), this engine *reuses the event kernel's
named streams with identical consumption order*:

* ``topology`` — one ``uniform`` block for placement;
* ``leach`` — :class:`~repro.cluster.leach.LeachElection` is called with
  the same alive-id lists in the same round order, so head sets match
  bit-for-bit (``np.flatnonzero`` yields ascending ids, exactly the
  event network's node iteration order);
* ``dynamics/battery``, ``dynamics/traffic`` — construction overrides,
  drawn in the event kernel's order;
* ``dynamics/churn/<i>``, ``dynamics/regime`` — the full churn/regime
  timeline is *pre-played* here with draw-for-draw identical consumption
  (gap, then downtime, then next gap; gap, then offset, ...), so applied
  failure/recovery/shift counts and times match exactly.

Everything per-packet — traffic arrivals, MAC contention, per-burst PER,
energy metering — runs on dedicated ``vector/*`` streams and a
time-stepped fluid abstraction of the CAEM MAC, so those fields are
statistically equivalent to the event kernel, not bit-identical:

* traffic is drawn as per-step batch counts (Poisson / CBR accumulator /
  two-state on-off), with arrivals stamped mid-step;
* per cluster and step, contenders race once per sub-iteration with the
  event MAC's backoff law (``u · 2^retry · slot · CW``); collisions are
  resolved by an exact fine-structure pass — a sorted-interval overlap
  count inside the radio's 20 µs startup blind window — so episodes are
  k-way, exactly one sensor (the winner, mid-transmission when the
  collision tone fires) counts a heard collision, and the later
  colliders hold the channel for their full corrupted-burst airtime;
* burst size, per-mode airtime, per-packet PER Bernoulli draws, and the
  energy charges per attempt reproduce the event MAC's arithmetic on
  arrays;
* Scheme 1's queue-sampling controller runs batched: a node that
  accumulated ``M`` accepted arrivals in a step takes one sample at the
  step's end (the event kernel samples at the exact M-th arrival).

The full channel envelope is vectorised: the exponential (Gauss-Markov)
and Jakes-Doppler AR(1) fading bridges (:class:`repro.vector.state.ArStep`
mirrors :class:`repro.channel.fading.RayleighFading`'s per-gap
arithmetic) and Rician K>0 LOS/scatter mixing, all held to the
equivalence contract by :mod:`repro.vector.equivalence`.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..channel import LinkBudget
from ..cluster import LeachElection, Topology
from ..config import NetworkConfig, Protocol
from ..energy import RadioEnergyModel
from ..errors import ConfigError
from ..metrics.lifetime import death_spread_s, first_death_s, network_lifetime_s
from ..phy import AbicmTable
from ..rng import RngRegistry
from ..routing import plan_routes
from .profile import attach as _attach_profiler
from .state import ArStep, BatchReservoir, PerTables, SeriesRecorder
from .support import vector_refusal

__all__ = ["simulate_vector", "VectorNetwork"]

#: Contention sub-iterations resolved per cluster per step.  Each round
#: of the loop lets every still-qualified member race again after the
#: previous winner's burst advanced the cluster's busy clock; beyond a
#: few iterations the clock has left the step window anyway.
_MAC_SUB_ITERS = 8

#: Probability that a ready member joins a given race (see the
#: pulse-eligibility comment in :meth:`VectorNetwork._mac_step`).
_MAC_JOIN_P = 0.75

#: Barrier bookkeeping epsilon for merging pre-played dynamics events
#: into the step agenda (barrier times themselves compare exactly).
_EPS = 1e-12

#: Head-set size at which membership assignment switches from the brute
#: chunked distance matrix to the KD-tree path (below it the matrix is
#: already small, and the paper-scale populations the equivalence
#: harness golden-checks stay on the original code verbatim).
_KD_MIN_HEADS = 64


def _nearest_heads_kd(
    mem_pos: np.ndarray, head_pos: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-head assignment, bit-identical to the brute distance row.

    Same contract as the chunked matrix in ``_start_round``: for each
    member, the head minimising ``sqrt(dx**2 + dy**2)`` (the exact float
    sequence of :meth:`repro.cluster.topology.Topology.nearest`), ties
    broken by earliest position in the head array.  The KD tree only
    *proposes* the ``k`` nearest candidates; picks and distances are
    re-derived with the reference arithmetic, and any row whose k-th
    candidate ties the minimum — the one case where an equally near
    head could hide beyond the candidate set — falls back to the full
    brute row.  (cKDTree's own p=2 metric accumulates ``dx*dx + dy*dy``
    in the same double-precision order, so its squared-distance ranking
    is exact; ``sqrt`` is monotone, so a head outside the candidate set
    can only tie the minimum if the k-th candidate does too.)
    """
    from scipy.spatial import cKDTree

    h = head_pos.shape[0]
    k = min(4, h)
    _, ii = cKDTree(head_pos).query(mem_pos, k=k)
    if ii.ndim == 1:
        ii = ii[:, None]
    diff = head_pos[ii] - mem_pos[:, None, :]
    drow = np.sqrt((diff**2).sum(axis=2))
    dmin = drow.min(axis=1)
    # Earliest head order among the our-metric ties within the k.
    pick = np.where(drow == dmin[:, None], ii, h).min(axis=1)
    if k < h:
        unsure = drow[:, -1] <= dmin
        if unsure.any():
            rows = np.flatnonzero(unsure)
            diff_f = head_pos[None, :, :] - mem_pos[rows, None, :]
            row_f = np.sqrt((diff_f**2).sum(axis=2))
            full = np.argmin(row_f, axis=1)
            pick[rows] = full
            dmin[rows] = row_f[np.arange(rows.size), full]
    return pick.astype(np.int64), dmin


def _check_supported(cfg: NetworkConfig) -> None:
    reason = vector_refusal(cfg)
    if reason is not None:
        raise ConfigError(reason)


class _DynamicsReplay:
    """Pre-played dynamics timeline (see the module docstring).

    Consumes ``dynamics/churn/<i>`` (node-id order) and
    ``dynamics/regime`` exactly as :class:`repro.dynamics.EventTimeline`
    does, then merges scripted and stochastic events into one
    time-sorted agenda.  The stable sort preserves the event kernel's
    push order for equal-time scripted entries (scripted failures, then
    scripted recoveries, then chain arms).
    """

    def __init__(self, cfg: NetworkConfig, rngs: RngRegistry, horizon_s: float):
        dyn = cfg.dynamics
        for label, events in (
            ("scripted_failures", dyn.scripted_failures),
            ("scripted_recoveries", dyn.scripted_recoveries),
        ):
            for _t, node in events:
                if not 0 <= node < cfg.n_nodes:
                    raise ConfigError(
                        f"{label} names node {node}, but the network has "
                        f"{cfg.n_nodes} nodes (valid ids: 0..{cfg.n_nodes - 1})"
                    )
        agenda: List[Tuple[float, str, object]] = []
        for t, node in dyn.scripted_failures:
            if t <= horizon_s:
                agenda.append((float(t), "sfail", int(node)))
        for t, node in dyn.scripted_recoveries:
            if t <= horizon_s:
                agenda.append((float(t), "srecover", int(node)))
        if dyn.failure_rate_hz > 0:
            for node in range(cfg.n_nodes):
                rng = rngs.stream(f"dynamics/churn/{node}")
                t = float(rng.exponential(1.0 / dyn.failure_rate_hz))
                while t <= horizon_s:
                    # Downtime drawn before the failure applies, exactly
                    # like EventTimeline._stochastic_fail.
                    downtime = (
                        float(rng.exponential(dyn.mean_downtime_s))
                        if dyn.mean_downtime_s > 0
                        else None
                    )
                    agenda.append((t, "fail", node))
                    if downtime is None:
                        break  # permanent failure: chain ends
                    t_rec = t + downtime
                    if t_rec > horizon_s:
                        break
                    agenda.append((t_rec, "recover", node))
                    t = t_rec + float(rng.exponential(1.0 / dyn.failure_rate_hz))
        if dyn.regime_mean_interval_s > 0 and dyn.regime_sigma_db > 0:
            rng = rngs.stream("dynamics/regime")
            t = float(rng.exponential(dyn.regime_mean_interval_s))
            while t <= horizon_s:
                offset = float(rng.normal(0.0, dyn.regime_sigma_db))
                agenda.append((t, "regime", offset))
                t += float(rng.exponential(dyn.regime_mean_interval_s))
        agenda.sort(key=lambda e: e[0])  # stable: insertion order on ties
        self.events = agenda
        self.cursor = 0

    def next_time(self) -> float:
        if self.cursor >= len(self.events):
            return math.inf
        return self.events[self.cursor][0]


class VectorNetwork:
    """Structure-of-arrays population state plus the stepping loop."""

    def __init__(self, cfg: NetworkConfig, opts, tracer=None) -> None:
        _check_supported(cfg)
        self.cfg = cfg
        self.opts = opts
        self.tracer = tracer
        self._prof = _attach_profiler(opts)
        n = cfg.n_nodes
        self.n = n
        self.rngs = RngRegistry(cfg.seed)

        # Shared substrate — identical construction to SensorNetwork.
        self.abicm = AbicmTable.from_config(cfg.phy)
        self.model = RadioEnergyModel(
            cfg.energy, uplink_tx_power_w=cfg.routing.uplink_tx_power_w
        )
        self.budget = LinkBudget.from_config(cfg.channel)
        self.uplink_budget = LinkBudget(
            self.budget.pathloss,
            cfg.routing.uplink_tx_power_w,
            cfg.channel.noise_floor_dbm,
        )
        if cfg.placement == "grid":
            self.topology = Topology.grid(n, cfg.field_size_m)
        else:
            self.topology = Topology.uniform(
                n, cfg.field_size_m, self.rngs.stream("topology")
            )
        self.election = LeachElection(cfg.leach, self.rngs.stream("leach"))
        if cfg.routing.enabled:
            self.topology.place_sink(cfg.routing.sink_position)

        # Construction-time dynamics overrides: same streams, same order
        # as SensorNetwork.__init__.
        level = np.full(n, cfg.energy.initial_energy_j)
        self._bursty = np.zeros(n, dtype=bool)
        if cfg.dynamics.enabled:
            if cfg.dynamics.battery_jitter > 0:
                j = cfg.dynamics.battery_jitter
                factors = self.rngs.stream("dynamics/battery").uniform(
                    1.0 - j, 1.0 + j, n
                )
                level = cfg.energy.initial_energy_j * factors
            if cfg.dynamics.bursty_fraction > 0:
                picks = self.rngs.stream("dynamics/traffic").random(n)
                self._bursty = picks < cfg.dynamics.bursty_fraction

        # Dedicated vector streams (never touched by the event kernel).
        self._chan_rng = self.rngs.stream("vector/channel")
        self._traf_rng = self.rngs.stream("vector/traffic")
        self._mac_rng = self.rngs.stream("vector/mac")
        self._phy_rng = self.rngs.stream("vector/phy")
        self._up_rng = self.rngs.stream("vector/uplink")
        stats_rng = self.rngs.stream("vector/stats")

        self.replay = _DynamicsReplay(cfg, self.rngs, opts.horizon_s)
        self._scripted_down: set = set()

        # -- node state arrays ------------------------------------------------
        self.positions = self.topology.positions
        self.level = level
        self.drawn = np.zeros(n)
        self.alive = np.ones(n, dtype=bool)
        self.failed = np.zeros(n, dtype=bool)
        self.death_time = np.full(n, np.nan)
        self.last_failure = np.full(n, np.nan)
        self.attached = np.zeros(n, dtype=bool)
        self.is_head = np.zeros(n, dtype=bool)
        self.retry = np.zeros(n, dtype=np.int64)

        # Ring-buffer queues: births, sources, start offsets, lengths.
        B = cfg.traffic.buffer_packets
        self.B = B
        self.qbirth = np.zeros((n, B))
        self.qsrc = np.zeros((n, B), dtype=np.int32)
        self.qstart = np.zeros(n, dtype=np.int64)
        self.qlen = np.zeros(n, dtype=np.int64)

        # Traffic state.
        self._cbr_acc = np.zeros(n)
        rate = cfg.traffic.packets_per_second
        on_s, off_s = cfg.traffic.onoff_on_s, cfg.traffic.onoff_off_s
        duty = on_s / (on_s + off_s) if (on_s + off_s) > 0 else 1.0
        self._onoff_rate = rate / duty if duty > 0 else rate
        self._onoff_nodes = (
            np.flatnonzero(self._bursty)
            if cfg.traffic.source_model != "onoff"
            else np.arange(n)
        )
        if cfg.traffic.source_model == "onoff":
            self._bursty = np.ones(n, dtype=bool)
        self._on_state = np.zeros(n, dtype=bool)  # start in the OFF phase
        self._on_switch = np.full(n, np.inf)
        if self._onoff_nodes.size:
            self._on_switch[self._onoff_nodes] = self._traf_rng.exponential(
                off_s if off_s > 0 else on_s, self._onoff_nodes.size
            )

        # Scheme-1 policy state (persists across rounds, like the event
        # kernel's AdaptiveThresholdPolicy which is never reset).
        n_modes = self.abicm.n_modes
        self.highest_class = n_modes - 1
        init_cls = (
            cfg.policy.initial_class
            if cfg.policy.initial_class is not None
            else self.highest_class
        )
        self.cls = np.full(n, min(init_cls, n_modes - 1), dtype=np.int64)
        self.pol_ctr = np.zeros(n, dtype=np.int64)
        self.pol_last = np.full(n, np.nan)
        self.pol_armed = np.zeros(n, dtype=bool)

        # PHY/MAC constants.
        self.thr = np.asarray(
            [self.abicm.threshold_for_class(k) for k in range(n_modes)]
        )
        self.rates = np.asarray([m.throughput_bps for m in self.abicm.modes])
        self.pertab = PerTables(self.abicm, cfg.phy.packet_length_bits)
        self.bits = cfg.phy.packet_length_bits
        self.overhead_bits = cfg.phy.burst_overhead_bits
        self.gated = cfg.protocol is not Protocol.PURE_LEACH
        mac = cfg.mac
        self._backoff_scale = mac.backoff_slot_s * mac.contention_window
        self._blind_s = cfg.energy.startup_time_s
        # Access-entry cost for a cluster whose channel sat idle: the
        # tone broadcaster emits an idle pulse the instant the channel
        # frees (so back-to-back bursts chain with only backoff+startup
        # between them), but a sensor whose queue qualifies mid-idle
        # waits half an idle period for the next pulse on average, plus
        # the sensing delay before it may classify the train.
        self._idle_entry_s = 0.5 * cfg.tone.idle_period_s + cfg.tone.sensing_delay_s
        tone = cfg.tone
        self._head_tone_duty = (
            tone.idle_duration_s / tone.idle_period_s
            + tone.transmit_duration_s / tone.transmit_period_s
        )
        self._ar = ArStep(
            cfg.channel.shadowing_sigma_db,
            cfg.channel.shadowing_tau_s,
            cfg.channel.fading_coherence_s,
            cfg.channel.fading_kernel,
        )
        # Rician LOS mixing (RayleighFading._los / _scatter_scale): the
        # scatter quadratures are scaled so total mean power stays 1.
        # K=0 degenerates to pure Rayleigh with los=0, scatter=1 — the
        # SNR arithmetic below is then bit-identical to the old path.
        k_ric = cfg.channel.rician_k
        self._los = math.sqrt(k_ric / (k_ric + 1.0))
        self._scatter = math.sqrt(1.0 / (k_ric + 1.0))
        self.dt = cfg.channel.fading_coherence_s

        # Per-round cluster state (filled by _start_round).
        self.heads = np.empty(0, dtype=np.int64)
        self.head_up = np.empty(0, dtype=bool)
        self.busy = np.empty(0)
        self.m_ids = np.empty(0, dtype=np.int64)
        self.m_cl = np.empty(0, dtype=np.int64)
        self.m_mean = np.empty(0)
        self.m_sh = np.empty(0)
        self.m_fx = np.empty(0)
        self.m_fy = np.empty(0)
        self._cluster_of_head: Dict[int, int] = {}
        # Uplink tier per-round state.
        self.next_hop = np.empty(0, dtype=np.int64)
        self.u_mean = np.empty(0)
        self.u_sh = np.empty(0)
        self.u_fx = np.empty(0)
        self.u_fy = np.empty(0)
        self.relay_q: List[List[Tuple[float, int, int]]] = []
        self.u_retry = np.empty(0, dtype=np.int64)
        self._ubusy = 0.0
        self._rr = -1

        self.round_index = 0
        self._regime_offset = 0.0
        self.steps = 0

        # -- counters / ledgers ----------------------------------------------
        self.generated = 0
        self.delivered = 0
        self.delivered_local = 0
        self.lost_channel = 0
        self.dropped_overflow = 0
        self.dropped_retry = 0
        self.collisions = 0
        self.delivered_bits = 0
        self.cluster_delivered = 0
        self.uplink_lost_channel = 0
        self.uplink_dropped_retry = 0
        self.uplink_dropped_overflow = 0
        self.uplink_stranded = 0
        self.churn_failures = 0
        self.churn_recoveries = 0
        self.regime_shifts = 0
        self.orphaned = 0
        self.first_failure_s: Optional[float] = None
        self.breakdown: Dict[str, float] = {}
        cap = cfg.scale.max_delay_samples
        self.delays = BatchReservoir(cap, stats_rng)
        self.hops = BatchReservoir(cap, stats_rng)
        self.bits_by_src = (
            np.zeros(n, dtype=np.int64) if cfg.dynamics.enabled else None
        )
        self._charges: List[Tuple[str, np.ndarray, np.ndarray]] = []

        # Series recorder: one shared cadence, decimated together (the
        # event kernel's collectors decimate independently but
        # identically, so one multi-track recorder is equivalent).
        self.recorder = SeriesRecorder(opts.sample_interval_s, opts.max_series_samples)
        self._tr_energy = self.recorder.add_track()
        self._tr_alive = self.recorder.add_track()
        self._tr_queues = self.recorder.add_track() if opts.collect_queues else None
        self._tr_up = self.recorder.add_track() if cfg.dynamics.enabled else None

    # -- derived masks -------------------------------------------------------

    @property
    def up(self) -> np.ndarray:
        """Operational nodes: battery left and not churn-failed."""
        return self.alive & ~self.failed

    @property
    def is_dead(self) -> bool:
        """The paper's dead-network rule (mirrors SensorNetwork.is_dead)."""
        n = self.n
        dead = n - int(self.alive.sum())
        if self.cfg.dead_fraction >= 1.0:
            return dead >= n
        return dead >= math.floor(self.cfg.dead_fraction * n) + 1

    # -- main loop -----------------------------------------------------------

    def run(self) -> float:
        """Advance to the horizon (or early death) and return elapsed time.

        Barrier agenda: physics advances in coherence-time steps between
        *exact-time barriers* — dynamics events, round boundaries, sample
        instants, death checks, the horizon.  At a shared barrier instant
        the application order is dynamics → round → sample → check, the
        event kernel's heap order for those event classes (scripted
        events are pushed first at start, round re-arms before sampler
        re-arms).  The t=0 special case is inverted (round first): the
        event kernel forms the first round inline in ``start()`` before
        the event loop pops anything.
        """
        opts = self.opts
        prof = self._prof
        horizon = opts.horizon_s
        t = 0.0
        self._round_at(0.0)
        for ev_t, kind, payload in self._drain_dynamics(0.0):
            self._apply_dynamics(ev_t, kind, payload)
        self._sample(0.0)
        next_round = self.cfg.leach.round_duration_s
        next_sample = self.recorder.interval
        interval0 = opts.sample_interval_s
        next_check = interval0 if opts.stop_when_dead else math.inf
        while t < horizon:
            t_next = min(
                next_round, next_sample, next_check, horizon, self.replay.next_time()
            )
            self._advance(t, t_next)
            t = t_next
            for ev_t, kind, payload in self._drain_dynamics(t):
                self._apply_dynamics(ev_t, kind, payload)
            if t == next_round:
                self._round_at(t)
                next_round += self.cfg.leach.round_duration_s
            if t == next_sample:
                self._sample(t)
                next_sample = t + self.recorder.interval
            if t == next_check:
                if self.is_dead:
                    break
                next_check = min(next_check + interval0, horizon)
        if prof is not None:
            prof.flush(t)
        return t

    def _round_at(self, t: float) -> None:
        """Start the round at ``t``, flushing/charging the profiler."""
        prof = self._prof
        if prof is None:
            self._start_round(t)
            return
        prof.flush(t)  # close the round that just elapsed
        w0 = time.perf_counter()
        self._start_round(t)
        prof.lap("membership", w0)

    def _drain_dynamics(self, t: float):
        out = []
        events = self.replay.events
        while self.replay.cursor < len(events):
            ev = events[self.replay.cursor]
            if ev[0] > t + _EPS:
                break
            out.append(ev)
            self.replay.cursor += 1
        return out

    def _advance(self, t0: float, t1: float) -> None:
        remaining = t1 - t0
        cur = t0
        while remaining > _EPS:
            sdt = self.dt if remaining > self.dt else remaining
            self._step(cur, sdt)
            cur += sdt
            remaining -= sdt

    # -- dynamics application ------------------------------------------------

    def _apply_dynamics(self, t: float, kind: str, payload) -> None:
        if kind == "sfail":
            self._scripted_down.add(payload)
            self._apply_fail(int(payload), t)
        elif kind == "srecover":
            self._scripted_down.discard(payload)
            self._apply_recover(int(payload), t)
        elif kind == "fail":
            self._apply_fail(int(payload), t)
        elif kind == "recover":
            if payload not in self._scripted_down:
                self._apply_recover(int(payload), t)
        elif kind == "regime":
            self._apply_regime(float(payload), t)

    def _apply_fail(self, node: int, now: float) -> None:
        if not (self.alive[node] and not self.failed[node]):
            return
        was_head = bool(self.is_head[node])
        orphans = int(self.qlen[node])
        self.qlen[node] = 0
        self.failed[node] = True
        self.attached[node] = False
        self.last_failure[node] = now
        self.churn_failures += 1
        self.orphaned += orphans
        if self.first_failure_s is None:
            self.first_failure_s = now
        if was_head:
            self._down_head(node)
        if self.tracer is not None:
            self.tracer.annotate(now, "node.fail", node=node, was_head=was_head)

    def _apply_recover(self, node: int, now: float) -> None:
        if not (self.alive[node] and self.failed[node]):
            return
        self.failed[node] = False
        self.churn_recoveries += 1
        if self.tracer is not None:
            self.tracer.annotate(now, "node.recover", node=node)

    def _apply_regime(self, offset_db: float, now: float) -> None:
        delta = offset_db - self._regime_offset
        self._regime_offset = offset_db
        if self.m_mean.size:
            self.m_mean += delta
        if self.u_mean.size:
            self.u_mean += delta
        self.regime_shifts += 1
        if self.tracer is not None:
            self.tracer.annotate(now, "regime.shift", offset_db=offset_db)

    def _down_head(self, node: int) -> None:
        """A head went dark mid-round: strand its relay, detach members."""
        c = self._cluster_of_head.get(node)
        if c is None:
            return
        self.head_up[c] = False
        if self.relay_q:
            stranded = len(self.relay_q[c])
            if stranded:
                self.uplink_stranded += stranded
                self.relay_q[c] = []
        if self.m_ids.size:
            self.attached[self.m_ids[self.m_cl == c]] = False

    # -- round driver --------------------------------------------------------

    def _start_round(self, now: float) -> None:
        self._teardown_round()
        alive_ids = np.flatnonzero(self.up)
        if alive_ids.size == 0:
            return
        heads = self.election.elect(self.round_index, [int(i) for i in alive_ids])
        if self.tracer is not None:
            self.tracer.annotate(
                now, "leach.round", index=self.round_index, heads=list(heads)
            )
        h = len(heads)
        self.heads = np.asarray(heads, dtype=np.int64)
        self.head_up = np.ones(h, dtype=bool)
        self.busy = np.full(h, now)
        self._cluster_of_head = {int(hd): c for c, hd in enumerate(heads)}
        routing = self.cfg.routing.enabled
        if routing:
            routes = plan_routes(self.cfg.routing.mode, heads, self.topology)
            self.next_hop = np.asarray(
                [
                    -1 if routes[hd] is None else self._cluster_of_head[routes[hd]]
                    for hd in heads
                ],
                dtype=np.int64,
            )
            self.relay_q = [[] for _ in range(h)]
            # Uplink AR(1) link state, one per head, from "vector/uplink".
            dist = np.empty(h)
            for c, hd in enumerate(heads):
                nxt = routes[hd]
                dist[c] = (
                    self.topology.sink_distance(hd)
                    if nxt is None
                    else self.topology.distance(hd, nxt)
                )
            self.u_mean = self.uplink_budget.mean_snr_db(dist) + self._regime_offset
            z = self._up_rng.standard_normal((3, h))
            sigma = self.cfg.channel.shadowing_sigma_db
            self.u_sh = sigma * z[0] if sigma > 0 else np.zeros(h)
            self.u_fx = math.sqrt(0.5) * z[1]
            self.u_fy = math.sqrt(0.5) * z[2]
            self.u_retry = np.zeros(h, dtype=np.int64)
            self._rr = -1
        # Flip heads: flush each head's backlog through the ingress path
        # (become_head), in election order like the event kernel.
        for c, hd in enumerate(heads):
            self.is_head[hd] = True
            self.retry[hd] = 0
            q = int(self.qlen[hd])
            if q:
                slots = (self.qstart[hd] + np.arange(q)) % self.B
                births = self.qbirth[hd, slots]
                srcs = self.qsrc[hd, slots]
                self.qlen[hd] = 0
                if routing:
                    self._relay_offer(c, births, np.zeros(q, dtype=np.int64), srcs)
                else:
                    self.delivered_local += q
                    self.delivered_bits += q * self.bits
                    if self.bits_by_src is not None:
                        np.add.at(self.bits_by_src, srcs, self.bits)
        # Membership: bit-exact nearest-head (Topology.nearest arithmetic).
        member_mask = np.zeros(self.n, dtype=bool)
        member_mask[alive_ids] = True
        member_mask[self.heads] = False
        mem = np.flatnonzero(member_mask)
        m = mem.size
        self.m_ids = mem
        head_pos = self.positions[self.heads]
        if m and h >= _KD_MIN_HEADS:
            # Large head sets: the brute m x h distance matrix is the
            # dominant phase of the whole run at N = 1e5 (~80% of wall
            # time, see repro.vector.profile), so route through the
            # KD-tree assignment — same picks and distances bit-for-bit.
            self.m_cl, d = _nearest_heads_kd(self.positions[mem], head_pos)
        else:
            self.m_cl = np.empty(m, dtype=np.int64)
            d = np.empty(m)
            chunk = 4096
            for lo in range(0, m, chunk):
                hi = min(lo + chunk, m)
                # positions[cand] - positions[node], squared, summed,
                # sqrt — the exact FP sequence of Topology.nearest, so
                # argmin ties break identically (first occurrence =
                # earliest elected head).
                diff = head_pos[None, :, :] - self.positions[mem[lo:hi], None, :]
                row = np.sqrt((diff**2).sum(axis=2))
                pick = np.argmin(row, axis=1)
                self.m_cl[lo:hi] = pick
                d[lo:hi] = row[np.arange(hi - lo), pick]
        self.m_mean = self.budget.mean_snr_db(d) + self._regime_offset
        z = self._chan_rng.standard_normal((3, m))
        sigma = self.cfg.channel.shadowing_sigma_db
        self.m_sh = sigma * z[0] if sigma > 0 else np.zeros(m)
        self.m_fx = math.sqrt(0.5) * z[1]
        self.m_fy = math.sqrt(0.5) * z[2]
        self.attached[mem] = True
        self.retry[mem] = 0
        self.round_index += 1

    def _teardown_round(self) -> None:
        # Relay leftovers return to their head's buffer (birth and source
        # kept, hop count restarts) or are stranded with a dead head —
        # mirroring SensorNetwork._teardown_round.
        if self.relay_q:
            for c, q in enumerate(self.relay_q):
                if not q:
                    continue
                hd = int(self.heads[c])
                if self.alive[hd] and not self.failed[hd]:
                    for birth, _hops, src in q:
                        if self.qlen[hd] >= self.B:
                            self.dropped_overflow += 1
                            continue
                        slot = (self.qstart[hd] + self.qlen[hd]) % self.B
                        self.qbirth[hd, slot] = birth
                        self.qsrc[hd, slot] = src
                        self.qlen[hd] += 1
                else:
                    self.uplink_stranded += len(q)
            self.relay_q = []
        self.attached[:] = False
        self.is_head[:] = False
        self.heads = np.empty(0, dtype=np.int64)
        self.head_up = np.empty(0, dtype=bool)
        self._cluster_of_head = {}
        self.m_ids = np.empty(0, dtype=np.int64)
        self.m_cl = np.empty(0, dtype=np.int64)

    def _relay_offer(
        self, c: int, births: np.ndarray, hops: np.ndarray, srcs: np.ndarray
    ) -> None:
        """Queue packets on cluster ``c``'s relay, tail-dropping at the cap."""
        q = self.relay_q[c]
        room = self.cfg.routing.relay_buffer_packets - len(q)
        take = min(room, births.size) if room > 0 else 0
        for i in range(take):
            q.append((float(births[i]), int(hops[i]), int(srcs[i])))
        if births.size > take:
            self.uplink_dropped_overflow += births.size - take

    # -- sampling ------------------------------------------------------------

    def _sample(self, now: float) -> None:
        values: List[object] = [None] * len(self.recorder.series)
        values[self._tr_energy] = float(self.level.sum() / self.n)
        values[self._tr_alive] = int(self.alive.sum())
        if self._tr_queues is not None:
            up_ids = np.flatnonzero(self.up)
            values[self._tr_queues] = [int(q) for q in self.qlen[up_ids]]
        if self._tr_up is not None:
            values[self._tr_up] = int(self.up.sum())
        self.recorder.tick(now, values)

    # -- one physics step ----------------------------------------------------

    def _step(self, t0: float, sdt: float) -> None:
        self.steps += 1
        t1 = t0 + sdt
        self._charges = []
        up = self.up
        prof = self._prof
        if prof is None:
            self._advance_channel(sdt)
            acc = self._traffic_step(t0, sdt, up)
            if self.cfg.protocol is Protocol.CAEM_ADAPTIVE:
                self._policy_step(acc)
            if self.heads.size:
                self._mac_step(t0, t1)
                if self.cfg.routing.enabled:
                    self._uplink_step(t0, t1)
            self._energy_settle(t0, sdt, up)
            return
        # Profiled variant: same calls, a perf_counter lap per phase.
        prof.step()
        w = time.perf_counter()
        self._advance_channel(sdt)
        w = prof.lap("channel", w)
        acc = self._traffic_step(t0, sdt, up)
        w = prof.lap("traffic", w)
        if self.cfg.protocol is Protocol.CAEM_ADAPTIVE:
            self._policy_step(acc)
            w = prof.lap("policy", w)
        if self.heads.size:
            self._mac_step(t0, t1)
            w = prof.lap("mac", w)
            if self.cfg.routing.enabled:
                self._uplink_step(t0, t1)
                w = prof.lap("uplink", w)
        self._energy_settle(t0, sdt, up)
        prof.lap("energy", w)

    def _advance_channel(self, sdt: float) -> None:
        rho_s, sig_s, rho_f, sig_f = self._ar.coeffs(sdt)
        m = self.m_ids.size
        if m:
            z = self._chan_rng.standard_normal((3, m))
            if sig_s > 0.0:
                self.m_sh = rho_s * self.m_sh + sig_s * z[0]
            self.m_fx = rho_f * self.m_fx + sig_f * z[1]
            self.m_fy = rho_f * self.m_fy + sig_f * z[2]
        h = self.u_mean.size
        if h and self.cfg.routing.enabled:
            z = self._up_rng.standard_normal((3, h))
            if sig_s > 0.0:
                self.u_sh = rho_s * self.u_sh + sig_s * z[0]
            self.u_fx = rho_f * self.u_fx + sig_f * z[1]
            self.u_fy = rho_f * self.u_fy + sig_f * z[2]

    def _member_snr(self) -> np.ndarray:
        re = self._los + self._scatter * self.m_fx
        im = self._scatter * self.m_fy
        power = re**2 + im**2
        return self.m_mean + self.m_sh + 10.0 * np.log10(np.maximum(power, 1e-300))

    def _uplink_snr(self) -> np.ndarray:
        re = self._los + self._scatter * self.u_fx
        im = self._scatter * self.u_fy
        power = re**2 + im**2
        return self.u_mean + self.u_sh + 10.0 * np.log10(np.maximum(power, 1e-300))

    # -- traffic -------------------------------------------------------------

    def _traffic_step(self, t0: float, sdt: float, up: np.ndarray) -> np.ndarray:
        """Batch-draw arrivals; returns accepted-arrival counts per node."""
        cfg = self.cfg.traffic
        rate = cfg.packets_per_second
        n = self.n
        lam = np.where(up, rate, 0.0)
        if self._bursty.any():
            lam = np.where(self._bursty, 0.0, lam)
        if cfg.source_model == "cbr" and not self._bursty.all():
            steady = up & ~self._bursty
            self._cbr_acc[steady] += rate * sdt
            k = np.zeros(n, dtype=np.int64)
            k[steady] = self._cbr_acc[steady].astype(np.int64)
            self._cbr_acc[steady] -= k[steady]
        else:
            k = self._traf_rng.poisson(lam * sdt)
        # ON/OFF nodes: two-state flip chain (statistical stand-in for
        # the event kernel's OnOffSource; mean rate preserved).
        if self._onoff_nodes.size:
            ids = self._onoff_nodes
            on_frac = np.where(self._on_state[ids], sdt, 0.0)
            crossing = np.flatnonzero(self._on_switch[ids] <= t0 + sdt)
            for ci in crossing:
                i = ids[ci]
                tcur, tend = t0, t0 + sdt
                on_time = 0.0
                seg_start = tcur
                while self._on_switch[i] <= tend:
                    if self._on_state[i]:
                        on_time += self._on_switch[i] - seg_start
                    seg_start = max(self._on_switch[i], t0)
                    self._on_state[i] = not self._on_state[i]
                    mean = (
                        self.cfg.traffic.onoff_on_s
                        if self._on_state[i]
                        else self.cfg.traffic.onoff_off_s
                    )
                    if mean <= 0:
                        mean = self.cfg.traffic.onoff_on_s
                    self._on_switch[i] += float(self._traf_rng.exponential(mean))
                if self._on_state[i]:
                    on_time += tend - seg_start
                on_frac[ci] = on_time
            burst_lam = np.where(up[ids], self._onoff_rate, 0.0) * on_frac
            k[ids] = self._traf_rng.poisson(burst_lam)
        total = int(k.sum())
        if total == 0:
            return np.zeros(n, dtype=np.int64)
        self.generated += total
        birth = t0 + 0.5 * sdt
        # Heads aggregate their own data without the radio.
        head_arr = k * (self.is_head & up)
        if head_arr.any():
            hk = head_arr[self.heads]
            if self.cfg.routing.enabled:
                for c in np.flatnonzero(hk):
                    cnt = int(hk[c])
                    self._relay_offer(
                        int(c),
                        np.full(cnt, birth),
                        np.zeros(cnt, dtype=np.int64),
                        np.full(cnt, self.heads[c], dtype=np.int64),
                    )
            else:
                cnt = int(hk.sum())
                self.delivered_local += cnt
                self.delivered_bits += cnt * self.bits
                if self.bits_by_src is not None:
                    np.add.at(self.bits_by_src, self.heads, hk * self.bits)
        # Sensors: ring-buffer offers, overflow counted.
        kk = np.where(self.is_head, 0, k)
        acc = np.minimum(kk, self.B - self.qlen)
        overflow = int((kk - acc).sum())
        if overflow:
            self.dropped_overflow += overflow
        kmax = int(acc.max()) if acc.size else 0
        src_ids = np.arange(n, dtype=np.int32)
        for j in range(kmax):
            sel = np.flatnonzero(acc > j)
            slots = (self.qstart[sel] + self.qlen[sel] + j) % self.B
            self.qbirth[sel, slots] = birth
            self.qsrc[sel, slots] = src_ids[sel]
        self.qlen += acc
        return acc

    # -- Scheme-1 policy -----------------------------------------------------

    def _policy_step(self, acc: np.ndarray) -> None:
        """Batched queue-sampling controller (repro.policy.adaptive).

        The event kernel samples at every M-th accepted arrival; here a
        node whose arrival counter crossed M samples once, at step end,
        with its end-of-step queue length — one controller decision per
        coherence step at most (documented approximation).
        """
        got = np.flatnonzero(acc)
        if got.size == 0:
            return
        self.pol_ctr[got] += acc[got]
        M = self.cfg.policy.sample_interval_packets
        smp = got[self.pol_ctr[got] >= M]
        if smp.size == 0:
            return
        self.pol_ctr[smp] %= M
        Q = self.cfg.policy.arm_queue_length
        V = self.qlen[smp].astype(float)
        prev = self.pol_last[smp]
        self.pol_last[smp] = V
        was = self.pol_armed[smp]
        arm_now = ~was & (V >= Q)
        dis = was & (V < Q)
        self.pol_armed[smp] = (was | arm_now) & ~dis
        act = (was | arm_now) & ~dis & ~np.isnan(prev)
        dv = V - prev
        hi = self.highest_class
        reset = dis | (act & (dv < 0))
        if reset.any():
            self.cls[smp[reset]] = hi
        down = act & (dv >= 0) & ~dis
        if down.any():
            ids = smp[down]
            self.cls[ids] = np.maximum(self.cls[ids] - 1, 0)

    # -- cluster MAC ---------------------------------------------------------

    def _mac_step(self, t0: float, t1: float) -> None:
        m = self.m_ids.size
        if m == 0:
            return
        snr = self._member_snr()
        mac = self.cfg.mac
        h = self.heads.size
        head_of = self.heads
        ids = self.m_ids
        # Step-invariant eligibility, hoisted out of the race loop:
        # deaths and head outages land at the dynamics/energy barriers
        # and class updates in the policy phase, so within one step only
        # queue state and the cluster busy clocks move.  The working set
        # also only shrinks (busy clocks are monotone within a step), so
        # each sub-iteration re-evaluates the queues of a dwindling
        # candidate list instead of the whole population.
        base = self.attached[ids] & self.up[ids] & self.head_up[self.m_cl]
        if self.gated:
            base &= snr >= self.thr[self.cls[ids]]
        rows = np.flatnonzero(base)
        for _ in range(_MAC_SUB_ITERS):
            if rows.size:
                rows = rows[self.busy[self.m_cl[rows]] < t1]
            if rows.size == 0:
                break
            nodes = ids[rows]
            q = self.qlen[nodes]
            oldest = self.qbirth[nodes, self.qstart[nodes] % self.B]
            ready = (q >= mac.min_burst_packets) | (
                (q > 0) & (t1 - oldest >= mac.min_burst_wait_s)
            )
            ridx = rows[ready]
            if ridx.size == 0:
                break
            # Pulse-eligibility flicker: a ready sensor only joins the
            # race if it has accumulated the 8 ms sensing delay by the
            # time the idle pulse fires — losers cancelled mid-backoff
            # usually haven't and sit that pulse out.  Calibrated so the
            # per-race collision probability matches the event kernel
            # (without it every ready member races every sub-iteration
            # and episodes over-count ~1.4x).
            join = self._mac_rng.random(ridx.size) < _MAC_JOIN_P
            cidx = ridx[join]
            if cidx.size == 0:
                continue
            cl = self.m_cl[cidx]
            u = self._mac_rng.random(cidx.size)
            dly = (
                u
                * np.exp2(np.minimum(self.retry[ids[cidx]], mac.max_retries))
                * self._backoff_scale
            )
            # Winner per cluster: stable descending argsort + last-write
            # leaves the smallest delay (first occurrence on ties).
            order = np.argsort(-dly, kind="stable")
            winner = np.full(h, -1, dtype=np.int64)
            winner[cl[order]] = cidx[order]
            d1 = np.full(h, np.inf)
            d1[cl[order]] = dly[order]
            is_w = winner[cl] == cidx
            d2 = np.full(h, np.inf)
            sub = ~is_w
            if sub.any():
                np.minimum.at(d2, cl[sub], dly[sub])
            contested = winner >= 0
            # Exact fine-structure: sorted-interval overlap inside the
            # winner's startup blind window.  Every contender whose
            # backoff expires before the winner's radio is audible keys
            # up too — the collision is k-way, not pairwise.
            in_window = dly < d1[cl] + self._blind_s
            count = np.zeros(h, dtype=np.int64)
            np.add.at(count, cl[in_window], 1)
            collide = contested & (count >= 2)
            clean = contested & ~collide
            if collide.any():
                coll = in_window & collide[cl]
                self._mac_collide(
                    np.flatnonzero(collide),
                    winner,
                    cidx[coll],
                    cl[coll],
                    d1,
                    d2,
                    snr,
                    t0,
                )
            if clean.any():
                self._mac_transmit(np.flatnonzero(clean), winner, d1, snr, t0, head_of)

    def _mac_collide(
        self,
        cc: np.ndarray,
        winner: np.ndarray,
        rows: np.ndarray,
        rcl: np.ndarray,
        d1: np.ndarray,
        d2: np.ndarray,
        snr: np.ndarray,
        t0: float,
    ) -> None:
        """Resolve k-way collision episodes exactly.

        ``cc`` are the collided cluster indices; ``rows``/``rcl`` name
        every collider (member row, cluster) whose backoff landed inside
        the winner's blind window.  The event kernel's fine structure,
        reproduced here: the head's collision tone fires when the second
        radio keys up, at which instant only the *winner* is audible
        mid-transmission — it hears the tone, aborts, and is the one
        sensor that counts a collision (``collisions_heard``).  The
        later colliders are still in radio startup when the tone fires,
        so they transmit their full burst corrupted, holding the channel
        for the whole airtime.
        """
        mac = self.cfg.mac
        coll_dur = self.cfg.tone.collision_duration_s
        colliders = self.m_ids[rows]
        w_nodes = self.m_ids[winner[cc]]
        self.collisions += cc.size
        self.retry[colliders] += 1
        # Exhausted retry budgets shed one burst's worth of packets.
        exhausted = colliders[self.retry[colliders] > mac.max_retries]
        if exhausted.size:
            shed = np.minimum(self.qlen[exhausted], mac.max_burst_packets)
            self.dropped_retry += int(shed.sum())
            self.qstart[exhausted] = (self.qstart[exhausted] + shed) % self.B
            self.qlen[exhausted] -= shed
            self.retry[exhausted] = 0
        # Energy: every collider keys up and paid the CSI classify
        # listen before its backoff (mirrors the clean-attempt charge).
        nc = colliders.size
        self._charges.append(
            (
                "startup",
                colliders,
                np.full(nc, self.model.startup_energy_j),
            )
        )
        self._charges.append(
            (
                "tone_rx",
                colliders,
                np.full(
                    nc,
                    self.model.power_w("tone_rx")
                    * self.cfg.tone.sensing_delay_s,
                ),
            )
        )
        # The winner transmits until the tone fires (d2 - d1 into its
        # burst), hears the 0.5 ms collision tone, and aborts.
        self._charges.append(
            (
                "data_tx",
                w_nodes,
                self.model.power_w("data_tx") * (d2[cc] - d1[cc]),
            )
        )
        self._charges.append(
            (
                "tone_rx",
                w_nodes,
                np.full(cc.size, self.model.power_w("tone_rx") * coll_dur),
            )
        )
        # Runners never hear the tone: full corrupted-burst airtime at
        # their own measured SNR's mode, channel held until the longest
        # one drains.
        is_win = rows == winner[rcl]
        run_rows = rows[~is_win]
        air_max = np.zeros(self.heads.size)
        if run_rows.size:
            run_cl = rcl[~is_win]
            run_nodes = self.m_ids[run_rows]
            b = np.minimum(self.qlen[run_nodes], mac.max_burst_packets)
            mode = np.maximum(
                np.searchsorted(self.thr, snr[run_rows], side="right") - 1,
                0,
            )
            airtime = (b * self.bits + self.overhead_bits) / self.rates[mode]
            np.maximum.at(air_max, run_cl, airtime)
            self._charges.append(
                (
                    "data_tx",
                    run_nodes,
                    self.model.power_w("data_tx") * airtime,
                )
            )
        heads = self.heads[cc]
        self._charges.append(
            (
                "tone_tx",
                heads,
                np.full(cc.size, self.model.power_w("tone_tx") * coll_dur),
            )
        )
        # Head data radio is in RX for the (corrupted) reception, like
        # the event kernel's state-time metering.
        self._charges.append(
            (
                "data_rx",
                heads,
                self.model.power_w("data_rx") * air_max[cc],
            )
        )
        entry = np.where(self.busy[cc] < t0, self._idle_entry_s, 0.0)
        self.busy[cc] = (
            np.maximum(self.busy[cc], t0)
            + entry
            + d2[cc]
            + self._blind_s
            + air_max[cc]
        )

    def _mac_transmit(
        self,
        sc: np.ndarray,
        winner: np.ndarray,
        d1: np.ndarray,
        snr: np.ndarray,
        t0: float,
        head_of: np.ndarray,
    ) -> None:
        mac = self.cfg.mac
        w = winner[sc]  # member rows
        nodes = self.m_ids[w]
        b = np.minimum(self.qlen[nodes], mac.max_burst_packets)
        wsnr = snr[w]
        mode = np.searchsorted(self.thr, wsnr, side="right") - 1
        # Gated protocols qualified at >= thr[cls] >= thr[0]; pure LEACH
        # transmits anyway in the most robust mode when in outage.
        mode = np.maximum(mode, 0)
        airtime = (b * self.bits + self.overhead_bits) / self.rates[mode]
        entry = np.where(self.busy[sc] < t0, self._idle_entry_s, 0.0)
        start = np.maximum(self.busy[sc], t0) + entry + d1[sc] + self._blind_s
        end = start + airtime
        self.busy[sc] = end
        self.retry[nodes] = 0
        # Pop the bursts (flat ring-buffer gather).
        tot = int(b.sum())
        owner = np.repeat(np.arange(w.size), b)
        within = np.arange(tot) - np.repeat(np.cumsum(b) - b, b)
        onodes = nodes[owner]
        slots = (self.qstart[onodes] + within) % self.B
        births = self.qbirth[onodes, slots]
        srcs = self.qsrc[onodes, slots]
        self.qstart[nodes] = (self.qstart[nodes] + b) % self.B
        self.qlen[nodes] -= b
        # Per-packet PER Bernoulli on the burst's measured SNR.
        perb = self.pertab.per(mode, wsnr)
        ok = self._phy_rng.random(tot) >= np.repeat(perb, b)
        n_lost = int((~ok).sum())
        self.lost_channel += n_lost
        n_ok = tot - n_lost
        if n_ok:
            ends = np.repeat(end, b)[ok]
            obirths = births[ok]
            osrcs = srcs[ok]
            if self.cfg.routing.enabled:
                self.cluster_delivered += n_ok
                oc = np.repeat(sc, b)[ok]
                hops1 = np.ones(1, dtype=np.int64)
                for c in np.unique(oc):
                    mask = oc == c
                    cnt = int(mask.sum())
                    self._relay_offer(
                        int(c),
                        obirths[mask],
                        np.broadcast_to(hops1, (cnt,)),
                        osrcs[mask],
                    )
            else:
                self.delivered += n_ok
                self.delivered_bits += n_ok * self.bits
                self.delays.add(ends - obirths)
                if self.bits_by_src is not None:
                    np.add.at(self.bits_by_src, osrcs, self.bits)
        # Energy: winner TX + startup + CSI listen; head RX for the burst.
        self._charges.append(
            ("data_tx", nodes, self.model.power_w("data_tx") * airtime)
        )
        self._charges.append(
            (
                "startup",
                nodes,
                np.full(nodes.size, self.model.startup_energy_j),
            )
        )
        self._charges.append(
            (
                "tone_rx",
                nodes,
                np.full(
                    nodes.size,
                    self.model.power_w("tone_rx")
                    * self.cfg.tone.sensing_delay_s,
                ),
            )
        )
        self._charges.append(
            (
                "data_rx",
                head_of[sc],
                self.model.power_w("data_rx") * airtime,
            )
        )

    # -- uplink tier ---------------------------------------------------------

    def _uplink_pop(self, c: int, mode_u: np.ndarray):
        """Take one burst off relay ``c`` and charge its TX airtime."""
        q = self.relay_q[c]
        b = min(len(q), self.cfg.routing.max_burst_packets)
        entries, self.relay_q[c] = q[:b], q[b:]
        airtime = float((b * self.bits + self.overhead_bits) / self.rates[mode_u[c]])
        self._charges.append(
            (
                "uplink_tx",
                np.asarray([self.heads[c]]),
                np.asarray([self.model.power_w("uplink_tx") * airtime]),
            )
        )
        return entries, airtime

    def _uplink_collided(self, c: int, entries) -> None:
        """Burst corrupted on the ledger: retry (front-requeue) or shed."""
        self.u_retry[c] += 1
        if self.u_retry[c] > self.cfg.routing.max_retries:
            self.uplink_dropped_retry += len(entries)
            self.u_retry[c] = 0
        else:
            self.relay_q[c] = entries + self.relay_q[c]

    def _uplink_step(self, t0: float, t1: float) -> None:
        """Serve the shared uplink channel across this step.

        Statistical mirror of the :class:`~repro.routing.uplink.UplinkRelay`
        CSMA: backlogged relays poll the channel on jittered
        ``retry_delay_s`` timers (the relay that just finished a burst
        re-senses immediately and tends to chain); the earliest poll
        commits and keys up after a jittered ``turnaround_s`` — any
        other poll landing inside that key-up window also commits, the
        ledger corrupts both bursts, and both relays pay the full TX
        airtime before retrying.
        """
        h = self.heads.size
        if h == 0:
            return
        snr_u = self._uplink_snr()
        # In outage the relay still transmits at the most robust mode and
        # eats the PER (UplinkRelay: ``mode_for_snr(snr) or lowest``).
        mode_u = np.maximum(np.searchsorted(self.thr, snr_u, side="right") - 1, 0)
        rcfg = self.cfg.routing
        t = max(self._ubusy, t0)
        while t < t1:
            elig = [c for c in range(h) if self.head_up[c] and self.relay_q[c]]
            if not elig:
                break
            # Residual time until each backlogged relay's already-armed
            # retry timer fires next: uniform over one poll interval.
            # The relay that just finished re-senses immediately.
            polls = rcfg.retry_delay_s * self._up_rng.random(len(elig))
            if self._rr in elig:
                polls[elig.index(self._rr)] = 0.0
            order = np.argsort(polls, kind="stable")
            c = elig[int(order[0])]
            d1 = float(polls[order[0]])
            key_up = rcfg.turnaround_s * (0.5 + float(self._up_rng.random()))
            if len(elig) > 1 and float(polls[order[1]]) - d1 < key_up:
                # CSMA vulnerable window: two commits overlap.
                c2 = elig[int(order[1])]
                entries1, a1 = self._uplink_pop(c, mode_u)
                entries2, a2 = self._uplink_pop(c2, mode_u)
                self._uplink_collided(c, entries1)
                self._uplink_collided(c2, entries2)
                t += d1 + key_up + max(a1, a2)
                self._rr = -1  # nobody chains out of a collision
                continue
            entries, airtime = self._uplink_pop(c, mode_u)
            end = t + d1 + key_up + airtime
            t = end
            self.u_retry[c] = 0
            self._rr = c
            per = float(
                self.pertab.per(np.asarray([mode_u[c]]), np.asarray([snr_u[c]]))[0]
            )
            uu = self._up_rng.random(len(entries))
            nxt = int(self.next_hop[c])
            ok_births: List[float] = []
            ok_hops: List[int] = []
            ok_srcs: List[int] = []
            for (birth, hops, src), ud in zip(entries, uu):
                if ud < per:
                    self.uplink_lost_channel += 1
                    continue
                ok_births.append(birth)
                ok_hops.append(hops + 1)
                ok_srcs.append(src)
            if not ok_births:
                continue
            if nxt < 0:  # sink hop
                k = len(ok_births)
                self.delivered += k
                self.delivered_bits += k * self.bits
                self.delays.add(end - np.asarray(ok_births))
                self.hops.add(np.asarray(ok_hops, dtype=float))
                if self.bits_by_src is not None:
                    np.add.at(
                        self.bits_by_src,
                        np.asarray(ok_srcs, dtype=np.int64),
                        self.bits,
                    )
            elif not self.head_up[nxt]:
                self.uplink_stranded += len(ok_births)
            else:
                nh = int(self.heads[nxt])
                self._charges.append(
                    (
                        "uplink_rx",
                        np.asarray([nh]),
                        np.asarray([self.model.power_w("uplink_rx") * airtime]),
                    )
                )
                keep_b, keep_h, keep_s = [], [], []
                for birth, hops, src in zip(ok_births, ok_hops, ok_srcs):
                    if hops >= rcfg.max_hops:
                        self.uplink_stranded += 1
                    else:
                        keep_b.append(birth)
                        keep_h.append(hops)
                        keep_s.append(src)
                if keep_b:
                    self._relay_offer(
                        nxt,
                        np.asarray(keep_b),
                        np.asarray(keep_h, dtype=np.int64),
                        np.asarray(keep_s, dtype=np.int64),
                    )
        self._ubusy = t

    # -- energy --------------------------------------------------------------

    def _energy_settle(self, t0: float, sdt: float, up: np.ndarray) -> None:
        # Continuous draws for this step.
        alive_ids = np.flatnonzero(self.alive)
        if alive_ids.size:
            self._charges.append(
                (
                    "sleep",
                    alive_ids,
                    np.full(
                        alive_ids.size,
                        self.model.power_w("sleep") * sdt,
                    ),
                )
            )
        # Tone-radio monitoring is paid only while the queue qualifies
        # for channel access: the event MAC sends a sensor back to sleep
        # the moment its buffer drops below the burst minimum
        # (CaemSensorMac._consider_access -> _go_sleep), so idle-queue
        # members spend the step at sleep power, not monitor power.
        if self.m_ids.size:
            mac = self.cfg.mac
            ids = self.m_ids
            q = self.qlen[ids]
            oldest = self.qbirth[ids, self.qstart[ids] % self.B]
            qual = (q >= mac.min_burst_packets) | (
                (q > 0) & (t0 + sdt - oldest >= mac.min_burst_wait_s)
            )
            att = ids[qual & self.attached[ids] & up[ids]]
        else:
            att = np.empty(0, dtype=np.int64)
        if att.size:
            self._charges.append(
                (
                    "tone_rx",
                    att,
                    np.full(
                        att.size,
                        self.model.power_w("tone_rx")
                        * self.cfg.tone.monitor_duty_cycle
                        * sdt,
                    ),
                )
            )
        if self.heads.size:
            hd = self.heads[self.head_up]
            hd = hd[self.up[hd]]
            if hd.size:
                self._charges.append(
                    (
                        "ch_idle",
                        hd,
                        np.full(hd.size, self.model.power_w("ch_idle") * sdt),
                    )
                )
                self._charges.append(
                    (
                        "tone_tx",
                        hd,
                        np.full(
                            hd.size,
                            self.model.power_w("tone_tx")
                            * self._head_tone_duty
                            * sdt,
                        ),
                    )
                )
        # Settle: cap each node's spend at its remaining charge, pro-rate
        # the per-cause ledger for partially covered (dying) nodes.
        demand = np.zeros(self.n)
        for _cause, ids, vals in self._charges:
            np.add.at(demand, ids, vals)
        spend = np.minimum(demand, self.level)
        ratio = np.ones(self.n)
        pos = demand > 0
        ratio[pos] = spend[pos] / demand[pos]
        bd = self.breakdown
        for cause, ids, vals in self._charges:
            bd[cause] = bd.get(cause, 0.0) + float((vals * ratio[ids]).sum())
        self.level -= spend
        self.drawn += spend
        dying = self.alive & pos & (demand >= self.level + spend - _EPS)
        dying &= self.level <= _EPS
        if dying.any():
            t1 = t0 + sdt
            died = np.flatnonzero(dying)
            self.alive[died] = False
            self.level[died] = 0.0
            self.death_time[died] = t1
            self.attached[died] = False
            for i in died:
                if self.is_head[i]:
                    self._down_head(int(i))
                if self.tracer is not None:
                    self.tracer.annotate(t1, "node.death", node=int(i))
        self._charges = []


def simulate_vector(cfg: NetworkConfig, options=None, tracer=None):
    """Run one scenario on the vector engine; returns a ``RunResult``.

    Drop-in sibling of :func:`repro.api.engine.simulate` — the harvest
    below mirrors that function field for field, so every derived metric
    (lifetime rules, delivery-rate denominators, churn-aware variants)
    follows the same arithmetic.
    """
    from ..api.engine import RunOptions
    from ..api.result import RunResult

    opts = options or RunOptions()
    wall_start = time.perf_counter()
    net = VectorNetwork(cfg, opts, tracer=tracer)
    elapsed = net.run()
    if net._prof is not None:
        net._prof.dump(
            opts.profile_rounds,
            n_nodes=cfg.n_nodes,
            seed=cfg.seed,
            backend="vector",
            horizon_s=opts.horizon_s,
        )

    result = RunResult(
        protocol=cfg.protocol.value,
        seed=cfg.seed,
        load_pps=cfg.traffic.packets_per_second,
        horizon_s=opts.horizon_s,
        n_nodes=cfg.n_nodes,
        config_digest=cfg.digest(),
    )
    rec = net.recorder
    result.sample_times_s = list(rec.times)
    result.mean_energy_j = [float(v) for v in rec.series[net._tr_energy]]
    result.alive_counts = [int(v) for v in rec.series[net._tr_alive]]
    result.series_stride = rec.stride
    if net._tr_queues is not None:
        result.queue_snapshots = [list(v) for v in rec.series[net._tr_queues]]
    if net._tr_up is not None:
        result.up_counts = [int(v) for v in rec.series[net._tr_up]]

    deaths = [None if math.isnan(t) else float(t) for t in net.death_time]
    result.death_times_s = deaths
    result.lifetime_s = network_lifetime_s(deaths, cfg.n_nodes, cfg.dead_fraction)
    result.first_death_s = first_death_s(deaths)
    result.death_spread_s = death_spread_s(deaths)

    result.events_processed = net.steps
    result.generated = net.generated
    result.delivered = net.delivered
    result.delivered_local = net.delivered_local
    result.lost_channel = net.lost_channel
    result.dropped_overflow = net.dropped_overflow
    result.dropped_retry = net.dropped_retry
    result.collisions = net.collisions
    result.total_consumed_j = float(net.drawn.sum())
    if result.delivered > 0:
        result.energy_per_packet_j = result.total_consumed_j / result.delivered
    delays = net.delays
    result.mean_delay_s = delays.mean if delays.count else 0.0
    samples = delays.samples()
    if samples.size:
        p50, p90, p99 = np.percentile(samples, (50.0, 90.0, 99.0))
        result.delay_p50_s = float(p50)
        result.delay_p90_s = float(p90)
        result.delay_p99_s = float(p99)
    if elapsed > 0:
        result.throughput_bps = net.delivered_bits / elapsed
    total_delivered = net.delivered + net.delivered_local
    if result.generated > 0:
        result.delivery_rate = total_delivered / result.generated
    result.energy_breakdown = dict(net.breakdown)
    result.cluster_delivered = net.cluster_delivered
    result.uplink_lost_channel = net.uplink_lost_channel
    result.uplink_dropped_retry = net.uplink_dropped_retry
    result.uplink_dropped_overflow = net.uplink_dropped_overflow
    result.uplink_stranded = net.uplink_stranded
    result.mean_hop_count = net.hops.mean if net.hops.count else 0.0
    result.uplink_energy_j = (
        result.energy_breakdown.get("uplink_tx", 0.0)
        + result.energy_breakdown.get("uplink_rx", 0.0)
    )
    result.churn_failures = net.churn_failures
    result.churn_recoveries = net.churn_recoveries
    result.regime_shifts = net.regime_shifts
    result.orphaned = net.orphaned
    result.first_failure_s = net.first_failure_s
    result.lifetime_effective_s = result.lifetime_s
    offered = result.generated - result.orphaned
    if offered > 0:
        result.delivery_rate_offered = total_delivered / offered
    if cfg.dynamics.enabled:
        effective_deaths = [
            deaths[i]
            if deaths[i] is not None
            else (
                float(net.last_failure[i])
                if net.failed[i] and not math.isnan(net.last_failure[i])
                else None
            )
            for i in range(cfg.n_nodes)
        ]
        result.lifetime_effective_s = network_lifetime_s(
            effective_deaths, cfg.n_nodes, cfg.dead_fraction
        )
        if net.bits_by_src is not None and net.bits_by_src.any() and elapsed > 0:
            survivor_bits = int(net.bits_by_src[net.up].sum())
            result.survivor_throughput_bps = survivor_bits / elapsed
    result.wall_time_s = time.perf_counter() - wall_start
    return result
