"""Backend-equivalence harness: event kernel vs vector engine.

The contract (see :mod:`repro.vector`) splits ``RunResult`` fields in two:

* **golden** — must be *equal*.  Run identity, the sampling timeline,
  and everything driven by the shared named RNG streams: placement,
  election, and the deterministic dynamics replay (churn/regime counts
  and times).  Death bookkeeping joins the golden set whenever the
  scenario is death-free on both backends (the engines then agree that
  nothing died, at exactly which sample times everyone was alive, and
  that every lifetime metric is ``None``).
* **statistical** — must agree within calibrated bands.  Per-packet
  traffic, MAC contention, channel noise, and energy metering run on
  different abstractions (event callbacks vs time-stepped arrays), so
  delivery rate, throughput, delay, and energy agree in distribution,
  not bit-for-bit.

Used three ways: imported by ``tests/test_vector.py``; run as a module
for the CI backend-parity gate (``python -m repro.vector.equivalence
--nodes 200``); and handy interactively when touching either engine.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Dict, List, Optional, Tuple

from ..api.engine import RunOptions, simulate
from ..config import NetworkConfig

__all__ = [
    "GOLDEN_ALWAYS",
    "GOLDEN_NO_DEATHS",
    "GOLDEN_DYNAMICS",
    "STAT_BANDS",
    "SCENARIOS",
    "scenario_config",
    "default_options",
    "compare_backends",
]

#: Fields equal on every run pair, unconditionally.
GOLDEN_ALWAYS = (
    "protocol",
    "seed",
    "load_pps",
    "horizon_s",
    "n_nodes",
    "sample_times_s",
    "series_stride",
)

#: Fields equal whenever *both* backends report a death-free run.
GOLDEN_NO_DEATHS = (
    "alive_counts",
    "death_times_s",
    "lifetime_s",
    "first_death_s",
    "death_spread_s",
)

#: Fields equal on death-free dynamics runs: the churn/regime timeline
#: is replayed draw-for-draw from the same ``dynamics/*`` streams.
GOLDEN_DYNAMICS = (
    "up_counts",
    "churn_failures",
    "churn_recoveries",
    "regime_shifts",
    "first_failure_s",
)

#: Statistical bands: field -> ("abs", tolerance) or ("ratio", lo, hi).
#: Calibrated against seed sweeps at N in {50, 200, 1000}; the bands are
#: intentionally loose enough to be seed-stable and tight enough to
#: catch a broken service model (the pre-calibration vector MAC sat at
#: delivery 0.64 vs 0.96 — every band below would have flagged it).
STAT_BANDS: Dict[str, Tuple] = {
    "delivery_rate": ("abs", 0.08),
    "throughput_bps": ("ratio", 0.70, 1.40),
    "total_consumed_j": ("ratio", 0.75, 1.30),
    "mean_delay_s": ("ratio", 0.40, 2.50),
    "generated": ("ratio", 0.85, 1.18),
    # Collision-episode parity: the vector MAC's exact fine-structure
    # pass (k-way sorted-interval overlap in the startup blind window,
    # one tone heard per episode, corrupted-burst channel hold) lands at
    # 0.88-1.27x the event kernel's collisions_heard across all five
    # scenarios x seeds {3,4,5} x N {50,200}; the band flags both the
    # old pairwise double-count (2.5-3.0x) and a broken busy-clock
    # model (episodes collapsing toward 0).
    "collisions": ("ratio", 0.55, 1.70),
}

#: Per-packet bands are skipped when *both* backends delivered fewer
#: radio packets than this: in the large-N multihop collapse regime a
#: run delivers a few dozen packets out of tens of thousands generated,
#: and ratios over such counts are pure sampling noise.  Delivery rate,
#: energy, and generated are still checked.
SPARSE_DELIVERED = 50
SPARSE_SKIP = ("throughput_bps", "mean_delay_s")

SCENARIOS = ("static", "uplink", "dynamics", "jakes", "rician")


def scenario_config(name: str, n_nodes: int, seed: int = 3) -> NetworkConfig:
    """One of the canonical comparison scenarios at size ``n_nodes``.

    The field grows with sqrt(N) (constant density), matching the
    ``ext-scale`` experiment, so cluster geometry — and with it the SNR
    operating point — is size-invariant.  ``jakes`` and ``rician`` are
    the static scenario on the Jakes-Doppler kernel and a K=4 Rician
    channel respectively — the fading-kernel half of the CI parity
    matrix.
    """
    field = 100.0 * (n_nodes / 100.0) ** 0.5
    cfg = NetworkConfig(n_nodes=n_nodes, field_size_m=field, seed=seed)
    if name == "static":
        return cfg
    if name == "jakes":
        return dataclasses.replace(
            cfg, channel=dataclasses.replace(cfg.channel, fading_kernel="jakes")
        )
    if name == "rician":
        return dataclasses.replace(
            cfg, channel=dataclasses.replace(cfg.channel, rician_k=4.0)
        )
    if name == "uplink":
        # Lighter load keeps the run out of the head-death cascade
        # regime, where delivery becomes chaotically sensitive to death
        # *times* (statistical on both backends) and no band is stable.
        return cfg.with_routing(mode="multihop").with_traffic(packets_per_second=2.0)
    if name == "dynamics":
        return cfg.with_dynamics(
            failure_rate_hz=0.005,
            mean_downtime_s=30.0,
            regime_mean_interval_s=15.0,
            regime_sigma_db=3.0,
            battery_jitter=0.1,
            bursty_fraction=0.3,
        )
    raise ValueError(f"unknown scenario {name!r} (know {SCENARIOS})")


def default_options() -> RunOptions:
    """The harness observation window (mirrors ``ext-scale``)."""
    return RunOptions(horizon_s=40.0, sample_interval_s=5.0, max_series_samples=64)


def _death_free(result) -> bool:
    return all(t is None for t in result.death_times_s)


def compare_backends(
    scenario: str,
    n_nodes: int,
    seed: int = 3,
    options: Optional[RunOptions] = None,
) -> dict:
    """Run both backends on one scenario and diff the results.

    Returns a report dict with ``golden_mismatches`` (list of field
    names — empty means the golden contract holds), ``stat_failures``
    (fields outside their band), per-field values, and the two
    wall-clock times.
    """
    opts = options or default_options()
    cfg = scenario_config(scenario, n_nodes, seed)
    ev = simulate(cfg, opts)
    vec = simulate(cfg.with_scale(backend="vector"), opts)

    golden = list(GOLDEN_ALWAYS)
    both_death_free = _death_free(ev) and _death_free(vec)
    if both_death_free:
        golden += list(GOLDEN_NO_DEATHS)
        if cfg.dynamics.enabled:
            golden += list(GOLDEN_DYNAMICS)
    mismatches: List[str] = []
    for field in golden:
        if getattr(ev, field) != getattr(vec, field):
            mismatches.append(field)

    sparse = ev.delivered < SPARSE_DELIVERED and vec.delivered < SPARSE_DELIVERED
    stat_failures: List[str] = []
    stats: Dict[str, Tuple] = {}
    for field, band in STAT_BANDS.items():
        a = getattr(ev, field)
        b = getattr(vec, field)
        if sparse and field in SPARSE_SKIP:
            ok = True
        elif a is None or b is None:
            ok = a is None and b is None
        elif band[0] == "abs":
            ok = abs(a - b) <= band[1]
        else:
            lo, hi = band[1], band[2]
            if a == 0:
                ok = b == 0
            else:
                ok = lo <= b / a <= hi
        stats[field] = (a, b, ok)
        if not ok:
            stat_failures.append(field)

    return {
        "scenario": scenario,
        "n_nodes": n_nodes,
        "seed": seed,
        "death_free": both_death_free,
        "golden_checked": golden,
        "golden_mismatches": mismatches,
        "stat_failures": stat_failures,
        "stats": stats,
        "event_wall_s": ev.wall_time_s,
        "vector_wall_s": vec.wall_time_s,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.vector.equivalence",
        description="Diff the event and vector backends (CI parity gate).",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        nargs="+",
        default=[200],
        help="population sizes to compare (default: 200)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[3],
        help="seeds per size (default: 3)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=list(SCENARIOS),
        choices=list(SCENARIOS),
        help="scenarios to run (default: all five)",
    )
    parser.add_argument(
        "--stats-strict",
        action="store_true",
        help="fail (exit 1) on statistical-band misses too, not just golden",
    )
    args = parser.parse_args(argv)

    failed = False
    for n in args.nodes:
        for seed in args.seeds:
            for scenario in args.scenarios:
                report = compare_backends(scenario, n, seed)
                speedup = report["event_wall_s"] / max(report["vector_wall_s"], 1e-9)
                status = "ok"
                if report["golden_mismatches"]:
                    status = "GOLDEN MISMATCH"
                    failed = True
                elif report["stat_failures"]:
                    status = "stat miss"
                    failed = failed or args.stats_strict
                print(
                    f"[{scenario:>8s} N={n:<6d} seed={seed}] {status}: "
                    f"golden {len(report['golden_checked'])} fields"
                    f"{' (' + ','.join(report['golden_mismatches']) + ')' if report['golden_mismatches'] else ''}, "
                    f"event {report['event_wall_s']:.2f}s / "
                    f"vector {report['vector_wall_s']:.2f}s "
                    f"({speedup:.1f}x)"
                )
                for field, (a, b, ok) in report["stats"].items():
                    marker = " " if ok else "!"
                    print(f"    {marker} {field:18s} event={a!r:>20} vector={b!r:>20}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
