"""Per-round phase timing for the vector engine (``--profile-rounds``).

The vector engine's wall time at population scale concentrates in a
handful of array phases — membership assignment at round boundaries,
the CSMA mirrors, the AR(1) channel advance.  :class:`RoundProfiler`
accumulates ``perf_counter`` laps per phase, flushes one record per
LEACH round, and dumps a JSON timeline that names the dominant phases
directly (no pstats spelunking).  The engine only takes laps when a
profiler is attached, so the unprofiled hot path pays a single ``is
None`` check per step.

Schema (``profile_rounds/v1``)::

    {
      "schema": "profile_rounds/v1",
      "n_nodes": ..., "seed": ..., "horizon_s": ...,
      "steps": ..., "rounds": <count>, "wall_time_s": ...,
      "phase_totals_s": {"membership": ..., "mac": ..., ...},
      "timeline": [
        {"round": 0, "sim_time_s": 20.0, "steps": 200,
         "phases_s": {"membership": ..., "channel": ..., ...}},
        ...
      ]
    }

``phase_totals_s`` sums the timeline, so the two dominant phases fall
out of one ``sorted(...)`` call; the timeline itself shows how costs
drift as queues fill and nodes die.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

__all__ = ["PHASES", "RoundProfiler"]

#: Canonical phase order for reports.  ``membership`` is the whole
#: round-boundary setup (election, routing plan, nearest-head matrix);
#: the rest are the per-step phases in execution order.
PHASES = (
    "membership",
    "channel",
    "traffic",
    "policy",
    "mac",
    "uplink",
    "energy",
)


class RoundProfiler:
    """Accumulates per-phase seconds and flushes one record per round."""

    def __init__(self) -> None:
        self.timeline: List[Dict[str, object]] = []
        self._cur: Dict[str, float] = {}
        self._steps = 0
        self._wall0 = time.perf_counter()

    def lap(self, phase: str, since: float) -> float:
        """Charge ``now - since`` to ``phase``; returns ``now`` for chaining."""
        now = time.perf_counter()
        self._cur[phase] = self._cur.get(phase, 0.0) + (now - since)
        return now

    def step(self) -> None:
        self._steps += 1

    def flush(self, sim_time_s: float) -> None:
        """Close the current round's accumulator at sim time ``sim_time_s``."""
        if not self._cur and not self._steps:
            return
        self.timeline.append(
            {
                "round": len(self.timeline),
                "sim_time_s": float(sim_time_s),
                "steps": self._steps,
                "phases_s": {k: round(v, 6) for k, v in sorted(self._cur.items())},
            }
        )
        self._cur = {}
        self._steps = 0

    def report(self, **meta: object) -> Dict[str, object]:
        totals: Dict[str, float] = {}
        for rec in self.timeline:
            for k, v in rec["phases_s"].items():  # type: ignore[union-attr]
                totals[k] = totals.get(k, 0.0) + float(v)
        ordered = {k: round(totals[k], 6) for k in PHASES if k in totals}
        for k in sorted(totals):  # any phase outside the canonical list
            ordered.setdefault(k, round(totals[k], 6))
        out: Dict[str, object] = {"schema": "profile_rounds/v1"}
        out.update(meta)
        out["rounds"] = len(self.timeline)
        out["steps"] = sum(int(r["steps"]) for r in self.timeline)
        out["wall_time_s"] = round(time.perf_counter() - self._wall0, 6)
        out["phase_totals_s"] = ordered
        out["timeline"] = self.timeline
        return out

    def dump(self, path: str, **meta: object) -> None:
        """Write the JSON report to ``path`` (flushes any open round first)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.report(**meta), fh, indent=2, sort_keys=False)
            fh.write("\n")


def attach(opts) -> Optional[RoundProfiler]:
    """The engine-side constructor hook: a profiler iff the option is set.

    ``getattr`` keeps the engine compatible with hand-rolled options
    objects (tests construct bare namespaces) that predate the field.
    """
    return RoundProfiler() if getattr(opts, "profile_rounds", None) else None
