"""Backend eligibility and selection — importable without numpy.

The vector engine covers the full channel envelope — exponential
(Gauss-Markov) and Jakes-Doppler fading kernels, Rayleigh and Rician
K>0 envelopes — so the refuse list (:func:`vector_refusal`) is
currently empty.  The function remains the single source of truth for
backend eligibility: any future config axis the engine cannot vectorise
gets its reason added here, and both the engine's constructor guard and
the ``"auto"`` resolver (:func:`resolve_backend`) pick it up without
further plumbing.  Kept dependency-light so the config layer can
consult it during serialisation without dragging in the numpy-heavy
engine.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["AUTO_VECTOR_MIN_NODES", "resolve_backend", "vector_refusal"]

#: Population size at which ``backend="auto"`` switches to the vector
#: engine.  Below this the event kernel is fast enough that exact
#: per-packet behaviour wins; at and above it the structure-of-arrays
#: engine's throughput dominates (see ``benchmarks/bench_scale.py``).
AUTO_VECTOR_MIN_NODES = 1000


def vector_refusal(cfg) -> Optional[str]:
    """Why ``cfg`` cannot run on the vector engine, or ``None`` if it can.

    The refuse list mirrors the engine's support envelope.  Since the
    Jakes kernel and Rician K>0 were vectorised (batched AR(1) Doppler
    bridge and LOS/scatter mixing, held to the same equivalence bands as
    the exponential-Rayleigh model by :mod:`repro.vector.equivalence`),
    every channel configuration is supported and this returns ``None``
    unconditionally.  It stays in the call path so a future unsupported
    axis only needs a reason string here; return values must be
    human-readable and suitable for a :class:`~repro.errors.ConfigError`
    message.
    """
    del cfg  # every channel configuration is currently vectorised
    return None


def resolve_backend(cfg) -> str:
    """The concrete engine for ``cfg``: ``"event"`` or ``"vector"``.

    Explicit choices pass through; ``"auto"`` picks the vector engine
    exactly when the population is large enough to benefit
    (:data:`AUTO_VECTOR_MIN_NODES`) *and* nothing on the refuse list
    applies — with the refuse list empty, that means every channel
    model (exponential/Jakes, Rayleigh/Rician) rides the vector engine
    at population scale.  A pure function of the config, so
    auto-selection is deterministic and safe to consult from
    :meth:`~repro.config.NetworkConfig.to_dict`.
    """
    backend = cfg.scale.backend
    if backend != "auto":
        return backend
    if cfg.n_nodes >= AUTO_VECTOR_MIN_NODES and vector_refusal(cfg) is None:
        return "vector"
    return "event"
