"""Backend eligibility and selection — importable without numpy.

The vector engine supports a subset of the channel model (the paper's
Rayleigh/exponential configuration); anything outside it must run on the
event kernel.  This module is the single source of truth for that refuse
list — :func:`vector_refusal` — and for resolving the ``"auto"`` backend
choice (:func:`resolve_backend`), kept dependency-light so the config
layer can consult it during serialisation without dragging in the
numpy-heavy engine.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["AUTO_VECTOR_MIN_NODES", "resolve_backend", "vector_refusal"]

#: Population size at which ``backend="auto"`` switches to the vector
#: engine.  Below this the event kernel is fast enough that exact
#: per-packet behaviour wins; at and above it the structure-of-arrays
#: engine's throughput dominates (see ``benchmarks/bench_scale.py``).
AUTO_VECTOR_MIN_NODES = 1000


def vector_refusal(cfg) -> Optional[str]:
    """Why ``cfg`` cannot run on the vector engine, or ``None`` if it can.

    The refuse list mirrors the engine's support envelope: only the
    exponential (Gauss-Markov) fading kernel and pure Rayleigh fading
    (``rician_k == 0``) are vectorised.  Returns a human-readable reason
    suitable for a :class:`~repro.errors.ConfigError` message.
    """
    if cfg.channel.fading_kernel != "exponential":
        return (
            "vector backend supports the exponential fading kernel only "
            f"(got {cfg.channel.fading_kernel!r}); use backend='event'"
        )
    if cfg.channel.rician_k != 0.0:
        return (
            "vector backend supports Rayleigh fading only "
            f"(rician_k={cfg.channel.rician_k!r}); use backend='event'"
        )
    return None


def resolve_backend(cfg) -> str:
    """The concrete engine for ``cfg``: ``"event"`` or ``"vector"``.

    Explicit choices pass through; ``"auto"`` picks the vector engine
    exactly when the population is large enough to benefit
    (:data:`AUTO_VECTOR_MIN_NODES`) *and* nothing on the refuse list
    applies — a Jakes-fading or Rician-K config always resolves to the
    event kernel, never to an engine that would refuse it.  A pure
    function of the config, so auto-selection is deterministic and safe
    to consult from :meth:`~repro.config.NetworkConfig.to_dict`.
    """
    backend = cfg.scale.backend
    if backend != "auto":
        return backend
    if cfg.n_nodes >= AUTO_VECTOR_MIN_NODES and vector_refusal(cfg) is None:
        return "vector"
    return "event"
