"""Array-level building blocks for the vector backend.

Everything here is engine-agnostic numpy plumbing: AR(1) step
coefficients, PER lookup tables, the decimating series recorder (an
array-side mirror of :class:`repro.metrics.collectors.TimeSeriesCollector`),
a batched reservoir sampler, and the vectorized Scheme-1 policy update.
The stepping logic itself lives in :mod:`repro.vector.engine`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import j0

__all__ = [
    "ArStep",
    "PerTables",
    "SeriesRecorder",
    "BatchReservoir",
]


class ArStep:
    """Memoized AR(1) step coefficients for one correlation time.

    Mirrors the per-``dt`` arithmetic of
    :class:`repro.channel.fading.RayleighFading`: the fading
    autocorrelation is ``rho = exp(-dt/tau)`` for the exponential
    (Gauss-Markov) kernel or ``rho = J0(2*pi*f_d*dt)`` with
    ``f_d = 0.423/tau`` for Jakes/Clarke Doppler, with innovation std
    scaled so the process stays stationary.  Shadowing innovations carry
    ``sigma`` (dB) and are always exponential-kernel; each fading
    quadrature carries ``sqrt(0.5)`` so the complex envelope has unit
    power.
    """

    def __init__(
        self,
        shadow_sigma_db: float,
        shadow_tau_s: float,
        fading_tau_s: float,
        fading_kernel: str = "exponential",
    ):
        self.sigma = float(shadow_sigma_db)
        self.shadow_tau = float(shadow_tau_s)
        self.fading_tau = float(fading_tau_s)
        self.kernel = fading_kernel
        # Jakes: classic coherence-time relation T_c ~= 0.423 / f_d
        # (identical constant to RayleighFading._doppler_hz).
        self._doppler_hz = 0.423 / self.fading_tau if self.fading_tau > 0.0 else 0.0
        self._cache: dict = {}

    def coeffs(self, dt: float) -> Tuple[float, float, float, float]:
        """Return ``(rho_shadow, sig_shadow, rho_fading, sig_fading)``."""
        got = self._cache.get(dt)
        if got is not None:
            return got
        if self.sigma > 0.0 and self.shadow_tau > 0.0:
            rho_s = math.exp(-dt / self.shadow_tau)
            sig_s = self.sigma * math.sqrt(max(0.0, 1.0 - rho_s * rho_s))
        else:
            rho_s, sig_s = 1.0, 0.0
        if self.fading_tau <= 0.0:
            rho_f = 0.0
        elif self.kernel == "jakes":
            rho_f = float(j0(2.0 * math.pi * self._doppler_hz * dt))
        else:
            rho_f = math.exp(-dt / self.fading_tau)
        sig_f = math.sqrt(max(0.0, 1.0 - rho_f * rho_f)) * math.sqrt(0.5)
        out = (rho_s, sig_s, rho_f, sig_f)
        self._cache[dt] = out
        return out


class PerTables:
    """Dense PER-vs-SNR interpolation tables, one row per ABICM mode.

    ``AbicmTable.packet_error_rate`` is exact but scalar; at population
    scale we need one PER per winning transmitter per step.  A 0.25 dB
    grid over [-20, 60] dB keeps interpolation error far below the
    Bernoulli noise of the per-packet draws it feeds.
    """

    LO_DB = -20.0
    HI_DB = 60.0
    STEP_DB = 0.25

    def __init__(self, abicm, packet_length_bits: int):
        self.grid = np.arange(self.LO_DB, self.HI_DB + self.STEP_DB / 2, self.STEP_DB)
        modes = abicm.modes
        self.n_modes = len(modes)
        self.tables = np.empty((self.n_modes, self.grid.size))
        for k, mode in enumerate(modes):
            self.tables[k] = [
                mode.packet_error_rate(float(s), packet_length_bits) for s in self.grid
            ]

    def per(self, mode_idx: np.ndarray, snr_db: np.ndarray) -> np.ndarray:
        """Vectorized PER lookup for (mode, SNR) pairs."""
        out = np.empty(snr_db.shape)
        for k in range(self.n_modes):
            sel = mode_idx == k
            if sel.any():
                out[sel] = np.interp(snr_db[sel], self.grid, self.tables[k])
        return out


class SeriesRecorder:
    """Decimating time-series recorder.

    Bit-exact mirror of the bookkeeping in
    :class:`repro.metrics.collectors.TimeSeriesCollector`: append one
    sample per tick; once ``max_samples`` is exceeded on an odd count,
    drop every second sample starting from index 1 and double both the
    interval and the recorded stride.  The engine re-arms its next
    sample at ``t + interval`` after every tick, exactly as the event
    collector re-arms its timer.
    """

    def __init__(self, interval_s: float, max_samples: Optional[int]):
        self.interval = float(interval_s)
        self.max_samples = max_samples
        self.stride = 1
        self.times: List[float] = []
        self.series: List[List] = []  # parallel value tracks

    def add_track(self) -> int:
        self.series.append([])
        return len(self.series) - 1

    def tick(self, now: float, values: Sequence) -> None:
        self.times.append(now)
        for track, value in zip(self.series, values):
            track.append(value)
        cap = self.max_samples
        if cap is not None and len(self.times) > cap and len(self.times) % 2 == 1:
            del self.times[1::2]
            for track in self.series:
                del track[1::2]
            self.interval *= 2.0
            self.stride *= 2


class BatchReservoir:
    """Reservoir sampler with batched updates (Algorithm R, chunked).

    Holds exact first/second-moment accumulators regardless of the cap,
    so means stay exact even when the sample set is bounded.  With
    ``cap=None`` every value is kept.
    """

    def __init__(self, cap: Optional[int], rng: Optional[np.random.Generator]):
        self.cap = cap
        self.rng = rng
        self.seen = 0
        self.sum = 0.0
        self.count = 0
        if cap is None:
            self._chunks: List[np.ndarray] = []
            self._buf = None
        else:
            self._buf = np.empty(cap)
            self._chunks = []

    def add(self, values: np.ndarray) -> None:
        k = values.size
        if k == 0:
            return
        self.sum += float(values.sum())
        self.count += k
        if self.cap is None:
            self._chunks.append(np.asarray(values, dtype=float).copy())
            self.seen += k
            return
        cap = self.cap
        fill = min(cap - self.seen, k) if self.seen < cap else 0
        if fill > 0:
            self._buf[self.seen : self.seen + fill] = values[:fill]
        rest = values[fill:]
        if rest.size:
            # j ~ Uniform{0..seen+i} for the i-th remaining value; keep
            # when j lands inside the reservoir — chunked Algorithm R.
            base = self.seen + fill
            span = base + 1 + np.arange(rest.size)
            j = (self.rng.random(rest.size) * span).astype(np.int64)
            hit = j < cap
            if hit.any():
                self._buf[j[hit]] = rest[hit]
        self.seen += k

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def samples(self) -> np.ndarray:
        if self.cap is None:
            if not self._chunks:
                return np.empty(0)
            return np.concatenate(self._chunks)
        return self._buf[: min(self.seen, self.cap)].copy()
