"""Vectorized population-scale backend (``ScaleConfig.backend="vector"``).

A second simulation engine that keeps all node state in numpy
structure-of-arrays — positions, battery ledgers, queue rings, policy
state, per-link AR(1) shadowing/fading states — and advances the whole
population with batched array operations on a fixed channel-coherence
time step, instead of per-node event callbacks.

The event kernel (:mod:`repro.network`, the default) is the reference:
it is exact at the per-packet, per-callback level and every paper figure
is produced by it, byte-identically.  The vector engine trades per-event
exactness for array throughput, which is what makes N = 10⁴–10⁵ node
populations practical on one CPU.  The contract between the two backends
is enforced by :mod:`repro.vector.equivalence`:

* **golden fields** — run identity, the sampling timeline and the
  deterministic dynamics replay (sample times, series stride, churn/
  regime counters, death bookkeeping on death-free runs) are *equal*,
  because both engines consume the same named RNG streams
  (``topology``, ``leach``, ``dynamics/*``) in the same order;
* **statistical fields** — traffic, MAC contention, channel noise and
  energy metering use dedicated ``vector/*`` streams and a fluid-ish
  MAC abstraction, so delivery rate, delay, collisions and
  energy-per-packet agree within calibrated tolerance bands, not
  bit-for-bit.

The engine covers the full channel envelope — exponential and
Jakes-Doppler fading kernels, Rayleigh and Rician K>0 — so the refuse
list (:func:`~repro.vector.support.vector_refusal`) is currently empty.

Select it per run with ``cfg.with_scale(backend="vector")``; the default
``"event"`` leaves every existing output byte-identical.
``backend="auto"`` resolves per config — vector for populations of
:data:`~repro.vector.support.AUTO_VECTOR_MIN_NODES` and up, event
otherwise (see :func:`~repro.vector.support.resolve_backend`).
"""

from .engine import simulate_vector
from .support import AUTO_VECTOR_MIN_NODES, resolve_backend, vector_refusal

__all__ = [
    "AUTO_VECTOR_MIN_NODES",
    "resolve_backend",
    "simulate_vector",
    "vector_refusal",
]
