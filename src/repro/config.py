"""Validated configuration dataclasses for every subsystem.

The top-level object is :class:`NetworkConfig`; it composes one config per
subsystem and corresponds to the paper's Table II plus the Section III
protocol constants.  All configs are frozen (hashable, safely shared),
validate on construction, and round-trip through plain dicts for CSV/JSON
experiment logs.

>>> cfg = NetworkConfig()
>>> cfg.energy.data_tx_power_w
0.66
>>> NetworkConfig.from_dict(cfg.to_dict()) == cfg
True
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from . import constants as C
from .errors import ConfigError

__all__ = [
    "Protocol",
    "ChannelConfig",
    "PhyConfig",
    "EnergyConfig",
    "ToneConfig",
    "MacConfig",
    "LeachConfig",
    "TrafficConfig",
    "PolicyConfig",
    "RoutingConfig",
    "DynamicsConfig",
    "ScaleConfig",
    "NetworkConfig",
]


class Protocol(enum.Enum):
    """The three protocols compared in the paper's evaluation."""

    #: LEACH access with no channel-quality gating (baseline).
    PURE_LEACH = "pure_leach"
    #: CAEM + adaptive threshold adjustment (Scheme 1).
    CAEM_ADAPTIVE = "scheme1"
    #: CAEM with the threshold fixed at the highest class (Scheme 2).
    CAEM_FIXED = "scheme2"

    @property
    def label(self) -> str:
        """Human-readable label used in tables/figures."""
        return {
            Protocol.PURE_LEACH: "Pure LEACH",
            Protocol.CAEM_ADAPTIVE: "CAEM LEACH Scheme 1 (adaptive threshold)",
            Protocol.CAEM_FIXED: "CAEM LEACH Scheme 2 (fixed threshold)",
        }[self]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class ChannelConfig:
    """Time-varying channel model parameters (paper §II-B).

    The paper models path loss + shadowing (macroscopic, 2-5 s) +
    microscopic Rayleigh fading with ~100 ms coherence for quasi-static
    nodes, reciprocal in both directions.
    """

    #: Log-distance path-loss exponent (2 = free space; 3 covers ground
    #: clutter typical of sensor fields).
    pathloss_exponent: float = 3.0
    #: Reference path loss at d0 = 1 m, in dB (≈ 915 MHz free space + margin).
    pathloss_ref_db: float = 40.0
    pathloss_ref_distance_m: float = 1.0
    #: Log-normal shadowing standard deviation, dB.
    shadowing_sigma_db: float = 4.0
    #: Shadowing decorrelation time, s ("macroscopic time scale (2-5 seconds)").
    shadowing_tau_s: float = 3.0
    #: Rayleigh fading coherence time, s ("of the order of ... ms" for <1 m/s).
    fading_coherence_s: float = 0.1
    #: Autocorrelation kernel: "exponential" (Gauss-Markov) or "jakes" (J0).
    fading_kernel: str = "exponential"
    #: Rician K-factor (linear).  0 = pure Rayleigh, the paper's model.
    rician_k: float = 0.0
    #: Transmit power used for the link-budget SNR, W (Table II data TX).
    tx_power_w: float = C.DATA_TX_POWER_W
    #: Effective noise+interference floor, dBm.  Calibrated so the
    #: *typical intra-cluster* sensor-CH link (≈20 m with 5 cluster heads
    #: in the 100 m field) sees mean SNR ≈ 20 dB, which puts all four
    #: ABICM modes in play on real cluster geometry (DESIGN.md §2).
    noise_floor_dbm: float = -71.0
    #: Minimum node separation used to clamp path-loss queries, m.
    min_distance_m: float = 1.0

    def __post_init__(self) -> None:
        _require(self.pathloss_exponent > 0, "pathloss_exponent must be > 0")
        _require(self.pathloss_ref_distance_m > 0, "reference distance must be > 0")
        _require(self.shadowing_sigma_db >= 0, "shadowing sigma must be >= 0")
        _require(self.shadowing_tau_s > 0, "shadowing tau must be > 0")
        _require(self.fading_coherence_s > 0, "fading coherence must be > 0")
        _require(
            self.fading_kernel in ("exponential", "jakes"),
            f"unknown fading kernel {self.fading_kernel!r}",
        )
        _require(self.rician_k >= 0, "Rician K must be >= 0")
        _require(self.tx_power_w > 0, "tx power must be > 0")
        _require(self.min_distance_m > 0, "min distance must be > 0")


@dataclass(frozen=True)
class PhyConfig:
    """ABICM adaptive physical layer (paper §II-B, §III-C).

    Four modes after adaptive coding + modulation: 2 Mbps / 1 Mbps /
    450 kbps / 250 kbps.  ``mode_thresholds_db`` are the CSI (SNR) switching
    points, lowest mode first; below the first threshold the link is in
    outage.  ``None`` derives them from the BER model at ``target_ber``.
    """

    rates_bps: Tuple[float, ...] = C.ABICM_RATES_BPS
    #: Switching thresholds in dB (len == len(rates)); None (default) solves
    #: them from the BER model at ``target_ber`` — see repro.phy.abicm.
    mode_thresholds_db: Tuple[float, ...] | None = None
    #: Target bit-error rate used when solving thresholds and for PER curves.
    target_ber: float = 1e-5
    #: Packet payload, bits (Table II: 2 Kbits).
    packet_length_bits: int = C.PACKET_LENGTH_BITS
    #: Per-burst PHY preamble+header overhead, bits (sync, address, CRC).
    burst_overhead_bits: int = 128

    def __post_init__(self) -> None:
        _require(len(self.rates_bps) >= 1, "need at least one ABICM rate")
        _require(
            all(r > 0 for r in self.rates_bps), "ABICM rates must be positive"
        )
        _require(
            tuple(sorted(self.rates_bps)) == tuple(self.rates_bps),
            "ABICM rates must be sorted ascending (lowest mode first)",
        )
        if self.mode_thresholds_db is not None:
            _require(
                len(self.mode_thresholds_db) == len(self.rates_bps),
                "one threshold per ABICM mode required",
            )
            _require(
                tuple(sorted(self.mode_thresholds_db))
                == tuple(self.mode_thresholds_db),
                "mode thresholds must be sorted ascending",
            )
        _require(0 < self.target_ber < 0.5, "target BER must be in (0, 0.5)")
        _require(self.packet_length_bits > 0, "packet length must be > 0")
        _require(self.burst_overhead_bits >= 0, "burst overhead must be >= 0")


@dataclass(frozen=True)
class EnergyConfig:
    """Radio power draws and battery (Table II)."""

    data_tx_power_w: float = C.DATA_TX_POWER_W
    data_rx_power_w: float = C.DATA_RX_POWER_W
    sleep_power_w: float = C.DATA_SLEEP_POWER_W
    tone_tx_power_w: float = C.TONE_TX_POWER_W
    tone_rx_power_w: float = C.TONE_RX_POWER_W
    #: Sleep -> active switch time of the data radio (DESIGN.md §2).
    startup_time_s: float = C.RADIO_STARTUP_TIME_S
    #: Power drawn during startup; RFM-class radios burn ~TX power while
    #: the synthesizer locks.
    startup_power_w: float = C.DATA_TX_POWER_W
    #: Initial battery, J (paper: 10 J).
    initial_energy_j: float = C.INITIAL_ENERGY_J
    #: Idle power of the cluster head's data radio while clusters are
    #: quiet; tone scheduling lets it duty-cycle toward sleep level
    #: between bursts (it only needs full RX once a receive-tone episode
    #: starts), so the floor sits between sleep and full RX.
    ch_idle_power_w: float = 15e-3

    def __post_init__(self) -> None:
        for name in (
            "data_tx_power_w",
            "data_rx_power_w",
            "sleep_power_w",
            "tone_tx_power_w",
            "tone_rx_power_w",
            "startup_power_w",
            "ch_idle_power_w",
        ):
            _require(getattr(self, name) >= 0, f"{name} must be >= 0")
        _require(self.startup_time_s >= 0, "startup time must be >= 0")
        _require(self.initial_energy_j > 0, "initial energy must be > 0")
        _require(
            self.sleep_power_w <= self.data_rx_power_w,
            "sleep power should not exceed RX power",
        )


@dataclass(frozen=True)
class ToneConfig:
    """Tone signalling channel (Table I + §III-A prose)."""

    idle_period_s: float = C.TONE_IDLE_PERIOD_S
    idle_duration_s: float = C.TONE_IDLE_DURATION_S
    receive_period_s: float = C.TONE_RECEIVE_PERIOD_S
    receive_duration_s: float = C.TONE_RECEIVE_DURATION_S
    transmit_period_s: float = C.TONE_TRANSMIT_PERIOD_S
    transmit_duration_s: float = C.TONE_TRANSMIT_DURATION_S
    collision_duration_s: float = C.TONE_COLLISION_DURATION_S
    #: Time a sensor must listen before it can classify the tone state
    #: (Table II "Sensing Delay").
    sensing_delay_s: float = C.SENSING_DELAY_S
    #: Effective duty cycle of a monitoring sensor's tone receiver.  Once
    #: synchronized to the pulse schedule the receiver only wakes in
    #: windows around expected pulses (≈2 ms per 50 ms idle period /
    #: ≈2 ms per 10 ms receive period, mostly waiting on an idle channel);
    #: 0.08 is the blended default and 1.0 recovers naive always-on
    #: listening (ablation bench available).
    monitor_duty_cycle: float = 0.08

    def __post_init__(self) -> None:
        for name in (
            "idle_period_s",
            "idle_duration_s",
            "receive_period_s",
            "receive_duration_s",
            "transmit_period_s",
            "transmit_duration_s",
            "collision_duration_s",
            "sensing_delay_s",
        ):
            _require(getattr(self, name) > 0, f"{name} must be > 0")
        _require(
            self.idle_duration_s < self.idle_period_s,
            "idle pulse must be shorter than its period",
        )
        _require(
            self.receive_duration_s < self.receive_period_s,
            "receive pulse must be shorter than its period",
        )
        _require(
            0.0 < self.monitor_duty_cycle <= 1.0,
            "monitor duty cycle must be in (0, 1]",
        )


@dataclass(frozen=True)
class MacConfig:
    """CAEM medium access control (paper §III-B)."""

    contention_window: int = C.CONTENTION_WINDOW
    backoff_slot_s: float = C.BACKOFF_SLOT_S
    max_retries: int = C.MAX_RETRIES
    min_burst_packets: int = C.MIN_BURST_PACKETS
    max_burst_packets: int = C.MAX_BURST_PACKETS
    #: Latency bound: a node with a non-empty queue older than this starts
    #: an access attempt even below ``min_burst_packets`` (keeps the
    #: "smooth gathered data flow" the paper asks for; disabled with inf).
    min_burst_wait_s: float = 2.0

    def __post_init__(self) -> None:
        _require(self.contention_window >= 1, "contention window must be >= 1")
        _require(self.backoff_slot_s > 0, "backoff slot must be > 0")
        _require(self.max_retries >= 0, "max retries must be >= 0")
        _require(self.min_burst_packets >= 1, "min burst must be >= 1")
        _require(
            self.max_burst_packets >= self.min_burst_packets,
            "max burst must be >= min burst",
        )
        _require(self.min_burst_wait_s > 0, "min-burst wait must be > 0")


@dataclass(frozen=True)
class LeachConfig:
    """LEACH clustering substrate (paper §IV)."""

    #: Desired cluster-head fraction P (Table II: 5%).
    ch_fraction: float = C.LEACH_CH_FRACTION
    #: Round duration, s.
    round_duration_s: float = C.LEACH_ROUND_DURATION_S
    #: If True, a node with a dead battery can never be elected.
    skip_dead_nodes: bool = True

    def __post_init__(self) -> None:
        _require(0 < self.ch_fraction <= 1, "CH fraction must be in (0, 1]")
        _require(self.round_duration_s > 0, "round duration must be > 0")


@dataclass(frozen=True)
class TrafficConfig:
    """Per-node workload (paper §IV-A: homogeneous Poisson sources)."""

    #: Mean packet generation rate per node, packets/s.
    packets_per_second: float = 5.0
    #: Buffer capacity in packets (Table II: 50).
    buffer_packets: int = C.BUFFER_SIZE_PACKETS
    #: Source model: "poisson" (paper), "cbr", "onoff" (extensions).
    source_model: str = "poisson"
    #: On/off burstiness knobs (only used by the onoff model).
    onoff_on_s: float = 1.0
    onoff_off_s: float = 4.0

    def __post_init__(self) -> None:
        _require(self.packets_per_second > 0, "packet rate must be > 0")
        _require(self.buffer_packets >= 1, "buffer must hold >= 1 packet")
        _require(
            self.source_model in ("poisson", "cbr", "onoff"),
            f"unknown source model {self.source_model!r}",
        )
        _require(self.onoff_on_s > 0 and self.onoff_off_s >= 0,
                 "on/off periods invalid")


@dataclass(frozen=True)
class PolicyConfig:
    """Scheme 1 adaptive-threshold controller constants (Fig. 6)."""

    #: Sample the queue every M packet arrivals (paper: M = 5).
    sample_interval_packets: int = C.QUEUE_SAMPLE_INTERVAL_PACKETS
    #: Arm the controller once queue length reaches this (paper: 15).
    arm_queue_length: int = C.QUEUE_ARM_THRESHOLD
    #: Initial threshold class index (highest = len(rates)-1; paper starts
    #: both schemes at 2 Mbps).
    initial_class: int | None = None

    def __post_init__(self) -> None:
        _require(self.sample_interval_packets >= 1, "sample interval must be >= 1")
        _require(self.arm_queue_length >= 1, "arm threshold must be >= 1")
        if self.initial_class is not None:
            _require(self.initial_class >= 0, "initial class must be >= 0")


@dataclass(frozen=True)
class RoutingConfig:
    """Head→sink uplink tier (extension; the paper stops at the head).

    The paper's §III topology makes each cluster head the sink for its
    cluster, so delivery ends at local aggregation.  With ``mode`` set to
    ``"direct"`` or ``"multihop"`` the reproduction grows a routed uplink:
    heads forward aggregated packets over a shared long-haul data channel
    (orthogonal to every cluster channel) to a network sink, either in one
    hop or greedily head→head→sink by sink distance.  The default
    ``"local"`` keeps the paper's behaviour bit-for-bit.
    """

    #: "local" (paper: head is the sink), "direct" (one head→sink hop), or
    #: "multihop" (greedy head→head→sink forwarding by sink distance).
    mode: str = "local"
    #: Sink coordinates (x, y) in metres; None places the sink at the
    #: field centre.  May lie outside the field (sink-distance sweeps).
    sink_position: Tuple[float, float] | None = None
    #: Drop a packet whose accumulated radio hop count would exceed this
    #: (greedy forwarding is loop-free; the cap is defensive).
    max_hops: int = 8
    #: Relay queue capacity at each head, packets.
    relay_buffer_packets: int = 256
    #: Packets per uplink burst (the cluster MAC's 8-packet cap applies
    #: to the long-haul hop too unless overridden).
    max_burst_packets: int = C.MAX_BURST_PACKETS
    #: Uplink retry budget for a collided burst before it is shed.
    max_retries: int = C.MAX_RETRIES
    #: Base hold-off when the shared uplink channel is busy, s (actual
    #: waits are jittered per head to break ties deterministically).
    retry_delay_s: float = 5e-3
    #: Sense→transmit turnaround of the long-haul radio, s: a head that
    #: sensed the channel idle commits and keys up only after this window
    #: (jittered per head), without re-sensing.  Two heads whose windows
    #: overlap collide on the ledger — the CSMA vulnerable period.
    turnaround_s: float = 0.5e-3
    #: Long-haul TX power, W.  Heads boost power for the uplink (the
    #: classic LEACH head→BS assumption); default 4x Table II's data TX
    #: (+6 dB), which covers ~60 m hops at the calibrated noise floor.
    uplink_tx_power_w: float = 4.0 * C.DATA_TX_POWER_W

    def __post_init__(self) -> None:
        _require(
            self.mode in ("local", "direct", "multihop"),
            f"unknown routing mode {self.mode!r}",
        )
        if self.sink_position is not None:
            _require(
                len(self.sink_position) == 2,
                "sink position must be an (x, y) pair",
            )
            _require(
                all(math.isfinite(v) for v in self.sink_position),
                "sink position must be finite",
            )
        _require(self.max_hops >= 1, "max hops must be >= 1")
        _require(self.relay_buffer_packets >= 1, "relay buffer must hold >= 1")
        _require(self.max_burst_packets >= 1, "uplink burst must be >= 1")
        _require(self.max_retries >= 0, "uplink retries must be >= 0")
        _require(self.retry_delay_s > 0, "uplink retry delay must be > 0")
        _require(self.turnaround_s > 0, "uplink turnaround must be > 0")
        _require(self.uplink_tx_power_w > 0, "uplink tx power must be > 0")

    @property
    def enabled(self) -> bool:
        """True when the uplink tier is active (non-paper modes)."""
        return self.mode != "local"


@dataclass(frozen=True)
class DynamicsConfig:
    """Network-dynamics injection (extension; everything defaults *off*).

    The paper's evaluation runs a static network: nodes live until their
    battery empties, the shadowing environment is stationary, and every
    source is homogeneous Poisson.  This block scripts *adversity* into a
    run — the conditions channel-adaptive energy management claims to
    survive — while keeping the default (all knobs zero) bit-identical to
    the static network.  Four independent mechanisms:

    * **node churn** — transient node failures (crash, jamming, a wilted
      antenna) and recoveries, either stochastic (per-node Poisson
      failures with exponential repair times) or scripted kill/heal
      lists.  A failed node loses its queue (counted ``orphaned``), its
      cluster reacts exactly as it does to a battery death, and a
      recovered node rejoins at the next LEACH round.  Scripted kills
      outrank stochastic repairs: a node on the kill list stays down
      until its scripted recovery (or forever), even while the Poisson
      churn chain keeps drawing around it;
    * **heterogeneous batteries** — per-node initial energy jittered
      uniformly in ``[1-j, 1+j]`` × the configured capacity;
    * **shadowing regime shifts** — at Poisson epochs the network-wide
      mean attenuation offset is re-drawn from N(0, sigma) and applied to
      every active link (a moved obstacle / weather front), shifting the
      operating SNR mid-run;
    * **bursty traffic** — a deterministic fraction of nodes swap their
      configured source for the ON/OFF bursty model (mean rate is
      preserved, so load sweeps stay comparable).

    All randomness draws from dedicated ``dynamics/*`` registry streams,
    so enabling any mechanism never perturbs the draws of the static
    simulation underneath, and runs remain bit-identical across
    processes and parallelism.
    """

    #: Per-node Poisson failure rate, 1/s (0 disables stochastic churn).
    failure_rate_hz: float = 0.0
    #: Mean exponential repair time after a stochastic failure, s
    #: (0 makes stochastic failures permanent).
    mean_downtime_s: float = 30.0
    #: Scripted kill list: ((time_s, node_id), ...).
    scripted_failures: Tuple[Tuple[float, int], ...] = ()
    #: Scripted heal list: ((time_s, node_id), ...).
    scripted_recoveries: Tuple[Tuple[float, int], ...] = ()
    #: Uniform half-width of the initial-battery jitter, as a fraction of
    #: the configured capacity (0 keeps batteries homogeneous).
    battery_jitter: float = 0.0
    #: Mean interval between shadowing regime shifts, s (0 disables).
    regime_mean_interval_s: float = 0.0
    #: Std-dev of the re-drawn network-wide mean attenuation offset, dB.
    regime_sigma_db: float = 4.0
    #: Fraction of nodes switched to the bursty ON/OFF source model.
    bursty_fraction: float = 0.0

    def __post_init__(self) -> None:
        _require(self.failure_rate_hz >= 0, "failure rate must be >= 0")
        _require(self.mean_downtime_s >= 0, "mean downtime must be >= 0")
        for label, events in (
            ("scripted_failures", self.scripted_failures),
            ("scripted_recoveries", self.scripted_recoveries),
        ):
            for entry in events:
                _require(
                    len(entry) == 2,
                    f"{label} entries must be (time_s, node_id) pairs",
                )
                t, node = entry
                _require(t >= 0, f"{label} times must be >= 0")
                _require(
                    int(node) == node and node >= 0,
                    f"{label} node ids must be non-negative integers",
                )
        _require(
            0 <= self.battery_jitter < 1,
            "battery jitter must be in [0, 1)",
        )
        _require(
            self.regime_mean_interval_s >= 0,
            "regime interval must be >= 0",
        )
        _require(self.regime_sigma_db >= 0, "regime sigma must be >= 0")
        _require(
            0 <= self.bursty_fraction <= 1,
            "bursty fraction must be in [0, 1]",
        )

    @property
    def enabled(self) -> bool:
        """True when any dynamics mechanism is active.

        Derived, not stored: there is no way to configure adversity and
        have it silently ignored, and the all-default block is guaranteed
        inert (the golden-hash tests pin the byte-identity).
        """
        return bool(
            self.failure_rate_hz > 0
            or self.scripted_failures
            or self.scripted_recoveries
            or self.battery_jitter > 0
            or (self.regime_mean_interval_s > 0 and self.regime_sigma_db > 0)
            or self.bursty_fraction > 0
        )

    @property
    def churn_enabled(self) -> bool:
        """True when any failure source (stochastic or scripted) exists."""
        return bool(
            self.failure_rate_hz > 0
            or self.scripted_failures
            or self.scripted_recoveries
        )


@dataclass(frozen=True)
class ScaleConfig:
    """Scale-tier machinery knobs (all output-neutral).

    The spatial grid index and the link/MAC reuse pools make 1000+ node
    runs practical; both are **bit-identical** to the brute-force /
    fresh-allocation paths they replace (pinned by the equivalence tests
    in ``tests/test_topology_index.py`` and ``tests/test_scale.py``), so
    they default *on* at every network size.  The toggles exist for the
    equivalence tests themselves and for attributing speedups in
    ``benchmarks/bench_scale.py`` — disabling them changes wall clock and
    memory, never a single output byte.
    """

    #: Simulation engine: "event" (the per-node discrete-event kernel,
    #: every paper figure), "vector" (the numpy structure-of-arrays
    #: population engine in :mod:`repro.vector` for N = 10⁴–10⁵ fields),
    #: or "auto" (vector for large populations, event otherwise — see
    #: :func:`repro.vector.resolve_backend`; the vector engine covers
    #: every channel model, including Jakes and Rician K>0, so the
    #: refuse list consulted by auto is currently empty).
    #: The vector engine reuses the event kernel's topology, election and
    #: dynamics streams — so placements, head sets and churn timelines
    #: match exactly — while the per-packet channel/MAC micro-behaviour is
    #: statistically equivalent rather than bit-identical (see
    #: ``repro/vector/equivalence.py`` for the contract).  Serialised
    #: sparsely: ``"auto"`` resolves to its concrete choice and
    #: ``"event"`` is omitted from :meth:`NetworkConfig.to_dict`, so
    #: default digests stay byte-identical across releases and an auto
    #: config digests exactly like the equivalent explicit one.
    backend: str = "event"
    #: Nearest-head resolution: "grid" (spatial index) or "brute"
    #: (the original full scan).
    spatial_index: str = "grid"
    #: Head sets smaller than this always use the brute scan (the index
    #: cannot win below it).
    grid_min_heads: int = 8
    #: Recycle member->head ``Link`` objects (and their block-normal
    #: caches) across rounds instead of reallocating.
    link_pool: bool = True
    #: Recycle each node's head-role stack (data channel, tone
    #: broadcaster, head MAC) across its head terms.
    reuse_head_stack: bool = True
    #: Memory bound on the per-delivery delay/hop sample lists: ``None``
    #: keeps the exact unbounded lists (every release so far); an integer
    #: switches :class:`repro.network.stats.NetworkStats` to a seeded
    #: reservoir sample of that size (delay *means* stay exact; the
    #: percentiles become estimates).  The one scale knob that is **not**
    #: output-neutral — set it only on runs too big for exact lists.
    max_delay_samples: int | None = None

    def __post_init__(self) -> None:
        _require(
            self.backend in ("event", "vector", "auto"),
            f"unknown backend {self.backend!r}",
        )
        _require(
            self.spatial_index in ("grid", "brute"),
            f"unknown spatial index {self.spatial_index!r}",
        )
        _require(self.grid_min_heads >= 1, "grid_min_heads must be >= 1")
        if self.max_delay_samples is not None:
            _require(
                self.max_delay_samples >= 1,
                "max_delay_samples must be >= 1",
            )


@dataclass(frozen=True)
class NetworkConfig:
    """Top-level scenario configuration (paper Table II defaults)."""

    n_nodes: int = C.N_NODES
    field_size_m: float = C.FIELD_SIZE_M
    protocol: Protocol = Protocol.CAEM_ADAPTIVE
    seed: int = 1
    #: Fraction of exhausted nodes at which the network counts as dead.
    dead_fraction: float = C.DEAD_NETWORK_FRACTION
    #: Node placement: "uniform" (paper) or "grid" (tests/examples).
    placement: str = "uniform"

    channel: ChannelConfig = field(default_factory=ChannelConfig)
    phy: PhyConfig = field(default_factory=PhyConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    tone: ToneConfig = field(default_factory=ToneConfig)
    mac: MacConfig = field(default_factory=MacConfig)
    leach: LeachConfig = field(default_factory=LeachConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    routing: RoutingConfig = field(default_factory=RoutingConfig)
    dynamics: DynamicsConfig = field(default_factory=DynamicsConfig)
    scale: ScaleConfig = field(default_factory=ScaleConfig)

    def __post_init__(self) -> None:
        _require(self.n_nodes >= 2, "need at least 2 nodes (1 CH + 1 sensor)")
        _require(self.field_size_m > 0, "field size must be > 0")
        _require(isinstance(self.protocol, Protocol), "protocol must be a Protocol")
        _require(self.seed >= 0, "seed must be >= 0")
        _require(0 < self.dead_fraction <= 1, "dead fraction must be in (0, 1]")
        _require(
            self.placement in ("uniform", "grid"),
            f"unknown placement {self.placement!r}",
        )

    # -- conveniences ----------------------------------------------------------

    def with_(self, **changes: Any) -> "NetworkConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_traffic(self, **changes: Any) -> "NetworkConfig":
        """Return a copy with traffic fields replaced."""
        return dataclasses.replace(
            self, traffic=dataclasses.replace(self.traffic, **changes)
        )

    def with_protocol(self, protocol: Protocol) -> "NetworkConfig":
        """Return a copy running a different protocol."""
        return dataclasses.replace(self, protocol=protocol)

    def with_routing(self, **changes: Any) -> "NetworkConfig":
        """Return a copy with routing fields replaced."""
        return dataclasses.replace(
            self, routing=dataclasses.replace(self.routing, **changes)
        )

    def with_dynamics(self, **changes: Any) -> "NetworkConfig":
        """Return a copy with dynamics fields replaced."""
        return dataclasses.replace(
            self, dynamics=dataclasses.replace(self.dynamics, **changes)
        )

    def with_scale(self, **changes: Any) -> "NetworkConfig":
        """Return a copy with scale-tier fields replaced."""
        return dataclasses.replace(
            self, scale=dataclasses.replace(self.scale, **changes)
        )

    # -- dict round-trip ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to a JSON-serialisable dict.

        ``scale.backend`` serialises sparsely: the default ``"event"`` is
        omitted so every pre-existing config digests (and stores) exactly
        as it did before the vector backend existed, while ``"vector"``
        configs digest differently by design — the engines' per-packet
        micro-behaviour is statistically, not bitwise, equivalent, so
        their rows must never fill each other's cells.  ``"auto"``
        resolves to its concrete choice first (a pure function of this
        config — see :func:`repro.vector.resolve_backend`), so an auto
        config digests and pairs exactly like the explicit equivalent.
        """
        out = dataclasses.asdict(self)
        out["protocol"] = self.protocol.value
        if out["scale"].get("backend") == "auto":
            from .vector.support import resolve_backend

            out["scale"]["backend"] = resolve_backend(self)
        if out["scale"].get("backend") == "event":
            del out["scale"]["backend"]
        return out

    def digest(self) -> str:
        """Stable SHA-256 over the full configuration.

        Stamped into every :class:`repro.api.RunResult` and used by the
        experiment layer to pair stored runs back to scenario grid cells:
        two configs differing anywhere (a churn rate, a sink offset, a
        scale knob) digest differently, so a stale or reordered store can
        never silently fill the wrong cell.
        """
        import hashlib
        import json

        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NetworkConfig":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        sub = {
            "channel": ChannelConfig,
            "phy": PhyConfig,
            "energy": EnergyConfig,
            "tone": ToneConfig,
            "mac": MacConfig,
            "leach": LeachConfig,
            "traffic": TrafficConfig,
            "policy": PolicyConfig,
            "routing": RoutingConfig,
            "dynamics": DynamicsConfig,
            "scale": ScaleConfig,
        }
        kwargs: Dict[str, Any] = {}
        for key, value in data.items():
            if key in sub:
                payload = dict(value)
                # JSON turns tuples into lists; restore tuple-typed fields.
                for tup_field in ("rates_bps", "mode_thresholds_db",
                                  "sink_position"):
                    if tup_field in payload and payload[tup_field] is not None:
                        payload[tup_field] = tuple(payload[tup_field])
                # Nested event lists: ((t, node), ...) pairs.
                for evt_field in ("scripted_failures", "scripted_recoveries"):
                    if evt_field in payload:
                        payload[evt_field] = tuple(
                            (float(t), int(n)) for t, n in payload[evt_field]
                        )
                kwargs[key] = sub[key](**payload)
            elif key == "protocol":
                kwargs[key] = Protocol(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)
