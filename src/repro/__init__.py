"""CAEM — Channel Adaptive Energy Management in Wireless Sensor Networks.

A complete reproduction of Lin & Kwok (ICPP Workshops 2005): a
discrete-event WSN simulator with a time-varying Rayleigh/shadowing
channel, a 4-mode ABICM adaptive physical layer, the tone-signalled CAEM
MAC with collision detection, LEACH clustering, and the paper's three
protocols (pure LEACH, Scheme 1 adaptive threshold, Scheme 2 fixed
threshold), plus the full evaluation harness for Figures 8-12 and
Tables I-II.

Quickstart
----------
>>> from repro import NetworkConfig, Protocol, SensorNetwork
>>> cfg = NetworkConfig(n_nodes=20, protocol=Protocol.CAEM_ADAPTIVE, seed=1)
>>> net = SensorNetwork(cfg)
>>> net.run_until(30.0)
>>> net.stats.delivered > 0
True

See ``examples/`` for richer scenarios and ``repro.experiments`` for the
paper's figures.
"""

from .config import (
    ChannelConfig,
    EnergyConfig,
    LeachConfig,
    MacConfig,
    NetworkConfig,
    PhyConfig,
    PolicyConfig,
    Protocol,
    ToneConfig,
    TrafficConfig,
)
from .network import NetworkStats, SensorNetwork
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "NetworkConfig",
    "ChannelConfig",
    "PhyConfig",
    "EnergyConfig",
    "ToneConfig",
    "MacConfig",
    "LeachConfig",
    "TrafficConfig",
    "PolicyConfig",
    "Protocol",
    "SensorNetwork",
    "NetworkStats",
    "Simulator",
    "__version__",
]
