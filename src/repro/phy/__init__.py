"""ABICM adaptive physical layer substrate (paper §II-B, §III-C)."""

from .abicm import DEFAULT_SYMBOL_RATE, AbicmMode, AbicmTable, solve_threshold_db
from .coding import (
    RATE_0_45,
    RATE_1_2,
    RATE_1_3,
    RATE_3_4,
    UNCODED,
    ConvolutionalCode,
)
from .frame import BurstPlan, BurstResult, evaluate_burst, plan_burst
from .modulation import BPSK, QAM16, QAM64, QPSK, Modulation, by_name, qfunc, qfunc_inv
from .radio import DataRadio, DataRadioState, ToneRadio, ToneRadioState

__all__ = [
    "AbicmMode",
    "AbicmTable",
    "solve_threshold_db",
    "DEFAULT_SYMBOL_RATE",
    "ConvolutionalCode",
    "UNCODED",
    "RATE_3_4",
    "RATE_1_2",
    "RATE_0_45",
    "RATE_1_3",
    "BurstPlan",
    "BurstResult",
    "plan_burst",
    "evaluate_burst",
    "Modulation",
    "BPSK",
    "QPSK",
    "QAM16",
    "QAM64",
    "by_name",
    "qfunc",
    "qfunc_inv",
    "DataRadio",
    "DataRadioState",
    "ToneRadio",
    "ToneRadioState",
]
