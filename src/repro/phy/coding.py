"""Forward error correction model: rate, overhead, coding gain.

§I of the paper: *"we have to resort to [FEC] to overcome this unreliable
link problem.  As the channel quality changes with time, the amount of
incorporated error protection should also vary"* — and the two costs it
calls out are exactly what this model captures:

1. **expansion** — a rate-r code stretches every frame by 1/r, keeping the
   radio on longer (the dominant energy term, §I item 2);
2. **coding gain** — the effective SNR improvement that lets a lower
   threshold sustain the target BER.

We model a convolutional code by its rate and an SNR-domain coding gain
(dB), the standard abstraction when bit-exact decoding is out of scope.
The gains default to typical soft-decision Viterbi figures (K=7).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PhyError
from ..units import db_to_linear

__all__ = ["ConvolutionalCode", "UNCODED", "RATE_3_4", "RATE_1_2", "RATE_0_45", "RATE_1_3"]


@dataclass(frozen=True)
class ConvolutionalCode:
    """A convolutional FEC abstraction.

    Attributes
    ----------
    name:
        Display name (e.g. ``"conv r=1/2"``).
    rate:
        Code rate r in (0, 1]; information bits per coded bit.
    gain_db:
        Coding gain in dB applied to the effective SNR seen by the
        modulation's BER curve.
    """

    name: str
    rate: float
    gain_db: float

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise PhyError(f"code rate must be in (0, 1], got {self.rate}")
        if self.gain_db < 0.0:
            raise PhyError("coding gain must be >= 0 dB")

    @property
    def expansion(self) -> float:
        """Coded bits per information bit (1/rate)."""
        return 1.0 / self.rate

    def coded_bits(self, info_bits: int) -> int:
        """Frame length after encoding ``info_bits`` (ceiling)."""
        if info_bits < 0:
            raise PhyError("info bits must be >= 0")
        return int(-(-info_bits * self.expansion // 1))  # ceil without math import

    def effective_snr_linear(self, raw_snr_linear: float) -> float:
        """SNR presented to the BER curve after coding gain."""
        return raw_snr_linear * db_to_linear(self.gain_db)


#: Codes used by the default 4-mode ABICM table (gains: typical K=7
#: soft-decision Viterbi at BER ~1e-3..1e-5).
UNCODED = ConvolutionalCode("uncoded", 1.0, 0.0)
RATE_3_4 = ConvolutionalCode("conv r=3/4", 0.75, 3.5)
RATE_1_2 = ConvolutionalCode("conv r=1/2", 0.5, 5.0)
RATE_0_45 = ConvolutionalCode("conv r=0.45", 0.45, 5.2)
RATE_1_3 = ConvolutionalCode("conv r=1/3", 1.0 / 3.0, 6.0)
