"""Modulation schemes and their AWGN bit-error-rate curves.

The ABICM physical layer (§II-B) picks "a high-order modulation (e.g.
16-QAM)" on good channels and "a lower order modulation (e.g. BPSK)" on bad
ones.  This module provides the standard erfc-based BER expressions used to
derive mode switching thresholds and packet-error rates:

* BPSK / QPSK (Gray-coded): ``BER = Q(sqrt(2·γ_b))``
* Square M-QAM (Gray, nearest-neighbour approx):
  ``BER ≈ 4/k·(1−1/√M)·Q(sqrt(3·k·γ_b/(M−1)))`` with k = log2 M.

γ_b is SNR **per bit**; conversions from per-symbol SNR are handled by the
callers (`repro.phy.abicm`), which work at fixed symbol rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import erfc, erfcinv

from ..errors import PhyError

__all__ = ["Modulation", "BPSK", "QPSK", "QAM16", "QAM64", "by_name", "qfunc", "qfunc_inv"]


def qfunc(x: float) -> float:
    """Gaussian tail function Q(x) = 0.5·erfc(x/√2)."""
    return 0.5 * float(erfc(x / math.sqrt(2.0)))


def qfunc_inv(p: float) -> float:
    """Inverse of :func:`qfunc` for p in (0, 1)."""
    if not 0.0 < p < 1.0:
        raise PhyError(f"Q^-1 needs p in (0,1), got {p}")
    return math.sqrt(2.0) * float(erfcinv(2.0 * p))


@dataclass(frozen=True)
class Modulation:
    """A memoryless modulation with a Gray-coded BER model.

    Attributes
    ----------
    name:
        Display name.
    bits_per_symbol:
        k = log2(M).
    """

    name: str
    bits_per_symbol: int

    def ber(self, snr_per_bit_linear: float) -> float:
        """Bit error probability at the given per-bit SNR (linear)."""
        if snr_per_bit_linear < 0:
            raise PhyError("SNR must be >= 0")
        k = self.bits_per_symbol
        if k <= 2:
            # BPSK and Gray QPSK share the per-bit BER curve.
            return qfunc(math.sqrt(2.0 * snr_per_bit_linear))
        m = 2 ** k
        coeff = (4.0 / k) * (1.0 - 1.0 / math.sqrt(m))
        arg = math.sqrt(3.0 * k * snr_per_bit_linear / (m - 1.0))
        return min(0.5, coeff * qfunc(arg))

    def required_snr_per_bit(self, target_ber: float) -> float:
        """Per-bit SNR (linear) achieving ``target_ber`` (inverse of :meth:`ber`)."""
        if not 0.0 < target_ber < 0.5:
            raise PhyError(f"target BER must be in (0, 0.5), got {target_ber}")
        k = self.bits_per_symbol
        if k <= 2:
            return qfunc_inv(target_ber) ** 2 / 2.0
        m = 2 ** k
        coeff = (4.0 / k) * (1.0 - 1.0 / math.sqrt(m))
        q_target = target_ber / coeff
        if q_target >= 0.5:
            return 0.0
        return qfunc_inv(q_target) ** 2 * (m - 1.0) / (3.0 * k)


#: The constellations used by the 4-mode ABICM configuration.
BPSK = Modulation("BPSK", 1)
QPSK = Modulation("QPSK", 2)
QAM16 = Modulation("16-QAM", 4)
QAM64 = Modulation("64-QAM", 6)

_REGISTRY = {m.name: m for m in (BPSK, QPSK, QAM16, QAM64)}


def by_name(name: str) -> Modulation:
    """Look up a modulation by display name (e.g. ``"16-QAM"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PhyError(
            f"unknown modulation {name!r}; have {sorted(_REGISTRY)}"
        ) from None
