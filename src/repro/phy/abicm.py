"""The 4-mode ABICM adaptive physical layer (paper §II-B, §III-C).

"In our study, we use a 4-mode ABICM configuration and, thus, there are
four distinct possible throughput levels: 2 Mbps, 1 Mbps, 450 kbps, and
250 kbps, respectively (after adaptive channel coding and modulation)."

Mode composition (symbol rate fixed at 500 ksym/s so the paper's
throughputs come out exactly):

====  ==========  ============  ==========
mode  throughput  modulation    FEC
====  ==========  ============  ==========
 4    2 Mbps      16-QAM        uncoded
 3    1 Mbps      QPSK          uncoded
 2    450 kbps    QPSK          conv r=0.45
 1    250 kbps    BPSK          conv r=1/2
====  ==========  ============  ==========

Switching thresholds are **derived from the BER model** so that, at the
threshold, the post-decoding bit-error rate equals ``PhyConfig.target_ber``
(default 1e-5 ⇒ ≈2 % packet-error rate for 2 kbit packets right at the
threshold; PER falls steeply above it).  Explicit thresholds can be pinned
via ``PhyConfig.mode_thresholds_db`` for ablations.

The *transmitter-side* rule (burst-by-burst adaptation): given measured CSI
γ, use the highest mode whose threshold is ≤ γ; below the lowest threshold
the link is in outage — CAEM waits, pure LEACH transmits anyway in mode 1
and eats the resulting packet-error rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..config import PhyConfig
from ..errors import PhyError
from ..units import db_to_linear, linear_to_db
from .coding import RATE_0_45, RATE_1_2, UNCODED, ConvolutionalCode
from .modulation import BPSK, QAM16, QPSK, Modulation

__all__ = ["AbicmMode", "AbicmTable", "solve_threshold_db", "DEFAULT_SYMBOL_RATE"]

#: Symbol rate shared by all modes (makes the paper's rates exact).
DEFAULT_SYMBOL_RATE = 500e3

#: Default (modulation, code) per ascending throughput.
_DEFAULT_LADDER: Tuple[Tuple[Modulation, ConvolutionalCode], ...] = (
    (BPSK, RATE_1_2),
    (QPSK, RATE_0_45),
    (QPSK, UNCODED),
    (QAM16, UNCODED),
)


@dataclass(frozen=True)
class AbicmMode:
    """One operating point of the adaptive PHY."""

    index: int  # 1-based, ascending throughput
    throughput_bps: float
    modulation: Modulation
    code: ConvolutionalCode
    threshold_db: float  # minimum channel SNR to select this mode

    def snr_per_bit_linear(self, channel_snr_db: float) -> float:
        """Per-information-bit SNR (with coding gain) from channel SNR.

        At fixed symbol rate, energy per symbol splits over
        ``bits_per_symbol·rate`` information bits; the code's gain then
        shifts the effective SNR seen by the BER curve.
        """
        gamma_s = db_to_linear(channel_snr_db)
        per_bit = gamma_s / (self.modulation.bits_per_symbol * self.code.rate)
        return self.code.effective_snr_linear(per_bit)

    def ber(self, channel_snr_db: float) -> float:
        """Post-decoding bit error rate at the given channel SNR."""
        return self.modulation.ber(self.snr_per_bit_linear(channel_snr_db))

    def packet_error_rate(self, channel_snr_db: float, bits: int) -> float:
        """PER for a ``bits``-long packet (independent-bit abstraction)."""
        if bits <= 0:
            raise PhyError("packet bits must be > 0")
        p = self.ber(channel_snr_db)
        if p <= 0.0:
            return 0.0
        if p >= 0.5:
            return 1.0
        # log1p formulation is numerically stable for tiny p and large bits.
        import math

        return -math.expm1(bits * math.log1p(-p))

    def airtime_s(self, bits: int) -> float:
        """Radio on-time to move ``bits`` information bits in this mode."""
        if bits < 0:
            raise PhyError("bits must be >= 0")
        return bits / self.throughput_bps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AbicmMode({self.index}: {self.throughput_bps/1e3:.0f} kbps, "
            f"{self.modulation.name}+{self.code.name}, "
            f">= {self.threshold_db:.1f} dB)"
        )


def solve_threshold_db(
    modulation: Modulation, code: ConvolutionalCode, target_ber: float
) -> float:
    """Channel SNR (dB) at which this (modulation, code) hits ``target_ber``."""
    per_bit_needed = modulation.required_snr_per_bit(target_ber)
    raw_per_bit = per_bit_needed / db_to_linear(code.gain_db)
    gamma_s = raw_per_bit * modulation.bits_per_symbol * code.rate
    return linear_to_db(gamma_s)


class AbicmTable:
    """The ordered set of ABICM modes plus the selection staircase."""

    def __init__(self, modes: Sequence[AbicmMode]) -> None:
        if not modes:
            raise PhyError("need at least one ABICM mode")
        ordered = sorted(modes, key=lambda m: m.throughput_bps)
        thresholds = [m.threshold_db for m in ordered]
        if thresholds != sorted(thresholds):
            raise PhyError(
                "mode thresholds must increase with throughput; got "
                f"{thresholds} — check coding gains"
            )
        if len({m.index for m in ordered}) != len(ordered):
            raise PhyError("mode indices must be unique")
        self.modes: Tuple[AbicmMode, ...] = tuple(ordered)
        self._thresholds = tuple(thresholds)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_config(cls, cfg: PhyConfig) -> "AbicmTable":
        """Build the table from config, solving thresholds if not pinned."""
        n = len(cfg.rates_bps)
        if n > len(_DEFAULT_LADDER):
            raise PhyError(
                f"default modulation ladder supports up to {len(_DEFAULT_LADDER)} "
                f"modes, got {n} rates"
            )
        ladder = _DEFAULT_LADDER[:n]
        modes = []
        for i, (rate_bps, (modulation, code)) in enumerate(zip(cfg.rates_bps, ladder)):
            if cfg.mode_thresholds_db is not None:
                threshold = cfg.mode_thresholds_db[i]
            else:
                threshold = solve_threshold_db(modulation, code, cfg.target_ber)
            modes.append(
                AbicmMode(
                    index=i + 1,
                    throughput_bps=rate_bps,
                    modulation=modulation,
                    code=code,
                    threshold_db=threshold,
                )
            )
        return cls(modes)

    # -- selection ---------------------------------------------------------------

    @property
    def lowest(self) -> AbicmMode:
        """The most robust mode (mode 1)."""
        return self.modes[0]

    @property
    def highest(self) -> AbicmMode:
        """The fastest mode (mode 4 — the 2 Mbps energy-saving mode)."""
        return self.modes[-1]

    @property
    def n_modes(self) -> int:
        """Number of modes (4 in the paper)."""
        return len(self.modes)

    def mode_for_snr(self, snr_db: float) -> Optional[AbicmMode]:
        """Highest mode whose threshold is ≤ ``snr_db``; None = outage."""
        chosen: Optional[AbicmMode] = None
        for mode, threshold in zip(self.modes, self._thresholds):
            if snr_db >= threshold:
                chosen = mode
            else:
                break
        return chosen

    def mode_by_index(self, index: int) -> AbicmMode:
        """Look up a mode by its 1-based index."""
        for mode in self.modes:
            if mode.index == index:
                return mode
        raise PhyError(f"no ABICM mode with index {index}")

    def threshold_for_class(self, klass: int) -> float:
        """SNR threshold of transmission-threshold class ``klass`` (0-based).

        Class k corresponds to "transmit only if the channel supports mode
        k+1 or better" — the quantity Scheme 1 moves up and down.
        """
        if not 0 <= klass < len(self._thresholds):
            raise PhyError(f"threshold class {klass} out of range")
        return self._thresholds[klass]

    def __iter__(self):
        return iter(self.modes)

    def __len__(self) -> int:
        return len(self.modes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{m.throughput_bps/1e3:.0f}k@{m.threshold_db:.1f}dB"
                          for m in self.modes)
        return f"AbicmTable({inner})"
