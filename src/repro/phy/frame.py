"""Frames and bursts: what actually goes on the air.

A *burst* is one channel access: a PHY preamble/header plus 3–8 data
packets (§IV: "the minimum number of packets sent for one transmission is
3 ... the maximal number of packets sent per transmission is fixed at 8").
Each packet is checked independently at the cluster head (per-packet CRC),
so one bad packet does not void the burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import PhyError
from ..traffic.packet import Packet
from .abicm import AbicmMode

__all__ = ["BurstPlan", "BurstResult", "plan_burst", "evaluate_burst"]


@dataclass(frozen=True)
class BurstPlan:
    """A burst ready for the air: packets, mode, and precomputed airtime."""

    packets: Tuple[Packet, ...]
    mode: AbicmMode
    overhead_bits: int
    payload_bits: int
    airtime_s: float

    @property
    def n_packets(self) -> int:
        """Number of data packets in the burst."""
        return len(self.packets)

    @property
    def total_bits(self) -> int:
        """Information bits incl. the per-burst overhead."""
        return self.payload_bits + self.overhead_bits


@dataclass
class BurstResult:
    """Outcome of a burst at the receiver."""

    delivered: List[Packet] = field(default_factory=list)
    corrupted: List[Packet] = field(default_factory=list)

    @property
    def all_delivered(self) -> bool:
        """True iff every packet survived."""
        return not self.corrupted


def plan_burst(
    packets: List[Packet],
    mode: AbicmMode,
    packet_length_bits: int,
    overhead_bits: int,
) -> BurstPlan:
    """Assemble a burst: airtime covers payload + overhead at mode rate."""
    if not packets:
        raise PhyError("a burst needs at least one packet")
    payload = packet_length_bits * len(packets)
    airtime = mode.airtime_s(payload + overhead_bits)
    return BurstPlan(
        packets=tuple(packets),
        mode=mode,
        overhead_bits=overhead_bits,
        payload_bits=payload,
        airtime_s=airtime,
    )


def evaluate_burst(
    plan: BurstPlan,
    snr_db: float,
    packet_length_bits: int,
    rng: np.random.Generator,
) -> BurstResult:
    """Decide per-packet success at the receiver.

    The channel gain is stationary over the burst (paper assumption 3), so
    every packet sees the same SNR; successes are still independent
    Bernoulli draws because bit noise is independent across packets.
    """
    per = plan.mode.packet_error_rate(snr_db, packet_length_bits)
    result = BurstResult()
    if per <= 0.0:
        result.delivered.extend(plan.packets)
        return result
    draws = rng.random(len(plan.packets))
    for packet, u in zip(plan.packets, draws):
        if u < per:
            result.corrupted.append(packet)
        else:
            result.delivered.append(packet)
    return result
