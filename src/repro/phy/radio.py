"""Radio state machines with energy integration.

"A sensor node has two radio sets: tone radio and data radio, working at
different frequencies.  Both radios should be off to save energy if the
sensor has no packet to transmit."  (§III-B)

:class:`DataRadio` and :class:`ToneRadio` wrap an
:class:`~repro.energy.meter.EnergyMeter`, translating state residency into
per-cause charges.  The data radio enforces the sleep→STARTUP→active
sequence with its ``startup_time_s`` cost; protocol code awaits the
``ready`` moment via a scheduled callback.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..energy.meter import ContinuousDraw, EnergyMeter
from ..errors import MacError
from ..sim import Simulator

__all__ = ["DataRadioState", "ToneRadioState", "DataRadio", "ToneRadio"]


class DataRadioState(enum.Enum):
    """Data radio operating states."""

    SLEEP = "sleep"
    STARTUP = "startup"
    TX = "tx"
    RX = "rx"
    IDLE = "idle"  # cluster-head: powered, listening for a burst


class ToneRadioState(enum.Enum):
    """Tone radio operating states."""

    OFF = "off"
    RX = "rx"  # sensor monitoring the tone channel
    TX = "tx"  # cluster head emitting pulses


#: Energy-cause per state.  The data radio draws Table II's 3.5 mW even in
#: SLEEP (that row is "Sleep Power for Data Channel"); the tone radio's OFF
#: state draws nothing.
_DATA_CAUSE = {
    DataRadioState.SLEEP: "sleep",
    DataRadioState.STARTUP: "startup",
    DataRadioState.TX: "data_tx",
    DataRadioState.RX: "data_rx",
    DataRadioState.IDLE: "ch_idle",
}
_TONE_CAUSE = {
    ToneRadioState.RX: "tone_rx",
    ToneRadioState.TX: "tone_tx",
}


class _EnergyStateMachine:
    """Shared mechanics: each state holds an open continuous draw.

    State transitions are the single hottest energy path (hundreds per
    node per second), so the per-state ``(cause, power)`` pair is priced
    once at construction and every ``_enter`` goes through the meter's
    allocation-free :meth:`~repro.energy.meter.EnergyMeter.open_draw_known`.
    """

    def __init__(
        self, sim: Simulator, meter: EnergyMeter, initial, cause_map,
        scale_map=None,
    ) -> None:
        self.sim = sim
        self.meter = meter
        self._cause_map = cause_map
        self._scale_map = scale_map or {}
        #: state -> (cause, power_w·scale) | None, priced up front.
        self._draw_info = {}
        for state, cause in cause_map.items():
            self._draw_info[state] = (
                cause,
                meter.model.power_w(cause) * self._scale_map.get(state, 1.0),
            )
        self._state = initial
        self._draw: Optional[ContinuousDraw] = None
        self.transitions = 0
        info = self._draw_info.get(initial)
        if info is not None:
            self._draw = meter.open_draw_known(info[0], info[1])

    @property
    def state(self):
        """Current state."""
        return self._state

    def _enter(self, state) -> None:
        draw = self._draw
        if draw is not None:
            draw.close(self.sim._now)
            self._draw = None
        self._state = state
        self.transitions += 1
        info = self._draw_info.get(state)
        if info is not None:
            self._draw = self.meter.open_draw_known(info[0], info[1])

    def settle(self) -> None:
        """Checkpoint the open draw (exact levels for metric snapshots)."""
        if self._draw is not None:
            self._draw.checkpoint(self.sim.now)


class DataRadio(_EnergyStateMachine):
    """The high-power data radio with startup latency.

    ``wake(on_ready)`` moves SLEEP→STARTUP, charges the lock time, and
    calls ``on_ready()`` after ``startup_time_s``; the callback typically
    starts the transmission.  ``sleep()`` is legal from any state and is
    how a sensor aborts/completes its involvement with the data channel.
    """

    def __init__(self, sim: Simulator, meter: EnergyMeter, startup_time_s: float) -> None:
        super().__init__(sim, meter, DataRadioState.SLEEP, _DATA_CAUSE)
        if startup_time_s < 0:
            raise MacError("startup time must be >= 0")
        self.startup_time_s = startup_time_s
        self._wake_handle = None

    def wake(self, on_ready: Callable[[], None]) -> None:
        """Begin the sleep→active transition."""
        if self._state is not DataRadioState.SLEEP:
            raise MacError(f"wake() from {self._state}, expected SLEEP")
        self._enter(DataRadioState.STARTUP)
        self._wake_handle = self.sim.call_in(self.startup_time_s, self._on_awake, on_ready)

    def _on_awake(self, on_ready: Callable[[], None]) -> None:
        self._wake_handle = None
        if self._state is DataRadioState.STARTUP:
            self._enter(DataRadioState.IDLE)
            on_ready()

    def start_tx(self) -> None:
        """Enter TX (radio must be awake: IDLE or RX)."""
        if self._state not in (DataRadioState.IDLE, DataRadioState.RX):
            raise MacError(f"start_tx() from {self._state}")
        self._enter(DataRadioState.TX)

    def start_rx(self) -> None:
        """Enter RX (cluster-head side; radio must be awake)."""
        if self._state not in (DataRadioState.IDLE, DataRadioState.TX):
            raise MacError(f"start_rx() from {self._state}")
        self._enter(DataRadioState.RX)

    def idle(self) -> None:
        """Return to powered-idle (cluster head between bursts)."""
        if self._state in (DataRadioState.SLEEP, DataRadioState.STARTUP):
            raise MacError(f"idle() from {self._state}")
        self._enter(DataRadioState.IDLE)

    def sleep(self) -> None:
        """Power the data radio down (cancels a pending wake)."""
        if self._wake_handle is not None:
            self._wake_handle.cancel()
            self._wake_handle = None
        if self._state is not DataRadioState.SLEEP:
            self._enter(DataRadioState.SLEEP)

    @property
    def is_awake(self) -> bool:
        """True in IDLE/TX/RX."""
        return self._state in (DataRadioState.IDLE, DataRadioState.TX, DataRadioState.RX)


class ToneRadio(_EnergyStateMachine):
    """The low-power tone radio (no startup latency; §III-A design goal).

    ``monitor_duty`` models synchronized duty-cycled listening: once a
    sensor has locked on to the pulse schedule it only powers the tone
    receiver in windows around the expected pulse times, so the effective
    monitoring power is ``tone_rx · monitor_duty`` (DESIGN.md §2).
    ``monitor_duty=1.0`` recovers continuous listening.
    """

    def __init__(
        self, sim: Simulator, meter: EnergyMeter, monitor_duty: float = 1.0
    ) -> None:
        if not 0.0 < monitor_duty <= 1.0:
            raise MacError("monitor duty must be in (0, 1]")
        self.monitor_duty = monitor_duty
        super().__init__(
            sim, meter, ToneRadioState.OFF, _TONE_CAUSE,
            scale_map={ToneRadioState.RX: monitor_duty},
        )

    def monitor(self) -> None:
        """Sensor side: start listening to the tone channel."""
        if self._state is not ToneRadioState.RX:
            self._enter(ToneRadioState.RX)

    def transmit(self) -> None:
        """Cluster-head side: radio keyed for pulse broadcast."""
        if self._state is not ToneRadioState.TX:
            self._enter(ToneRadioState.TX)

    def off(self) -> None:
        """Power down."""
        if self._state is not ToneRadioState.OFF:
            self._enter(ToneRadioState.OFF)

    @property
    def is_on(self) -> bool:
        """True unless OFF."""
        return self._state is not ToneRadioState.OFF
