"""Command-line entry point: regenerate any paper artefact.

Usage::

    repro-caem table1
    repro-caem fig8  --preset quick --seeds 1 2
    repro-caem fig10 --preset full  --out results/
    repro-caem all   --preset quick

(or ``python -m repro ...``).  Every command prints the paper-style table
and optionally writes CSV next to it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .experiments import (
    ext_performance,
    fig8_remaining_energy,
    fig9_nodes_alive,
    fig10_lifetime_vs_load,
    fig11_energy_per_packet,
    fig12_queue_stddev,
    table1_tone_spec,
    table2_parameters,
)

__all__ = ["main", "build_parser"]

_STATIC = {
    "table1": lambda args: table1_tone_spec(),
    "table2": lambda args: table2_parameters(),
}

_DYNAMIC: Dict[str, Callable] = {
    "fig8": lambda args: fig8_remaining_energy(args.preset, args.seeds),
    "fig9": lambda args: fig9_nodes_alive(args.preset, args.seeds),
    "fig10": lambda args: fig10_lifetime_vs_load(args.preset, args.seeds, args.loads),
    "fig11": lambda args: fig11_energy_per_packet(args.preset, args.seeds, args.loads),
    "fig12": lambda args: fig12_queue_stddev(args.preset, args.seeds, args.loads),
    "ext-perf": lambda args: ext_performance(args.preset, args.seeds, args.loads),
}

_ALL = list(_STATIC) + list(_DYNAMIC)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-caem",
        description="Regenerate the CAEM paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=_ALL + ["all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=("full", "quick", "smoke"),
        help="scale tier (full = paper's Table II, quick = CI scale)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[1],
        help="replication seeds",
    )
    parser.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=[5.0, 10.0, 15.0, 20.0, 25.0, 30.0],
        help="traffic loads (packets/s per node) for the sweep figures",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to also write <figure>.csv into",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI body; returns a process exit code."""
    args = build_parser().parse_args(argv)
    names: List[str] = _ALL if args.experiment == "all" else [args.experiment]
    for name in names:
        fn = _STATIC.get(name) or _DYNAMIC[name]
        figure = fn(args)
        sys.stdout.write(figure.render())
        sys.stdout.write("\n")
        if args.out:
            path = figure.save_csv(args.out)
            sys.stdout.write(f"wrote {path}\n\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
