"""Command-line entry point: regenerate any paper artefact.

The command set is driven by the experiment registry
(:mod:`repro.api.registry`) — every ``@experiment``-decorated figure,
table, or extension study shows up automatically::

    repro-caem list
    repro-caem run table1
    repro-caem run fig8  --preset quick --seeds 1 2
    repro-caem run fig10 --preset full --jobs 8 --out results/
    repro-caem run fig11 --store runs/fig11.jsonl      # persist raw runs
    repro-caem run fig11 --from runs/fig11.jsonl       # re-render, no sim
    repro-caem run all   --preset quick
    repro-caem run fig8  --profile fig8.pstats         # find the hot spots
    repro-caem bench --tier quick --fail-threshold 2.0 # perf regression gate

The service tier (see :mod:`repro.service`) adds the result database,
the content-addressed run cache, and the campaign server::

    repro-caem run fig10 --cache results.sqlite   # repeat = pure reads
    repro-caem migrate runs/fig11.jsonl results.sqlite
    repro-caem query results.sqlite --experiment fig10 --where 'delivery_rate>0.9'
    repro-caem query results.sqlite --agg mean --group-by protocol,load
    repro-caem gc results.sqlite --keep-latest 1     # evict superseded rows
    repro-caem serve --db results.sqlite --port 8351

The scale tier's vector backend (``repro.vector``) runs the same
experiments on the structure-of-arrays engine::

    repro-caem run ext-scale --backend vector --preset quick

``--jobs N`` fans the experiment's scenario grid out over a process pool
(tables are identical at any parallelism).  The pre-registry spelling
``repro-caem fig8 ...`` still works as an alias for ``run fig8 ...``.
(Also available as ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional, Sequence

from .api import get_experiment, list_experiments, use_run_cache
from .api import bench as bench_mod
from .errors import ExperimentError, ReproError

__all__ = ["main", "build_parser"]


def _known_names() -> List[str]:
    return [spec.name for spec in list_experiments()]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-caem",
        description="Regenerate the CAEM paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser(
        "list", help="enumerate the registered experiments"
    )
    list_p.add_argument(
        "--kind",
        default=None,
        choices=("figure", "table", "extension"),
        help="only show experiments of this kind",
    )

    run_p = sub.add_parser(
        "run", help="run one registered experiment (or 'all')"
    )
    run_p.add_argument(
        "experiment",
        choices=_known_names() + ["all"],
        help="which artefact to regenerate",
    )
    run_p.add_argument(
        "--preset",
        default="quick",
        choices=("full", "quick", "smoke"),
        help="scale tier (full = paper's Table II, quick = CI scale)",
    )
    run_p.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[1],
        help="replication seeds",
    )
    run_p.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=[5.0, 10.0, 15.0, 20.0, 25.0, 30.0],
        help="traffic loads (packets/s per node) for the sweep figures",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel simulation processes (results identical to --jobs 1)",
    )
    run_p.add_argument(
        "--executor",
        default=None,
        metavar="SPEC",
        help="execution backend as one spec: 'serial', 'pool:4', "
        "'supervised:jobs=2,timeout=30,retries=1', or "
        "'distributed:bind=127.0.0.1:8400,local=2' (self-hosts a "
        "coordinator; remote machines join with 'repro-caem worker "
        "--connect URL'); replaces --jobs, results identical either way",
    )
    run_p.add_argument(
        "--backend",
        default=None,
        choices=("event", "vector", "auto"),
        help="simulation engine, for experiments that support it "
        "(ext-scale): event = the per-packet reference kernel, vector = "
        "the population-scale array engine (see repro.vector), auto = "
        "pick vector for large populations when the config qualifies",
    )
    run_p.add_argument(
        "--out",
        default=None,
        help="directory to also write <figure>.csv into",
    )
    run_p.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="append every raw RunResult to this .jsonl/.csv/.sqlite store",
    )
    run_p.add_argument(
        "--from",
        dest="from_store",
        default=None,
        metavar="PATH",
        help="re-render from a previously written store (.jsonl or a "
        ".sqlite result database) instead of simulating",
    )
    run_p.add_argument(
        "--cache",
        default=None,
        metavar="DB",
        help="content-addressed run cache: serve grid cells already in "
        "this .sqlite result database, simulate and store only the "
        "misses (a repeated run is 100%% reads; cache stats go to stderr)",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted campaign from the --store/--cache "
        "result database: cells already stored are served as-is, only "
        "the missing remainder is simulated (output byte-identical to "
        "an uninterrupted run); progress is checkpointed in a durable "
        "manifest as cells complete",
    )
    run_p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="S",
        help="fault-tolerant execution: wall-clock watchdog per grid "
        "cell — a worker exceeding S seconds is killed and retried "
        "with capped exponential backoff",
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="fault-tolerant execution: retry a crashed/hung/failed "
        "cell up to N times beyond its first attempt before "
        "quarantining it (default 2 when supervision is active)",
    )
    run_p.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="run under cProfile; dump pstats data to PATH and print the "
        "hottest functions to stderr (stdout stays byte-identical)",
    )
    run_p.add_argument(
        "--profile-rounds",
        default=None,
        metavar="DIR",
        help="write per-round phase timelines (JSON, one file per "
        "vector-backend cell) into DIR, for experiments that support it "
        "(ext-scale): names the dominant engine phases — membership "
        "assignment, CSMA mirrors, channel advance — round by round "
        "(stdout stays byte-identical; event-backend cells write nothing)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="run the perf-regression benchmark suite (serial)",
    )
    bench_p.add_argument(
        "--tier",
        default="full",
        choices=("quick", "full"),
        help="quick = kernel + 100-node macro run (CI); full adds the "
        "figure-scale bench",
    )
    bench_p.add_argument(
        "--baseline",
        default=str(bench_mod.DEFAULT_BASELINE),
        metavar="PATH",
        help="committed pytest-benchmark JSON to compare against",
    )
    bench_p.add_argument(
        "--json",
        dest="trajectory",
        default=str(bench_mod.DEFAULT_TRAJECTORY),
        metavar="PATH",
        help="trajectory file to append this run's entry to "
        "('-' disables persistence)",
    )
    bench_p.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if any bench is slower than X times its baseline "
        "(e.g. 2.0 for the CI gate)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the campaign server (JSON HTTP API over a result DB)",
    )
    serve_p.add_argument(
        "--db",
        default="results.sqlite",
        metavar="PATH",
        help="SQLite result database to serve (created if absent)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8351,
        help="TCP port (0 picks a free one and prints it)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="concurrent campaign jobs (worker threads)",
    )
    serve_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="default simulation processes per job (the run --jobs pool)",
    )
    serve_p.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )
    serve_p.add_argument(
        "--distributed",
        action="store_true",
        help="attach a lease board so jobs submitted with "
        "{\"executor\": \"distributed\"} fan out to remote "
        "'repro-caem worker --connect' processes via /work/* endpoints",
    )
    serve_p.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="distributed lease expiry: a worker that misses heartbeats "
        "for S seconds forfeits its cell back to the queue (default 30)",
    )

    worker_p = sub.add_parser(
        "worker",
        help="serve a distributed coordinator: lease cells, simulate, "
        "report results (see run --executor distributed / serve "
        "--distributed)",
    )
    worker_p.add_argument(
        "--connect",
        required=True,
        metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8400",
    )
    worker_p.add_argument(
        "--id",
        dest="worker_id",
        default=None,
        help="worker name shown in /work/status (default: host-pid)",
    )
    worker_p.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="S",
        help="idle poll interval when no work is pending (default 0.2)",
    )
    worker_p.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="S",
        help="exit after S seconds with no work (default: serve forever)",
    )
    worker_p.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N cells (tests/CI)",
    )
    worker_p.add_argument(
        "--quiet", action="store_true", help="suppress per-cell logging"
    )

    query_p = sub.add_parser(
        "query",
        help="filtered reads from a result store, no server needed",
    )
    query_p.add_argument(
        "store", metavar="STORE",
        help="result store to read (.sqlite/.db/.jsonl/.csv)",
    )
    query_p.add_argument("--experiment", default=None)
    query_p.add_argument("--digest", default=None,
                         help="exact config digest (64 hex chars)")
    query_p.add_argument("--seed", type=int, default=None)
    query_p.add_argument("--protocol", default=None)
    query_p.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="PRED",
        help="metric predicate like 'delivery_rate>0.9' (repeatable; "
        "all must hold)",
    )
    query_p.add_argument(
        "--columns",
        nargs="+",
        default=None,
        metavar="FIELD",
        help="RunResult fields to print (default: a summary set)",
    )
    query_p.add_argument("--limit", type=int, default=None)
    query_p.add_argument(
        "--format",
        dest="out_format",
        default="table",
        choices=("table", "jsonl"),
        help="table = aligned text; jsonl = one full-fidelity row per line",
    )
    query_p.add_argument(
        "--agg",
        default=None,
        choices=("mean", "min", "max", "sum"),
        help="reduce the matching rows instead of listing them; computed "
        "in SQL for a .sqlite store (JSON payloads never decoded), in "
        "Python for flat files",
    )
    query_p.add_argument(
        "--group-by",
        default=None,
        metavar="KEYS",
        help="comma-separated group keys for --agg, e.g. 'protocol,load' "
        "(aliases: load=load_pps, nodes=n_nodes); default: one group",
    )

    gc_p = sub.add_parser(
        "gc",
        help="evict superseded rows from a result database and VACUUM",
    )
    gc_p.add_argument(
        "store", metavar="DB",
        help="SQLite result database (.sqlite/.sqlite3/.db)",
    )
    gc_p.add_argument(
        "--keep-latest",
        type=int,
        default=1,
        metavar="K",
        help="generations to keep per cell — a cell is (experiment, "
        "protocol, load, seed, horizon, config digest), the run-cache "
        "pairing key (default: 1)",
    )
    gc_p.add_argument(
        "--dry-run", action="store_true",
        help="report what would be deleted without writing",
    )

    migrate_p = sub.add_parser(
        "migrate",
        help="copy a result store between formats (jsonl/csv <-> sqlite)",
    )
    migrate_p.add_argument("src", metavar="SRC",
                           help="existing store (.jsonl/.csv/.sqlite/.db)")
    migrate_p.add_argument("dst", metavar="DST",
                           help="destination store, created/appended")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments(kind=args.kind)
    width = max(len(s.name) for s in specs) if specs else 4
    for spec in specs:
        sys.stdout.write(
            f"{spec.name:<{width}}  [{spec.kind}]  {spec.summary}\n"
        )
    sys.stdout.write(f"{len(specs)} experiments registered\n")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.profile:
        return _profiled(_cmd_run_body, args)
    return _cmd_run_body(args)


def _profiled(body, args: argparse.Namespace) -> int:
    """Run ``body(args)`` under cProfile; dump + summarise to stderr.

    The profile summary goes to stderr so stdout remains byte-identical
    to an unprofiled run (the store/figure diff workflows rely on that).
    """
    import cProfile
    import pstats

    # Fail fast on an unwritable dump path — discovering it in the
    # finally block would waste the whole (possibly minutes-long) run
    # and mask any exception the body itself raised.
    try:
        with open(args.profile, "wb"):
            pass
    except OSError as exc:
        raise ExperimentError(
            f"cannot write profile output {args.profile!r}: {exc}"
        ) from exc

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = body(args)
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        sys.stderr.write(
            f"profile data written to {args.profile} "
            f"(inspect with: python -m pstats {args.profile})\n"
        )
    return code


def _cmd_bench(args: argparse.Namespace) -> int:
    trajectory = None if args.trajectory == "-" else args.trajectory
    report = bench_mod.run_bench(
        tier=args.tier,
        baseline_path=args.baseline,
        trajectory_path=trajectory,
        fail_threshold=args.fail_threshold,
        progress=lambda line: sys.stderr.write(line + "\n"),
    )
    sys.stdout.write(report.render())
    if trajectory is not None:
        sys.stdout.write(f"appended trajectory entry to {trajectory}\n")
    return 0 if report.ok else 1


def _cmd_run_body(args: argparse.Namespace) -> int:
    from .service import RunCache, open_store

    names = (
        _known_names() if args.experiment == "all" else [args.experiment]
    )
    stored_runs = None
    if args.from_store:
        from_store = open_store(args.from_store)
        if from_store.format not in ("jsonl", "sqlite"):
            raise ExperimentError(
                "--from requires a .jsonl store or a .sqlite result "
                "database: CSV stores are scalar-only (time series "
                "dropped), so series figures would render empty"
            )
        if not from_store.path.exists():
            raise ExperimentError(f"no such result store: {from_store.path}")
        stored_runs = from_store.load()
    store = open_store(args.store) if args.store else None
    if (
        store is not None
        and args.from_store
        and store.path.resolve() == open_store(args.from_store).path.resolve()
    ):
        raise ExperimentError(
            f"refusing to append runs loaded from {store.path} back into "
            f"itself (--from and --store name the same file)"
        )
    cache = None
    cache_ctx = contextlib.nullcontext()
    if args.resume:
        if args.from_store:
            raise ExperimentError(
                "--resume and --from are mutually exclusive: --resume "
                "re-simulates the missing cells, --from never simulates"
            )
        if not (args.cache or args.store):
            raise ExperimentError(
                "--resume needs the result database to resume from: "
                "name it with --store (or --cache)"
            )
        resume_store = (
            open_store(args.cache) if args.cache else store
        )
        if resume_store.format not in ("jsonl", "sqlite"):
            raise ExperimentError(
                "--resume requires a .jsonl store or a .sqlite result "
                "database: CSV stores are scalar-only, so resumed cells "
                "would render differently from simulated ones"
            )
        # The resume target becomes the cache's database (hits served
        # from it, misses appended there); when it came from --store the
        # post-run bulk extend below must not also run — it would store
        # every row a second time.
        cache = RunCache(resume_store, manifest=True)
        if not args.cache:
            store = None
        cache_ctx = use_run_cache(cache)
    elif args.cache:
        if args.from_store:
            raise ExperimentError(
                "--cache and --from are mutually exclusive: --cache "
                "already reads stored cells and simulates only the misses"
            )
        cache = RunCache(open_store(args.cache))
        cache_ctx = use_run_cache(cache)
    supervise_ctx = contextlib.nullcontext()
    if args.executor is not None:
        from .api import ExecutorSpec, use_executor

        if args.jobs != 1:
            raise ExperimentError(
                "--executor and --jobs are mutually exclusive: say "
                "--executor pool:4 instead of --jobs 4"
            )
        executor_spec = ExecutorSpec.parse(args.executor)
        # The watchdog/retry flags fold into the spec rather than
        # installing a second (supervised) policy on top of it.
        if args.cell_timeout is not None:
            executor_spec = executor_spec.with_(cell_timeout_s=args.cell_timeout)
        if args.retries is not None:
            if args.retries < 0:
                raise ExperimentError("--retries must be >= 0")
            executor_spec = executor_spec.with_(retries=args.retries)
        supervise_ctx = use_executor(executor_spec)
    elif args.resume or args.cell_timeout is not None or args.retries is not None:
        from .api import SupervisorConfig, use_supervisor

        retries = 2 if args.retries is None else args.retries
        if retries < 0:
            raise ExperimentError("--retries must be >= 0")
        supervise_ctx = use_supervisor(SupervisorConfig(
            cell_timeout_s=args.cell_timeout,
            max_attempts=retries + 1,
        ))
    with cache_ctx, supervise_ctx:
        for name in names:
            spec = get_experiment(name)
            figure = spec.run(
                preset=args.preset,
                seeds=tuple(args.seeds),
                loads_pps=tuple(args.loads),
                jobs=args.jobs,
                backend=args.backend,
                profile_rounds=args.profile_rounds,
                runs=stored_runs,
            )
            sys.stdout.write(figure.render())
            sys.stdout.write("\n")
            if store is not None and figure.runs:
                store.extend(figure.runs)
                sys.stdout.write(
                    f"stored {len(figure.runs)} runs in {store.path}\n\n"
                )
            if args.out:
                path = figure.save_csv(args.out)
                sys.stdout.write(f"wrote {path}\n\n")
    if cache is not None:
        # Stats go to stderr so stdout stays byte-identical between the
        # cold and the fully cached pass (the CI diff relies on that).
        sys.stderr.write(cache.stats.describe() + "\n")
        if args.resume and cache.last_manifest is not None:
            sys.stderr.write(cache.last_manifest.describe() + "\n")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import build_server

    server = build_server(
        args.db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        sim_jobs=args.jobs,
        quiet=args.quiet,
        distributed=args.distributed,
        lease_timeout_s=args.lease_timeout,
    )
    host, port = server.server_address[:2]
    sys.stderr.write(
        f"campaign server on http://{host}:{port} (db={args.db}) — "
        f"POST /campaigns to submit, Ctrl-C to stop\n"
    )
    if args.distributed:
        sys.stderr.write(
            f"distributed lease board attached — workers join with: "
            f"repro-caem worker --connect http://{host}:{port}\n"
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        sys.stderr.write("shutting down\n")
    finally:
        server.close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json as json_mod

    from .experiments.report import render_table
    from .service import open_store, parse_predicate, query_runs
    from .service.query import DEFAULT_COLUMNS

    store = open_store(args.store)
    if not store.path.exists():
        raise ExperimentError(f"no such result store: {store.path}")
    if args.agg is not None:
        return _query_aggregate(args, store)
    if args.group_by is not None:
        raise ExperimentError(
            "--group-by needs --agg (e.g. --agg mean --group-by "
            "protocol,load)"
        )
    rows = query_runs(
        store,
        experiment=args.experiment,
        config_digest=args.digest,
        seed=args.seed,
        protocol=args.protocol,
        where=[parse_predicate(text) for text in args.where],
        limit=args.limit,
    )
    if args.out_format == "jsonl":
        for run in rows:
            sys.stdout.write(json_mod.dumps(run.to_dict()) + "\n")
        return 0
    columns = list(args.columns) if args.columns else list(DEFAULT_COLUMNS)
    table_rows = []
    for run in rows:
        summary = run.to_dict()
        try:
            table_rows.append(
                [summary[c][:12] if c == "config_digest" and summary[c]
                 else summary[c] for c in columns]
            )
        except KeyError as exc:
            raise ExperimentError(
                f"unknown column {exc.args[0]!r}; RunResult fields: "
                f"{', '.join(sorted(summary))}"
            ) from None
    sys.stdout.write(render_table(columns, table_rows))
    sys.stdout.write(f"{len(rows)} rows\n")
    return 0


def _query_aggregate(args: argparse.Namespace, store) -> int:
    import json as json_mod

    from .experiments.report import render_table
    from .service import aggregate_runs, parse_predicate
    from .service.query import DEFAULT_AGG_METRICS

    group_by = (
        [k.strip() for k in args.group_by.split(",") if k.strip()]
        if args.group_by else []
    )
    metrics = list(args.columns) if args.columns else list(DEFAULT_AGG_METRICS)
    groups = aggregate_runs(
        store,
        group_by,
        agg=args.agg,
        metrics=metrics,
        experiment=args.experiment,
        config_digest=args.digest,
        seed=args.seed,
        protocol=args.protocol,
        where=[parse_predicate(text) for text in args.where],
    )
    if args.limit is not None:
        groups = groups[:args.limit]
    if args.out_format == "jsonl":
        for record in groups:
            sys.stdout.write(json_mod.dumps(record) + "\n")
        return 0
    columns = list(groups[0]) if groups else group_by + ["n"] + metrics
    sys.stdout.write(
        render_table(columns, [[g[c] for c in columns] for g in groups])
    )
    sys.stdout.write(f"{len(groups)} groups ({args.agg})\n")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .exec.worker import run_worker

    sys.stderr.write(
        f"worker connecting to {args.connect} (Ctrl-C to stop)\n"
    )
    try:
        stats = run_worker(
            args.connect,
            worker_id=args.worker_id,
            poll_s=args.poll,
            idle_exit_s=args.idle_exit,
            max_cells=args.max_cells,
            quiet=args.quiet,
        )
    except KeyboardInterrupt:
        sys.stderr.write("worker interrupted\n")
        return 0
    sys.stderr.write(
        f"worker done: {stats.cells_done} cells completed, "
        f"{stats.cells_failed} failed\n"
    )
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    from .service import collect_garbage, describe_gc

    report = collect_garbage(
        args.store, keep_latest=args.keep_latest, dry_run=args.dry_run
    )
    sys.stdout.write(describe_gc(report) + "\n")
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from .service import open_store

    src = open_store(args.src)
    if not src.path.exists():
        raise ExperimentError(f"no such result store: {src.path}")
    dst = open_store(args.dst)
    if src.path.resolve() == dst.path.resolve():
        raise ExperimentError("SRC and DST name the same file")
    runs = src.load()
    dst.extend(runs)
    sys.stdout.write(
        f"migrated {len(runs)} runs: {src.path} ({src.format}) -> "
        f"{dst.path} ({dst.format})\n"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI body; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Pre-registry compatibility: "repro-caem fig8 ..." == "run fig8 ...".
    if argv and argv[0] not in (
        "run", "list", "bench", "serve", "worker", "query", "gc", "migrate",
        "-h", "--help"
    ):
        argv.insert(0, "run")
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "gc":
            return _cmd_gc(args)
        if args.command == "migrate":
            return _cmd_migrate(args)
        return _cmd_run(args)
    except ReproError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 1
    except BrokenPipeError:
        # Output piped into head/less that exited early — not an error.
        # Point stdout at devnull so the interpreter-exit flush of the
        # buffered remainder cannot raise again ("Exception ignored").
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
