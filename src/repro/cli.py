"""Command-line entry point: regenerate any paper artefact.

The command set is driven by the experiment registry
(:mod:`repro.api.registry`) — every ``@experiment``-decorated figure,
table, or extension study shows up automatically::

    repro-caem list
    repro-caem run table1
    repro-caem run fig8  --preset quick --seeds 1 2
    repro-caem run fig10 --preset full --jobs 8 --out results/
    repro-caem run fig11 --store runs/fig11.jsonl      # persist raw runs
    repro-caem run fig11 --from runs/fig11.jsonl       # re-render, no sim
    repro-caem run all   --preset quick
    repro-caem run fig8  --profile fig8.pstats         # find the hot spots
    repro-caem bench --tier quick --fail-threshold 2.0 # perf regression gate

``--jobs N`` fans the experiment's scenario grid out over a process pool
(tables are identical at any parallelism).  The pre-registry spelling
``repro-caem fig8 ...`` still works as an alias for ``run fig8 ...``.
(Also available as ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .api import ResultStore, get_experiment, list_experiments
from .api import bench as bench_mod
from .errors import ExperimentError, ReproError

__all__ = ["main", "build_parser"]


def _known_names() -> List[str]:
    return [spec.name for spec in list_experiments()]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-caem",
        description="Regenerate the CAEM paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser(
        "list", help="enumerate the registered experiments"
    )
    list_p.add_argument(
        "--kind",
        default=None,
        choices=("figure", "table", "extension"),
        help="only show experiments of this kind",
    )

    run_p = sub.add_parser(
        "run", help="run one registered experiment (or 'all')"
    )
    run_p.add_argument(
        "experiment",
        choices=_known_names() + ["all"],
        help="which artefact to regenerate",
    )
    run_p.add_argument(
        "--preset",
        default="quick",
        choices=("full", "quick", "smoke"),
        help="scale tier (full = paper's Table II, quick = CI scale)",
    )
    run_p.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[1],
        help="replication seeds",
    )
    run_p.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=[5.0, 10.0, 15.0, 20.0, 25.0, 30.0],
        help="traffic loads (packets/s per node) for the sweep figures",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel simulation processes (results identical to --jobs 1)",
    )
    run_p.add_argument(
        "--out",
        default=None,
        help="directory to also write <figure>.csv into",
    )
    run_p.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="append every raw RunResult to this .jsonl/.csv store",
    )
    run_p.add_argument(
        "--from",
        dest="from_store",
        default=None,
        metavar="PATH",
        help="re-render from a previously written store instead of simulating",
    )
    run_p.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="run under cProfile; dump pstats data to PATH and print the "
        "hottest functions to stderr (stdout stays byte-identical)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="run the perf-regression benchmark suite (serial)",
    )
    bench_p.add_argument(
        "--tier",
        default="full",
        choices=("quick", "full"),
        help="quick = kernel + 100-node macro run (CI); full adds the "
        "figure-scale bench",
    )
    bench_p.add_argument(
        "--baseline",
        default=str(bench_mod.DEFAULT_BASELINE),
        metavar="PATH",
        help="committed pytest-benchmark JSON to compare against",
    )
    bench_p.add_argument(
        "--json",
        dest="trajectory",
        default=str(bench_mod.DEFAULT_TRAJECTORY),
        metavar="PATH",
        help="trajectory file to append this run's entry to "
        "('-' disables persistence)",
    )
    bench_p.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if any bench is slower than X times its baseline "
        "(e.g. 2.0 for the CI gate)",
    )
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments(kind=args.kind)
    width = max(len(s.name) for s in specs) if specs else 4
    for spec in specs:
        sys.stdout.write(
            f"{spec.name:<{width}}  [{spec.kind}]  {spec.summary}\n"
        )
    sys.stdout.write(f"{len(specs)} experiments registered\n")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.profile:
        return _profiled(_cmd_run_body, args)
    return _cmd_run_body(args)


def _profiled(body, args: argparse.Namespace) -> int:
    """Run ``body(args)`` under cProfile; dump + summarise to stderr.

    The profile summary goes to stderr so stdout remains byte-identical
    to an unprofiled run (the store/figure diff workflows rely on that).
    """
    import cProfile
    import pstats

    # Fail fast on an unwritable dump path — discovering it in the
    # finally block would waste the whole (possibly minutes-long) run
    # and mask any exception the body itself raised.
    try:
        with open(args.profile, "wb"):
            pass
    except OSError as exc:
        raise ExperimentError(
            f"cannot write profile output {args.profile!r}: {exc}"
        ) from exc

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = body(args)
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        sys.stderr.write(
            f"profile data written to {args.profile} "
            f"(inspect with: python -m pstats {args.profile})\n"
        )
    return code


def _cmd_bench(args: argparse.Namespace) -> int:
    trajectory = None if args.trajectory == "-" else args.trajectory
    report = bench_mod.run_bench(
        tier=args.tier,
        baseline_path=args.baseline,
        trajectory_path=trajectory,
        fail_threshold=args.fail_threshold,
        progress=lambda line: sys.stderr.write(line + "\n"),
    )
    sys.stdout.write(report.render())
    if trajectory is not None:
        sys.stdout.write(f"appended trajectory entry to {trajectory}\n")
    return 0 if report.ok else 1


def _cmd_run_body(args: argparse.Namespace) -> int:
    names = (
        _known_names() if args.experiment == "all" else [args.experiment]
    )
    stored_runs = None
    if args.from_store:
        from_store = ResultStore(args.from_store)
        if from_store.format != "jsonl":
            raise ExperimentError(
                "--from requires a .jsonl store: CSV stores are scalar-only "
                "(time series dropped), so series figures would render empty"
            )
        if not from_store.path.exists():
            raise ExperimentError(f"no such result store: {from_store.path}")
        stored_runs = from_store.load()
    store = ResultStore(args.store) if args.store else None
    if (
        store is not None
        and args.from_store
        and store.path.resolve() == ResultStore(args.from_store).path.resolve()
    ):
        raise ExperimentError(
            f"refusing to append runs loaded from {store.path} back into "
            f"itself (--from and --store name the same file)"
        )
    for name in names:
        spec = get_experiment(name)
        figure = spec.run(
            preset=args.preset,
            seeds=tuple(args.seeds),
            loads_pps=tuple(args.loads),
            jobs=args.jobs,
            runs=stored_runs,
        )
        sys.stdout.write(figure.render())
        sys.stdout.write("\n")
        if store is not None and figure.runs:
            store.extend(figure.runs)
            sys.stdout.write(
                f"stored {len(figure.runs)} runs in {store.path}\n\n"
            )
        if args.out:
            path = figure.save_csv(args.out)
            sys.stdout.write(f"wrote {path}\n\n")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI body; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Pre-registry compatibility: "repro-caem fig8 ..." == "run fig8 ...".
    if argv and argv[0] not in ("run", "list", "bench", "-h", "--help"):
        argv.insert(0, "run")
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "bench":
            return _cmd_bench(args)
        return _cmd_run(args)
    except ReproError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 1
    except BrokenPipeError:
        # Output piped into head/less that exited early — not an error.
        # Point stdout at devnull so the interpreter-exit flush of the
        # buffered remainder cannot raise again ("Exception ignored").
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
