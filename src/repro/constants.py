"""Shared constants for the CAEM reproduction.

These mirror the paper's Table I / Table II values and Section III prose.
Where the scanned paper is ambiguous the choice is documented in DESIGN.md
(§2 "substitutions") and every value remains overridable through
:mod:`repro.config`.
"""

from __future__ import annotations

from .units import kbits, mbps, ms, us

__all__ = [
    "SPEED_OF_LIGHT",
    "BOLTZMANN",
    "DEFAULT_CARRIER_HZ",
    "PACKET_LENGTH_BITS",
    "BUFFER_SIZE_PACKETS",
    "CONTENTION_WINDOW",
    "BACKOFF_SLOT_S",
    "MAX_RETRIES",
    "MIN_BURST_PACKETS",
    "MAX_BURST_PACKETS",
    "DATA_TX_POWER_W",
    "DATA_RX_POWER_W",
    "DATA_SLEEP_POWER_W",
    "TONE_TX_POWER_W",
    "TONE_RX_POWER_W",
    "RADIO_STARTUP_TIME_S",
    "SENSING_DELAY_S",
    "LEACH_CH_FRACTION",
    "LEACH_ROUND_DURATION_S",
    "N_NODES",
    "FIELD_SIZE_M",
    "INITIAL_ENERGY_J",
    "DEAD_NETWORK_FRACTION",
    "ABICM_RATES_BPS",
    "TONE_IDLE_PERIOD_S",
    "TONE_IDLE_DURATION_S",
    "TONE_RECEIVE_PERIOD_S",
    "TONE_RECEIVE_DURATION_S",
    "TONE_TRANSMIT_PERIOD_S",
    "TONE_TRANSMIT_DURATION_S",
    "TONE_COLLISION_DURATION_S",
    "QUEUE_SAMPLE_INTERVAL_PACKETS",
    "QUEUE_ARM_THRESHOLD",
]

# -- physics ----------------------------------------------------------------

SPEED_OF_LIGHT = 299_792_458.0  # m/s
BOLTZMANN = 1.380_649e-23  # J/K

#: 915 MHz ISM band, the RFM TR1000 operating frequency referenced by the paper.
DEFAULT_CARRIER_HZ = 915e6

# -- Table II: physical simulation parameters --------------------------------

PACKET_LENGTH_BITS = int(kbits(2))  # "Packet Length: 2 Kbits"
BUFFER_SIZE_PACKETS = 50  # "Buffer Size: 50"
CONTENTION_WINDOW = 10  # "Contention Window Size: 10"
BACKOFF_SLOT_S = us(20)  # backoff = rand * 2^retry * 20us * CW
MAX_RETRIES = 6  # "the maximal value is 6"
MIN_BURST_PACKETS = 3  # "minimum number of packets sent for one transmission is 3"
MAX_BURST_PACKETS = 8  # "maximal number of packets sent per transmission is fixed at 8"

DATA_TX_POWER_W = 0.66  # "Transmit Power for Data Channel: 0.66 W"
DATA_RX_POWER_W = 0.305  # "Receive Power for Data Channel: 0.305 W"
#: "Sleep Power: 3.5" -- unit lost in the scan.  The RFM TR1000 radio the
#: paper cites sleeps at ~0.7 uA x 3 V ~= 2 uW, so 3.5 uW is the
#: hardware-consistent reading (3.5 mW would cap any protocol's lifetime
#: at ~2900 s and make the paper's +130% gain unreachable; DESIGN.md §2).
DATA_SLEEP_POWER_W = 3.5e-6
TONE_TX_POWER_W = 92e-3  # "Transmit Power for Tone Channel: 92" (mW assumed)
TONE_RX_POWER_W = 36e-3  # "Receive Power for Tone Channel: 36" (mW assumed)

#: RFM radio sleep->active switch time: "the RFM radio needs 20 [us] to
#: switch from sleep mode to active mode" (unit lost in the scan; 20 us is
#: the only reading consistent with the paper's 200 us initial backoff
#: window -- see DESIGN.md §2).  Schurgers et al.'s 466 us synthesizer-lock
#: figure is exercised as an ablation.
RADIO_STARTUP_TIME_S = us(20)

#: Time a sensor needs to classify the tone-channel state ("Sensing Delay: 8").
SENSING_DELAY_S = ms(8)

# -- LEACH -------------------------------------------------------------------

LEACH_CH_FRACTION = 0.05  # "Percentage of CH: 5%"
LEACH_ROUND_DURATION_S = 20.0  # round length (not in the scan; standard LEACH)

N_NODES = 100  # "Number of Nodes: 100"
FIELD_SIZE_M = 100.0  # field edge (scan-damaged; standard LEACH 100 m x 100 m)
INITIAL_ENERGY_J = 10.0  # "The initial battery energy level is 10 Joules"

#: "we further call a network dead if the percentage of nodes exhausted
#: exceeds ..." -- number lost in the scan; LEACH die-off is abrupt so the
#: metric is insensitive to this (DESIGN.md §2).
DEAD_NETWORK_FRACTION = 0.8

# -- ABICM (4-mode) ----------------------------------------------------------

#: "four distinct possible throughput levels: 2 Mbps, 1 Mbps, 450 kbps, and
#: 250 kbps (after adaptive channel coding and modulation)" -- lowest first.
ABICM_RATES_BPS = (250e3, 450e3, mbps(1), mbps(2))

# -- Table I / Section III-A: tone channel -----------------------------------

TONE_IDLE_PERIOD_S = ms(50)  # "periodically broadcasts idle tone pulse series,
TONE_IDLE_DURATION_S = ms(1)  # with a period of 50ms ... duration of 1 ms"
TONE_RECEIVE_PERIOD_S = ms(10)  # "receive tone pulses with duration of 0.5 ms
TONE_RECEIVE_DURATION_S = ms(0.5)  # for every 10 ms"
TONE_TRANSMIT_PERIOD_S = ms(15)  # Table I fragment "3 15" (state unused here:
TONE_TRANSMIT_DURATION_S = ms(0.5)  # CH->BS relay is out of the paper's scope)
TONE_COLLISION_DURATION_S = ms(0.5)  # "collision tone pulses once, 0.5 ms"

# -- Scheme 1 adaptive threshold controller (Fig. 6) --------------------------

QUEUE_SAMPLE_INTERVAL_PACKETS = 5  # "in our simulation, we let M = 5"
QUEUE_ARM_THRESHOLD = 15  # "once the queue length exceeds ... (= 15)"
