"""Path-loss models (macroscopic distance-dependent attenuation).

The paper (§II-B) lists path loss as the first of the three propagation
effects.  The default for experiments is :class:`LogDistance` with exponent
3, appropriate for near-ground sensor deployments; :class:`FreeSpace` and
:class:`TwoRayGround` are provided for sensitivity studies.

All models return loss in **dB** (positive numbers; received power =
transmit power − loss).  They accept scalar or numpy-array distances.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..constants import DEFAULT_CARRIER_HZ, SPEED_OF_LIGHT
from ..errors import ChannelError

__all__ = ["PathLossModel", "FreeSpace", "LogDistance", "TwoRayGround"]


class PathLossModel(ABC):
    """Interface: distance (m) → path loss (dB)."""

    #: Smallest distance accepted; closer queries are clamped here so a
    #: sensor dropped on top of its cluster head cannot yield negative loss.
    min_distance_m: float = 1.0

    @abstractmethod
    def loss_db(self, distance_m):
        """Path loss in dB at ``distance_m`` (scalar or array)."""

    def _clamp(self, distance_m):
        if isinstance(distance_m, np.ndarray):
            return np.maximum(distance_m, self.min_distance_m)
        if distance_m != distance_m or distance_m < 0:
            raise ChannelError(f"invalid distance {distance_m!r}")
        return max(float(distance_m), self.min_distance_m)


class FreeSpace(PathLossModel):
    """Friis free-space loss: ``20·log10(4πd/λ)``."""

    def __init__(self, carrier_hz: float = DEFAULT_CARRIER_HZ,
                 min_distance_m: float = 1.0) -> None:
        if carrier_hz <= 0:
            raise ChannelError("carrier frequency must be > 0")
        self.carrier_hz = carrier_hz
        self.min_distance_m = min_distance_m
        self._wavelength_m = SPEED_OF_LIGHT / carrier_hz

    def loss_db(self, distance_m):
        d = self._clamp(distance_m)
        ratio = 4.0 * math.pi / self._wavelength_m
        if isinstance(d, np.ndarray):
            return 20.0 * np.log10(ratio * d)
        return 20.0 * math.log10(ratio * d)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FreeSpace(carrier={self.carrier_hz/1e6:.0f} MHz)"


class LogDistance(PathLossModel):
    """Log-distance model: ``PL(d) = PL0 + 10·n·log10(d/d0)``.

    Parameters
    ----------
    exponent:
        Path-loss exponent *n* (2 free space … 4 heavy clutter).
    ref_loss_db:
        Loss at the reference distance ``d0``.
    ref_distance_m:
        Reference distance ``d0`` in metres.
    """

    def __init__(
        self,
        exponent: float = 3.0,
        ref_loss_db: float = 40.0,
        ref_distance_m: float = 1.0,
        min_distance_m: float = 1.0,
    ) -> None:
        if exponent <= 0:
            raise ChannelError("path-loss exponent must be > 0")
        if ref_distance_m <= 0:
            raise ChannelError("reference distance must be > 0")
        self.exponent = exponent
        self.ref_loss_db = ref_loss_db
        self.ref_distance_m = ref_distance_m
        self.min_distance_m = min_distance_m

    def loss_db(self, distance_m):
        d = self._clamp(distance_m)
        if isinstance(d, np.ndarray):
            return self.ref_loss_db + 10.0 * self.exponent * np.log10(
                d / self.ref_distance_m
            )
        return self.ref_loss_db + 10.0 * self.exponent * math.log10(
            d / self.ref_distance_m
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogDistance(n={self.exponent}, PL0={self.ref_loss_db} dB "
            f"@ {self.ref_distance_m} m)"
        )


class TwoRayGround(PathLossModel):
    """Two-ray ground-reflection model with free-space crossover.

    Below the crossover distance ``d_c = 4π·h_t·h_r/λ`` the model follows
    free space; beyond it, ``PL = 40·log10(d) − 20·log10(h_t·h_r)``.
    """

    def __init__(
        self,
        tx_height_m: float = 0.5,
        rx_height_m: float = 0.5,
        carrier_hz: float = DEFAULT_CARRIER_HZ,
        min_distance_m: float = 1.0,
    ) -> None:
        if tx_height_m <= 0 or rx_height_m <= 0:
            raise ChannelError("antenna heights must be > 0")
        self.tx_height_m = tx_height_m
        self.rx_height_m = rx_height_m
        self.carrier_hz = carrier_hz
        self.min_distance_m = min_distance_m
        self._free_space = FreeSpace(carrier_hz, min_distance_m)
        wavelength = SPEED_OF_LIGHT / carrier_hz
        self.crossover_m = 4.0 * math.pi * tx_height_m * rx_height_m / wavelength

    def loss_db(self, distance_m):
        d = self._clamp(distance_m)
        hh = self.tx_height_m * self.rx_height_m
        if isinstance(d, np.ndarray):
            far = 40.0 * np.log10(d) - 20.0 * math.log10(hh)
            near = self._free_space.loss_db(d)
            return np.where(d > self.crossover_m, far, near)
        if d > self.crossover_m:
            return 40.0 * math.log10(d) - 20.0 * math.log10(hh)
        return self._free_space.loss_db(d)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TwoRayGround(ht={self.tx_height_m}, hr={self.rx_height_m}, "
            f"crossover={self.crossover_m:.1f} m)"
        )
