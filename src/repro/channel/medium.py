"""The shared data channel of one cluster: a transmission ledger.

§III-A: all sensors in a cluster share a single data channel to the
cluster head ("the traffics are from sensors to the sink"); different
clusters use orthogonal frequencies, so each cluster owns an independent
:class:`DataChannel` and there is no inter-cluster interference.

The ledger tracks concurrently active transmissions.  Any temporal overlap
of two transmissions corrupts *both* ("collision — more than two nodes are
using the data channel ... causing packet collision at the cluster head").
Observers (the cluster-head MAC) are notified on three transitions so they
can drive the tone channel:

* ``on_busy(record)``   — channel left idle state (a reception started);
* ``on_collision(records)`` — overlap detected (once per collision episode);
* ``on_idle()``         — the last transmission ended/aborted.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from ..errors import MacError
from ..sim import Simulator

__all__ = ["ChannelState", "TransmissionRecord", "DataChannel"]


class ChannelState(enum.Enum):
    """Data-channel states as listed in §III-A."""

    IDLE = "idle"
    RECEIVE = "receive"
    COLLISION = "collision"


class TransmissionRecord:
    """One sensor's ongoing burst on the data channel."""

    __slots__ = ("sender_id", "start_s", "duration_s", "corrupted", "active", "meta")

    def __init__(self, sender_id: int, start_s: float, duration_s: float) -> None:
        self.sender_id = sender_id
        self.start_s = start_s
        self.duration_s = duration_s
        #: Set as soon as this record overlaps another.
        self.corrupted = False
        #: False once ended or aborted.
        self.active = True
        #: Free-form slot for MAC bookkeeping (burst composition etc.).
        self.meta: Optional[object] = None

    @property
    def planned_end_s(self) -> float:
        """When the burst would end if not aborted."""
        return self.start_s + self.duration_s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = "corrupted" if self.corrupted else "clean"
        return (
            f"<Tx sender={self.sender_id} t={self.start_s:.4f}"
            f"+{self.duration_s * 1e3:.2f}ms [{flag}]>"
        )


class DataChannel:
    """Collision-detecting transmission ledger for one cluster."""

    def __init__(self, sim: Simulator, name: str = "data") -> None:
        self.sim = sim
        self.name = name
        self._active: Dict[int, TransmissionRecord] = {}
        self._in_collision = False
        #: Observer hooks (set by the cluster-head MAC).
        self.on_busy: Optional[Callable[[TransmissionRecord], None]] = None
        self.on_collision: Optional[Callable[[List[TransmissionRecord]], None]] = None
        self.on_idle: Optional[Callable[[], None]] = None
        # Statistics.
        self.total_transmissions = 0
        self.total_collisions = 0

    def reset(self) -> None:
        """Recycle the ledger for a new round (head-stack reuse).

        Only legal while quiescent — round teardown aborts every active
        transmission, so a pooled channel is always empty here; the guard
        turns a teardown bug into a loud error instead of ghost traffic.
        """
        if self._active:
            raise MacError("cannot reset a channel with active transmissions")
        self._in_collision = False
        self.total_transmissions = 0
        self.total_collisions = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> ChannelState:
        """Current channel state (IDLE / RECEIVE / COLLISION)."""
        if not self._active:
            return ChannelState.IDLE
        if self._in_collision:
            return ChannelState.COLLISION
        return ChannelState.RECEIVE

    @property
    def is_idle(self) -> bool:
        """True iff nothing is on the air."""
        return not self._active

    @property
    def active_senders(self) -> List[int]:
        """Sender ids currently on the air."""
        return list(self._active)

    # -- transitions ----------------------------------------------------------

    def begin(self, sender_id: int, duration_s: float) -> TransmissionRecord:
        """Start a transmission; detects collision with anything active."""
        if duration_s <= 0:
            raise MacError("transmission duration must be > 0")
        if sender_id in self._active:
            raise MacError(f"sender {sender_id} is already transmitting")
        record = TransmissionRecord(sender_id, self.sim.now, duration_s)
        was_idle = not self._active
        self._active[sender_id] = record
        self.total_transmissions += 1

        if was_idle:
            if self.on_busy is not None:
                self.on_busy(record)
            return record

        # Overlap: corrupt everything on the air (including the newcomer).
        colliders = [r for r in self._active.values() if not r.corrupted]
        for r in self._active.values():
            r.corrupted = True
        if not self._in_collision:
            self._in_collision = True
            self.total_collisions += 1
            if self.on_collision is not None:
                self.on_collision(colliders)
        return record

    def end(self, record: TransmissionRecord) -> None:
        """Finish a transmission normally (reception complete if clean)."""
        self._remove(record)

    def abort(self, record: TransmissionRecord) -> None:
        """Abort mid-burst (sender heard the collision tone and stopped)."""
        self._remove(record)

    def _remove(self, record: TransmissionRecord) -> None:
        if not record.active:
            raise MacError("transmission already ended")
        record.active = False
        stored = self._active.pop(record.sender_id, None)
        if stored is not record:  # pragma: no cover - defensive
            raise MacError("foreign transmission record")
        if not self._active:
            self._in_collision = False
            if self.on_idle is not None:
                self.on_idle()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DataChannel {self.name!r} state={self.state.value} "
            f"active={len(self._active)}>"
        )
