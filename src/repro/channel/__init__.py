"""Time-varying wireless channel substrate (paper §II-B).

Composition: :class:`LinkBudget` (path loss, powers, noise) +
:class:`GaussMarkovShadowing` + :class:`RayleighFading` make a
:class:`Link` whose ``snr_db(t)`` is the CSI the protocols act on;
:class:`DataChannel` is the per-cluster shared medium with collision
detection; :class:`CsiEstimator` models the tone-based measurement.
"""

from .budget import LinkBudget, calibrate_noise_floor
from .csi import CsiEstimator, CsiSample
from .fading import RayleighFading
from .link import Link
from .medium import ChannelState, DataChannel, TransmissionRecord
from .pathloss import FreeSpace, LogDistance, PathLossModel, TwoRayGround
from .shadowing import GaussMarkovShadowing

__all__ = [
    "LinkBudget",
    "calibrate_noise_floor",
    "CsiEstimator",
    "CsiSample",
    "RayleighFading",
    "Link",
    "ChannelState",
    "DataChannel",
    "TransmissionRecord",
    "FreeSpace",
    "LogDistance",
    "PathLossModel",
    "TwoRayGround",
    "GaussMarkovShadowing",
]
