"""Correlated log-normal shadowing (macroscopic fading).

The paper (§II-B): *"Shadowing loss refers to the change in received signal
strength due to variations in terrain structure and transmission
conditions.  These two factors fluctuate in macroscopic time scale (2-5
seconds)."*

We model the shadowing term S(t) in dB as a stationary Ornstein-Uhlenbeck
(Gauss-Markov) process with standard deviation σ and exponential
autocorrelation ``ρ(Δ) = exp(−Δ/τ)`` — the time-domain analogue of
Gudmundson's classic spatial model.  The process is sampled **lazily and
exactly**: for any query gap Δ the bridge

    S(t+Δ) = ρ(Δ)·S(t) + σ·sqrt(1−ρ(Δ)²)·ξ,   ξ ~ N(0,1)

has the exact conditional distribution, so cost scales with the number of
queries, not with any fixed sampling grid, and queries at arbitrary
(strictly non-decreasing) times are statistically consistent.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple, Union

import numpy as np

from ..errors import ChannelError
from ..rng import NormalBlockCache, as_normal_cache

__all__ = ["GaussMarkovShadowing"]

#: Same recurring-gap rationale and cap as repro.channel.fading.
_RHO_CACHE_MAX = 4096


class GaussMarkovShadowing:
    """Lazily-sampled Gauss-Markov shadowing process (values in dB).

    Parameters
    ----------
    sigma_db:
        Stationary standard deviation in dB (0 disables shadowing).
    tau_s:
        Decorrelation time constant in seconds.
    rng:
        Numpy generator (from :class:`repro.rng.RngRegistry`) or a
        :class:`~repro.rng.NormalBlockCache` shared with the other
        processes consuming the same stream (how :class:`Link` builds it).
    start_time_s:
        Simulation time of the initial draw.
    """

    __slots__ = ("sigma_db", "tau_s", "_normals", "_time", "_value", "_rho_cache")

    def __init__(
        self,
        sigma_db: float,
        tau_s: float,
        rng: Union[np.random.Generator, NormalBlockCache],
        start_time_s: float = 0.0,
    ) -> None:
        if sigma_db < 0:
            raise ChannelError("shadowing sigma must be >= 0")
        if tau_s <= 0:
            raise ChannelError("shadowing tau must be > 0")
        self.sigma_db = float(sigma_db)
        self.tau_s = float(tau_s)
        self._normals = as_normal_cache(rng)
        self._time = float(start_time_s)
        #: Δ -> (ρ, σ·sqrt(1−ρ²)) memo over the recurring sampling gaps.
        self._rho_cache: Dict[float, Tuple[float, float]] = {}
        # Stationary initial draw.
        self._value = (
            self._normals.normal(0.0, self.sigma_db) if sigma_db > 0 else 0.0
        )

    @property
    def last_time(self) -> float:
        """Time of the most recent sample."""
        return self._time

    def rebind(self, start_time_s: float) -> None:
        """Restart the process as construction would, on the current cache.

        Mirrors the constructor's tail exactly — one stationary initial
        draw (none when sigma is zero) at ``start_time_s`` — so a pooled
        :class:`~repro.channel.link.Link` whose block cache was rebound
        to a fresh stream replays the draws of a fresh construction
        bit-for-bit.  Keep this next to ``__init__``: the two must stay
        draw-for-draw identical.
        """
        self._time = float(start_time_s)
        self._value = (
            self._normals.normal(0.0, self.sigma_db)
            if self.sigma_db > 0
            else 0.0
        )

    def value_db(self, t: float) -> float:
        """Shadowing in dB at time ``t`` (must be >= the previous query).

        Queries at the exact same time return the cached value, which is
        what "the channel gain remains stationary for the duration of a
        packet" needs when several modules look at the link within one
        MAC transaction.
        """
        if t < self._time:
            raise ChannelError(
                f"shadowing queried backwards in time: {t} < {self._time}"
            )
        if self.sigma_db == 0.0:
            self._time = t
            return 0.0
        dt = t - self._time
        if dt > 0.0:
            cached = self._rho_cache.get(dt)
            if cached is None:
                rho = math.exp(-dt / self.tau_s)
                scaled_sigma = self.sigma_db * math.sqrt(1.0 - rho * rho)
                if len(self._rho_cache) < _RHO_CACHE_MAX:
                    self._rho_cache[dt] = (rho, scaled_sigma)
            else:
                rho, scaled_sigma = cached
            noise = self._normals.standard_normal()
            self._value = rho * self._value + scaled_sigma * noise
            self._time = t
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GaussMarkovShadowing(sigma={self.sigma_db} dB, tau={self.tau_s} s, "
            f"t={self._time:.3f})"
        )
