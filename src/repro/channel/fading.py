"""Microscopic (multipath) fading with lazy, exact-gap sampling.

The paper (§II-B): *"microscopic fading refers to the variation of signal
strength due to multipath propagation"*; nodes are static or slower than
1 m/s so *"the coherence time of the fading channel is of the order of
[hundreds of] ms"*, and the channel stays approximately constant over one
frame (several ms).

Model
-----
The complex channel gain is ``h(t) = x(t) + j·y(t)`` with x, y independent
zero-mean Gaussian processes of variance 1/2, giving a unit-mean
exponential power gain ``|h(t)|²`` — Rayleigh fading.  A Rician line-of-
sight component with K-factor ``k`` can be mixed in.

Temporal correlation uses the AR(1) bridge over the actual query gap Δ:

    x(t+Δ) = ρ(Δ)·x(t) + sqrt(1−ρ(Δ)²)·ξ/√2

with either

* ``exponential`` kernel ρ(Δ) = exp(−Δ/τ_c) — a Gauss-Markov process,
  exact for arbitrary query spacing (default); or
* ``jakes`` kernel ρ(Δ) = J₀(2π·f_d·Δ) with f_d = 0.423/τ_c — Clarke/Jakes
  Doppler autocorrelation.  The one-step bridge reproduces the exact
  marginal and the exact lag-Δ correlation of each step; like all
  autoregressive Jakes approximations it is not exactly consistent across
  *unequal* multi-step paths, which is irrelevant at the MAC's query rates.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple, Union

import numpy as np
from scipy.special import j0

from ..errors import ChannelError
from ..rng import NormalBlockCache, as_normal_cache

__all__ = ["RayleighFading"]

_SQRT_HALF = math.sqrt(0.5)

#: Cap on the per-process ρ(Δ) memo (the MAC queries on a small set of
#: recurring gaps — tone cadence, settle cadence, frame times — so the
#: cache saturates at a few dozen entries in practice; the cap only
#: guards against pathological query patterns).
_RHO_CACHE_MAX = 4096


class RayleighFading:
    """Lazily-sampled Rayleigh/Rician fading process (unit mean power).

    Parameters
    ----------
    coherence_s:
        Coherence time τ_c of the fading process.
    rng:
        Numpy generator (one per link; see :class:`repro.rng.RngRegistry`)
        or a :class:`~repro.rng.NormalBlockCache` shared with the other
        processes consuming the same stream (how :class:`Link` builds it).
    kernel:
        ``"exponential"`` or ``"jakes"`` (see module docstring).
    rician_k:
        Rician K-factor (linear); 0 = pure Rayleigh (the paper's model).
    """

    __slots__ = (
        "coherence_s",
        "kernel",
        "rician_k",
        "_normals",
        "_time",
        "_x",
        "_y",
        "_los",
        "_scatter_scale",
        "_doppler_hz",
        "_rho_cache",
    )

    def __init__(
        self,
        coherence_s: float,
        rng: Union[np.random.Generator, NormalBlockCache],
        kernel: str = "exponential",
        rician_k: float = 0.0,
        start_time_s: float = 0.0,
    ) -> None:
        if coherence_s <= 0:
            raise ChannelError("coherence time must be > 0")
        if kernel not in ("exponential", "jakes"):
            raise ChannelError(f"unknown fading kernel {kernel!r}")
        if rician_k < 0:
            raise ChannelError("Rician K must be >= 0")
        self.coherence_s = float(coherence_s)
        self.kernel = kernel
        self.rician_k = float(rician_k)
        self._normals = as_normal_cache(rng)
        self._time = float(start_time_s)
        # Scatter component scaled so total mean power is 1 with the LOS term.
        self._los = math.sqrt(rician_k / (rician_k + 1.0))
        self._scatter_scale = math.sqrt(1.0 / (rician_k + 1.0))
        # Stationary start: x, y ~ N(0, 1/2).
        self._x = self._normals.normal(0.0, _SQRT_HALF)
        self._y = self._normals.normal(0.0, _SQRT_HALF)
        # Jakes: classic coherence-time relation T_c ~= 0.423 / f_d.
        self._doppler_hz = 0.423 / self.coherence_s
        #: Δ -> (ρ, bridge σ) memo; the sampling cadence recurs over a
        #: tiny set of gaps, so ρ(Δ) (and the j0 call for Jakes) is paid
        #: once per distinct gap instead of once per sample.
        self._rho_cache: Dict[float, Tuple[float, float]] = {}

    # -- correlation kernels -------------------------------------------------

    def correlation(self, dt: float) -> float:
        """Autocorrelation ρ(Δ) of the in-phase/quadrature components."""
        if dt < 0:
            raise ChannelError("negative lag")
        if self.kernel == "exponential":
            return math.exp(-dt / self.coherence_s)
        # Jakes / Clarke.
        return float(j0(2.0 * math.pi * self._doppler_hz * dt))

    # -- sampling --------------------------------------------------------------

    @property
    def last_time(self) -> float:
        """Time of the most recent sample."""
        return self._time

    def rebind(self, start_time_s: float) -> None:
        """Restart the process as construction would, on the current cache.

        Mirrors the constructor's tail exactly — the two stationary
        in-phase/quadrature draws at ``start_time_s`` — so a pooled
        :class:`~repro.channel.link.Link` whose block cache was rebound
        to a fresh stream replays the draws of a fresh construction
        bit-for-bit.  Keep this next to ``__init__``: the two must stay
        draw-for-draw identical.
        """
        self._time = float(start_time_s)
        self._x = self._normals.normal(0.0, _SQRT_HALF)
        self._y = self._normals.normal(0.0, _SQRT_HALF)

    def _advance(self, t: float) -> None:
        if t < self._time:
            raise ChannelError(
                f"fading queried backwards in time: {t} < {self._time}"
            )
        dt = t - self._time
        if dt <= 0.0:
            return
        cached = self._rho_cache.get(dt)
        if cached is None:
            rho = self.correlation(dt)
            sigma = math.sqrt(max(0.0, 1.0 - rho * rho)) * _SQRT_HALF
            if len(self._rho_cache) < _RHO_CACHE_MAX:
                self._rho_cache[dt] = (rho, sigma)
        else:
            rho, sigma = cached
        normals = self._normals
        self._x = rho * self._x + sigma * normals.standard_normal()
        self._y = rho * self._y + sigma * normals.standard_normal()
        self._time = t

    def complex_gain(self, t: float):
        """Complex channel gain h(t) (unit mean power)."""
        self._advance(t)
        return complex(
            self._los + self._scatter_scale * self._x,
            self._scatter_scale * self._y,
        )

    def power_gain(self, t: float) -> float:
        """Linear power gain |h(t)|², mean 1; exponential for Rayleigh.

        Repeated queries at the same time return the identical value,
        implementing the paper's "channel gain remains stationary for the
        duration of a packet transmission" assumption at zero extra cost.
        """
        self._advance(t)
        re = self._los + self._scatter_scale * self._x
        im = self._scatter_scale * self._y
        return re * re + im * im

    def gain_db(self, t: float) -> float:
        """Power gain in dB (can be very negative in deep fades)."""
        g = self.power_gain(t)
        if g <= 0.0:  # pragma: no cover - numerically unreachable
            return float("-inf")
        return 10.0 * math.log10(g)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RayleighFading(tau_c={self.coherence_s}s, kernel={self.kernel}, "
            f"K={self.rician_k}, t={self._time:.3f})"
        )
