"""A time-varying wireless link: path loss ∘ shadowing ∘ fading → SNR(t).

One :class:`Link` instance models the (reciprocal) channel between a sensor
and its cluster head.  Reciprocity — the paper's assumption (2),
``G_ab = G_ba`` — holds structurally because both directions read the same
shadowing and fading processes; the tone (downlink) measurement therefore
predicts the data (uplink) quality exactly, up to optional CSI estimation
error modelled in :mod:`repro.channel.csi`.

Assumption (3) — gain stationary over one packet — is realised by querying
the SNR once per MAC transaction time-point; identical-time queries return
identical values by construction of the lazy processes.

Implementation note (scale tier): for the common configuration —
Gauss-Markov shadowing with σ > 0, exponential-kernel Rayleigh fading,
K = 0 — the link keeps the two AR(1) states inline and advances both with
one shared ρ(Δ) memo and three block-cached normals per step.  The
recurrences, draw order and float arithmetic are exactly those of
:class:`~repro.channel.shadowing.GaussMarkovShadowing` and
:class:`~repro.channel.fading.RayleighFading` (pinned by the
stream-equivalence tests in ``tests/test_perf_golden.py``), so the fused
path is bit-identical to composing the component processes; any other
configuration constructs and composes the components as before.  Links are
also **recyclable**: :meth:`Link.rebind` re-targets a pooled instance at a
new endpoint pair and a fresh dedicated stream, byte-identical to a fresh
allocation (see :class:`repro.config.ScaleConfig`).
"""

from __future__ import annotations

import math

import numpy as np

from ..config import ChannelConfig
from ..errors import ChannelError
from ..rng import NormalBlockCache
from .budget import LinkBudget
from .fading import RayleighFading
from .shadowing import GaussMarkovShadowing

__all__ = ["Link"]

_SQRT_HALF = math.sqrt(0.5)

#: Same recurring-gap rationale and cap as the component processes.
_RHO_CACHE_MAX = 4096

#: Pool hygiene: random backoff timing makes many query gaps one-shot, so
#: a *recycled* link's ρ(Δ) memo can accumulate hundreds of dead entries
#: per round (~100 MB network-wide at 1000 nodes).  rebind() drops a memo
#: that outgrew this bound; the genuinely recurring gaps (tone cadences,
#: settle ticks) re-price in microseconds at the next round.
_RHO_CACHE_PRUNE = 256


class Link:
    """Sensor ↔ cluster-head channel with lazily sampled dynamics.

    Parameters
    ----------
    distance_m:
        Euclidean distance between the endpoints (fixed; nodes are static).
    budget:
        Shared :class:`LinkBudget` (path loss + powers).
    cfg:
        Channel configuration (shadowing/fading parameters).
    rng:
        Dedicated numpy generator for this link's stochastic processes.
    name:
        Label for diagnostics.
    """

    __slots__ = (
        "name",
        "distance_m",
        "_mean_snr_db",
        "shadowing",
        "fading",
        "_normals",
        "_fused",
        "_rho_cache",
        "_sigma_db",
        "_tau_s",
        "_coherence_s",
        "_time",
        "_shadow_db",
        "_x",
        "_y",
    )

    def __init__(
        self,
        distance_m: float,
        budget: LinkBudget,
        cfg: ChannelConfig,
        rng: np.random.Generator,
        name: str = "link",
        start_time_s: float = 0.0,
    ) -> None:
        if distance_m < 0:
            raise ChannelError("distance must be >= 0")
        self.name = name
        self.distance_m = float(distance_m)
        self._mean_snr_db = float(budget.mean_snr_db(distance_m))
        # One block-normal cache shared by both processes: they interleave
        # draws on this link's dedicated stream, and sequential consumption
        # through a single cache preserves that exact draw order (a cache
        # per process would hand each its own contiguous chunk instead).
        normals = NormalBlockCache(rng)
        self._normals = normals
        # Fused sampling (module docstring): only when both processes are
        # Gauss-Markov and draw on every step — zero-sigma shadowing draws
        # nothing and the Jakes kernel prices ρ(Δ) differently, so those
        # configurations compose the component processes instead.
        self._fused = (
            cfg.shadowing_sigma_db > 0.0
            and cfg.fading_kernel == "exponential"
            and cfg.rician_k == 0.0
        )
        self._sigma_db = float(cfg.shadowing_sigma_db)
        self._tau_s = float(cfg.shadowing_tau_s)
        self._coherence_s = float(cfg.fading_coherence_s)
        #: Δ -> (ρ_s, σ_s·√(1−ρ_s²), ρ_f, √(1−ρ_f²)/√2) for the fused path.
        self._rho_cache = {}
        if self._fused:
            if self._tau_s <= 0:
                raise ChannelError("shadowing tau must be > 0")
            if self._coherence_s <= 0:
                raise ChannelError("coherence time must be > 0")
            self.shadowing = None
            self.fading = None
            # Stationary initial draws, in component construction order:
            # shadowing (one), then fading in-phase/quadrature (two).
            self._time = float(start_time_s)
            self._shadow_db = 0.0 + self._sigma_db * normals.standard_normal()
            self._x = 0.0 + _SQRT_HALF * normals.standard_normal()
            self._y = 0.0 + _SQRT_HALF * normals.standard_normal()
        else:
            self.shadowing = GaussMarkovShadowing(
                cfg.shadowing_sigma_db, cfg.shadowing_tau_s, normals,
                start_time_s,
            )
            self.fading = RayleighFading(
                cfg.fading_coherence_s,
                normals,
                kernel=cfg.fading_kernel,
                rician_k=cfg.rician_k,
                start_time_s=start_time_s,
            )
            self._time = float(start_time_s)
            self._shadow_db = 0.0
            self._x = 0.0
            self._y = 0.0

    def rebind(
        self,
        distance_m: float,
        budget: LinkBudget,
        rng: np.random.Generator,
        name: str,
        start_time_s: float,
    ) -> None:
        """Recycle this Link for a new round's endpoint pair.

        Replays exactly what constructing a fresh ``Link`` with the same
        arguments would do — rebind the shared block cache to the new
        dedicated stream, then the stationary initial draws in
        construction order (one shadowing, two fading) — so a pooled link
        is bit-identical to a fresh allocation (pinned by
        ``tests/test_scale.py``).  The channel config is the one the link
        was built with (pools are per-network, configs are frozen); the
        ρ(Δ) memos persist, which is part of the win — recurring gaps are
        priced once per link lifetime, not once per round.
        """
        if distance_m < 0:
            raise ChannelError("distance must be >= 0")
        self.name = name
        self.distance_m = float(distance_m)
        self._mean_snr_db = float(budget.mean_snr_db(distance_m))
        normals = self._normals
        normals.rebind(rng)
        if len(self._rho_cache) > _RHO_CACHE_PRUNE:
            self._rho_cache.clear()
        if self._fused:
            self._time = float(start_time_s)
            self._shadow_db = 0.0 + self._sigma_db * normals.standard_normal()
            self._x = 0.0 + _SQRT_HALF * normals.standard_normal()
            self._y = 0.0 + _SQRT_HALF * normals.standard_normal()
            return
        shadow = self.shadowing
        if len(shadow._rho_cache) > _RHO_CACHE_PRUNE:
            shadow._rho_cache.clear()
        shadow.rebind(start_time_s)
        fading = self.fading
        if len(fading._rho_cache) > _RHO_CACHE_PRUNE:
            fading._rho_cache.clear()
        fading.rebind(start_time_s)

    @property
    def mean_snr_db(self) -> float:
        """Distance-only (local average) SNR in dB."""
        return self._mean_snr_db

    def shift_mean_snr_db(self, delta_db: float) -> None:
        """Shift the link's mean attenuation by ``delta_db`` mid-run.

        A shadowing *regime shift* (:mod:`repro.dynamics`): the local
        environment changed — an obstacle moved, a weather front passed —
        so the mean around which shadowing and fading fluctuate is
        re-drawn.  Subsequent :meth:`snr_db` queries see the new mean
        immediately; the stochastic processes (and their RNG streams) are
        untouched, so the shift is deterministic given the timeline.
        """
        self._mean_snr_db += delta_db

    def snr_db(self, t: float) -> float:
        """Instantaneous SNR in dB at simulation time ``t``.

        Queries must be non-decreasing in time (enforced by the underlying
        processes); equal-time queries are free and identical.
        """
        if not self._fused:
            return (
                self._mean_snr_db
                + self.shadowing.value_db(t)
                + self.fading.gain_db(t)
            )
        dt = t - self._time
        if dt != 0.0:
            if dt < 0.0:
                raise ChannelError(
                    f"shadowing queried backwards in time: {t} < {self._time}"
                )
            cached = self._rho_cache.get(dt)
            if cached is None:
                rho_s = math.exp(-dt / self._tau_s)
                sig_s = self._sigma_db * math.sqrt(1.0 - rho_s * rho_s)
                rho_f = math.exp(-dt / self._coherence_s)
                sig_f = math.sqrt(max(0.0, 1.0 - rho_f * rho_f)) * _SQRT_HALF
                if len(self._rho_cache) < _RHO_CACHE_MAX:
                    self._rho_cache[dt] = (rho_s, sig_s, rho_f, sig_f)
            else:
                rho_s, sig_s, rho_f, sig_f = cached
            # Inline equivalent of NormalBlockCache.take3(): measured on
            # the N=1000 acceptance workload, even one bulk-take method
            # call (plus tuple packing) per advance costs ~3% end to end,
            # which is the margin of the 1.5x scale gate.  The buffer
            # invariants live in repro.rng (see take3); the draw-sequence
            # identity is pinned by test_perf_golden's link stream tests.
            normals = self._normals
            buf = normals._buf
            i = normals._idx
            if i + 3 <= len(buf):
                n1 = buf[i]
                n2 = buf[i + 1]
                n3 = buf[i + 2]
                normals._idx = i + 3
            else:
                n1, n2, n3 = normals.take3()
            self._shadow_db = rho_s * self._shadow_db + sig_s * n1
            self._x = rho_f * self._x + sig_f * n2
            self._y = rho_f * self._y + sig_f * n3
            self._time = t
        x = self._x
        y = self._y
        g = x * x + y * y
        if g <= 0.0:  # pragma: no cover - numerically unreachable
            return float("-inf")
        return self._mean_snr_db + self._shadow_db + 10.0 * math.log10(g)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link({self.name!r}, d={self.distance_m:.1f} m, "
            f"mean SNR={self._mean_snr_db:.1f} dB)"
        )
