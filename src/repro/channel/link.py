"""A time-varying wireless link: path loss ∘ shadowing ∘ fading → SNR(t).

One :class:`Link` instance models the (reciprocal) channel between a sensor
and its cluster head.  Reciprocity — the paper's assumption (2),
``G_ab = G_ba`` — holds structurally because both directions read the same
shadowing and fading processes; the tone (downlink) measurement therefore
predicts the data (uplink) quality exactly, up to optional CSI estimation
error modelled in :mod:`repro.channel.csi`.

Assumption (3) — gain stationary over one packet — is realised by querying
the SNR once per MAC transaction time-point; identical-time queries return
identical values by construction of the lazy processes.
"""

from __future__ import annotations

import numpy as np

from ..config import ChannelConfig
from ..errors import ChannelError
from ..rng import NormalBlockCache
from .budget import LinkBudget
from .fading import RayleighFading
from .shadowing import GaussMarkovShadowing

__all__ = ["Link"]


class Link:
    """Sensor ↔ cluster-head channel with lazily sampled dynamics.

    Parameters
    ----------
    distance_m:
        Euclidean distance between the endpoints (fixed; nodes are static).
    budget:
        Shared :class:`LinkBudget` (path loss + powers).
    cfg:
        Channel configuration (shadowing/fading parameters).
    rng:
        Dedicated numpy generator for this link's stochastic processes.
    name:
        Label for diagnostics.
    """

    __slots__ = ("name", "distance_m", "_mean_snr_db", "shadowing", "fading")

    def __init__(
        self,
        distance_m: float,
        budget: LinkBudget,
        cfg: ChannelConfig,
        rng: np.random.Generator,
        name: str = "link",
        start_time_s: float = 0.0,
    ) -> None:
        if distance_m < 0:
            raise ChannelError("distance must be >= 0")
        self.name = name
        self.distance_m = float(distance_m)
        self._mean_snr_db = float(budget.mean_snr_db(distance_m))
        # One block-normal cache shared by both processes: they interleave
        # draws on this link's dedicated stream, and sequential consumption
        # through a single cache preserves that exact draw order (a cache
        # per process would hand each its own contiguous chunk instead).
        normals = NormalBlockCache(rng)
        self.shadowing = GaussMarkovShadowing(
            cfg.shadowing_sigma_db, cfg.shadowing_tau_s, normals, start_time_s
        )
        self.fading = RayleighFading(
            cfg.fading_coherence_s,
            normals,
            kernel=cfg.fading_kernel,
            rician_k=cfg.rician_k,
            start_time_s=start_time_s,
        )

    @property
    def mean_snr_db(self) -> float:
        """Distance-only (local average) SNR in dB."""
        return self._mean_snr_db

    def shift_mean_snr_db(self, delta_db: float) -> None:
        """Shift the link's mean attenuation by ``delta_db`` mid-run.

        A shadowing *regime shift* (:mod:`repro.dynamics`): the local
        environment changed — an obstacle moved, a weather front passed —
        so the mean around which shadowing and fading fluctuate is
        re-drawn.  Subsequent :meth:`snr_db` queries see the new mean
        immediately; the stochastic processes (and their RNG streams) are
        untouched, so the shift is deterministic given the timeline.
        """
        self._mean_snr_db += delta_db

    def snr_db(self, t: float) -> float:
        """Instantaneous SNR in dB at simulation time ``t``.

        Queries must be non-decreasing in time (enforced by the underlying
        processes); equal-time queries are free and identical.
        """
        return (
            self._mean_snr_db
            + self.shadowing.value_db(t)
            + self.fading.gain_db(t)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link({self.name!r}, d={self.distance_m:.1f} m, "
            f"mean SNR={self._mean_snr_db:.1f} dB)"
        )
