"""Link budget: transmit power + path loss + noise floor → mean SNR.

The paper gives transmit power (Table II) but, like most simulation papers
of its era, not the receiver noise figure.  We expose the noise floor as a
single calibrated constant (``ChannelConfig.noise_floor_dbm``, default
−71 dBm) chosen so a typical intra-cluster sensor→cluster-head link
(≈20 m when 5 heads serve the 100 m × 100 m field) sees a mean SNR
around 20 dB, putting the 4 ABICM modes
all in play (DESIGN.md §2).  Helper :func:`calibrate_noise_floor` computes
the floor for any target operating point, and the ablation benches sweep it.
"""

from __future__ import annotations

from ..config import ChannelConfig
from ..errors import ChannelError
from ..units import watts_to_dbm
from .pathloss import LogDistance, PathLossModel

__all__ = ["LinkBudget", "calibrate_noise_floor"]


class LinkBudget:
    """Computes the mean (local-average) SNR of a link at distance d.

    Mean SNR excludes shadowing and fading, which are applied multiplied
    on top by :class:`repro.channel.link.Link`.
    """

    __slots__ = ("pathloss", "tx_power_dbm", "noise_floor_dbm")

    def __init__(
        self,
        pathloss: PathLossModel,
        tx_power_w: float,
        noise_floor_dbm: float,
    ) -> None:
        if tx_power_w <= 0:
            raise ChannelError("tx power must be > 0")
        self.pathloss = pathloss
        self.tx_power_dbm = watts_to_dbm(tx_power_w)
        self.noise_floor_dbm = float(noise_floor_dbm)

    @classmethod
    def from_config(cls, cfg: ChannelConfig) -> "LinkBudget":
        """Build the budget (and default path-loss model) from config."""
        model = LogDistance(
            exponent=cfg.pathloss_exponent,
            ref_loss_db=cfg.pathloss_ref_db,
            ref_distance_m=cfg.pathloss_ref_distance_m,
            min_distance_m=cfg.min_distance_m,
        )
        return cls(model, cfg.tx_power_w, cfg.noise_floor_dbm)

    def mean_snr_db(self, distance_m):
        """Mean SNR in dB at ``distance_m`` (scalar or array)."""
        return self.tx_power_dbm - self.pathloss.loss_db(distance_m) - self.noise_floor_dbm

    def rx_power_dbm(self, distance_m):
        """Mean received power in dBm at ``distance_m``."""
        return self.tx_power_dbm - self.pathloss.loss_db(distance_m)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinkBudget(tx={self.tx_power_dbm:.1f} dBm, "
            f"noise={self.noise_floor_dbm:.1f} dBm, {self.pathloss!r})"
        )


def calibrate_noise_floor(
    pathloss: PathLossModel,
    tx_power_w: float,
    reference_distance_m: float,
    target_mean_snr_db: float,
) -> float:
    """Noise floor (dBm) making mean SNR equal the target at a reference distance.

    Used by experiment presets to re-derive the −71 dBm default and by
    ablations that move the operating point.
    """
    tx_dbm = watts_to_dbm(tx_power_w)
    return tx_dbm - pathloss.loss_db(reference_distance_m) - target_mean_snr_db
