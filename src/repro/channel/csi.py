"""CSI measurement from the tone channel.

§III-A: *"By measuring the attenuation of the received tone signal, each
sensor can continuously monitor the CSI change of the data channel"* —
possible because tone and data channels share propagation (assumption 1)
and the link is reciprocal (assumption 2).

:class:`CsiEstimator` turns a true link SNR into the *measured* CSI a
sensor acts on.  The paper treats the measurement as perfect; we default to
that, but expose pilot-noise (Gaussian error in dB) and staleness (the
sensor only refreshes CSI when a tone pulse arrives) so that robustness
ablations can quantify how CAEM degrades with imperfect estimation.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ChannelError
from ..rng import NormalBlockCache, as_normal_cache
from .link import Link

__all__ = ["CsiEstimator", "CsiSample"]


class CsiSample:
    """One CSI observation: measured SNR (dB) and when it was taken."""

    __slots__ = ("snr_db", "time_s")

    def __init__(self, snr_db: float, time_s: float) -> None:
        self.snr_db = snr_db
        self.time_s = time_s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CsiSample({self.snr_db:.2f} dB @ {self.time_s:.4f}s)"


class CsiEstimator:
    """Produces measured CSI samples for one link.

    Parameters
    ----------
    link:
        The true channel.
    error_sigma_db:
        Std-dev of zero-mean Gaussian measurement error in dB (0 = the
        paper's perfect-measurement assumption).
    rng:
        Dedicated generator for the measurement noise (required if error
        > 0); drawn through a :class:`~repro.rng.NormalBlockCache`, so it
        must not be shared with consumers that bypass this estimator.
    """

    __slots__ = ("link", "error_sigma_db", "_noise", "_last")

    def __init__(
        self,
        link: Link,
        error_sigma_db: float = 0.0,
        rng: Optional[Union[np.random.Generator, NormalBlockCache]] = None,
    ) -> None:
        if error_sigma_db < 0:
            raise ChannelError("CSI error sigma must be >= 0")
        if error_sigma_db > 0 and rng is None:
            raise ChannelError("CSI error requires an rng")
        self.link = link
        self.error_sigma_db = float(error_sigma_db)
        self._noise = as_normal_cache(rng) if rng is not None else None
        self._last: Optional[CsiSample] = None

    def measure(self, t: float) -> CsiSample:
        """Take a fresh CSI measurement at time ``t`` (a tone-pulse arrival)."""
        snr = self.link.snr_db(t)
        if self.error_sigma_db > 0.0:
            snr += self._noise.normal(0.0, self.error_sigma_db)
        self._last = CsiSample(snr, t)
        return self._last

    @property
    def last(self) -> Optional[CsiSample]:
        """Most recent measurement, or None before the first pulse."""
        return self._last

    def staleness(self, now: float) -> float:
        """Seconds since the last measurement (inf before the first)."""
        if self._last is None:
            return float("inf")
        return now - self._last.time_s
