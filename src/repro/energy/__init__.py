"""Energy accounting substrate: model (Table II), battery, meter."""

from .battery import Battery
from .meter import ContinuousDraw, EnergyMeter
from .model import CAUSES, RadioEnergyModel

__all__ = ["Battery", "EnergyMeter", "ContinuousDraw", "RadioEnergyModel", "CAUSES"]
