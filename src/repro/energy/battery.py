"""Battery: finite energy store with depletion notification.

"Normally, a sensor node in the network is battery powered ... The
depletion of the battery energy means the failure of the node and partial
partitioning of the network."  Each node owns one battery (10 J in the
paper's runs); when it hits zero the node dies and the network notes a
potential "blind area".

Draws never take the level below zero: the final draw is truncated to the
remaining charge (a radio browns out mid-activity), and the depletion
callback fires exactly once.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import EnergyError

__all__ = ["Battery"]


class Battery:
    """Finite energy store.

    Parameters
    ----------
    capacity_j:
        Initial (and maximum) energy in joules.
    on_depleted:
        Called once, with no arguments, when the level first reaches zero.
    """

    __slots__ = ("capacity_j", "_level_j", "_on_depleted", "_depleted", "drawn_j")

    def __init__(
        self,
        capacity_j: float,
        on_depleted: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity_j <= 0:
            raise EnergyError("battery capacity must be > 0")
        self.capacity_j = float(capacity_j)
        self._level_j = float(capacity_j)
        self._on_depleted = on_depleted
        self._depleted = False
        #: Lifetime total drawn (== capacity - level).
        self.drawn_j = 0.0

    # -- state ---------------------------------------------------------------

    @property
    def level_j(self) -> float:
        """Remaining energy in joules (never negative)."""
        return self._level_j

    @property
    def fraction(self) -> float:
        """Remaining fraction of initial capacity in [0, 1]."""
        return self._level_j / self.capacity_j

    @property
    def is_depleted(self) -> bool:
        """True once the battery hit zero."""
        return self._depleted

    # -- operations ----------------------------------------------------------

    def draw(self, energy_j: float) -> float:
        """Consume energy; returns the amount actually drawn.

        Drawing from an already-depleted battery returns 0 (dead radios
        consume nothing); the depletion callback runs only on the
        transition to empty.
        """
        if energy_j < 0:
            raise EnergyError(f"cannot draw negative energy ({energy_j!r})")
        if self._depleted or energy_j == 0.0:
            return 0.0
        actual = min(energy_j, self._level_j)
        self._level_j -= actual
        self.drawn_j += actual
        if self._level_j <= 0.0:
            self._level_j = 0.0
            self._depleted = True
            if self._on_depleted is not None:
                self._on_depleted()
        return actual

    def can_supply(self, energy_j: float) -> bool:
        """True if a draw of ``energy_j`` would not empty the battery."""
        return not self._depleted and self._level_j >= energy_j

    def set_depletion_callback(self, fn: Callable[[], None]) -> None:
        """Install/replace the depletion callback (before depletion)."""
        if self._depleted:
            raise EnergyError("battery already depleted")
        self._on_depleted = fn

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Battery {self._level_j:.3f}/{self.capacity_j:.3f} J>"
