"""Energy meter: draws from a battery with per-cause accounting.

The meter is the single gateway between protocol code and the battery:
protocols charge *activities* (cause + duration, or an explicit energy),
the meter prices them via :class:`~repro.energy.model.RadioEnergyModel`,
debits the battery, and keeps the per-cause ledger that powers the paper's
Fig. 11 (energy per delivered packet) and our extended breakdowns.

It also supports *continuous* draws for long-lived states (tone monitoring,
CH idle): ``open_draw`` returns a handle that integrates power over wall
(simulation) time until closed, charging lazily on close — no periodic
tick events are needed.

Hot-path note: radio state machines transition hundreds of times per node
per second, and every transition closes one draw and opens another.  The
meter therefore keeps only *open* draws in its registry (closed handles
are removed immediately, preserving the opening-order settle sequence)
and recycles handle objects through a small free list, so steady-state
transitions allocate nothing.  All arithmetic — ``power · dt`` then a
single battery draw per settle — is unchanged, keeping every run
bit-identical to the allocating implementation.
"""

from __future__ import annotations

from typing import Dict

from ..errors import EnergyError
from ..sim import Simulator
from .battery import Battery
from .model import RadioEnergyModel

__all__ = ["EnergyMeter", "ContinuousDraw"]


class ContinuousDraw:
    """An open-ended power draw (e.g. tone radio monitoring).

    Created by :meth:`EnergyMeter.open_draw`.  Energy accrues linearly at
    the cause's power; call :meth:`close` when the state ends.
    ``checkpoint`` settles accrued energy without closing — used when a
    metric snapshot needs exact battery levels mid-state.
    """

    __slots__ = ("meter", "cause", "power_w", "start_s", "_last_settle_s", "_open")

    def __init__(
        self, meter: "EnergyMeter", cause: str, start_s: float, scale: float = 1.0
    ) -> None:
        if scale < 0:
            raise EnergyError("draw scale must be >= 0")
        self.meter = meter
        self.cause = cause
        self.power_w = meter.model.power_w(cause) * scale
        self.start_s = start_s
        self._last_settle_s = start_s
        self._open = True

    @property
    def is_open(self) -> bool:
        """True until :meth:`close` is called."""
        return self._open

    def checkpoint(self, now: float) -> float:
        """Settle energy accrued since the last settle; returns joules charged.

        The cause was validated when the draw was opened, so this charges
        the battery directly — same ``power · dt`` product and the same
        single :meth:`~repro.energy.battery.Battery.draw` call as routing
        through :meth:`EnergyMeter.charge_energy`.
        """
        if not self._open:
            return 0.0
        dt = now - self._last_settle_s
        if dt < 0:
            raise EnergyError("continuous draw settled backwards in time")
        self._last_settle_s = now
        if dt == 0.0 or self.power_w == 0.0:
            return 0.0
        meter = self.meter
        actual = meter.battery.draw(self.power_w * dt)
        if actual > 0.0:
            by_cause = meter.by_cause
            cause = self.cause
            by_cause[cause] = by_cause.get(cause, 0.0) + actual
        return actual

    def close(self, now: float) -> float:
        """Settle and close; returns the final joules charged."""
        charged = self.checkpoint(now)
        self._open = False
        self.meter._release(self)
        return charged


class EnergyMeter:
    """Per-node energy gateway and ledger."""

    __slots__ = ("sim", "model", "battery", "by_cause", "_open_draws", "_free")

    #: Free-list cap: a node has at most a handful of concurrently open
    #: draws (one per radio state machine), so a short list suffices.
    _FREE_MAX = 8

    def __init__(self, sim: Simulator, model: RadioEnergyModel, battery: Battery) -> None:
        self.sim = sim
        self.model = model
        self.battery = battery
        #: Joules actually drawn, keyed by cause.
        self.by_cause: Dict[str, float] = {}
        #: Currently *open* draws, in opening order (closed draws are
        #: removed immediately — see the module docstring).
        self._open_draws: list[ContinuousDraw] = []
        self._free: list[ContinuousDraw] = []

    # -- one-shot charges -------------------------------------------------------

    def charge(self, cause: str, duration_s: float) -> float:
        """Charge ``cause`` held for ``duration_s``; returns joules drawn."""
        return self.charge_energy(cause, self.model.energy_j(cause, duration_s))

    def charge_energy(self, cause: str, energy_j: float) -> float:
        """Charge an explicit energy amount under ``cause``."""
        if energy_j < 0:
            raise EnergyError("cannot charge negative energy")
        self.model.power_w(cause)  # validates the cause name
        actual = self.battery.draw(energy_j)
        if actual > 0.0:
            self.by_cause[cause] = self.by_cause.get(cause, 0.0) + actual
        return actual

    def charge_known(self, cause: str, energy_j: float) -> float:
        """Charge a pre-priced, pre-validated energy amount (hot paths).

        Identical ledger arithmetic to :meth:`charge_energy`; callers must
        have validated ``cause`` once up front and guarantee
        ``energy_j >= 0``.
        """
        actual = self.battery.draw(energy_j)
        if actual > 0.0:
            by_cause = self.by_cause
            by_cause[cause] = by_cause.get(cause, 0.0) + actual
        return actual

    def charge_startup(self) -> float:
        """Charge one data-radio sleep→active transition."""
        return self.charge_energy("startup", self.model.startup_energy_j)

    # -- continuous draws ----------------------------------------------------------

    def open_draw(self, cause: str, scale: float = 1.0) -> ContinuousDraw:
        """Start integrating ``cause`` power from the current time.

        ``scale`` multiplies the cause's power — used for duty-cycled
        states (e.g. synchronized tone listening wakes the receiver only
        around expected pulse times).
        """
        if scale < 0:
            raise EnergyError("draw scale must be >= 0")
        return self.open_draw_known(cause, self.model.power_w(cause) * scale)

    def open_draw_known(self, cause: str, power_w: float) -> ContinuousDraw:
        """Open a draw whose power is already priced (radio hot path).

        ``power_w`` must be ``model.power_w(cause) · scale`` — the radio
        state machines compute it once per state at construction instead
        of per transition.
        """
        free = self._free
        if free:
            draw = free.pop()
        else:
            draw = ContinuousDraw.__new__(ContinuousDraw)
        now = self.sim._now
        draw.meter = self
        draw.cause = cause
        draw.power_w = power_w
        draw.start_s = now
        draw._last_settle_s = now
        draw._open = True
        self._open_draws.append(draw)
        return draw

    def _release(self, draw: ContinuousDraw) -> None:
        """Drop a closed draw from the registry and recycle the handle."""
        try:
            self._open_draws.remove(draw)
        except ValueError:  # a hand-built draw never registered
            return
        if len(self._free) < self._FREE_MAX:
            self._free.append(draw)

    def settle_all(self) -> None:
        """Checkpoint every open draw at the current time (metric snapshots).

        Iterates a snapshot: a checkpoint can empty the battery, whose
        death cascade closes draws (mutating the registry) reentrantly.
        """
        now = self.sim.now
        for draw in tuple(self._open_draws):
            if draw._open:
                draw.checkpoint(now)

    # -- reporting ---------------------------------------------------------------

    @property
    def total_j(self) -> float:
        """Total joules drawn through this meter."""
        return sum(self.by_cause.values())

    def breakdown(self) -> Dict[str, float]:
        """Copy of the per-cause ledger."""
        return dict(self.by_cause)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EnergyMeter total={self.total_j:.4f} J over {len(self.by_cause)} causes>"
