"""Radio energy model: named power draws (Table II).

Centralises the mapping from radio activity to power so the MAC and node
logic never hard-code watts.  Causes (the accounting categories used by
Fig. 11's energy-per-packet metric and the meter breakdowns):

==============  =============================================================
cause           meaning
==============  =============================================================
``data_tx``     data radio transmitting a burst
``data_rx``     data radio receiving (cluster head side)
``startup``     data radio sleep→active synthesizer lock
``tone_tx``     tone radio broadcasting pulses (cluster head)
``tone_rx``     tone radio monitoring (sensor waiting/measuring CSI)
``ch_idle``     cluster-head data radio idling between receptions
``sleep``       baseline draw of a sleeping node
``uplink_tx``   head transmitting a relay burst on the long-haul channel
``uplink_rx``   head (or relay) receiving a long-haul burst
==============  =============================================================

The two ``uplink_*`` causes draw the same power as their cluster-hop
counterparts (one data radio, retuned to the orthogonal long-haul
frequency) but are ledgered separately so the uplink energy split is
visible in breakdowns; with routing disabled they never appear.
"""

from __future__ import annotations

from ..config import EnergyConfig
from ..errors import EnergyError

__all__ = ["RadioEnergyModel", "CAUSES"]

CAUSES = (
    "data_tx",
    "data_rx",
    "startup",
    "tone_tx",
    "tone_rx",
    "ch_idle",
    "sleep",
    "uplink_tx",
    "uplink_rx",
)


class RadioEnergyModel:
    """Power lookup + simple energy helpers derived from :class:`EnergyConfig`.

    ``uplink_tx_power_w`` prices the long-haul TX cause; it defaults to
    the cluster-hop TX power and is overridden by the network layer from
    :class:`~repro.config.RoutingConfig` when the uplink tier is enabled.
    """

    __slots__ = ("cfg", "_power")

    def __init__(
        self, cfg: EnergyConfig, uplink_tx_power_w: float | None = None
    ) -> None:
        self.cfg = cfg
        self._power = {
            "data_tx": cfg.data_tx_power_w,
            "data_rx": cfg.data_rx_power_w,
            "startup": cfg.startup_power_w,
            "tone_tx": cfg.tone_tx_power_w,
            "tone_rx": cfg.tone_rx_power_w,
            "ch_idle": cfg.ch_idle_power_w,
            "sleep": cfg.sleep_power_w,
            "uplink_tx": (
                cfg.data_tx_power_w
                if uplink_tx_power_w is None
                else float(uplink_tx_power_w)
            ),
            "uplink_rx": cfg.data_rx_power_w,
        }

    def power_w(self, cause: str) -> float:
        """Power draw for an accounting cause."""
        try:
            return self._power[cause]
        except KeyError:
            raise EnergyError(
                f"unknown energy cause {cause!r}; have {sorted(self._power)}"
            ) from None

    def energy_j(self, cause: str, duration_s: float) -> float:
        """Energy for holding ``cause`` for ``duration_s`` seconds."""
        if duration_s < 0:
            raise EnergyError("duration must be >= 0")
        return self.power_w(cause) * duration_s

    @property
    def startup_energy_j(self) -> float:
        """One sleep→active transition of the data radio."""
        return self.cfg.startup_power_w * self.cfg.startup_time_s

    def tx_energy_j(self, airtime_s: float) -> float:
        """Transmit energy for a burst of the given airtime."""
        return self.energy_j("data_tx", airtime_s)

    def rx_energy_j(self, airtime_s: float) -> float:
        """Receive energy for the same airtime (cluster-head side)."""
        return self.energy_j("data_rx", airtime_s)
