"""CAEM medium access control: tone signalling, backoff, state machines."""

from .backoff import BackoffPolicy
from .baseline import build_sensor_mac
from .caem import (
    CaemClusterHeadMac,
    CaemSensorMac,
    ClusterContext,
    MacStats,
    SensorMacState,
)
from .tone import (
    ToneBroadcaster,
    ToneChannelSpec,
    ToneKind,
    ToneListener,
    TonePulseSpec,
)

__all__ = [
    "BackoffPolicy",
    "build_sensor_mac",
    "CaemSensorMac",
    "CaemClusterHeadMac",
    "ClusterContext",
    "MacStats",
    "SensorMacState",
    "ToneBroadcaster",
    "ToneChannelSpec",
    "ToneKind",
    "ToneListener",
    "TonePulseSpec",
]
