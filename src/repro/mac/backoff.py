"""Random backoff policy (paper §III-B).

"it backs off for a random period of time, which equals to
``rand() × 2^r × 20 µs × CW``, where ``rand()`` generates a number evenly
distributed [in (0, 1)], ``r`` is the number of times this packet has been
retransmitted (the maximal value is 6), and ``CW`` is the contention
window size [10]."
"""

from __future__ import annotations

import numpy as np

from ..config import MacConfig
from ..errors import MacError

__all__ = ["BackoffPolicy"]


class BackoffPolicy:
    """Draws backoff delays with exponential growth in the retry count."""

    __slots__ = ("slot_s", "contention_window", "max_retries", "_rng", "draws")

    def __init__(self, cfg: MacConfig, rng: np.random.Generator) -> None:
        self.slot_s = cfg.backoff_slot_s
        self.contention_window = cfg.contention_window
        self.max_retries = cfg.max_retries
        self._rng = rng
        #: Number of delays drawn (diagnostics).
        self.draws = 0

    def delay_s(self, retry: int) -> float:
        """Backoff before attempt with retry count ``retry`` (0-based).

        The exponent saturates at ``max_retries`` — the paper caps r at 6.
        """
        if retry < 0:
            raise MacError("retry count cannot be negative")
        r = min(retry, self.max_retries)
        self.draws += 1
        u = float(self._rng.random())
        return u * (2 ** r) * self.slot_s * self.contention_window

    def max_delay_s(self, retry: int) -> float:
        """Upper bound of the delay for a given retry count."""
        r = min(max(retry, 0), self.max_retries)
        return (2 ** r) * self.slot_s * self.contention_window

    def exhausted(self, retry: int) -> bool:
        """True once the retry budget is spent (packet should be dropped)."""
        return retry > self.max_retries
