"""Baseline MAC wiring: pure LEACH access, same machinery, no gate.

The paper's baseline shares everything with CAEM except channel awareness:
it still uses the tone channel for medium access (it must know when the
channel is free) but its transmission policy ignores CSI.  This module
exists to make that relationship explicit in code — the baseline *is* a
:class:`~repro.mac.caem.CaemSensorMac` with
:class:`~repro.policy.unconstrained.AlwaysTransmitPolicy` — and to give
the factory a single construction point used by the network layer.
"""

from __future__ import annotations

import numpy as np

from ..config import MacConfig, PhyConfig, PolicyConfig, Protocol
from ..phy.abicm import AbicmTable
from ..phy.radio import DataRadio, ToneRadio
from ..policy import ThresholdLadder, make_policy
from ..sim import Simulator
from ..traffic.buffer import PacketBuffer
from .backoff import BackoffPolicy
from .caem import CaemSensorMac

__all__ = ["build_sensor_mac"]


def build_sensor_mac(
    protocol: Protocol,
    sim: Simulator,
    node_id: int,
    buffer: PacketBuffer,
    abicm: AbicmTable,
    data_radio: DataRadio,
    tone_radio: ToneRadio,
    mac_cfg: MacConfig,
    phy_cfg: PhyConfig,
    policy_cfg: PolicyConfig,
    rng: np.random.Generator,
    tracer=None,
) -> CaemSensorMac:
    """Build a sensor MAC for any of the paper's three protocols.

    ``rng`` seeds both the backoff draws and the policy (if stochastic);
    per-node streams come from :class:`repro.rng.RngRegistry`.
    """
    ladder = ThresholdLadder(abicm)
    on_change = None
    if tracer is not None:
        def on_change(now: float, old: int, new: int, _node=node_id) -> None:
            tracer.annotate(now, "policy.threshold_change",
                            node=_node, old=old, new=new)
    policy = make_policy(protocol, ladder, policy_cfg, on_change)
    backoff = BackoffPolicy(mac_cfg, rng)
    return CaemSensorMac(
        sim=sim,
        node_id=node_id,
        buffer=buffer,
        policy=policy,
        abicm=abicm,
        data_radio=data_radio,
        tone_radio=tone_radio,
        backoff=backoff,
        mac_cfg=mac_cfg,
        phy_cfg=phy_cfg,
        rng=rng,
        tracer=tracer,
    )
