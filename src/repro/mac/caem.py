"""CAEM medium access control (paper §III-B, Figs. 3–4).

Two state machines:

* :class:`CaemSensorMac` — Fig. 3.  A sensor with enough buffered packets
  turns on its tone radio and *monitors*.  On an **idle** tone pulse (after
  the sensing delay) it measures CSI from the pulse; if the transmission
  policy allows (this is where pure LEACH / Scheme 1 / Scheme 2 differ), it
  *backs off* for ``rand·2^r·slot·CW``; at expiry it re-checks (channel
  still free? quality still sufficient?) and only then wakes the data radio
  (startup cost) and transmits a burst of 3–8 packets at the ABICM mode the
  current CSI supports.  Hearing a **collision** tone mid-burst aborts the
  transmission (the two-radio design gives collision *detection*, §III-B);
  aborted packets return to the buffer for retry.
* :class:`CaemClusterHeadMac` — Fig. 4.  The cluster head drives the tone
  broadcaster from the data-channel state (idle / receive / collision
  pulses), keeps its data radio powered, receives bursts, applies the PHY
  packet-error model, and hands delivered packets to the network layer.

Layering: the MACs own protocol *behaviour*; energy flows through the
radio state machines; the :class:`~repro.channel.medium.DataChannel`
ledger arbitrates overlap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..channel.link import Link
from ..channel.medium import DataChannel, TransmissionRecord
from ..config import MacConfig, PhyConfig
from ..errors import MacError
from ..phy.abicm import AbicmTable
from ..phy.frame import BurstPlan, evaluate_burst, plan_burst
from ..phy.radio import DataRadio, ToneRadio
from ..sim import Simulator
from ..traffic.buffer import PacketBuffer
from ..traffic.packet import Packet
from ..policy.base import TransmissionPolicy
from .backoff import BackoffPolicy
from .tone import ToneBroadcaster, ToneKind

__all__ = [
    "SensorMacState",
    "MacStats",
    "ClusterContext",
    "CaemSensorMac",
    "CaemClusterHeadMac",
]


class SensorMacState(enum.Enum):
    """Sensor-side MAC states (paper Fig. 3)."""

    SLEEP = "sleep"
    MONITOR = "monitor"
    BACKOFF = "backoff"
    STARTUP = "startup"
    TRANSMIT = "transmit"


@dataclass
class MacStats:
    """Per-node MAC counters (diagnostics and metric inputs)."""

    bursts_attempted: int = 0
    bursts_completed: int = 0
    bursts_aborted: int = 0
    packets_sent: int = 0
    packets_dropped_retry: int = 0
    quality_deferrals: int = 0  # idle pulse seen but policy said no
    busy_deferrals: int = 0  # post-backoff check found channel taken
    collisions_heard: int = 0


@dataclass
class ClusterContext:
    """Everything a sensor needs to talk to its cluster head this round."""

    cluster_id: int
    channel: DataChannel
    broadcaster: ToneBroadcaster
    head: "CaemClusterHeadMac"


class CaemSensorMac:
    """Sensor-side CAEM MAC (one per sensor node).

    Parameters
    ----------
    policy:
        The transmission policy — the only place the three protocols
        differ.
    link:
        Set at :meth:`attach` time (changes every LEACH round).
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        buffer: PacketBuffer,
        policy: TransmissionPolicy,
        abicm: AbicmTable,
        data_radio: DataRadio,
        tone_radio: ToneRadio,
        backoff: BackoffPolicy,
        mac_cfg: MacConfig,
        phy_cfg: PhyConfig,
        rng: np.random.Generator,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.buffer = buffer
        self.policy = policy
        self.abicm = abicm
        self.data_radio = data_radio
        self.tone_radio = tone_radio
        self.backoff = backoff
        self.mac_cfg = mac_cfg
        self.phy_cfg = phy_cfg
        self.rng = rng
        self.tracer = tracer

        self.state = SensorMacState.SLEEP
        self.stats = MacStats()
        self.retry = 0

        self._ctx: Optional[ClusterContext] = None
        self._link: Optional[Link] = None
        #: Sensing delay of the attached cluster's tone spec, cached at
        #: attach() — read on every idle pulse while monitoring.
        self._sensing_delay_s = 0.0
        self._min_burst = mac_cfg.min_burst_packets
        self._min_burst_wait_s = mac_cfg.min_burst_wait_s
        self._monitor_since: Optional[float] = None
        self._backoff_handle = None
        self._tx_end_handle = None
        self._abort_handle = None
        self._latency_handle = None
        self._record: Optional[TransmissionRecord] = None
        self._plan: Optional[BurstPlan] = None
        self._tx_snr_db = 0.0
        self._alive = True

    # -- wiring ------------------------------------------------------------------

    @property
    def is_attached(self) -> bool:
        """True while the sensor belongs to a live cluster."""
        return self._ctx is not None

    @property
    def link(self) -> Optional[Link]:
        """This round's channel to the cluster head."""
        return self._link

    def attach(self, ctx: ClusterContext, link: Link) -> None:
        """Join a cluster for the new round."""
        if not self._alive:
            return
        if self._ctx is not None:
            self.detach()
        self._ctx = ctx
        self._link = link
        self._sensing_delay_s = ctx.broadcaster.spec.cfg.sensing_delay_s
        # Contend right away if the buffer already qualifies.
        self._maybe_start_monitoring()

    def detach(self) -> None:
        """Leave the cluster (round ended / CH died): power down, keep queue."""
        self._cancel_timers()
        if self._record is not None and self._record.active:
            # Round ended mid-burst: abort on the ledger, recover packets.
            self._ctx.channel.abort(self._record)
            self._recover_packets()
        self._record = None
        self._plan = None
        if self._ctx is not None:
            self._ctx.broadcaster.unsubscribe(self)
        self._ctx = None
        self._link = None
        self._monitor_since = None
        self.tone_radio.off()
        self.data_radio.sleep()
        self.state = SensorMacState.SLEEP

    def shutdown(self) -> None:
        """Battery died: tear down permanently."""
        if not self._alive:
            return
        self.detach()
        self._alive = False

    # -- traffic interface -----------------------------------------------------------

    def notify_arrival(self) -> None:
        """Node enqueued a packet; maybe start contending."""
        if self._alive:
            self._maybe_start_monitoring()

    def _qualifies(self) -> bool:
        # Hot path (every idle pulse for every monitoring sensor): read
        # the buffer's deque directly rather than through __len__.
        queue = self.buffer._queue
        if not queue:
            return False
        if len(queue) >= self._min_burst:
            return True
        return self.sim._now - queue[0].birth_s >= self._min_burst_wait_s

    def _maybe_start_monitoring(self) -> None:
        if (
            self.state is not SensorMacState.SLEEP
            or self._ctx is None
            or not self._alive
        ):
            return
        if self._qualifies():
            self._enter_monitor(first_time=True)
        elif self.buffer and self._latency_handle is None:
            # Arm the latency escape hatch: contend when the head packet
            # gets old even if the burst is still small.
            wait = max(
                0.0,
                self.mac_cfg.min_burst_wait_s - self.buffer.head_age_s(self.sim.now),
            )
            # Strict scheduling: firing "now" would leave the head a hair
            # under the age threshold and re-arm at the same instant forever.
            self._latency_handle = self.sim.call_in_strict(
                wait, self._latency_expired
            )

    def _latency_expired(self) -> None:
        self._latency_handle = None
        self._maybe_start_monitoring()

    # -- monitor state -----------------------------------------------------------------

    def _enter_monitor(self, first_time: bool = False) -> None:
        ctx = self._ctx
        if ctx is None or not self._alive:
            return
        self.state = SensorMacState.MONITOR
        if first_time or self._monitor_since is None:
            self._monitor_since = self.sim.now
            self.tone_radio.monitor()
            ctx.broadcaster.subscribe(self)

    def on_tone_pulse(self, kind: ToneKind, time_s: float) -> None:
        """Tone-radio reception hook (called while subscribed)."""
        if not self._alive or self._ctx is None:
            return
        if self.state is SensorMacState.MONITOR:
            if kind is ToneKind.IDLE:
                self._consider_access(time_s)
        elif self.state is SensorMacState.BACKOFF:
            if kind in (ToneKind.RECEIVE, ToneKind.COLLISION):
                # Channel taken while we were counting down.
                if self._backoff_handle is not None:
                    self._backoff_handle.cancel()
                    self._backoff_handle = None
                self.state = SensorMacState.MONITOR
        elif self.state is SensorMacState.TRANSMIT:
            if kind is ToneKind.COLLISION:
                self._on_collision_tone(time_s)

    def _consider_access(self, pulse_time: float) -> None:
        # §III-A: the sensor needs the sensing delay to classify the train.
        if (
            self._monitor_since is None
            or pulse_time - self._monitor_since < self._sensing_delay_s
        ):
            return
        if not self._qualifies():
            # Queue shrank below the burst minimum (packets dropped) —
            # go back to sleep to save the tone-rx power.
            self._go_sleep()
            return
        csi = self._link.snr_db(pulse_time)
        if not self.policy.allows(csi):
            self.stats.quality_deferrals += 1
            return
        self._begin_backoff()

    # -- backoff state -------------------------------------------------------------------

    def _begin_backoff(self) -> None:
        self.state = SensorMacState.BACKOFF
        delay = self.backoff.delay_s(self.retry)
        # Strict: a microsecond-scale backoff can underflow the clock at
        # large sim times; expiring at the same instant would re-check the
        # channel before anything changed.
        self._backoff_handle = self.sim.call_in_strict(delay, self._backoff_expired)

    def _backoff_expired(self) -> None:
        self._backoff_handle = None
        if self._ctx is None or not self._alive:
            return
        now = self.sim.now
        # Re-check both conditions (§III-B).
        if not self._ctx.channel.is_idle:
            self.stats.busy_deferrals += 1
            self.state = SensorMacState.MONITOR
            return
        if not self.policy.allows(self._link.snr_db(now)):
            self.stats.quality_deferrals += 1
            self.state = SensorMacState.MONITOR
            return
        self.state = SensorMacState.STARTUP
        self.data_radio.wake(self._radio_ready)

    # -- transmit state -------------------------------------------------------------------

    def _radio_ready(self) -> None:
        if self._ctx is None or not self._alive:
            self.data_radio.sleep()
            return
        now = self.sim.now
        n = min(len(self.buffer), self.mac_cfg.max_burst_packets)
        if n == 0:  # pragma: no cover - queue emptied by drops mid-startup
            self.data_radio.sleep()
            self._go_sleep()
            return
        packets = self.buffer.take(n)
        csi = self._link.snr_db(now)
        # Burst-by-burst adaptation: best mode the channel supports right
        # now.  In outage (possible only for the ungated baseline) fall
        # back to the most robust mode and eat the PER.
        mode = self.abicm.mode_for_snr(csi) or self.abicm.lowest
        plan = plan_burst(
            packets, mode, self.phy_cfg.packet_length_bits,
            self.phy_cfg.burst_overhead_bits,
        )
        # The next two calls can tear this MAC down reentrantly, before
        # _record exists for detach() to abort: entering TX may settle a
        # draw that empties our own battery, and begin() wakes the head's
        # receiver, whose draw may empty *its* battery — either death
        # cascade detaches us mid-call, so re-check and unwind by hand
        # (same discipline as UplinkRelay._start_burst).
        ctx = self._ctx
        self.data_radio.start_tx()
        if self._ctx is not ctx:
            self.buffer.requeue_front(packets)
            return
        record = ctx.channel.begin(self.node_id, plan.airtime_s)
        if self._ctx is not ctx:
            ctx.channel.abort(record)
            self.buffer.requeue_front(packets)
            return
        self._record = record
        self._record.meta = plan
        self._plan = plan
        # Paper assumption 3: the gain is stationary over the transmission,
        # so the PER is evaluated at the SNR the burst was planned with.
        self._tx_snr_db = csi
        self.state = SensorMacState.TRANSMIT
        self.stats.bursts_attempted += 1
        self._tx_end_handle = self.sim.call_in(plan.airtime_s, self._tx_complete)
        if self.tracer is not None:
            self.tracer.annotate(
                now, "mac.burst_start",
                node=self.node_id, n=plan.n_packets, mode=mode.index,
                snr_db=csi,
            )

    def _tx_complete(self) -> None:
        self._tx_end_handle = None
        record, plan = self._record, self._plan
        self._record, self._plan = None, None
        ctx = self._ctx
        if record is None or ctx is None:  # pragma: no cover - defensive
            return
        corrupted = record.corrupted
        ctx.channel.end(record)
        self.data_radio.sleep()
        if corrupted:
            # Completed while corrupted (e.g. the colliding sensor heard
            # the tone and aborted, but our tail still overlapped): all
            # packets are lost at the CH; treat like an abort.
            self._handle_failed_burst(plan)
            return
        self.stats.bursts_completed += 1
        self.stats.packets_sent += plan.n_packets
        self.retry = 0
        # Hand to the cluster head for PER evaluation / delivery.
        ctx.head.receive_burst(plan, self._tx_snr_db, self.node_id)
        self._after_transaction()

    def _on_collision_tone(self, pulse_time: float) -> None:
        """Collision tone heard mid-burst: stop after the pulse ends."""
        self.stats.collisions_heard += 1
        if self._abort_handle is None and self._record is not None:
            duration = self._ctx.broadcaster.spec.pulse(ToneKind.COLLISION).duration_s
            self._abort_handle = self.sim.call_in(duration, self._abort_tx)

    def _abort_tx(self) -> None:
        self._abort_handle = None
        record, plan = self._record, self._plan
        if record is None or self._ctx is None:
            return
        self._record, self._plan = None, None
        if self._tx_end_handle is not None:
            self._tx_end_handle.cancel()
            self._tx_end_handle = None
        if record.active:
            self._ctx.channel.abort(record)
        self.data_radio.sleep()
        self.stats.bursts_aborted += 1
        self._handle_failed_burst(plan)

    def _handle_failed_burst(self, plan: Optional[BurstPlan]) -> None:
        if plan is not None:
            self.buffer.requeue_front(list(plan.packets))
        self.retry += 1
        if self.backoff.exhausted(self.retry):
            # Retry budget spent: shed the head burst (data loss).
            lost = self.buffer.take(plan.n_packets if plan is not None else 0)
            self.stats.packets_dropped_retry += len(lost)
            self.retry = 0
        self._after_transaction()

    def _after_transaction(self) -> None:
        if self._ctx is None or not self._alive:
            return
        if self._qualifies():
            self.state = SensorMacState.MONITOR  # still subscribed, radio on
        else:
            self._go_sleep()

    def _go_sleep(self) -> None:
        if self._ctx is not None:
            self._ctx.broadcaster.unsubscribe(self)
        self.tone_radio.off()
        self._monitor_since = None
        self.state = SensorMacState.SLEEP
        # Re-arm the latency escape hatch for any residual packets.
        self._maybe_start_monitoring()

    # -- internals ---------------------------------------------------------------------------

    def _recover_packets(self) -> None:
        if self._plan is not None:
            self.buffer.requeue_front(list(self._plan.packets))
            self._plan = None

    def _cancel_timers(self) -> None:
        for name in ("_backoff_handle", "_tx_end_handle", "_abort_handle",
                     "_latency_handle"):
            handle = getattr(self, name)
            if handle is not None:
                handle.cancel()
                setattr(self, name, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CaemSensorMac node={self.node_id} state={self.state.value} "
            f"queue={len(self.buffer)} retry={self.retry}>"
        )


#: Delivery callback: (packets, sender_id, now) -> None.
DeliverySink = Callable[[List[Packet], int, float], None]


class CaemClusterHeadMac:
    """Cluster-head MAC (paper Fig. 4): tone driver + receiver."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        channel: DataChannel,
        broadcaster: ToneBroadcaster,
        data_radio: DataRadio,
        phy_cfg: PhyConfig,
        rng: np.random.Generator,
        on_delivered: Optional[DeliverySink] = None,
        on_lost: Optional[DeliverySink] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.channel = channel
        self.broadcaster = broadcaster
        self.data_radio = data_radio
        self.phy_cfg = phy_cfg
        self.rng = rng
        self.on_delivered = on_delivered
        self.on_lost = on_lost

        self.packets_received = 0
        self.packets_corrupted = 0
        self._running = False

        channel.on_busy = self._on_busy
        channel.on_collision = self._on_collision
        channel.on_idle = self._on_idle

    # -- lifecycle ---------------------------------------------------------------

    def reset(
        self,
        rng: np.random.Generator,
        on_delivered: Optional[DeliverySink],
        on_lost: Optional[DeliverySink],
    ) -> None:
        """Recycle this head MAC for a new term (head-stack reuse).

        The channel and broadcaster are reset to their freshly-built
        state and the per-term wiring (delivery sinks, PHY stream) is
        replaced; the observer hooks installed at construction stay bound
        to this same object.  ``rng`` is the node's registry-cached
        ``per/<id>`` stream, so the PER draw sequence continues exactly
        where a freshly constructed MAC (handed the same cached stream)
        would continue — reuse is draw-neutral.
        """
        if self._running:
            raise MacError("cannot reset a running cluster head")
        self.rng = rng
        self.on_delivered = on_delivered
        self.on_lost = on_lost
        self.packets_received = 0
        self.packets_corrupted = 0
        self.channel.reset()
        self.broadcaster.reset()

    def start(self) -> None:
        """Power up: data radio awake+idle, idle tone train running."""
        if self._running:
            raise MacError("cluster head already started")
        self._running = True
        self.data_radio.wake(self._awake)

    def _awake(self) -> None:
        if self._running:
            self.broadcaster.start(ToneKind.IDLE)

    def stop(self) -> None:
        """Round over / CH died: silence the tone, sleep the radio."""
        if not self._running:
            return
        self._running = False
        self.broadcaster.stop()
        self.data_radio.sleep()

    @property
    def is_running(self) -> bool:
        """True while serving the cluster."""
        return self._running

    # -- data-channel observers ------------------------------------------------------

    def _on_busy(self, record: TransmissionRecord) -> None:
        if not self._running:
            return
        if self.broadcaster.is_running:
            self.broadcaster.set_state(ToneKind.RECEIVE)
        if self.data_radio.is_awake:
            self.data_radio.start_rx()

    def _on_collision(self, records: List[TransmissionRecord]) -> None:
        if not self._running:
            return
        if self.broadcaster.is_running:
            self.broadcaster.set_state(ToneKind.COLLISION)

    def _on_idle(self) -> None:
        if not self._running:
            return
        if self.broadcaster.is_running:
            self.broadcaster.set_state(ToneKind.IDLE)
        if self.data_radio.is_awake:
            self.data_radio.idle()

    # -- reception ----------------------------------------------------------------------

    def receive_burst(self, plan: BurstPlan, snr_db: float, sender_id: int) -> None:
        """Evaluate a cleanly-completed burst against the PHY error model."""
        result = evaluate_burst(
            plan, snr_db, self.phy_cfg.packet_length_bits, self.rng
        )
        now = self.sim.now
        if result.delivered:
            self.packets_received += len(result.delivered)
            if self.on_delivered is not None:
                self.on_delivered(result.delivered, sender_id, now)
        if result.corrupted:
            self.packets_corrupted += len(result.corrupted)
            if self.on_lost is not None:
                self.on_lost(result.corrupted, sender_id, now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CaemClusterHeadMac node={self.node_id} "
            f"running={self._running} rx={self.packets_received}>"
        )
