"""The tone signalling channel (paper §III-A, Table I).

The cluster head broadcasts pulse trains on a dedicated low-power tone
frequency; the **inter-pulse interval** encodes the data-channel state:

* **idle** — 1 ms pulses every 50 ms ("the cluster head must periodically
  broadcast idle tone pulse series, with a period of 50 ms ... duration of
  1 ms");
* **receive** — 0.5 ms pulses every 10 ms while a burst is being received
  (these double as CSI pilots for the sender's burst-by-burst adaptation);
* **collision** — a single 0.5 ms pulse on detecting packet corruption;
* **transmit** — 0.5 ms every 15 ms (CH→BS relay; defined for completeness,
  never emitted here because the paper leaves the relay out of scope).

Sensors *subscribe* while their tone radio is on; every emitted pulse is
delivered to subscribers as ``on_tone_pulse(kind, time)``, which is both
the channel-state indicator and the CSI measurement opportunity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Protocol as TypingProtocol

from ..config import ToneConfig
from ..energy.meter import EnergyMeter
from ..errors import MacError
from ..sim import Simulator

__all__ = ["ToneKind", "TonePulseSpec", "ToneChannelSpec", "ToneBroadcaster", "ToneListener"]


class ToneKind(enum.Enum):
    """What a pulse train announces about the data channel."""

    IDLE = "idle"
    RECEIVE = "receive"
    TRANSMIT = "transmit"
    COLLISION = "collision"


@dataclass(frozen=True)
class TonePulseSpec:
    """Pulse duration + repetition period for one channel state."""

    kind: ToneKind
    duration_s: float
    period_s: Optional[float]  # None = emitted once, not periodic

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the tone radio is keyed in this state."""
        if self.period_s is None:
            return 0.0
        return self.duration_s / self.period_s


class ToneChannelSpec:
    """Table I as an object: the pulse pattern per channel state."""

    def __init__(self, cfg: Optional[ToneConfig] = None) -> None:
        cfg = cfg or ToneConfig()
        self.cfg = cfg
        self._by_kind = {
            ToneKind.IDLE: TonePulseSpec(
                ToneKind.IDLE, cfg.idle_duration_s, cfg.idle_period_s
            ),
            ToneKind.RECEIVE: TonePulseSpec(
                ToneKind.RECEIVE, cfg.receive_duration_s, cfg.receive_period_s
            ),
            ToneKind.TRANSMIT: TonePulseSpec(
                ToneKind.TRANSMIT, cfg.transmit_duration_s, cfg.transmit_period_s
            ),
            ToneKind.COLLISION: TonePulseSpec(
                ToneKind.COLLISION, cfg.collision_duration_s, None
            ),
        }

    def pulse(self, kind: ToneKind) -> TonePulseSpec:
        """The pulse spec for a channel state."""
        return self._by_kind[kind]

    def rows(self) -> List[TonePulseSpec]:
        """All specs, in Table I order."""
        return [self._by_kind[k] for k in ToneKind]

    def classify_interval(self, interval_s: float, tolerance: float = 0.25) -> ToneKind:
        """Inverse mapping: inter-pulse interval → channel state.

        This is what a sensor's tone receiver implements in hardware; the
        simulator delivers the kind directly, but the classifier is kept
        (and tested) to show the intervals are unambiguous under the
        stated tolerance.
        """
        candidates = [
            (kind, spec.period_s)
            for kind, spec in self._by_kind.items()
            if spec.period_s is not None
        ]
        for kind, period in candidates:
            if abs(interval_s - period) <= tolerance * period:
                return kind
        raise MacError(f"inter-pulse interval {interval_s * 1e3:.2f} ms is ambiguous")


class ToneListener(TypingProtocol):
    """Anything that can hear tone pulses (sensor MACs)."""

    def on_tone_pulse(self, kind: ToneKind, time_s: float) -> None:
        """Called at each pulse start while subscribed."""
        ...


class ToneBroadcaster:
    """Cluster-head side: emits the pulse train for the current state.

    Driven by the cluster-head MAC via :meth:`set_state`; charges the CH
    meter ``tone_tx`` energy per pulse (the tone radio is duty-cycled, one
    of the three "superior features" claimed in §III-A).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ToneChannelSpec,
        meter: EnergyMeter,
        name: str = "tone",
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.meter = meter
        self.name = name
        self._listeners: List[ToneListener] = []
        #: Cached delivery snapshot; rebuilt lazily after (un)subscribes
        #: so the per-pulse fan-out allocates nothing in steady state.
        self._listener_snapshot: Optional[tuple] = None
        self._kind: Optional[ToneKind] = None
        self._pulse_handle = None
        self._running = False
        #: kind -> (pulse spec, per-pulse tone_tx joules), priced once —
        #: the emit path is per-pulse-per-cluster hot.
        self._per_kind = {
            kind: (
                spec.pulse(kind),
                meter.model.power_w("tone_tx") * spec.pulse(kind).duration_s,
            )
            for kind in ToneKind
        }
        #: Total pulses emitted, by kind value (diagnostics).
        self.pulses_emitted = {k.value: 0 for k in ToneKind}

    # -- lifecycle ------------------------------------------------------------

    def start(self, kind: ToneKind = ToneKind.IDLE) -> None:
        """Begin broadcasting (CH elected); first pulse goes out now."""
        if self._running:
            raise MacError("broadcaster already running")
        self._running = True
        self._kind = None
        self.set_state(kind)

    def stop(self) -> None:
        """Cease broadcasting (CH died / round ended)."""
        self._running = False
        self._kind = None
        if self._pulse_handle is not None:
            self._pulse_handle.cancel()
            self._pulse_handle = None

    @property
    def is_running(self) -> bool:
        """True while the CH is broadcasting."""
        return self._running

    def reset(self) -> None:
        """Recycle for a new head term (head-stack reuse).

        Restores the state a freshly constructed broadcaster starts with;
        only legal while stopped, and a stale pulse handle here means a
        teardown failed to cancel — raise rather than let a zombie train
        keep pulsing into the new round.
        """
        if self._running:
            raise MacError("cannot reset a running broadcaster")
        if self._pulse_handle is not None:
            raise MacError("stale pulse handle survived stop()")
        self._listeners.clear()
        self._listener_snapshot = None
        self._kind = None
        self.pulses_emitted = {k.value: 0 for k in ToneKind}

    @property
    def current_kind(self) -> Optional[ToneKind]:
        """The state currently being announced."""
        return self._kind

    # -- state machine -----------------------------------------------------------

    def set_state(self, kind: ToneKind) -> None:
        """Switch the announced state; restarts the pulse train immediately.

        A COLLISION state emits its single pulse and then *stays* silent
        until the MAC moves the broadcaster elsewhere (the paper's CH
        "only sends out collision tone pulses once").
        """
        if not self._running:
            raise MacError("broadcaster is not running")
        if kind == self._kind:
            return
        self._kind = kind
        if self._pulse_handle is not None:
            self._pulse_handle.cancel()
            self._pulse_handle = None
        self._emit()

    def _emit(self) -> None:
        if not self._running or self._kind is None:
            return
        kind = self._kind
        pulse, pulse_energy_j = self._per_kind[kind]
        # Energy: the pulse itself.
        self.meter.charge_known("tone_tx", pulse_energy_j)
        self.pulses_emitted[kind.value] += 1
        now = self.sim.now
        # Deliver to a snapshot of listeners (they may unsubscribe inside);
        # the snapshot is cached across pulses until the roster changes.
        snapshot = self._listener_snapshot
        if snapshot is None:
            snapshot = self._listener_snapshot = tuple(self._listeners)
        for listener in snapshot:
            listener.on_tone_pulse(kind, now)
        if pulse.period_s is not None and self._kind is kind:
            # Strict re-arm: at large sim times a millisecond-scale period
            # can underflow the float clock and freeze the pulse train.
            self._pulse_handle = self.sim.call_in_strict(pulse.period_s, self._emit)

    # -- listeners ------------------------------------------------------------------

    def subscribe(self, listener: ToneListener) -> None:
        """Sensor turned its tone radio on."""
        if listener not in self._listeners:
            self._listeners.append(listener)
            self._listener_snapshot = None

    def unsubscribe(self, listener: ToneListener) -> None:
        """Sensor turned its tone radio off."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass
        else:
            self._listener_snapshot = None

    @property
    def n_listeners(self) -> int:
        """Sensors currently listening."""
        return len(self._listeners)
