"""Waitable events for the simulation kernel.

An :class:`Event` is a one-shot, multi-listener synchronisation primitive:
callbacks (or suspended processes, see :mod:`repro.sim.process`) attach to
it and are invoked when the event is *triggered* with either a value
(:meth:`Event.succeed`) or an exception (:meth:`Event.fail`).

Unlike simpy, triggering runs callbacks through the simulator's event queue
at the current time, preserving global deterministic ordering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

__all__ = ["Event", "AnyOf", "AllOf"]

_PENDING = object()


class Event:
    """One-shot waitable with success/failure semantics.

    Parameters
    ----------
    sim:
        The owning simulator; callbacks are dispatched through its queue.
    name:
        Optional label for traces and reprs.
    """

    __slots__ = ("sim", "name", "_value", "_failed", "_callbacks", "_triggered")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = _PENDING
        self._failed = False
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._triggered = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._triggered

    @property
    def failed(self) -> bool:
        """True iff the event was triggered via :meth:`fail`."""
        return self._failed

    @property
    def value(self) -> Any:
        """The success value or failure exception; raises if still pending."""
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger successfully, delivering ``value`` to all listeners."""
        self._trigger(value, failed=False)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger as failed, delivering ``exception`` to all listeners."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._trigger(exception, failed=True)
        return self

    def _trigger(self, value: Any, failed: bool) -> None:
        if self._triggered:
            raise SimulationError(f"event {self!r} triggered twice")
        self._triggered = True
        self._failed = failed
        self._value = value
        self.sim.schedule_now(self._dispatch)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    # -- listening -----------------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Attach ``fn(event)``; fires immediately (via the queue) if already
        triggered and dispatched."""
        if self._callbacks is None:
            # Already dispatched: deliver asynchronously to keep ordering sane.
            self.sim.schedule_now(fn, self)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "pending"
            if not self._triggered
            else ("failed" if self._failed else "ok")
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<Event{label} [{state}]>"


class AnyOf(Event):
    """Composite event that succeeds when *any* child triggers.

    The value is the child event that fired first.  A failing child fails
    the composite with the child's exception.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: List[Event], name: str = "any") -> None:
        super().__init__(sim, name)
        self.events = tuple(events)
        if not self.events:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child.failed:
            self.fail(child.value)
        else:
            self.succeed(child)


class AllOf(Event):
    """Composite event that succeeds when *all* children have triggered.

    The value is a tuple of child values in construction order.  The first
    failing child fails the composite immediately.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: List[Event], name: str = "all") -> None:
        super().__init__(sim, name)
        self.events = tuple(events)
        if not self.events:
            raise SimulationError("AllOf needs at least one event")
        self._remaining = len(self.events)
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child.failed:
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(tuple(ev.value for ev in self.events))
