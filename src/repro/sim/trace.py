"""Structured tracing for simulation debugging and assertions in tests.

Attach a :class:`Tracer` to a :class:`~repro.sim.simulator.Simulator` and it
records one :class:`TraceRecord` per executed event, optionally filtered.
Protocol modules additionally emit *annotations* (named, typed moments like
``"mac.collision"``) through :meth:`Tracer.annotate`, which tests use to
assert behavioural sequences without poking at internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["TraceRecord", "Annotation", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One executed kernel event."""

    time: float
    label: str


@dataclass(frozen=True)
class Annotation:
    """A protocol-level moment recorded via :meth:`Tracer.annotate`."""

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects kernel events and protocol annotations.

    Parameters
    ----------
    keep_kernel_events:
        If False (default) only annotations are stored; kernel-event
        recording is opt-in because hot simulations execute millions of
        callbacks.
    event_filter:
        Optional predicate on the callback label; only matching kernel
        events are kept.
    """

    def __init__(
        self,
        keep_kernel_events: bool = False,
        event_filter: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.keep_kernel_events = keep_kernel_events
        self.event_filter = event_filter
        self.records: List[TraceRecord] = []
        self.annotations: List[Annotation] = []

    # Called by Simulator.step for every executed event.
    def record(self, time: float, call: Any) -> None:
        if not self.keep_kernel_events:
            return
        label = getattr(call.fn, "__qualname__", repr(call.fn))
        if self.event_filter is not None and not self.event_filter(label):
            return
        self.records.append(TraceRecord(time, label))

    def annotate(self, time: float, kind: str, **data: Any) -> None:
        """Record a protocol moment (e.g. ``mac.collision``, ``policy.lower``)."""
        self.annotations.append(Annotation(time, kind, data))

    def of_kind(self, kind: str) -> List[Annotation]:
        """All annotations with the given kind, in time order."""
        return [a for a in self.annotations if a.kind == kind]

    def count(self, kind: str) -> int:
        """Number of annotations of ``kind``."""
        return sum(1 for a in self.annotations if a.kind == kind)

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self.records.clear()
        self.annotations.clear()
