"""Discrete-event simulation kernel (substrate for the CAEM reproduction).

Public surface:

* :class:`Simulator` — clock, scheduling, run loop.
* :class:`Event`, :class:`AnyOf`, :class:`AllOf` — waitables.
* :class:`Process`, :func:`spawn`, :class:`Interrupt` — generator coroutines.
* :class:`Tracer` — structured tracing for tests/diagnostics.
"""

from .events import AllOf, AnyOf, Event
from .process import Interrupt, Process, spawn
from .scheduler import EventQueue, ScheduledCall
from .simulator import Simulator, strictly_after
from .trace import Annotation, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "strictly_after",
    "Event",
    "AnyOf",
    "AllOf",
    "Process",
    "spawn",
    "Interrupt",
    "EventQueue",
    "ScheduledCall",
    "Tracer",
    "TraceRecord",
    "Annotation",
]
