"""Generator-based simulation processes (simpy-style) on top of the kernel.

A *process* is a Python generator that yields waitables:

* an :class:`~repro.sim.events.Event` — the process resumes when it
  triggers, receiving the event's value (or the exception, thrown in);
* another :class:`Process` — resumes when that process terminates;
* a ``float``/``int`` — sugar for ``sim.timeout(delay)``.

Processes are themselves events: they trigger when the generator returns
(success, value = ``StopIteration`` value) or raises (failure).

Interrupts
----------
:meth:`Process.interrupt` throws an :class:`Interrupt` into the generator at
the current simulation time, cancelling whatever it was waiting for.  The
generator may catch it and continue — this is how example code models a
sensor abandoning a backoff when the channel turns busy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Union

from ..errors import ProcessError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

__all__ = ["Process", "Interrupt", "spawn"]

Yieldable = Union[Event, "Process", float, int]


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator coroutine inside the simulation.

    Do not instantiate directly — use :func:`spawn` or
    ``Process.start(sim, gen)``.
    """

    __slots__ = ("_gen", "_waiting_on", "_started", "_interrupt_pending")

    def __init__(self, sim: "Simulator", gen: Generator[Yieldable, Any, Any],
                 name: str = "") -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise ProcessError(f"Process needs a generator, got {type(gen).__name__}")
        super().__init__(sim, name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._started = False
        self._interrupt_pending: Optional[Interrupt] = None
        # First resumption happens asynchronously at the current time so the
        # creator can hold the handle before any of the body runs.
        sim.schedule_now(self._resume, None, None)
        self._started = True

    # -- public ----------------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self._interrupt_pending = Interrupt(cause)
        waiting = self._waiting_on
        self._waiting_on = None
        # Detach from the waited event: when it later triggers, _on_wakeup
        # will see it is no longer awaited and ignore it.
        self.sim.schedule_now(self._deliver_interrupt, waiting)

    # -- engine ------------------------------------------------------------------

    def _deliver_interrupt(self, stale_wait: Optional[Event]) -> None:
        intr = self._interrupt_pending
        self._interrupt_pending = None
        if intr is None or self.triggered:
            return
        self._step(throw=intr, value=None)

    def _on_wakeup(self, event: Event) -> None:
        if self.triggered or event is not self._waiting_on:
            return  # stale wakeup (interrupted while waiting)
        self._waiting_on = None
        if event.failed:
            self._step(throw=event.value, value=None)
        else:
            self._step(throw=None, value=event.value)

    def _resume(self, _a, _b) -> None:
        if not self.triggered and self._waiting_on is None:
            self._step(throw=None, value=None)

    def _step(self, throw: Optional[BaseException], value: Any) -> None:
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as intr:
            # Uncaught interrupt terminates the process as a failure.
            self.fail(ProcessError(f"process {self.name!r} killed by {intr!r}"))
            return
        except Exception as exc:
            self.fail(exc)
            return
        try:
            event = self._coerce(target)
        except ProcessError as exc:
            self._gen.close()
            self.fail(exc)
            return
        self._wait_on(event)

    def _coerce(self, target: Yieldable) -> Event:
        if isinstance(target, Event):
            return target
        if isinstance(target, (int, float)):
            return self.sim.timeout(float(target))
        raise ProcessError(
            f"process {self.name!r} yielded unsupported {type(target).__name__}"
        )

    def _wait_on(self, event: Event) -> None:
        self._waiting_on = event
        event.add_callback(self._on_wakeup)


def spawn(sim: "Simulator", gen: Generator[Yieldable, Any, Any],
          name: str = "") -> Process:
    """Start ``gen`` as a :class:`Process` on ``sim`` and return its handle."""
    return Process(sim, gen, name)
