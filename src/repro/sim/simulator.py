"""Simulator facade: the clock, the queue, and the run loop.

Design notes
------------
* Time is a float in **seconds**; the kernel never rounds, and simultaneous
  events run in deterministic scheduling order (see scheduler module).
* Hot paths in the MAC layer use plain scheduled callbacks
  (:meth:`Simulator.call_in`) — roughly 3x cheaper than generator
  processes in CPython.  The process API (:mod:`repro.sim.process`) sits
  on top for user-facing composition, examples and tests.
* ``run_until`` executes every event with ``time <= until`` and then sets
  the clock exactly to ``until`` so back-to-back calls compose.
"""

from __future__ import annotations

import math
from heapq import heappop
from typing import Any, Callable, Optional

from ..errors import SchedulerError, SimulationError
from .events import AllOf, AnyOf, Event
from .scheduler import EventQueue, ScheduledCall

__all__ = ["Simulator", "strictly_after"]


def strictly_after(now: float, delay: float) -> float:
    """Absolute target time ``delay`` seconds after ``now``, guaranteed
    to be strictly in the future.

    At large simulation times a small positive ``delay`` can underflow the
    float resolution of the clock (``now + delay == now``); a periodic
    re-arm computed that way fires at the same instant forever, freezing
    simulated time in a zero-delay event storm.  This helper nudges an
    underflowed target to the next representable float instant so the
    clock always advances.  Every periodic re-arm (meter settling, tone
    trains, backoff, latency timers) should schedule through this guard —
    see :meth:`Simulator.call_in_strict`.
    """
    if delay < 0:
        raise SchedulerError(f"negative delay: {delay!r}")
    target = now + delay
    if target <= now:
        return math.nextafter(now, math.inf)
    return target


class Simulator:
    """Discrete-event simulator: clock + event queue + run loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.call_in(1.5, fired.append, "a")
    >>> _ = sim.call_in(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = (
        "_now",
        "_queue",
        "_running",
        "_stopped",
        "events_processed",
        "trace",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        #: Total number of callbacks executed; cheap progress/perf metric.
        self.events_processed = 0
        #: Optional repro.sim.trace.Tracer attached by diagnostics.
        self.trace = None

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live scheduled callbacks."""
        return len(self._queue)

    # -- scheduling -----------------------------------------------------------

    def call_at(
        self, time: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> ScheduledCall:
        """Schedule ``fn(*args)`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule into the past: t={time:.9g} < now={self._now:.9g}"
            )
        return self._queue.push(time, fn, args, priority)

    def call_in(
        self, delay: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> ScheduledCall:
        """Schedule ``fn(*args)`` after ``delay`` seconds (>= 0)."""
        if delay < 0:
            raise SchedulerError(f"negative delay: {delay!r}")
        return self._queue.push(self._now + delay, fn, args, priority)

    def call_in_strict(
        self, delay: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> ScheduledCall:
        """Like :meth:`call_in`, but guaranteed to fire strictly after now.

        Use this for periodic re-arms: when ``now + delay`` underflows the
        float clock resolution the target is nudged to the next
        representable instant (see :func:`strictly_after`), so a re-arming
        callback can never pin the clock in a same-instant loop.
        """
        return self._queue.push(
            strictly_after(self._now, delay), fn, args, priority
        )

    def schedule_now(self, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` at the current time (after current event)."""
        return self._queue.push(self._now, fn, args, 0)

    # -- waitables ------------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh un-triggered :class:`Event` bound to this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that succeeds ``delay`` seconds from now with ``value``.

        The target time goes through :func:`strictly_after` (parity with
        :meth:`call_in_strict`): late in a long simulation a small positive
        ``delay`` must not underflow the float clock into a same-instant
        event, or a timeout-driven wait loop would freeze simulated time.
        Consequently ``timeout(0)`` fires one float ulp after ``now``
        (unlike :meth:`call_in` with delay 0, which fires at the current
        instant) — a waited timeout always advances the clock.
        """
        ev = Event(self, name or f"timeout({delay:.6g})")
        if delay < 0:
            raise SchedulerError(f"negative timeout: {delay!r}")
        self._queue.push(strictly_after(self._now, delay), ev.succeed, (value,), 0)
        return ev

    def any_of(self, *events: Event) -> AnyOf:
        """Composite event: first of ``events``."""
        return AnyOf(self, list(events))

    def all_of(self, *events: Event) -> AllOf:
        """Composite event: all of ``events``."""
        return AllOf(self, list(events))

    # -- run loop ---------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single earliest event; returns False if queue empty."""
        call = self._queue.pop()
        if call is None:
            return False
        if call.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue returned a past event")
        self._now = call.time
        self.events_processed += 1
        if self.trace is not None:
            self.trace.record(self._now, call)
        call.fn(*call.args)
        return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue empties (or ``max_events`` callbacks ran)."""
        self._run_loop(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> None:
        """Run every event with ``time <= until``; clock ends exactly at ``until``."""
        if until < self._now:
            raise SchedulerError(
                f"run_until({until!r}) is in the past (now={self._now!r})"
            )
        self._run_loop(until=until, max_events=max_events)
        if not self._stopped:
            self._now = max(self._now, until)

    def _run_loop(self, until: Optional[float], max_events: Optional[int]) -> None:
        """Inlined event dispatch — the innermost loop of every simulation.

        One heap operation per event: the earliest live entry is inspected
        in place and popped once, instead of the peek-then-pop double head
        scan that :meth:`step` pays.  ``heappop``, the raw heap list, and
        the trace decision are all bound outside the loop; the trace-off
        fast path carries no per-event trace branch.  Events are tuples
        ``(time, priority, seq, call)`` (see :mod:`repro.sim.scheduler`),
        so ordering and lazy cancellation behave exactly as in
        :meth:`step`/:meth:`EventQueue.pop`.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        queue = self._queue
        heap = queue._heap
        pop = heappop
        horizon = math.inf if until is None else until
        # Negative = unbounded: the counter just keeps decrementing and
        # never reaches zero.
        remaining = -1 if max_events is None else max_events
        try:
            if self.trace is None:
                while remaining != 0 and not self._stopped:
                    while heap and heap[0][3].cancelled:
                        pop(heap)
                    if not heap:
                        break
                    entry = heap[0]
                    t = entry[0]
                    if t > horizon:
                        break
                    pop(heap)
                    call = entry[3]
                    queue._live -= 1
                    call._queue = None
                    self._now = t
                    self.events_processed += 1
                    call.fn(*call.args)
                    remaining -= 1
            else:
                trace = self.trace
                while remaining != 0 and not self._stopped:
                    while heap and heap[0][3].cancelled:
                        pop(heap)
                    if not heap:
                        break
                    entry = heap[0]
                    t = entry[0]
                    if t > horizon:
                        break
                    pop(heap)
                    call = entry[3]
                    queue._live -= 1
                    call._queue = None
                    self._now = t
                    self.events_processed += 1
                    trace.record(t, call)
                    call.fn(*call.args)
                    remaining -= 1
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def reset(self, start_time: float = 0.0) -> None:
        """Clear the queue and rewind the clock; for test harnesses."""
        self._queue.clear()
        self._now = float(start_time)
        self._stopped = False
        self.events_processed = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Simulator now={self._now:.6g}s pending={len(self._queue)} "
            f"processed={self.events_processed}>"
        )
