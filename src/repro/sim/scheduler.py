"""Binary-heap event queue with deterministic ordering.

The heap stores plain ``(time, priority, seq, call)`` tuples so sift
comparisons run entirely in C — tuple comparison never reaches the
:class:`ScheduledCall` payload because the monotonically increasing
sequence number is unique.  That same sequence number makes simultaneous
events fire in scheduling order, which keeps runs bit-reproducible.

Cancellation is O(1): handles are flagged and skipped when popped (lazy
deletion), the standard approach for simulation heaps where cancelled
timers are common (e.g. MAC backoff timers invalidated by a collision
tone).

This module is the innermost hot path of every simulation (see
``benchmarks/bench_kernel.py``); :meth:`EventQueue.push` deliberately
builds handles via ``__new__`` + attribute stores instead of calling the
constructor, and the run loop in :mod:`repro.sim.simulator` reaches into
``_heap`` directly.  Keep the ``(time, priority, seq)`` ordering contract
and the lazy-cancellation invariants intact when touching either side.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SchedulerError

__all__ = ["ScheduledCall", "EventQueue"]


class ScheduledCall:
    """A callback scheduled at an absolute simulation time.

    Instances are returned by :meth:`EventQueue.push` and by the
    ``Simulator.call_*`` helpers; hold on to one to :meth:`cancel` it.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        queue: "EventQueue",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark this call so the queue skips it; idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1
            self._queue = None  # type: ignore[assignment]
        # Drop references eagerly: a cancelled handle may sit in the heap
        # for a long simulated time and its args can pin large objects.
        self.fn = None  # type: ignore[assignment]
        self.args = ()

    def __lt__(self, other: "ScheduledCall") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<ScheduledCall t={self.time:.9g} {name} [{state}]>"


#: Heap entry layout; index 3 is the handle.
_Entry = Tuple[float, int, int, ScheduledCall]

_new_call = ScheduledCall.__new__


class EventQueue:
    """Min-heap of :class:`ScheduledCall` with lazy cancellation."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) scheduled calls."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> ScheduledCall:
        """Schedule ``fn(*args)`` at ``time``; returns a cancellable handle."""
        if time != time:  # NaN guard
            raise SchedulerError("cannot schedule at NaN time")
        seq = self._seq
        self._seq = seq + 1
        call = _new_call(ScheduledCall)
        call.time = time
        call.priority = priority
        call.seq = seq
        call.fn = fn
        call.args = args
        call.cancelled = False
        call._queue = self
        heappush(self._heap, (time, priority, seq, call))
        self._live += 1
        return call

    def peek_time(self) -> Optional[float]:
        """Earliest live event time, or None if empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
        return heap[0][0] if heap else None

    def pop(self) -> Optional[ScheduledCall]:
        """Remove and return the earliest live call, or None if empty."""
        heap = self._heap
        while heap:
            call = heappop(heap)[3]
            if not call.cancelled:
                self._live -= 1
                call._queue = None  # type: ignore[assignment]
                return call
        return None

    def clear(self) -> None:
        """Drop every scheduled call, releasing their callbacks eagerly.

        Routed through :meth:`ScheduledCall.cancel` so cleared handles
        also shed their ``fn``/``args`` references — a cleared queue must
        not pin large node/packet object graphs any more than a cancelled
        timer does.
        """
        for entry in self._heap:
            entry[3].cancel()
        self._heap.clear()
        self._live = 0
