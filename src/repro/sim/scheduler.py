"""Binary-heap event queue with deterministic ordering.

The queue stores :class:`ScheduledCall` handles ordered by ``(time, priority,
seq)``.  The monotonically increasing sequence number makes simultaneous
events fire in scheduling order, which keeps runs bit-reproducible.

Cancellation is O(1): handles are flagged and skipped when popped (lazy
deletion), the standard approach for simulation heaps where cancelled
timers are common (e.g. MAC backoff timers invalidated by a collision tone).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SchedulerError

__all__ = ["ScheduledCall", "EventQueue"]


class ScheduledCall:
    """A callback scheduled at an absolute simulation time.

    Instances are returned by :meth:`EventQueue.push` and by the
    ``Simulator.call_*`` helpers; hold on to one to :meth:`cancel` it.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        queue: "EventQueue",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark this call so the queue skips it; idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1
            self._queue = None  # type: ignore[assignment]
        # Drop references eagerly: a cancelled handle may sit in the heap
        # for a long simulated time and its args can pin large objects.
        self.fn = None  # type: ignore[assignment]
        self.args = ()

    def __lt__(self, other: "ScheduledCall") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<ScheduledCall t={self.time:.9g} {name} [{state}]>"


class EventQueue:
    """Min-heap of :class:`ScheduledCall` with lazy cancellation."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[ScheduledCall] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) scheduled calls."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> ScheduledCall:
        """Schedule ``fn(*args)`` at ``time``; returns a cancellable handle."""
        if time != time:  # NaN guard
            raise SchedulerError("cannot schedule at NaN time")
        call = ScheduledCall(time, priority, self._seq, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, call)
        self._live += 1
        return call

    def peek_time(self) -> Optional[float]:
        """Earliest live event time, or None if empty."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Optional[ScheduledCall]:
        """Remove and return the earliest live call, or None if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        call = heapq.heappop(self._heap)
        self._live -= 1
        call._queue = None  # type: ignore[assignment]
        return call

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def clear(self) -> None:
        """Drop every scheduled call."""
        for call in self._heap:
            call.cancelled = True
            call._queue = None  # type: ignore[assignment]
        self._heap.clear()
        self._live = 0
