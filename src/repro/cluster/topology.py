"""Field topology: node placement and distance geometry.

The paper deploys 100 static nodes in a square testing field (Table II;
edge length scan-damaged, 100 m assumed — DESIGN.md §2).  Placement is
uniform-random (the usual LEACH setting); a deterministic grid is provided
for tests and worked examples.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ClusterError

__all__ = ["Topology"]

#: Above this node count the O(N^2) pairwise matrix is skipped and
#: distances are evaluated lazily per query — ~200 MB at 5000 nodes is
#: most of the 1-CPU container's budget, and the lazy path computes the
#: identical IEEE doubles (same subtract/square/sum/sqrt sequence).
MATRIX_MAX_NODES = 600


class Topology:
    """Static node positions in a square field, with distance queries.

    ``precompute_matrix`` controls the pairwise-distance storage: ``True``
    builds the full N x N matrix up front (fast queries, O(N^2) memory),
    ``False`` computes rows on demand, and ``None`` (default) picks by
    node count (:data:`MATRIX_MAX_NODES`).  Both modes return bit-identical
    distances, so the choice is purely a memory/speed trade.
    """

    def __init__(
        self,
        positions: np.ndarray,
        field_size_m: float,
        precompute_matrix: Optional[bool] = None,
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ClusterError("positions must be an (n, 2) array")
        if positions.shape[0] < 1:
            raise ClusterError("need at least one node")
        if field_size_m <= 0:
            raise ClusterError("field size must be > 0")
        if np.any(positions < 0) or np.any(positions > field_size_m):
            raise ClusterError("positions must lie inside the field")
        self.positions = positions
        self.field_size_m = float(field_size_m)
        if precompute_matrix is None:
            precompute_matrix = positions.shape[0] <= MATRIX_MAX_NODES
        self._dist: Optional[np.ndarray] = None
        if precompute_matrix:
            # Pairwise distances, vectorised once.
            diff = positions[:, None, :] - positions[None, :, :]
            self._dist = np.sqrt((diff ** 2).sum(axis=2))
        # Data sink (uplink tier); unset until place_sink() is called.
        self._sink_pos: Tuple[float, float] | None = None
        self._sink_dist: np.ndarray | None = None

    # -- constructors -------------------------------------------------------------

    @classmethod
    def uniform(
        cls, n_nodes: int, field_size_m: float, rng: np.random.Generator
    ) -> "Topology":
        """Uniform-random placement (the paper's deployment model)."""
        if n_nodes < 1:
            raise ClusterError("need at least one node")
        pos = rng.uniform(0.0, field_size_m, size=(n_nodes, 2))
        return cls(pos, field_size_m)

    @classmethod
    def grid(cls, n_nodes: int, field_size_m: float) -> "Topology":
        """Deterministic near-square grid (tests/examples)."""
        if n_nodes < 1:
            raise ClusterError("need at least one node")
        cols = int(math.ceil(math.sqrt(n_nodes)))
        rows = int(math.ceil(n_nodes / cols))
        xs = np.linspace(field_size_m * 0.05, field_size_m * 0.95, cols)
        ys = np.linspace(field_size_m * 0.05, field_size_m * 0.95, rows)
        pts = [(x, y) for y in ys for x in xs][:n_nodes]
        return cls(np.array(pts), field_size_m)

    # -- queries ---------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes placed."""
        return self.positions.shape[0]

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between nodes ``a`` and ``b``."""
        if self._dist is not None:
            return float(self._dist[a, b])
        pos = self.positions
        dx = pos[a, 0] - pos[b, 0]
        dy = pos[a, 1] - pos[b, 1]
        return math.sqrt(dx * dx + dy * dy)

    def distances_from(self, node: int) -> np.ndarray:
        """Vector of distances from ``node`` to every node."""
        if self._dist is not None:
            return self._dist[node]
        diff = self.positions - self.positions[node]
        return np.sqrt((diff ** 2).sum(axis=1))

    def nearest(self, node: int, candidates: Sequence[int]) -> int:
        """The candidate closest to ``node`` (ties broken by lower id).

        With a distance-monotone path-loss model this is also the
        strongest-received-power cluster head, which is how LEACH sensors
        pick their cluster.
        """
        if len(candidates) == 0:
            raise ClusterError("no candidates")
        cand = np.asarray(candidates, dtype=int)
        if self._dist is not None:
            row = self._dist[node, cand]
        else:
            diff = self.positions[cand] - self.positions[node]
            row = np.sqrt((diff ** 2).sum(axis=1))
        return int(cand[int(np.argmin(row))])

    # -- sink placement (uplink/routing tier) -----------------------------------

    def place_sink(self, position: Tuple[float, float] | None = None) -> None:
        """Place the network data sink; ``None`` uses the field centre.

        The sink is the terminus of the head→sink uplink tier
        (:mod:`repro.routing`); it may lie outside the field (sink-distance
        sweeps).  Placement is idempotent and precomputes every node's
        sink distance.
        """
        if position is None:
            half = self.field_size_m / 2.0
            position = (half, half)
        x, y = float(position[0]), float(position[1])
        if not (math.isfinite(x) and math.isfinite(y)):
            raise ClusterError("sink position must be finite")
        self._sink_pos = (x, y)
        delta = self.positions - np.array([x, y])
        self._sink_dist = np.sqrt((delta ** 2).sum(axis=1))

    @property
    def sink_position(self) -> Tuple[float, float] | None:
        """The sink coordinates, or None before :meth:`place_sink`."""
        return self._sink_pos

    def sink_distance(self, node: int) -> float:
        """Euclidean distance from ``node`` to the sink."""
        if self._sink_dist is None:
            raise ClusterError("no sink placed (call place_sink first)")
        return float(self._sink_dist[node])

    def centroid(self) -> Tuple[float, float]:
        """Mean position (diagnostics)."""
        c = self.positions.mean(axis=0)
        return float(c[0]), float(c[1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology(n={self.n_nodes}, field={self.field_size_m} m)"
