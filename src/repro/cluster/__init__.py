"""LEACH clustering substrate: topology, election, membership."""

from .leach import ClusterAssignment, LeachElection
from .topology import Topology

__all__ = ["Topology", "LeachElection", "ClusterAssignment"]
