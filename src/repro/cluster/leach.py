"""LEACH cluster-head election and round bookkeeping (paper §IV).

The election rule, verbatim from the paper: node *n* generates a uniform
random number in [0, 1] and becomes cluster head for round *r* iff the
number is below

              P
    T(n) = ─────────────────        if n ∈ G,    else 0
           1 − P·(r mod 1/P)

where P is the desired CH fraction (5 %) and **G** is the set of nodes
that have *not* served as CH in the current epoch of ``1/P`` rounds.  At
the start of each epoch every (alive) node re-enters G, so over an epoch
everyone serves roughly once — the rotation that "realizes a graceful
energy consumption evenly distributed in the whole network".

Edge case the formula leaves open: a round can elect zero heads.  The
standard fix (used here, documented in DESIGN.md) is to fall back to one
uniformly-chosen eligible node so the network never idles a whole round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import numpy as np

from ..config import LeachConfig
from ..errors import ClusterError

__all__ = ["LeachElection", "ClusterAssignment"]


@dataclass(frozen=True)
class ClusterAssignment:
    """Result of one round's clustering."""

    round_index: int
    heads: tuple
    #: node id -> head id (heads map to themselves).
    membership: Dict[int, int] = field(default_factory=dict)

    def members_of(self, head: int) -> List[int]:
        """Sensor ids (excluding the head itself) served by ``head``."""
        return [n for n, h in self.membership.items() if h == head and n != head]

    @property
    def n_clusters(self) -> int:
        """Number of clusters formed."""
        return len(self.heads)


class LeachElection:
    """Stateful LEACH election across rounds."""

    def __init__(self, cfg: LeachConfig, rng: np.random.Generator) -> None:
        self.cfg = cfg
        self._rng = rng
        self.epoch_rounds = int(round(1.0 / cfg.ch_fraction))
        #: Nodes that already served as CH in the current epoch.
        self._served: Set[int] = set()
        self.rounds_run = 0
        #: head id -> times served (diagnostics / fairness tests).
        self.service_counts: Dict[int, int] = {}

    def threshold(self, round_index: int) -> float:
        """T(n) for an eligible node in the given round."""
        p = self.cfg.ch_fraction
        denom = 1.0 - p * (round_index % self.epoch_rounds)
        if denom <= 0.0:  # pragma: no cover - unreachable for valid P
            return 1.0
        return min(1.0, p / denom)

    def elect(self, round_index: int, alive: Sequence[int]) -> List[int]:
        """Pick this round's cluster heads from the alive nodes."""
        alive = list(alive)
        if not alive:
            raise ClusterError("cannot elect from an empty network")
        if round_index % self.epoch_rounds == 0:
            self._served.clear()  # new epoch: everyone eligible again
        eligible = [n for n in alive if n not in self._served]
        if not eligible:
            # All alive nodes served this epoch (deaths shrank the pool):
            # start the epoch over early.
            self._served.clear()
            eligible = alive
        t = self.threshold(round_index)
        draws = self._rng.random(len(eligible))
        heads = [n for n, u in zip(eligible, draws) if u < t]
        if not heads:
            heads = [eligible[int(self._rng.integers(len(eligible)))]]
        for h in heads:
            self._served.add(h)
            self.service_counts[h] = self.service_counts.get(h, 0) + 1
        self.rounds_run += 1
        return heads

    def form_clusters(
        self,
        round_index: int,
        alive: Sequence[int],
        nearest,
    ) -> ClusterAssignment:
        """Elect heads and attach every sensor to its nearest head.

        ``nearest(node, heads)`` resolves the strongest-signal head (see
        :meth:`repro.cluster.topology.Topology.nearest`).
        """
        heads = self.elect(round_index, alive)
        membership: Dict[int, int] = {h: h for h in heads}
        for node in alive:
            if node in membership:
                continue
            membership[node] = nearest(node, heads)
        return ClusterAssignment(round_index, tuple(heads), membership)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LeachElection(P={self.cfg.ch_fraction}, rounds={self.rounds_run}, "
            f"served_this_epoch={len(self._served)})"
        )
