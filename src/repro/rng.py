"""Deterministic, named random-number streams.

Reproducibility discipline: a simulation owns a single :class:`RngRegistry`
seeded once; every stochastic component (each link's fading, each traffic
source, the LEACH election, MAC backoff, ...) asks the registry for a
*named* stream.  Stream seeds are derived from the master seed and the name
via ``numpy.random.SeedSequence`` entropy spawning, so:

* two runs with the same master seed are bit-identical, regardless of the
  order in which components are constructed;
* changing one component's draws (e.g. sampling fading more often) never
  perturbs any other component's stream.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Union

import numpy as np

__all__ = ["RngRegistry", "NormalBlockCache", "as_normal_cache", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> np.random.SeedSequence:
    """Build a :class:`numpy.random.SeedSequence` for ``name``.

    The name is hashed with CRC32 (stable across processes and Python
    versions, unlike ``hash``) and mixed into the spawn key.
    """
    tag = zlib.crc32(name.encode("utf-8"))
    return np.random.SeedSequence(entropy=master_seed, spawn_key=(tag,))


class NormalBlockCache:
    """Standard normals drawn in blocks, served one at a time.

    ``Generator.normal()`` pays the full numpy scalar-call overhead on
    every draw — two orders of magnitude more than the ziggurat sample
    itself.  The channel processes (fading, shadowing, CSI noise) consume
    normals one at a time on the CSI-meter cadence, so this cache
    pre-draws ``block_size`` standard normals with one vectorised
    ``standard_normal`` call and serves them sequentially as plain Python
    floats.

    **Bit-reproducibility contract.** numpy generates block draws one
    value at a time from the same bit stream as scalar draws, so the
    sequence served here is *bit-identical* to what sequential
    ``Generator.normal`` calls would have produced (asserted by the
    stream-equivalence tests in ``tests/test_perf_golden.py``).  The one
    requirement is ownership: every normal consumed from the underlying
    generator must flow through the same cache.  That is exactly the
    registry discipline — one dedicated stream per stochastic component —
    so a :class:`~repro.channel.link.Link` builds a single cache and
    shares it between its shadowing and fading processes, preserving
    their interleaved draw order on the link's stream.
    """

    __slots__ = ("_gen", "_buf", "_idx", "block_size")

    def __init__(self, gen: np.random.Generator, block_size: int = 256) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {block_size}")
        self._gen = gen
        self.block_size = int(block_size)
        self._buf: list = []
        self._idx = 0

    def standard_normal(self) -> float:
        """The next N(0, 1) draw from the underlying stream."""
        i = self._idx
        buf = self._buf
        if i >= len(buf):
            buf = self._buf = self._gen.standard_normal(self.block_size).tolist()
            i = 0
        self._idx = i + 1
        return buf[i]

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Scalar ``Generator.normal`` replacement (bit-identical result).

        Mirrors numpy's ``loc + scale * standard_normal()`` formula so the
        float result matches a direct generator call exactly.
        """
        return loc + scale * self.standard_normal()

    def take3(self):
        """Three sequential draws as a tuple (bulk take).

        Exactly ``(standard_normal(), standard_normal(), standard_normal())``
        — the buffered fast path just avoids three method calls when the
        block holds enough.  The fused Link sampler additionally inlines
        this body's fast path (even one method call per advance is
        measurable against the scale gate) and falls back here across
        block boundaries; any change to ``_buf``/``_idx`` bookkeeping
        must update that inline copy in :mod:`repro.channel.link`.
        """
        buf = self._buf
        i = self._idx
        if i + 3 <= len(buf):
            self._idx = i + 3
            return buf[i], buf[i + 1], buf[i + 2]
        return (
            self.standard_normal(),
            self.standard_normal(),
            self.standard_normal(),
        )

    def rebind(self, gen: np.random.Generator) -> None:
        """Point the cache at a fresh generator, discarding buffered draws.

        The next draw pulls a new block from ``gen``'s start, so a rebound
        cache serves exactly the sequence a newly constructed cache would
        — this is what lets a pooled :class:`~repro.channel.link.Link`
        recycle its cache object across rounds without perturbing any
        stream.
        """
        self._gen = gen
        self._buf = []
        self._idx = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NormalBlockCache(block_size={self.block_size}, "
            f"buffered={len(self._buf) - self._idx})"
        )


def as_normal_cache(
    rng: Union[np.random.Generator, NormalBlockCache]
) -> NormalBlockCache:
    """Wrap a generator in a :class:`NormalBlockCache`; pass caches through.

    Lets the channel processes accept either a raw per-component stream
    (tests, ad-hoc construction) or an explicitly shared cache (a Link's
    shadowing + fading pair, which interleave draws on one stream).
    """
    if isinstance(rng, NormalBlockCache):
        return rng
    return NormalBlockCache(rng)


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    master_seed:
        Any non-negative integer.  Two registries with equal seeds produce
        identical streams for identical names.

    Examples
    --------
    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("fading/link-0")
    >>> b = rngs.stream("fading/link-1")
    >>> a is rngs.stream("fading/link-0")
    True
    """

    __slots__ = ("_master_seed", "_streams")

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError(f"master_seed must be >= 0, got {master_seed}")
        self._master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The seed this registry was built from."""
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``, creating it on demand."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(
                np.random.PCG64(derive_seed(self._master_seed, name))
            )
            self._streams[name] = gen
        return gen

    def derive(self, name: str) -> np.random.Generator:
        """A fresh generator for ``name``, *not* cached in the registry.

        Identical stream to what :meth:`stream` would create for the same
        name — use it for single-consumer, never-revisited names (the
        per-round ``link/r<N>/...`` streams), where caching would grow the
        registry by thousands of dead generators per simulated round.
        Never mix: a name must go through either :meth:`stream` or
        :meth:`derive`, since a derived generator cannot continue a cached
        stream's position.
        """
        return np.random.Generator(
            np.random.PCG64(derive_seed(self._master_seed, name))
        )

    def names(self) -> Iterable[str]:
        """Names of all streams created so far (insertion order)."""
        return tuple(self._streams)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RngRegistry(master_seed={self._master_seed}, "
            f"streams={len(self._streams)})"
        )
