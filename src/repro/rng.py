"""Deterministic, named random-number streams.

Reproducibility discipline: a simulation owns a single :class:`RngRegistry`
seeded once; every stochastic component (each link's fading, each traffic
source, the LEACH election, MAC backoff, ...) asks the registry for a
*named* stream.  Stream seeds are derived from the master seed and the name
via ``numpy.random.SeedSequence`` entropy spawning, so:

* two runs with the same master seed are bit-identical, regardless of the
  order in which components are constructed;
* changing one component's draws (e.g. sampling fading more often) never
  perturbs any other component's stream.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> np.random.SeedSequence:
    """Build a :class:`numpy.random.SeedSequence` for ``name``.

    The name is hashed with CRC32 (stable across processes and Python
    versions, unlike ``hash``) and mixed into the spawn key.
    """
    tag = zlib.crc32(name.encode("utf-8"))
    return np.random.SeedSequence(entropy=master_seed, spawn_key=(tag,))


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    master_seed:
        Any non-negative integer.  Two registries with equal seeds produce
        identical streams for identical names.

    Examples
    --------
    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("fading/link-0")
    >>> b = rngs.stream("fading/link-1")
    >>> a is rngs.stream("fading/link-0")
    True
    """

    __slots__ = ("_master_seed", "_streams")

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError(f"master_seed must be >= 0, got {master_seed}")
        self._master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The seed this registry was built from."""
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``, creating it on demand."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(
                np.random.PCG64(derive_seed(self._master_seed, name))
            )
            self._streams[name] = gen
        return gen

    def names(self) -> Iterable[str]:
        """Names of all streams created so far (insertion order)."""
        return tuple(self._streams)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RngRegistry(master_seed={self._master_seed}, "
            f"streams={len(self._streams)})"
        )
