"""Spatial indexing for scale-tier networks.

The paper's evaluation runs ~100 nodes, where brute-force distance scans
are free.  At 1000–5000 nodes the per-round O(alive x heads) nearest-head
scan and the O(N^2) pairwise distance matrix stop being free, so this
package provides a seeded, deterministic spatial grid index whose answers
are **bit-identical** to the brute-force scan (including tie order) —
pinned by the property tests in ``tests/test_topology_index.py``.

:class:`~repro.topology.grid.GridIndex` is the index itself;
:class:`~repro.topology.grid.GridNearest` adapts it to the
``nearest(node, candidates)`` callable the LEACH election consumes,
rebuilding the per-round index lazily for each head set.
"""

from .grid import GridIndex, GridNearest

__all__ = ["GridIndex", "GridNearest"]
