"""Uniform-cell spatial grid with brute-force-identical nearest queries.

The index buckets candidate points into square cells of roughly one
candidate each and answers nearest-neighbour queries by expanding ring
search.  Two properties make it a drop-in replacement for the brute-force
scan in :meth:`repro.cluster.topology.Topology.nearest`:

* **identical arithmetic** — candidate distances are evaluated as
  ``sqrt(dx*dx + dy*dy)`` in double precision, the exact float sequence
  the vectorised pairwise matrix produces, so comparisons see the same
  (possibly rounded) values;
* **identical tie order** — among equal distances the candidate earliest
  in the *candidate sequence* wins, matching ``np.argmin``'s
  first-occurrence rule.  Bucket lists keep candidate order, and ring
  expansion only stops once a strictly closer ring is impossible
  (``ring_min > best``), so an equal-distance candidate in a farther ring
  is still found and resolved by order.

Queries may lie outside the indexed field (the sink in a sink-distance
sweep): cell coordinates are unclamped and the ring lower bound
``(r - 1) * cell`` holds for any query position.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ClusterError

__all__ = ["GridIndex", "GridNearest"]


class GridIndex:
    """Spatial hash over a fixed set of candidate points.

    Parameters
    ----------
    points:
        ``(k, 2)`` array of candidate coordinates, in *candidate order*
        (the order ties resolve to — for cluster formation, the elected
        head sequence).
    field_size_m:
        Extent used to pick the cell size; points may lie anywhere.
    cell_size_m:
        Explicit cell size override (defaults to ``field / sqrt(k)``,
        about one candidate per cell for uniform deployments).
    """

    __slots__ = (
        "n",
        "_xs",
        "_ys",
        "_cell",
        "_buckets",
        "_bx_min",
        "_bx_max",
        "_by_min",
        "_by_max",
    )

    def __init__(
        self,
        points: np.ndarray,
        field_size_m: float,
        cell_size_m: Optional[float] = None,
    ) -> None:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ClusterError("grid index needs an (k, 2) point array")
        k = points.shape[0]
        if k < 1:
            raise ClusterError("grid index needs at least one point")
        if field_size_m <= 0:
            raise ClusterError("field size must be > 0")
        self.n = k
        self._xs: List[float] = points[:, 0].tolist()
        self._ys: List[float] = points[:, 1].tolist()
        if cell_size_m is None:
            cell_size_m = field_size_m / max(1.0, math.sqrt(k))
        if cell_size_m <= 0:
            raise ClusterError("cell size must be > 0")
        self._cell = float(cell_size_m)
        buckets: Dict[Tuple[int, int], List[int]] = {}
        cell = self._cell
        for order in range(k):
            key = (int(self._xs[order] // cell), int(self._ys[order] // cell))
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [order]
            else:
                bucket.append(order)
        self._buckets = buckets
        bxs = [key[0] for key in buckets]
        bys = [key[1] for key in buckets]
        self._bx_min, self._bx_max = min(bxs), max(bxs)
        self._by_min, self._by_max = min(bys), max(bys)

    def nearest(self, x: float, y: float) -> int:
        """Candidate-order index of the point nearest ``(x, y)``.

        Equivalent to ``argmin`` over the candidate distance row: the
        strictly nearest candidate, ties broken by candidate order.
        """
        cell = self._cell
        cx = int(x // cell)
        cy = int(y // cell)
        buckets = self._buckets
        xs = self._xs
        ys = self._ys
        best_d = math.inf
        best_order = -1
        # All occupied cells lie within this Chebyshev radius of the query.
        max_ring = max(
            cx - self._bx_min,
            self._bx_max - cx,
            cy - self._by_min,
            self._by_max - cy,
            0,
        )
        r = 0
        while True:
            if r == 0:
                ring: Sequence[Tuple[int, int]] = ((cx, cy),)
            else:
                ring = self._ring_cells(cx, cy, r)
            for key in ring:
                bucket = buckets.get(key)
                if bucket is None:
                    continue
                for order in bucket:
                    dx = xs[order] - x
                    dy = ys[order] - y
                    d = math.sqrt(dx * dx + dy * dy)
                    if d < best_d or (d == best_d and order < best_order):
                        best_d = d
                        best_order = order
            # Ring r+1 is at least r*cell away; <= keeps expanding while an
            # exact-distance tie (with a lower candidate order) is possible.
            if best_order >= 0 and r * cell > best_d:
                break
            r += 1
            if r > max_ring:
                break
        return best_order

    @staticmethod
    def _ring_cells(cx: int, cy: int, r: int) -> List[Tuple[int, int]]:
        """Cells at Chebyshev distance exactly ``r`` from ``(cx, cy)``."""
        cells: List[Tuple[int, int]] = []
        top, bottom = cy + r, cy - r
        for gx in range(cx - r, cx + r + 1):
            cells.append((gx, top))
            cells.append((gx, bottom))
        for gy in range(cy - r + 1, cy + r):
            cells.append((cx - r, gy))
            cells.append((cx + r, gy))
        return cells


class GridNearest:
    """Per-round ``nearest(node, candidates)`` adapter over :class:`GridIndex`.

    The LEACH election resolves every sensor's nearest head through one
    callable; this adapter builds a :class:`GridIndex` over the head set
    the first time a round queries it and serves all further queries
    from the index.  Head sets smaller than ``min_candidates`` fall back
    to the brute-force scan, where the index cannot win.

    **Caller contract.**  Within one round every query must pass the
    *same candidate sequence object*, unmutated — that object's identity
    is the cache key (``LeachElection.form_clusters`` passes its one
    ``heads`` list for the whole round, which is exactly this shape).
    The network additionally calls :meth:`invalidate` at each round
    boundary, so a stale index can never leak across rounds even if a
    future caller recycles a list object.
    """

    __slots__ = ("topology", "min_candidates", "_cand", "_index")

    def __init__(self, topology, min_candidates: int = 8) -> None:
        self.topology = topology
        self.min_candidates = min_candidates
        self._cand: Optional[Sequence[int]] = None
        self._index: Optional[GridIndex] = None

    def invalidate(self) -> None:
        """Drop the cached index (call at every round boundary)."""
        self._cand = None
        self._index = None

    def __call__(self, node: int, candidates: Sequence[int]) -> int:
        if len(candidates) < self.min_candidates:
            return self.topology.nearest(node, candidates)
        if candidates is not self._cand:
            self._cand = candidates
            self._index = GridIndex(
                self.topology.positions[np.asarray(candidates, dtype=int)],
                self.topology.field_size_m,
            )
        pos = self.topology.positions
        order = self._index.nearest(float(pos[node, 0]), float(pos[node, 1]))
        return int(candidates[order])
