"""Background campaign jobs for the service tier.

A :class:`JobManager` owns a FIFO of submitted campaign specs and a small
pool of worker threads.  Each worker executes one job at a time through
the content-addressed :class:`~repro.service.cache.RunCache` (so
resubmitting a finished campaign is pure reads) and the existing
``--jobs`` process-pool executor (``run_scenarios``), appending every
simulated row to the shared result database.

Two spec shapes are accepted (JSON over the HTTP API, or dicts in
process):

* **experiment spec** — ``{"experiment": "fig8", "preset": "smoke",
  "seeds": [1, 2], "loads": [5, 15], "jobs": 2}`` runs a registered
  experiment and retains its rendered figure;
* **grid spec** — ``{"preset": "smoke", "axes": {"protocol":
  ["pure_leach", "scheme1"], "load_pps": [5.0]}, "seeds": [1],
  "horizon_s": 6.0}`` runs an ad-hoc :class:`~repro.api.Campaign`.

Progress is recorded as an append-only event list per job (a ``plan``
event, one ``cell`` event per grid cell, and a terminal ``done`` /
``failed``), which the HTTP layer exposes both as a poll snapshot and as
an NDJSON stream.
"""

from __future__ import annotations

import contextlib
import itertools
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..api import (
    Campaign,
    CampaignIncompleteError,
    ExecutorSpec,
    Scenario,
    SupervisorConfig,
    get_experiment,
    use_executor,
    use_run_cache,
    use_supervisor,
)
from ..errors import ExperimentError
from ..exec.base import get_executor
from .cache import RunCache
from .db import DbResultStore

__all__ = ["JobRecord", "JobManager"]

_TERMINAL = ("done", "failed", "incomplete", "aborted")


@dataclass
class JobRecord:
    """One submitted campaign: spec, status, progress events, result.

    Terminal statuses: ``done`` (every cell completed), ``failed`` (the
    job itself errored), ``incomplete`` (supervised run finished with
    quarantined cells — ``report`` holds the manifest's ledger), and
    ``aborted`` (server shut down before/while the job ran).  Whatever
    the path out, the condition is notified, so ``wait``/``wait_events``
    long-pollers are never stranded.
    """

    job_id: str
    spec: Dict[str, Any]
    status: str = "queued"  # queued | running | done | failed |
    #                         incomplete | aborted
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    total_cells: int = 0
    completed_cells: int = 0
    #: Worker attempts beyond the first, across all cells (supervised).
    retries: int = 0
    #: Cells that exhausted their retry budget (supervised).
    quarantined: int = 0
    cache: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: Manifest status report (supervised jobs that end incomplete).
    report: Optional[Dict[str, Any]] = None
    #: Rendered figure text (experiment specs only).
    figure_text: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._cond = threading.Condition()
        #: Config digests of a grid job's cells (set at submit time) —
        #: lets the aggregation endpoint scope the result database to
        #: exactly this job's rows.  Not part of the JSON snapshot.
        self._digests: Optional[set] = None

    @property
    def finished(self) -> bool:
        return self.status in _TERMINAL

    def emit(self, event: Dict[str, Any]) -> None:
        """Append one progress event (thread-safe, wakes streamers)."""
        with self._cond:
            event = dict(event)
            event["seq"] = len(self.events)
            event["job_id"] = self.job_id
            self.events.append(event)
            if event.get("type") == "plan":
                self.total_cells = int(event.get("total", 0))
            elif event.get("type") == "cell":
                self.completed_cells += 1
            elif event.get("type") == "retry":
                self.retries += 1
            elif event.get("type") == "quarantine":
                self.quarantined += 1
            self._cond.notify_all()

    def wait_events(self, after_seq: int, timeout: float
                    ) -> List[Dict[str, Any]]:
        """Events past ``after_seq``; blocks up to ``timeout`` for news."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while (
                len(self.events) <= after_seq
                and not self.finished
                and time.monotonic() < deadline
            ):
                self._cond.wait(timeout=max(0.05, deadline - time.monotonic()))
            return list(self.events[after_seq:])

    def wait(self, timeout: float = 60.0) -> bool:
        """Block until the job reaches a terminal state (True) or timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self.finished and time.monotonic() < deadline:
                self._cond.wait(timeout=max(0.05, deadline - time.monotonic()))
            return self.finished

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe status view (what ``GET /campaigns/<id>`` returns)."""
        with self._cond:
            return {
                "job_id": self.job_id,
                "spec": self.spec,
                "status": self.status,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "total_cells": self.total_cells,
                "completed_cells": self.completed_cells,
                "retries": self.retries,
                "quarantined": self.quarantined,
                "cache": dict(self.cache),
                "error": self.error,
                "report": self.report,
                "has_figure": self.figure_text is not None,
                "events": len(self.events),
            }

    def _finish(self, status: str, error: Optional[str] = None) -> None:
        with self._cond:
            if self.status in _TERMINAL:
                return  # first terminal transition wins (abort vs worker)
            self.status = status
            self.error = error
            self.finished_at = time.time()
            self._cond.notify_all()

    def abort(self, reason: str) -> None:
        """Force a terminal ``aborted`` state and wake every waiter.

        Used by :meth:`JobManager.shutdown` so a job that never ran (or
        was still running when the server stopped) cannot strand
        ``wait_events`` long-pollers on a status that will never change.
        Idempotent; a job that already reached a terminal state is left
        untouched.
        """
        with self._cond:
            if self.status in _TERMINAL:
                return
        self.emit({"type": "aborted", "error": reason})
        self._finish("aborted", error=reason)


class JobManager:
    """FIFO of campaign jobs drained by a worker thread pool."""

    def __init__(
        self,
        db: DbResultStore,
        workers: int = 1,
        sim_jobs: int = 1,
        board=None,
    ):
        if workers < 1:
            raise ExperimentError("JobManager needs at least one worker")
        self.db = db
        #: Parallelism handed to run_scenarios for each job's misses —
        #: the existing ``--jobs`` process-pool executor, reused.
        self.sim_jobs = max(1, sim_jobs)
        #: The distributed lease board (``serve --distributed``): jobs
        #: whose spec asks for the distributed executor attach to this
        #: instead of self-hosting a coordinator, and remote workers
        #: reach it through the server's ``/work/*`` endpoints.
        self.board = board
        self._jobs: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"campaign-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission / lookup ---------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> JobRecord:
        """Validate ``spec``, enqueue it, return its (queued) record.

        Validation happens *here* so a bad spec fails the submitting HTTP
        request with a clear message instead of a failed background job.
        """
        plan = self._build_plan(spec)  # raises ExperimentError on a bad spec
        self._executor_for(spec)  # likewise for the executor request
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            record = JobRecord(job_id=job_id, spec=dict(spec), submitted_at=time.time())
            if plan["kind"] == "grid":
                record._digests = {
                    sc.config.digest() for sc in plan["campaign"].scenarios()
                }
            self._jobs[job_id] = record
            self._order.append(job_id)
        self._queue.put(job_id)
        return record

    def get(self, job_id: str) -> JobRecord:
        try:
            with self._lock:
                return self._jobs[job_id]
        except KeyError:
            raise ExperimentError(f"unknown job {job_id!r}") from None

    def list(self) -> List[JobRecord]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def shutdown(self) -> None:
        """Stop the workers; abort anything that will never finish.

        Queued jobs are drained and marked ``aborted`` immediately (their
        worker will never pick them up), then each worker gets a stop
        sentinel and a bounded join.  Any job still non-terminal after
        that — a worker hung mid-campaign, or a join that timed out — is
        force-aborted too, so every ``wait``/``wait_events`` long-poller
        wakes with a terminal status instead of blocking forever.
        """
        pending: List[str] = []
        try:
            while True:
                item = self._queue.get_nowait()
                if item is not None:
                    pending.append(item)
        except queue.Empty:
            pass
        for _ in self._workers:
            self._queue.put(None)
        for job_id in pending:
            self.get(job_id).abort("server shut down before the job started")
        for thread in self._workers:
            thread.join(timeout=5.0)
        for record in self.list():
            if not record.finished:
                record.abort("server shut down while the job was running")
        if self.board is not None:
            # Release every lease a distributed campaign still holds:
            # shutdown must never strand a cell in ``leased`` (its worker
            # may be gone, and nothing would ever expire it once the
            # coordinator's sweep loop stops).  The attempt is refunded —
            # shutdown is not the cell's fault.
            self.board.release_all()

    # -- execution -------------------------------------------------------------

    def _executor_for(self, spec: Dict[str, Any]) -> Optional[ExecutorSpec]:
        """The :class:`ExecutorSpec` a job spec asks for, or ``None``.

        ``{"executor": "pool:4"}`` / ``{"executor": {"kind":
        "supervised", "retries": 1}}`` is the one spelling; the legacy
        ``supervise``/``cell_timeout_s``/``max_attempts`` keys keep
        working through :meth:`_supervisor_for` (and cannot be combined
        with ``executor`` — the spec already carries that policy).  A
        distributed request requires the server to own a lease board
        (``serve --distributed``); rejecting it here fails the submitting
        HTTP request instead of a background job.
        """
        if "executor" not in spec:
            return None
        if any(spec.get(k) for k in ("supervise", "cell_timeout_s",
                                     "max_attempts")):
            raise ExperimentError(
                "campaign spec has both 'executor' and legacy supervision "
                "keys; the executor spec already carries the fault policy"
            )
        executor = ExecutorSpec.normalize(spec["executor"])
        if executor.kind == "distributed" and self.board is None:
            raise ExperimentError(
                "spec asks for the distributed executor but this server "
                "has no lease board — start it with 'repro-caem serve "
                "--distributed'"
            )
        return executor

    @staticmethod
    def _supervisor_for(spec: Dict[str, Any]) -> Optional[SupervisorConfig]:
        """The fault-tolerance policy a spec asks for, or ``None``.

        Supervision is opt-in per job: any of ``supervise`` (truthy),
        ``cell_timeout_s``, or ``max_attempts`` switches the job's cells
        to the watchdog/retry/quarantine executor.  Quarantined cells
        surface as :class:`~repro.api.CampaignIncompleteError`, which
        ``_run_job`` converts to an explicit ``incomplete`` terminal
        status — never a silent partial figure.
        """
        keys = ("supervise", "cell_timeout_s", "max_attempts")
        if not any(spec.get(key) for key in keys):
            return None
        try:
            timeout = spec.get("cell_timeout_s")
            return SupervisorConfig(
                cell_timeout_s=float(timeout) if timeout is not None else None,
                max_attempts=int(spec.get("max_attempts", 3)),
            )
        except (TypeError, ValueError) as exc:
            raise ExperimentError(
                f"bad supervision settings in campaign spec: {exc}"
            ) from None

    @staticmethod
    def _build_plan(spec: Dict[str, Any]) -> Dict[str, Any]:
        """Normalise/validate a spec into an execution plan."""
        if not isinstance(spec, dict):
            raise ExperimentError("campaign spec must be a JSON object")
        JobManager._supervisor_for(spec)  # fail fast on bad settings
        if "experiment" in spec:
            name = spec["experiment"]
            get_experiment(name)  # raises with the known-names list
            return {"kind": "experiment", "name": name}
        if "axes" in spec:
            axes = spec["axes"]
            if not isinstance(axes, dict) or not axes:
                raise ExperimentError(
                    "grid spec needs a non-empty 'axes' object "
                    "(e.g. {\"protocol\": [\"scheme1\"]})"
                )
            # Build the campaign now: Campaign.over fails fast on bad
            # axis names/values, which is exactly the validation we want.
            base = Scenario.from_preset(spec.get("preset", "smoke"))
            runtime = {
                key: float(spec[key])
                for key in ("horizon_s", "sample_interval_s")
                if key in spec
            }
            if runtime:
                base = base.with_runtime(**runtime)
            campaign = Campaign(base, name=str(spec.get("name", "campaign")))
            campaign.over(**axes)
            if spec.get("seeds"):
                campaign.seeds([int(s) for s in spec["seeds"]])
            return {"kind": "grid", "campaign": campaign}
        raise ExperimentError(
            "campaign spec needs either 'experiment' (a registered "
            "experiment name) or 'axes' (a Campaign grid)"
        )

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            record = self.get(job_id)
            record.started_at = time.time()
            record.status = "running"
            try:
                self._run_job(record)
                record._finish("done")
            except Exception as exc:  # noqa: BLE001 - job isolation barrier
                record.emit(
                    {
                        "type": "failed",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                record._finish(
                    "failed",
                    error="".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip(),
                )

    def _run_job(self, record: JobRecord) -> None:
        spec = record.spec
        plan = self._build_plan(spec)
        executor_spec = self._executor_for(spec)
        supervise = None if executor_spec is not None \
            else self._supervisor_for(spec)
        cache = RunCache(self.db, on_event=record.emit, manifest=True)
        if executor_spec is not None:
            # Instantiated here (not inside use_executor) so a
            # distributed job attaches to the server's shared lease
            # board; closed in the finally below.
            executor = get_executor(executor_spec, board=self.board)
            execution = use_executor(executor)
        else:
            executor = None
            execution = (
                use_supervisor(supervise) if supervise is not None
                else contextlib.nullcontext()
            )
        try:
            with use_run_cache(cache), execution:
                if plan["kind"] == "experiment":
                    exp = get_experiment(plan["name"])
                    figure = exp.run(
                        preset=spec.get("preset", "smoke"),
                        seeds=tuple(int(s) for s in spec.get("seeds", (1,))),
                        loads_pps=(
                            tuple(float(v) for v in spec["loads"])
                            if spec.get("loads") else None
                        ),
                        jobs=int(spec.get("jobs", self.sim_jobs)),
                    )
                    record.figure_text = figure.render()
                else:
                    plan["campaign"].run(jobs=int(spec.get("jobs", self.sim_jobs)))
        except CampaignIncompleteError as exc:
            # Quarantined cells: an explicit partial outcome, not a crash.
            # Completed cells are already persisted; resubmitting the same
            # spec resumes from the manifest and retries only the rest.
            record.cache = cache.stats.as_dict()
            record.report = exc.report
            record.emit(
                {
                    "type": "incomplete",
                    "quarantined": len(exc.failures),
                    "error": str(exc),
                    "report": exc.report,
                    "cache": record.cache,
                }
            )
            record._finish("incomplete", error=str(exc))
            return
        finally:
            if executor is not None:
                executor.close()
        record.cache = cache.stats.as_dict()
        record.emit({"type": "done", "cache": record.cache})
