"""Background campaign jobs for the service tier.

A :class:`JobManager` owns a FIFO of submitted campaign specs and a small
pool of worker threads.  Each worker executes one job at a time through
the content-addressed :class:`~repro.service.cache.RunCache` (so
resubmitting a finished campaign is pure reads) and the existing
``--jobs`` process-pool executor (``run_scenarios``), appending every
simulated row to the shared result database.

Two spec shapes are accepted (JSON over the HTTP API, or dicts in
process):

* **experiment spec** — ``{"experiment": "fig8", "preset": "smoke",
  "seeds": [1, 2], "loads": [5, 15], "jobs": 2}`` runs a registered
  experiment and retains its rendered figure;
* **grid spec** — ``{"preset": "smoke", "axes": {"protocol":
  ["pure_leach", "scheme1"], "load_pps": [5.0]}, "seeds": [1],
  "horizon_s": 6.0}`` runs an ad-hoc :class:`~repro.api.Campaign`.

Progress is recorded as an append-only event list per job (a ``plan``
event, one ``cell`` event per grid cell, and a terminal ``done`` /
``failed``), which the HTTP layer exposes both as a poll snapshot and as
an NDJSON stream.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..api import Campaign, Scenario, get_experiment, use_run_cache
from ..errors import ExperimentError
from .cache import RunCache
from .db import DbResultStore

__all__ = ["JobRecord", "JobManager"]

_TERMINAL = ("done", "failed")


@dataclass
class JobRecord:
    """One submitted campaign: spec, status, progress events, result."""

    job_id: str
    spec: Dict[str, Any]
    status: str = "queued"  # queued | running | done | failed
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    total_cells: int = 0
    completed_cells: int = 0
    cache: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: Rendered figure text (experiment specs only).
    figure_text: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._cond = threading.Condition()

    @property
    def finished(self) -> bool:
        return self.status in _TERMINAL

    def emit(self, event: Dict[str, Any]) -> None:
        """Append one progress event (thread-safe, wakes streamers)."""
        with self._cond:
            event = dict(event)
            event["seq"] = len(self.events)
            event["job_id"] = self.job_id
            self.events.append(event)
            if event.get("type") == "plan":
                self.total_cells = int(event.get("total", 0))
            elif event.get("type") == "cell":
                self.completed_cells += 1
            self._cond.notify_all()

    def wait_events(self, after_seq: int, timeout: float
                    ) -> List[Dict[str, Any]]:
        """Events past ``after_seq``; blocks up to ``timeout`` for news."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while (
                len(self.events) <= after_seq
                and not self.finished
                and time.monotonic() < deadline
            ):
                self._cond.wait(timeout=max(0.05, deadline - time.monotonic()))
            return list(self.events[after_seq:])

    def wait(self, timeout: float = 60.0) -> bool:
        """Block until the job reaches a terminal state (True) or timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self.finished and time.monotonic() < deadline:
                self._cond.wait(timeout=max(0.05, deadline - time.monotonic()))
            return self.finished

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe status view (what ``GET /campaigns/<id>`` returns)."""
        with self._cond:
            return {
                "job_id": self.job_id,
                "spec": self.spec,
                "status": self.status,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "total_cells": self.total_cells,
                "completed_cells": self.completed_cells,
                "cache": dict(self.cache),
                "error": self.error,
                "has_figure": self.figure_text is not None,
                "events": len(self.events),
            }

    def _finish(self, status: str, error: Optional[str] = None) -> None:
        with self._cond:
            self.status = status
            self.error = error
            self.finished_at = time.time()
            self._cond.notify_all()


class JobManager:
    """FIFO of campaign jobs drained by a worker thread pool."""

    def __init__(
        self,
        db: DbResultStore,
        workers: int = 1,
        sim_jobs: int = 1,
    ):
        if workers < 1:
            raise ExperimentError("JobManager needs at least one worker")
        self.db = db
        #: Parallelism handed to run_scenarios for each job's misses —
        #: the existing ``--jobs`` process-pool executor, reused.
        self.sim_jobs = max(1, sim_jobs)
        self._jobs: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"campaign-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission / lookup ---------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> JobRecord:
        """Validate ``spec``, enqueue it, return its (queued) record.

        Validation happens *here* so a bad spec fails the submitting HTTP
        request with a clear message instead of a failed background job.
        """
        self._build_plan(spec)  # raises ExperimentError on a bad spec
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            record = JobRecord(
                job_id=job_id, spec=dict(spec), submitted_at=time.time()
            )
            self._jobs[job_id] = record
            self._order.append(job_id)
        self._queue.put(job_id)
        return record

    def get(self, job_id: str) -> JobRecord:
        try:
            with self._lock:
                return self._jobs[job_id]
        except KeyError:
            raise ExperimentError(f"unknown job {job_id!r}") from None

    def list(self) -> List[JobRecord]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def shutdown(self) -> None:
        """Stop the workers after their current job (used by tests/serve)."""
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout=5.0)

    # -- execution -------------------------------------------------------------

    @staticmethod
    def _build_plan(spec: Dict[str, Any]) -> Dict[str, Any]:
        """Normalise/validate a spec into an execution plan."""
        if not isinstance(spec, dict):
            raise ExperimentError("campaign spec must be a JSON object")
        if "experiment" in spec:
            name = spec["experiment"]
            get_experiment(name)  # raises with the known-names list
            return {"kind": "experiment", "name": name}
        if "axes" in spec:
            axes = spec["axes"]
            if not isinstance(axes, dict) or not axes:
                raise ExperimentError(
                    "grid spec needs a non-empty 'axes' object "
                    "(e.g. {\"protocol\": [\"scheme1\"]})"
                )
            # Build the campaign now: Campaign.over fails fast on bad
            # axis names/values, which is exactly the validation we want.
            base = Scenario.from_preset(spec.get("preset", "smoke"))
            runtime = {
                key: float(spec[key])
                for key in ("horizon_s", "sample_interval_s")
                if key in spec
            }
            if runtime:
                base = base.with_runtime(**runtime)
            campaign = Campaign(base, name=str(spec.get("name", "campaign")))
            campaign.over(**axes)
            if spec.get("seeds"):
                campaign.seeds([int(s) for s in spec["seeds"]])
            return {"kind": "grid", "campaign": campaign}
        raise ExperimentError(
            "campaign spec needs either 'experiment' (a registered "
            "experiment name) or 'axes' (a Campaign grid)"
        )

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            record = self.get(job_id)
            record.started_at = time.time()
            record.status = "running"
            try:
                self._run_job(record)
                record._finish("done")
            except Exception as exc:  # noqa: BLE001 - job isolation barrier
                record.emit({
                    "type": "failed",
                    "error": f"{type(exc).__name__}: {exc}",
                })
                record._finish(
                    "failed",
                    error="".join(traceback.format_exception_only(
                        type(exc), exc)).strip(),
                )

    def _run_job(self, record: JobRecord) -> None:
        spec = record.spec
        plan = self._build_plan(spec)
        cache = RunCache(self.db, on_event=record.emit)
        with use_run_cache(cache):
            if plan["kind"] == "experiment":
                exp = get_experiment(plan["name"])
                figure = exp.run(
                    preset=spec.get("preset", "smoke"),
                    seeds=tuple(int(s) for s in spec.get("seeds", (1,))),
                    loads_pps=(
                        tuple(float(v) for v in spec["loads"])
                        if spec.get("loads") else None
                    ),
                    jobs=int(spec.get("jobs", self.sim_jobs)),
                )
                record.figure_text = figure.render()
            else:
                plan["campaign"].run(jobs=int(spec.get("jobs", self.sim_jobs)))
        record.cache = cache.stats.as_dict()
        record.emit({"type": "done", "cache": record.cache})
