"""Content-addressed run cache: serve stored cells, simulate only misses.

A :class:`RunCache` sits between the Campaign executor and the engine.
Before anything is simulated it pairs the scenario grid against the
result database by config digest (the same pairing the ``--from``
re-renderer uses — :mod:`repro.api.pairing`), serves every hit straight
from the stored rows, simulates only the misses, and writes the newly
simulated rows back — so a repeated sweep is 100% reads, and an enlarged
sweep only pays for the new cells.

Because stored rows round-trip exactly (JSON payloads preserve every
float bit), a fully cached campaign returns results **byte-identical** to
a fresh run, in the same order — verified by the service test-suite and
the ``service-smoke`` CI job.

Activate per call (``Campaign.run(cache=...)``) or ambiently for a whole
code region (CLI ``--cache``, the campaign server's workers)::

    from repro.api import use_run_cache
    from repro.service import DbResultStore, RunCache

    cache = RunCache(DbResultStore("results.sqlite"))
    with use_run_cache(cache):
        figure = fig8_remaining_energy(preset="quick")
    print(cache.stats.describe())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..api import campaign as _campaign
from ..api.pairing import pair_stored_runs, scenario_key
from ..api.result import RunResult

__all__ = ["CacheStats", "RunCache"]


@dataclass
class CacheStats:
    """What the cache did across one or more executions."""

    #: Cells served from the database (simulations avoided).
    hits: int = 0
    #: Cells that had to be simulated (and were then stored).
    misses: int = 0
    #: Stored payload bytes served instead of being recomputed.
    bytes_saved: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "total": self.total,
            "hit_rate": self.hit_rate,
            "bytes_saved": self.bytes_saved,
        }

    def describe(self) -> str:
        return (
            f"cache: {self.hits}/{self.total} cells served from store "
            f"({self.hit_rate:.0%}), {self.misses} simulated, "
            f"{self.bytes_saved} payload bytes saved"
        )


class RunCache:
    """Digest-keyed read-through cache over a result store.

    ``store`` is any store with ``extend`` and either ``rows_for_digests``
    (the indexed :class:`~repro.service.DbResultStore` path) or ``load``
    (flat files work too, at scan cost).  ``on_event`` receives progress
    dicts (the campaign server streams them as NDJSON): a ``plan`` event
    up front, then one ``cell`` event per grid cell with its source.
    """

    def __init__(
        self,
        store,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        manifest: bool = False,
    ):
        self.store = store
        self.stats = CacheStats()
        self.on_event = on_event
        #: Keep a durable checkpoint/resume ledger per campaign grid
        #: (see :mod:`repro.service.manifest`): hits are marked done,
        #: supervised misses record attempts/quarantines.  The manifest
        #: of the most recent :meth:`execute` is kept on
        #: :attr:`last_manifest` for reporting.
        self.keep_manifest = manifest
        self.last_manifest = None

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def _stored_candidates(self, scenarios: Sequence) -> List[tuple]:
        """Candidate ``(run, payload_bytes)`` rows for this grid."""
        digests = {scenario_key(sc)[4] for sc in scenarios}
        rows_for_digests = getattr(self.store, "rows_for_digests", None)
        if rows_for_digests is not None:
            return list(rows_for_digests(digests))
        # Flat-file fallback: full scan, size approximated from the row.
        import json

        return [
            (run, len(json.dumps(run.to_dict()).encode()))
            for run in self.store.load()
            if run.config_digest in digests
        ]

    def execute(
        self,
        scenarios: Sequence,
        jobs: int = 1,
        store=None,
        progress=None,
        experiment: Optional[str] = None,
        supervise=None,
        manifest=None,
        on_cell_event=None,
        executor=None,
    ) -> List[RunResult]:
        """The cache-aware executor body behind :func:`run_scenarios`.

        Returns results index-aligned with ``scenarios`` — exactly what
        plain execution would return, with hits read instead of computed.
        Misses are appended to the cache's own database as they finish
        (an interrupted campaign keeps its completed cells); ``store``
        (the caller's ``--store`` target, if any) still receives *every*
        result in grid order.

        ``executor`` (anything :func:`repro.api.campaign.resolve_executor`
        accepts; ``None`` consults the legacy ``supervise`` argument and
        the ambient contexts) names the backend the misses run under —
        the cache itself is backend-agnostic.  With ``manifest=True`` on
        the cache (or an explicit ``manifest`` ledger) every cell's
        progress is checkpointed durably — hits are marked done
        immediately, simulated misses record done/attempts/quarantines —
        which is what ``--resume`` reads back.
        """
        scenarios = list(scenarios)
        executor = _campaign.resolve_executor(jobs, supervise, executor)
        if manifest is None and self.keep_manifest:
            from .manifest import manifest_for_store

            manifest = manifest_for_store(self.store, scenarios, experiment)
        self.last_manifest = manifest
        candidates = self._stored_candidates(scenarios)
        sizes = {id(run): nbytes for run, nbytes in candidates}
        paired, _missing = pair_stored_runs(
            scenarios, [run for run, _ in candidates], experiment
        )

        total = len(scenarios)
        miss_indices = [i for i, run in enumerate(paired) if run is None]
        hits = total - len(miss_indices)
        self.stats.hits += hits
        self.stats.misses += len(miss_indices)
        for run in paired:
            if run is not None:
                self.stats.bytes_saved += sizes.get(id(run), 0)
        self._emit(
            {
                "type": "plan",
                "total": total,
                "cached": hits,
                "to_simulate": len(miss_indices),
            }
        )
        for i, run in enumerate(paired):
            if run is not None:
                self._emit(self._cell_event(i, total, scenarios[i], "cache"))
        if manifest is not None:
            for i, run in enumerate(paired):
                if run is not None:
                    manifest.record_done(scenario_key(scenarios[i]))

        if miss_indices:
            # Whatever executor runs the misses emits the per-cell events
            # itself (with attempt counts and retry/quarantine detail)
            # and records the manifest ledger; translate its sub-grid
            # indices back to grid coordinates and forward.
            def translate(event):
                event = dict(event)
                if "index" in event:
                    event["index"] = miss_indices[event["index"]]
                event["total"] = total
                if event.get("type") == "cell":
                    event.setdefault("source", "sim")
                self._emit(event)
                if on_cell_event is not None:
                    on_cell_event(event)

            simulated = _campaign.run_scenarios(
                [scenarios[i] for i in miss_indices],
                store=_Collector(self.store.append),
                experiment=experiment,
                cache=_campaign.NO_CACHE,
                manifest=manifest,
                on_cell_event=translate,
                executor=executor,
            )
            for index, run in zip(miss_indices, simulated):
                paired[index] = run

        results: List[RunResult] = paired  # type: ignore[assignment]
        for i, run in enumerate(results):
            if progress is not None:
                progress(i, total, scenarios[i])
            if store is not None and run is not None:
                store.append(run)
        return results

    @staticmethod
    def _cell_event(index: int, total: int, scenario, source: str
                    ) -> Dict[str, Any]:
        return {
            "type": "cell",
            "index": index,
            "total": total,
            "source": source,
            "scenario": scenario.describe(),
        }


class _Collector:
    """Adapter: present a callable as the store interface."""

    def __init__(self, fn: Callable[[RunResult], None]):
        self._fn = fn

    def append(self, run: RunResult) -> None:
        self._fn(run)
