"""``repro.service`` — simulation-as-a-service on top of :mod:`repro.api`.

Three layers, each usable on its own:

* **Result database** (:mod:`~repro.service.db`): the SQLite-backed
  :class:`DbResultStore` — same interface as the flat-file
  :class:`repro.api.ResultStore`, plus indexed reads, WAL concurrency,
  schema migrations, and JSONL/CSV import/export.  :func:`open_store`
  picks the backend by file suffix.
* **Run cache** (:mod:`~repro.service.cache`): :class:`RunCache` serves
  campaign cells whose config digest already has a stored row straight
  from the database and simulates only the misses — a repeated sweep is
  100% reads, byte-identical to a fresh run.  :class:`CacheStats` counts
  what was saved.
* **Campaign server** (:mod:`~repro.service.jobs` /
  :mod:`~repro.service.http`): ``repro-caem serve`` — submit campaigns
  over JSON/HTTP into a background :class:`JobManager`, stream NDJSON
  progress, browse rows, and re-render figures from stored rows; and
  ``repro-caem query`` (:mod:`~repro.service.query`) for the same
  filtered reads without a server.

Fault tolerance rides across all three: campaign progress checkpoints
into durable **manifests** (:mod:`~repro.service.manifest`) keyed by the
run-cache pairing, so an interrupted sweep resumes from the completed
cells; and the seeded **fault-injection harness**
(:mod:`~repro.service.faults`) drives the chaos tests — worker crashes,
hangs, torn writes, fsync failures — that prove it.
"""

from .cache import CacheStats, RunCache
from .db import DB_SUFFIXES, DbResultStore, open_store
from .faults import FaultInjector, FaultPlan, InjectedFault, inject_faults
from .gc import collect_garbage, describe_gc
from .http import CampaignServer, build_server
from .jobs import JobManager, JobRecord
from .manifest import CampaignManifest, manifest_for_store
from .migrations import MIGRATIONS, SCHEMA_VERSION, ensure_schema, schema_version
from .query import Predicate, aggregate_runs, parse_predicate, query_runs

__all__ = [
    "CacheStats",
    "CampaignManifest",
    "CampaignServer",
    "DB_SUFFIXES",
    "DbResultStore",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "JobManager",
    "JobRecord",
    "MIGRATIONS",
    "Predicate",
    "RunCache",
    "SCHEMA_VERSION",
    "aggregate_runs",
    "build_server",
    "collect_garbage",
    "describe_gc",
    "ensure_schema",
    "inject_faults",
    "manifest_for_store",
    "open_store",
    "parse_predicate",
    "query_runs",
    "schema_version",
]
