"""The SQLite-backed result database: :class:`DbResultStore`.

Implements the same ``append`` / ``extend`` / ``load`` / iterate interface
as the flat-file :class:`repro.api.ResultStore`, so everything that takes
a store (``Campaign.run(store=...)``, the CLI's ``--store`` / ``--from``)
works against a database unchanged — plus what a real database adds:

* **indexed reads** — rows keyed by ``(experiment, config_digest, seed)``
  so the campaign server and the run cache read exactly the rows they
  need instead of scanning a file;
* **WAL mode** — concurrent readers see a consistent snapshot while a
  campaign is appending (the server's query endpoints run during jobs);
* **schema migrations** — the file records its schema version and older
  files upgrade in place (see :mod:`repro.service.migrations`);
* **import/export** — one call (or ``repro-caem migrate``) moves an
  existing JSONL/CSV store into a database and back.

Full fidelity is preserved: each row stores the complete
:meth:`RunResult.to_dict` JSON payload (time series included), byte-equal
to what the JSONL store would hold, so ``--from`` re-rendering out of a
database is byte-identical to re-rendering out of the source JSONL.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..api.result import RunResult
from ..api.store import STORE_FORMAT_VERSION, ResultStore, check_format_version
from ..errors import ExperimentError
from .migrations import ensure_schema

__all__ = ["DbResultStore", "open_store", "DB_SUFFIXES"]

#: File suffixes routed to the SQLite backend by :func:`open_store`.
DB_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_store(path: Union[str, Path]) -> Union[ResultStore, "DbResultStore"]:
    """Open the right store backend for ``path`` by suffix.

    ``.sqlite`` / ``.sqlite3`` / ``.db`` → :class:`DbResultStore`;
    ``.jsonl`` / ``.csv`` → :class:`repro.api.ResultStore`.
    """
    if Path(path).suffix.lower() in DB_SUFFIXES:
        return DbResultStore(path)
    return ResultStore(path)


class DbResultStore:
    """Append-only, indexed store of :class:`RunResult` rows in SQLite."""

    format = "sqlite"

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if self.path.suffix.lower() not in DB_SUFFIXES:
            raise ExperimentError(
                f"unsupported result-database suffix {self.path.suffix!r} "
                f"(use one of {', '.join(DB_SUFFIXES)})"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Migrate eagerly so version problems surface at open, not midway
        # through a campaign append.
        with self._connect():
            pass

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """One short-lived connection per operation.

        Per-operation connections keep the store safely usable from the
        campaign server's handler and worker threads without juggling
        ``check_same_thread`` or thread-local pools; WAL mode makes the
        concurrent reader/writer interleaving consistent.  Autocommit
        (``isolation_level=None``) with explicit transactions where
        atomicity matters.
        """
        conn = sqlite3.connect(str(self.path), timeout=30.0, isolation_level=None)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            ensure_schema(conn, source=str(self.path))
            yield conn
        finally:
            conn.close()

    # -- writing ---------------------------------------------------------------

    def append(self, run: RunResult) -> None:
        """Append one run."""
        self.extend([run])

    def extend(self, runs: Sequence[RunResult]) -> None:
        """Append many runs in one transaction.

        The whole batch commits atomically: a crash (or an injected
        fault — see :mod:`repro.service.faults`) between the INSERTs and
        the COMMIT rolls back cleanly under WAL, so readers never see a
        torn batch.
        """
        if not runs:
            return
        from .faults import InjectedFault, active_faults

        faults = active_faults()
        rows = []
        for run in runs:
            payload = json.dumps(run.to_dict())
            rows.append((
                run.experiment,
                run.config_digest,
                run.seed,
                run.protocol,
                run.load_pps,
                run.horizon_s,
                run.n_nodes,
                STORE_FORMAT_VERSION,
                payload,
            ))
        fault_key = (
            f"{runs[0].config_digest}|{runs[0].protocol}|"
            f"{runs[0].load_pps!r}|{runs[0].seed}|{len(runs)}"
        )
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.executemany(
                    "INSERT INTO runs (experiment, config_digest, seed, "
                    "protocol, load_pps, horizon_s, n_nodes, "
                    "format_version, payload) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    rows,
                )
                if faults is not None and faults.torn_write(fault_key):
                    # Die after the writes, before the COMMIT — the
                    # batch must vanish on rollback, not half-appear.
                    raise InjectedFault(
                        f"injected torn write before COMMIT "
                        f"(site=store.torn_write key={fault_key})"
                    )
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")
        if faults is not None:
            faults.check_fsync(fault_key)

    # -- manifests (checkpoint/resume ledgers) ---------------------------------

    def save_manifest(self, fingerprint: str, experiment: Optional[str],
                      payload: str) -> None:
        """Upsert one campaign manifest ledger (atomic row replace)."""
        import time as _time

        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO manifests "
                "(fingerprint, experiment, updated_at, payload) "
                "VALUES (?, ?, ?, ?)",
                (fingerprint, experiment, _time.time(), payload),
            )

    def load_manifest(self, fingerprint: str) -> Optional[str]:
        """The stored ledger JSON for ``fingerprint``, or ``None``."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT payload FROM manifests WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        return None if row is None else row[0]

    def list_manifests(self) -> List[dict]:
        """Summaries of every stored manifest, newest update last."""
        out: List[dict] = []
        with self._connect() as conn:
            for fingerprint, experiment, updated_at, payload in conn.execute(
                "SELECT fingerprint, experiment, updated_at, payload "
                "FROM manifests ORDER BY updated_at"
            ):
                data = json.loads(payload)
                cells = data.get("cells", [])
                out.append(
                    {
                        "fingerprint": fingerprint,
                        "experiment": experiment,
                        "updated_at": updated_at,
                        "total": len(cells),
                        "done": sum(1 for c in cells if c.get("status") == "done"),
                        "quarantined": sum(
                            1 for c in cells if c.get("status") == "quarantined"
                        ),
                    }
                )
        return out

    # -- reading ---------------------------------------------------------------

    def _decode(self, format_version, payload: str) -> RunResult:
        check_format_version(format_version, self.path)
        return RunResult.from_dict(json.loads(payload))

    def load(self) -> List[RunResult]:
        """Read every stored run back, in insertion order."""
        return list(self)

    def __iter__(self) -> Iterator[RunResult]:
        with self._connect() as conn:
            cursor = conn.execute(
                "SELECT format_version, payload FROM runs ORDER BY id"
            )
            for format_version, payload in cursor:
                yield self._decode(format_version, payload)

    def __len__(self) -> int:
        with self._connect() as conn:
            return int(conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    def query(
        self,
        experiment: Optional[str] = None,
        config_digest: Optional[str] = None,
        seed: Optional[int] = None,
        protocol: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[RunResult]:
        """Indexed read: rows matching every given key, in insertion order."""
        clauses, params = [], []
        for column, value in (
            ("experiment", experiment),
            ("config_digest", config_digest),
            ("seed", seed),
            ("protocol", protocol),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = "SELECT format_version, payload FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._connect() as conn:
            return [
                self._decode(fv, payload)
                for fv, payload in conn.execute(sql, params)
            ]

    #: Scalar key columns that aggregation can GROUP BY / filter without
    #: touching the JSON payload.
    KEY_COLUMNS = (
        "experiment",
        "protocol",
        "load_pps",
        "seed",
        "horizon_s",
        "n_nodes",
        "config_digest",
    )

    def aggregate(
        self,
        group_by: Sequence[str],
        metrics: Sequence[str],
        agg: str = "mean",
        experiment: Optional[str] = None,
        config_digest: Optional[str] = None,
        seed: Optional[int] = None,
        protocol: Optional[str] = None,
    ) -> List[dict]:
        """Aggregation pushdown: group + reduce inside SQLite.

        Group keys must be scalar key columns (:data:`KEY_COLUMNS`);
        metric fields are pulled out of the JSON payload with
        ``json_extract``, so only the reduced rows — not the full
        payloads — ever leave the database.  ``agg`` is one of
        ``mean`` / ``min`` / ``max`` / ``sum``; SQL aggregates skip
        NULL (missing/None metrics), matching the Python fallback in
        :func:`repro.service.query.aggregate_runs`.

        Raises :class:`sqlite3.OperationalError` when the linked SQLite
        lacks the JSON1 functions — callers fall back to Python then.
        """
        sql_fn = {"mean": "AVG", "min": "MIN", "max": "MAX", "sum": "SUM"}
        if agg not in sql_fn:
            raise ExperimentError(
                f"unknown aggregate {agg!r} (know {', '.join(sql_fn)})"
            )
        for key in group_by:
            if key not in self.KEY_COLUMNS:
                raise ExperimentError(
                    f"cannot group by {key!r}: pushdown group keys are "
                    f"{', '.join(self.KEY_COLUMNS)}"
                )
        selects = list(group_by) + ["COUNT(*)"]
        for field in metrics:
            if not field.isidentifier():
                raise ExperimentError(f"bad metric field name {field!r}")
            selects.append(
                f"{sql_fn[agg]}(CAST(json_extract(payload, "
                f"'$.{field}') AS REAL))"
            )
        clauses, params = [], []
        for column, value in (
            ("experiment", experiment),
            ("config_digest", config_digest),
            ("seed", seed),
            ("protocol", protocol),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = f"SELECT {', '.join(selects)} FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        if group_by:
            sql += f" GROUP BY {', '.join(group_by)}"
            sql += f" ORDER BY {', '.join(group_by)}"
        out: List[dict] = []
        with self._connect() as conn:
            for row in conn.execute(sql, params):
                record = dict(zip(group_by, row))
                record["n"] = int(row[len(group_by)])
                for j, field in enumerate(metrics):
                    record[field] = row[len(group_by) + 1 + j]
                out.append(record)
        return out

    def rows_for_digests(
        self, digests: Iterable[str]
    ) -> List[Tuple[RunResult, int]]:
        """Cache read path: ``(run, payload_bytes)`` for these digests.

        Only the candidate rows travel out of SQLite (indexed by
        ``idx_runs_digest``); the byte size feeds
        :class:`~repro.service.cache.CacheStats.bytes_saved`.
        """
        digests = sorted(set(digests))
        if not digests:
            return []
        out: List[Tuple[RunResult, int]] = []
        with self._connect() as conn:
            # SQLite caps bound parameters (999 historically); chunk.
            for start in range(0, len(digests), 500):
                chunk = digests[start : start + 500]
                marks = ",".join("?" * len(chunk))
                cursor = conn.execute(
                    f"SELECT format_version, payload FROM runs "
                    f"WHERE config_digest IN ({marks}) ORDER BY id",
                    chunk,
                )
                for fv, payload in cursor:
                    out.append((self._decode(fv, payload), len(payload.encode())))
        return out

    # -- import / export -------------------------------------------------------

    def import_from(self, store: Union[str, Path, ResultStore]) -> int:
        """Bulk-load every row of a JSONL/CSV store; returns the count."""
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        runs = store.load()
        self.extend(runs)
        return len(runs)

    def export_to(self, store: Union[str, Path, ResultStore]) -> int:
        """Write every row out to a JSONL/CSV store; returns the count."""
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        runs = self.load()
        store.extend(runs)
        return len(runs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DbResultStore({str(self.path)!r})"
