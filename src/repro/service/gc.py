"""Run-cache garbage collection: ``repro-caem gc DB --keep-latest K``.

A result database only ever grows: re-running a sweep appends a fresh
row per cell even when an identical row is already stored, and the run
cache / ``--from`` pairing consume duplicates newest-last, so older
generations of a cell are dead weight.  :func:`collect_garbage` groups
rows by the exact cell identity the pairing layer uses —
``(experiment, protocol, load_pps, seed, horizon_s, config_digest)``,
see :mod:`repro.api.pairing` — keeps the newest ``K`` rows of each
group, deletes the rest, and VACUUMs so the file actually shrinks.

Only the scalar key columns are read (no JSON payload is ever decoded),
so collecting a multi-gigabyte database is cheap.  Size accounting uses
``PRAGMA page_count * PRAGMA page_size`` before and after, which is the
file's true footprint as SQLite sees it.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import ExperimentError
from .db import DbResultStore

__all__ = ["collect_garbage", "describe_gc"]

#: One cache cell, as the pairing layer identifies it (the experiment
#: stamp is part of identity: fig11/fig12 rows never fill each other's
#: slot, so they must not evict each other either).
_GROUP_COLUMNS = (
    "experiment",
    "protocol",
    "load_pps",
    "seed",
    "horizon_s",
    "config_digest",
)


def _file_bytes(conn) -> int:
    page_count = int(conn.execute("PRAGMA page_count").fetchone()[0])
    page_size = int(conn.execute("PRAGMA page_size").fetchone()[0])
    return page_count * page_size


def collect_garbage(
    store: Union[str, Path, DbResultStore],
    keep_latest: int = 1,
    dry_run: bool = False,
) -> Dict[str, int]:
    """Evict superseded generations from a result database.

    Keeps the ``keep_latest`` newest rows (highest ``id``) of every
    cache cell and deletes the older generations.  Returns an accounting
    dict: ``rows_before`` / ``rows_after`` / ``deleted`` / ``groups`` /
    ``bytes_before`` / ``bytes_after`` / ``reclaimed_bytes``.

    With ``dry_run=True`` nothing is written; the report shows what a
    real pass would do (``bytes_after`` then equals ``bytes_before``).
    """
    if keep_latest < 1:
        raise ExperimentError(
            f"--keep-latest must be >= 1 (got {keep_latest}); keeping "
            "zero generations would empty the database"
        )
    if not isinstance(store, DbResultStore):
        path = Path(store)
        if not path.exists():
            raise ExperimentError(f"no such result database: {path}")
        store = DbResultStore(path)

    groups: Dict[Tuple, List[int]] = defaultdict(list)
    with store._connect() as conn:
        bytes_before = _file_bytes(conn)
        cursor = conn.execute(
            f"SELECT id, {', '.join(_GROUP_COLUMNS)} FROM runs ORDER BY id"
        )
        for row in cursor:
            groups[tuple(row[1:])].append(int(row[0]))
        doomed: List[int] = []
        for ids in groups.values():
            doomed.extend(ids[:-keep_latest])
        rows_before = sum(len(ids) for ids in groups.values())

        if doomed and not dry_run:
            conn.execute("BEGIN IMMEDIATE")
            try:
                # SQLite caps bound parameters (999 historically); chunk.
                for start in range(0, len(doomed), 500):
                    chunk = doomed[start : start + 500]
                    marks = ",".join("?" * len(chunk))
                    conn.execute(f"DELETE FROM runs WHERE id IN ({marks})", chunk)
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")
            # Hand the freed pages back to the filesystem; without this
            # the reclaimed bytes stay inside the file as free pages.
            conn.execute("VACUUM")
        bytes_after = _file_bytes(conn)

    return {
        "rows_before": rows_before,
        "rows_after": rows_before - (0 if dry_run else len(doomed)),
        "deleted": len(doomed),
        "groups": len(groups),
        "bytes_before": bytes_before,
        "bytes_after": bytes_after,
        "reclaimed_bytes": bytes_before - bytes_after,
        "dry_run": int(dry_run),
    }


def describe_gc(report: Dict[str, int]) -> str:
    """One-line human summary of a :func:`collect_garbage` report."""
    head = "would delete" if report["dry_run"] else "deleted"
    return (
        f"{head} {report['deleted']} of {report['rows_before']} rows "
        f"({report['groups']} distinct cells), "
        f"{report['bytes_before']} -> {report['bytes_after']} bytes "
        f"({report['reclaimed_bytes']} reclaimed)"
    )
