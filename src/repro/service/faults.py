"""Fault injection: a seeded chaos layer for the campaign execution path.

Recovery code that is never exercised is recovery code that does not
work.  This module lets tests and the CI ``chaos-smoke`` gate *prove*
that campaign execution survives the failures the supervisor
(:mod:`repro.api.campaign`) and the manifest/resume machinery
(:mod:`repro.service.manifest`) exist for, instead of assuming it:

* **worker crashes** — a supervised worker process dies mid-cell with a
  hard ``os._exit`` (indistinguishable from a SIGKILL / OOM kill);
* **worker hangs** — a cell stalls long enough to trip the wall-clock
  watchdog;
* **torn store writes** — a JSONL append stops mid-record (what a power
  cut leaves behind), a SQLite batch dies before its COMMIT;
* **fsync failures** — the durability syscall itself errors.

Faults are **deterministic**: every decision is a pure function of
``(seed, site, key)`` — no RNG state, no ordering sensitivity — so a
test that injects a crash at cell X sees that crash at cell X on every
run, in every process, at any ``--jobs``.  Retries pass a fresh attempt
number in the key, so "crash on attempt 1, succeed on attempt 2" is a
reproducible scenario rather than a coin flip.

Activation is by environment variable so the fault plan crosses process
boundaries into supervised worker children::

    REPRO_FAULTS='{"seed": 7, "worker_crash_rate": 0.3}' \
        repro-caem run fig8 --store runs.sqlite --resume --retries 5

or, in-process and scoped, via :func:`inject_faults` (which also sets
the environment variable so spawned workers inherit the plan)::

    with inject_faults(FaultPlan(seed=7, worker_crash_rate=1.0)):
        ...

The default — no environment variable, no context — is a fast ``None``
from :func:`active_faults`; the production path pays one dict lookup.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, fields
from typing import Iterator, Optional

from ..errors import ReproError

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "active_faults",
    "inject_faults",
]

#: Environment variable holding the JSON-encoded :class:`FaultPlan`.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit code a crash-injected worker dies with (mirrors SIGKILL's 137).
CRASH_EXIT_CODE = 137


class InjectedFault(ReproError, OSError):
    """An error raised *on purpose* by the fault layer.

    Subclasses :class:`OSError` so injected I/O failures travel the same
    ``except`` paths a real disk error would.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Seeded failure rates for every injection site (all default off)."""

    #: Seed for the deterministic per-site decisions.
    seed: int = 0
    #: Probability a supervised worker hard-exits before simulating.
    worker_crash_rate: float = 0.0
    #: Probability a supervised worker stalls for :attr:`hang_s` first.
    worker_hang_rate: float = 0.0
    #: How long an injected hang sleeps (set it above the watchdog's
    #: ``cell_timeout_s`` to exercise the kill path).
    hang_s: float = 30.0
    #: Probability a store append writes a torn (truncated) record and
    #: fails — JSONL gets a partial trailing line, SQLite dies before
    #: COMMIT (the transaction must roll back cleanly).
    torn_write_rate: float = 0.0
    #: Probability the store's fsync raises :class:`InjectedFault`.
    fsync_fail_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                value = getattr(self, f.name)
                if not 0.0 <= value <= 1.0:
                    raise ReproError(f"fault rate {f.name}={value!r} must be in [0, 1]")
        if self.hang_s < 0:
            raise ReproError("hang_s must be >= 0")

    @property
    def any_enabled(self) -> bool:
        return any(
            getattr(self, f.name) > 0.0
            for f in fields(self)
            if f.name.endswith("_rate")
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ReproError(
                f"{FAULTS_ENV} is not valid JSON: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise ReproError(f"{FAULTS_ENV} must hold a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"{FAULTS_ENV} names unknown fault knobs "
                f"{sorted(unknown)} (know {sorted(known)})"
            )
        return cls(**data)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named injection sites."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    # -- the deterministic coin ------------------------------------------------

    def roll(self, site: str, key: str, rate: float) -> bool:
        """True iff the fault fires at ``(site, key)`` under ``rate``.

        A pure function: SHA-256 of ``seed|site|key`` mapped to [0, 1)
        and compared against ``rate`` — identical in every process and
        at every parallelism.
        """
        if rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.plan.seed}|{site}|{key}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64 < rate

    # -- worker sites (run inside supervised worker processes) -----------------

    def worker_entry(self, key: str) -> None:
        """Consulted by a supervised worker before it simulates its cell.

        May hard-exit the process (crash) or stall it (hang); the
        supervisor in the parent is expected to notice either and retry.
        """
        if self.roll("worker.hang", key, self.plan.worker_hang_rate):
            time.sleep(self.plan.hang_s)
        if self.roll("worker.crash", key, self.plan.worker_crash_rate):
            # A hard exit, not an exception: nothing is sent back over
            # the result pipe, exactly like a SIGKILL'd / OOM'd worker.
            os._exit(CRASH_EXIT_CODE)

    # -- store sites (run wherever rows are persisted) -------------------------

    def torn_write(self, key: str) -> bool:
        return self.roll("store.torn_write", key, self.plan.torn_write_rate)

    def check_fsync(self, key: str) -> None:
        if self.roll("store.fsync", key, self.plan.fsync_fail_rate):
            raise InjectedFault(f"injected fsync failure (site=store.fsync key={key})")


def active_faults() -> Optional[FaultInjector]:
    """The ambient fault injector, or ``None`` (the default: no faults).

    Read from :data:`FAULTS_ENV` on every call so supervised worker
    children — which inherit the environment, not the parent's Python
    state — see the same plan, and so tests that mutate the variable
    take effect immediately.
    """
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return None
    plan = FaultPlan.from_json(text)
    return FaultInjector(plan) if plan.any_enabled else None


@contextlib.contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Activate ``plan`` for this block (and any spawned workers)."""
    previous = os.environ.get(FAULTS_ENV)
    os.environ[FAULTS_ENV] = plan.to_json()
    try:
        yield FaultInjector(plan)
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous
