"""Campaign manifests: the durable work-unit ledger behind ``--resume``.

A :class:`CampaignManifest` records one campaign grid as chunked work
units — one cell per scenario, keyed by the :mod:`repro.api.pairing`
pairing key — and tracks each cell through
``pending → done | quarantined``.  Together with the content-addressed
run cache (which pairs *completed* cells against the result store), it
gives an interrupted sweep exact resume semantics: restart the same
campaign against the same store and only the missing cells are
re-simulated, while the manifest carries the operational record —
attempt counts, quarantine tracebacks, timestamps — that the raw rows
cannot.

Two storage backends, chosen by the result store the campaign writes
to:

* **SQLite** (:class:`~repro.service.db.DbResultStore`): a ``manifests``
  table in the same database file (schema v3), one row per campaign
  fingerprint — transactional, travels with the rows;
* **sidecar JSON** (flat JSONL/CSV stores): ``<store>.manifest.json``
  next to the store, written atomically (tmp + fsync + rename) so a
  crash mid-save can never tear it.

The *fingerprint* identifies a campaign by content, not by name: the
SHA-256 of the experiment id plus every cell's pairing key.  Resuming
the identical grid maps onto the identical manifest row; a different
grid (one more seed, a changed config) gets its own ledger and can
never corrupt another campaign's bookkeeping.

Quarantine is per-execution: loading a manifest for a fresh execution
resets ``quarantined`` cells back to ``pending`` with their attempt
counters cleared, so an operator can fix the cause (or just rely on
fresh retry draws) and ``--resume`` — terminal quarantine means "gave
up *this* run", not "poisoned forever".
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api.pairing import PairKey, describe_key, scenario_key

__all__ = [
    "CellRecord",
    "CampaignManifest",
    "manifest_for_store",
    "sidecar_path",
]

#: Cell lifecycle states.
PENDING = "pending"
DONE = "done"
QUARANTINED = "quarantined"


@dataclass
class CellRecord:
    """One work unit: a grid cell and its execution bookkeeping."""

    #: The pairing key (protocol, load, seed, horizon, config digest).
    key: PairKey
    #: Occurrence index among identical keys in one grid (grids normally
    #: have unique cells; replicated cells stay distinguishable).
    ordinal: int = 0
    status: str = PENDING
    attempts: int = 0
    #: Traceback / reason recorded when the cell was quarantined.
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": list(self.key),
            "ordinal": self.ordinal,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellRecord":
        return cls(
            key=tuple(data["key"]),  # type: ignore[arg-type]
            ordinal=int(data.get("ordinal", 0)),
            status=str(data.get("status", PENDING)),
            attempts=int(data.get("attempts", 0)),
            error=data.get("error"),
        )


def _fingerprint(experiment: Optional[str], keys: Sequence[PairKey]) -> str:
    payload = json.dumps(
        {"experiment": experiment, "cells": sorted(map(list, keys))},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def sidecar_path(store_path: Path) -> Path:
    """Where the JSON manifest ledger for a flat store lives."""
    return store_path.with_name(store_path.name + ".manifest.json")


class CampaignManifest:
    """The in-memory manifest for one campaign grid, backed durably.

    Obtain one via :func:`manifest_for_store` (which picks the storage
    backend) or :meth:`for_grid`.  Every mutation
    (:meth:`record_attempt` / :meth:`record_done` /
    :meth:`record_quarantine`) persists immediately — the ledger on disk
    is never more than one cell behind reality, which is the whole
    point.
    """

    def __init__(
        self,
        backend: "_ManifestBackend",
        experiment: Optional[str],
        cells: List[CellRecord],
        created_at: Optional[float] = None,
    ):
        self._backend = backend
        self.experiment = experiment
        self.cells = cells
        self.created_at = created_at if created_at is not None else time.time()
        self.fingerprint = _fingerprint(experiment, [c.key for c in cells])
        self._index: Dict[Tuple[PairKey, int], CellRecord] = {}
        for cell in cells:
            self._index[(cell.key, cell.ordinal)] = cell

    # -- construction ----------------------------------------------------------

    @classmethod
    def for_grid(
        cls,
        backend: "_ManifestBackend",
        scenarios: Sequence,
        experiment: Optional[str] = None,
    ) -> "CampaignManifest":
        """Plan (or re-open) the manifest for this exact scenario grid.

        If the backend already holds a ledger with the same fingerprint
        — the same campaign, interrupted earlier — its ``done`` states
        and attempt history are adopted; ``quarantined`` cells reset to
        ``pending`` for a fresh round of attempts.
        """
        keys: List[PairKey] = [scenario_key(sc) for sc in scenarios]
        occurrence: Dict[PairKey, int] = {}
        cells = []
        for key in keys:
            ordinal = occurrence.get(key, 0)
            occurrence[key] = ordinal + 1
            cells.append(CellRecord(key=key, ordinal=ordinal))
        manifest = cls(backend, experiment, cells)
        stored = backend.load(manifest.fingerprint)
        if stored is not None:
            previous = {
                (cell.key, cell.ordinal): cell
                for cell in map(CellRecord.from_dict, stored.get("cells", []))
            }
            manifest.created_at = float(stored.get("created_at", manifest.created_at))
            for cell in manifest.cells:
                old = previous.get((cell.key, cell.ordinal))
                if old is None:
                    continue
                if old.status == DONE:
                    cell.status = DONE
                    cell.attempts = old.attempts
                # QUARANTINED deliberately resets to PENDING/0 attempts:
                # a new execution earns a fresh retry budget.
        manifest.save()
        return manifest

    # -- cell lookup / mutation ------------------------------------------------

    def _cell(self, key: PairKey, ordinal: int = 0) -> CellRecord:
        return self._index[(key, ordinal)]

    def record_attempt(self, key: PairKey, ordinal: int = 0) -> None:
        cell = self._cell(key, ordinal)
        cell.attempts += 1
        self.save()

    def record_done(self, key: PairKey, ordinal: int = 0) -> None:
        cell = self._cell(key, ordinal)
        cell.status = DONE
        cell.error = None
        self.save()

    def record_quarantine(self, key: PairKey, error: str,
                          ordinal: int = 0) -> None:
        cell = self._cell(key, ordinal)
        cell.status = QUARANTINED
        cell.error = error
        self.save()

    # -- reporting -------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        out = {PENDING: 0, DONE: 0, QUARANTINED: 0}
        for cell in self.cells:
            out[cell.status] = out.get(cell.status, 0) + 1
        return out

    @property
    def complete(self) -> bool:
        return all(cell.status == DONE for cell in self.cells)

    def quarantined(self) -> List[CellRecord]:
        return [c for c in self.cells if c.status == QUARANTINED]

    def pending(self) -> List[CellRecord]:
        """Cells not yet settled — what a ``--resume`` (or a distributed
        coordinator picking up after a crash) still has to lease out."""
        return [c for c in self.cells if c.status == PENDING]

    def report(self) -> Dict[str, Any]:
        """The JSON-safe status report (``incomplete`` when not all done)."""
        counts = self.counts()
        return {
            "fingerprint": self.fingerprint,
            "experiment": self.experiment,
            "total": len(self.cells),
            "done": counts[DONE],
            "pending": counts[PENDING],
            "quarantined": counts[QUARANTINED],
            "incomplete": not self.complete,
            "quarantined_cells": [
                {
                    "cell": describe_key(cell.key),
                    "attempts": cell.attempts,
                    "error": cell.error,
                }
                for cell in self.quarantined()
            ],
        }

    def describe(self) -> str:
        counts = self.counts()
        text = (
            f"manifest {self.fingerprint[:12]}: {counts[DONE]}/"
            f"{len(self.cells)} cells done, {counts[PENDING]} pending, "
            f"{counts[QUARANTINED]} quarantined"
        )
        for cell in self.quarantined():
            reason = (cell.error or "").strip().splitlines()
            text += (
                f"\n  quarantined after {cell.attempts} attempts: "
                f"{describe_key(cell.key)}"
                + (f" — {reason[-1]}" if reason else "")
            )
        return text

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "experiment": self.experiment,
            "created_at": self.created_at,
            "updated_at": time.time(),
            "total": len(self.cells),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def save(self) -> None:
        self._backend.save(self.fingerprint, self.experiment, self.to_dict())


# -- storage backends ----------------------------------------------------------


class _ManifestBackend:
    """Interface: persist/load manifest payloads by fingerprint."""

    def save(self, fingerprint: str, experiment: Optional[str],
             payload: Dict[str, Any]) -> None:
        raise NotImplementedError

    def load(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError


class JsonManifestBackend(_ManifestBackend):
    """Sidecar ledger for flat stores: ``<store>.manifest.json``.

    Holds every campaign fingerprint that ever ran against the store in
    one file, written atomically — a crash mid-save leaves the previous
    ledger intact, never a torn one.
    """

    def __init__(self, path: Path):
        self.path = Path(path)

    def _read_all(self) -> Dict[str, Any]:
        if not self.path.exists():
            return {"manifests": {}}
        try:
            data = json.loads(self.path.read_text())
        except ValueError:
            # A damaged ledger must not brick resume: the rows in the
            # store are the source of truth for what is done; start a
            # fresh ledger.
            return {"manifests": {}}
        if not isinstance(data, dict) or "manifests" not in data:
            return {"manifests": {}}
        return data

    def save(self, fingerprint: str, experiment: Optional[str],
             payload: Dict[str, Any]) -> None:
        data = self._read_all()
        data["manifests"][fingerprint] = payload
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w") as fh:
            json.dump(data, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def load(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        return self._read_all()["manifests"].get(fingerprint)


class DbManifestBackend(_ManifestBackend):
    """Ledger rows in the result database's ``manifests`` table."""

    def __init__(self, store):
        self.store = store  # a DbResultStore

    def save(
        self, fingerprint: str, experiment: Optional[str], payload: Dict[str, Any]
    ) -> None:
        self.store.save_manifest(fingerprint, experiment, json.dumps(payload))

    def load(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        text = self.store.load_manifest(fingerprint)
        return None if text is None else json.loads(text)


def manifest_for_store(store, scenarios: Sequence,
                       experiment: Optional[str] = None
                       ) -> CampaignManifest:
    """Plan/re-open the manifest for ``scenarios`` against ``store``.

    Picks the backend from the store type: ``manifests`` table for a
    :class:`~repro.service.db.DbResultStore`, sidecar JSON for flat
    stores.
    """
    if hasattr(store, "save_manifest"):
        backend: _ManifestBackend = DbManifestBackend(store)
    else:
        backend = JsonManifestBackend(sidecar_path(Path(store.path)))
    return CampaignManifest.for_grid(backend, scenarios, experiment)
