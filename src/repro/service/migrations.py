"""Versioned schema for the result database, with a migration runner.

The schema version lives in SQLite's ``PRAGMA user_version`` (0 on a
fresh file).  :func:`ensure_schema` applies every migration past the
file's current version, in order, each inside one transaction — so a
database created by an older build upgrades in place the first time a
newer build opens it, and a database created by a *newer* build is
refused loudly instead of being misread.

Adding a migration: append ``(version, [statements...])`` to
:data:`MIGRATIONS` with the next integer version.  Never edit or reorder
shipped entries — files in the wild have already recorded their version.
"""

from __future__ import annotations

import sqlite3
from typing import List, Sequence, Tuple

from ..errors import ExperimentError

__all__ = ["MIGRATIONS", "SCHEMA_VERSION", "ensure_schema", "schema_version"]

#: Ordered ``(version, statements)`` pairs; versions are contiguous from 1.
MIGRATIONS: List[Tuple[int, Sequence[str]]] = [
    (
        1,
        [
            # The row store: scalar key columns for indexed lookups, the
            # full-fidelity RunResult JSON in `payload` (same bytes the
            # JSONL store would hold, so round-trips are exact).
            """
            CREATE TABLE runs (
                id             INTEGER PRIMARY KEY AUTOINCREMENT,
                experiment     TEXT,
                config_digest  TEXT    NOT NULL,
                seed           INTEGER NOT NULL,
                protocol       TEXT    NOT NULL,
                load_pps       REAL    NOT NULL,
                horizon_s      REAL    NOT NULL,
                n_nodes        INTEGER NOT NULL DEFAULT 0,
                format_version INTEGER NOT NULL,
                payload        TEXT    NOT NULL
            )
            """,
            # The service read path: browse by experiment, then narrow.
            """
            CREATE INDEX idx_runs_experiment
                ON runs (experiment, config_digest, seed)
            """,
        ],
    ),
    (
        2,
        [
            # The cache read path: digest-first lookup (the cache pairs
            # cells by config digest regardless of experiment stamp).
            """
            CREATE INDEX idx_runs_digest
                ON runs (config_digest, horizon_s)
            """,
        ],
    ),
    (
        3,
        [
            # Campaign manifests (checkpoint/resume ledgers): one row
            # per campaign fingerprint, the full JSON ledger in
            # `payload` (see repro.service.manifest).  Kept in the same
            # file as the rows so a result database carries its own
            # resume state.
            """
            CREATE TABLE manifests (
                fingerprint TEXT PRIMARY KEY,
                experiment  TEXT,
                updated_at  REAL NOT NULL,
                payload     TEXT NOT NULL
            )
            """,
        ],
    ),
]

#: The version a fully migrated database reports.
SCHEMA_VERSION = MIGRATIONS[-1][0]


def schema_version(conn: sqlite3.Connection) -> int:
    """The database file's recorded schema version (0 = fresh file)."""
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def ensure_schema(conn: sqlite3.Connection, source: str = "<db>") -> None:
    """Bring ``conn``'s database up to :data:`SCHEMA_VERSION`.

    No-op when already current; raises :class:`ExperimentError` when the
    file is *ahead* of this build (written by a newer version).
    """
    current = schema_version(conn)
    if current > SCHEMA_VERSION:
        raise ExperimentError(
            f"result database {source} has schema version {current}, but "
            f"this build knows versions up to {SCHEMA_VERSION} — upgrade "
            f"repro (pip install -U) to open it"
        )
    if current == SCHEMA_VERSION:
        return
    for version, statements in MIGRATIONS:
        if version <= current:
            continue
        # Explicit BEGIN..COMMIT: Python's sqlite3 module does not open
        # implicit transactions around DDL, and each migration step must
        # apply atomically with its version stamp (user_version is
        # transactional in SQLite).  Connections here run in autocommit
        # (isolation_level=None — see DbResultStore._connect).
        conn.execute("BEGIN IMMEDIATE")
        try:
            for statement in statements:
                conn.execute(statement)
            conn.execute(f"PRAGMA user_version = {version}")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
