"""Ad-hoc filtered reads over a result store: ``repro-caem query``.

Key filters (experiment / digest / seed / protocol) push down into the
database indexes when the store is a :class:`~repro.service.DbResultStore`;
metric predicates (``--where delivery_rate>0.9``) evaluate in Python on
the decoded rows, so they work identically against JSONL/CSV stores and
need no SQLite JSON extension.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, fields as dc_fields
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..api.result import RunResult
from ..errors import ExperimentError

__all__ = [
    "Predicate",
    "parse_predicate",
    "query_runs",
    "aggregate_runs",
    "DEFAULT_COLUMNS",
    "DEFAULT_AGG_METRICS",
    "GROUP_ALIASES",
]

#: What ``repro-caem query`` prints when no --columns are given.
DEFAULT_COLUMNS = (
    "experiment",
    "protocol",
    "load_pps",
    "seed",
    "n_nodes",
    "horizon_s",
    "delivery_rate",
    "energy_per_packet_j",
    "lifetime_s",
    "config_digest",
)

#: What ``--agg`` reduces when no --columns are given.
DEFAULT_AGG_METRICS = (
    "delivery_rate",
    "throughput_bps",
    "mean_delay_s",
    "energy_per_packet_j",
    "total_consumed_j",
)

#: CLI shorthand for group keys: ``--group-by protocol,load``.
GROUP_ALIASES = {"load": "load_pps", "nodes": "n_nodes"}

#: Group keys the SQL pushdown supports (scalar key columns of the runs
#: table); the Python fallback accepts the same set so JSONL/CSV stores
#: and databases answer identically.
_GROUP_COLUMNS = (
    "experiment",
    "protocol",
    "load_pps",
    "seed",
    "horizon_s",
    "n_nodes",
    "config_digest",
)

_AGG_FUNCS: Dict[str, Callable[[List[float]], float]] = {
    "mean": lambda vs: sum(vs) / len(vs),
    "min": min,
    "max": max,
    "sum": sum,
}

#: Two-char operators first so ``>=`` never parses as ``>`` + ``=0.9``.
_OPS: Sequence = (
    ("<=", operator.le),
    (">=", operator.ge),
    ("==", operator.eq),
    ("!=", operator.ne),
    ("<", operator.lt),
    (">", operator.gt),
    ("=", operator.eq),
)

_RESULT_FIELDS = {f.name for f in dc_fields(RunResult)}


@dataclass(frozen=True)
class Predicate:
    """One ``field OP value`` filter over :class:`RunResult` attributes."""

    field: str
    op_text: str
    op: Callable[[Any, Any], bool]
    value: Any

    def matches(self, run: RunResult) -> bool:
        actual = getattr(run, self.field)
        if actual is None:
            # None metrics (e.g. lifetime on a fixed-window run) match
            # nothing except an explicit equality test against None.
            return self.op is operator.eq and self.value is None
        try:
            return bool(self.op(actual, self.value))
        except TypeError:
            raise ExperimentError(
                f"predicate {self} cannot compare the stored "
                f"{type(actual).__name__} value {actual!r}"
            ) from None

    def __str__(self) -> str:
        return f"{self.field}{self.op_text}{self.value!r}"


def parse_predicate(text: str) -> Predicate:
    """Parse ``"delivery_rate>0.9"`` / ``"protocol=scheme1"`` forms."""
    for op_text, op in _OPS:
        if op_text in text:
            field, _, raw = text.partition(op_text)
            field = field.strip()
            raw = raw.strip()
            if not field or not raw:
                break
            if field not in _RESULT_FIELDS:
                raise ExperimentError(
                    f"unknown RunResult field {field!r} in predicate "
                    f"{text!r}; known fields: "
                    f"{', '.join(sorted(_RESULT_FIELDS))}"
                )
            value: Any
            if raw == "None":
                value = None
            else:
                try:
                    value = int(raw)
                except ValueError:
                    try:
                        value = float(raw)
                    except ValueError:
                        value = raw
            return Predicate(field=field, op_text=op_text, op=op, value=value)
    raise ExperimentError(
        f"malformed predicate {text!r}: expected FIELD OP VALUE with OP "
        f"one of {', '.join(op for op, _ in _OPS)} "
        f"(e.g. delivery_rate>0.9)"
    )


def query_runs(
    store,
    experiment: Optional[str] = None,
    config_digest: Optional[str] = None,
    seed: Optional[int] = None,
    protocol: Optional[str] = None,
    where: Sequence[Predicate] = (),
    limit: Optional[int] = None,
) -> List[RunResult]:
    """Filtered rows from any store backend, in insertion order.

    The key filters use the database indexes when available; ``where``
    predicates and ``limit`` always apply post-decode so the row set is
    identical across backends.
    """
    if hasattr(store, "query"):
        rows = store.query(
            experiment=experiment,
            config_digest=config_digest,
            seed=seed,
            protocol=protocol,
        )
    else:
        rows = [
            run for run in store.load()
            if (experiment is None or run.experiment == experiment)
            and (config_digest is None or run.config_digest == config_digest)
            and (seed is None or run.seed == seed)
            and (protocol is None or run.protocol == protocol)
        ]
    out: List[RunResult] = []
    for run in rows:
        if all(p.matches(run) for p in where):
            out.append(run)
            if limit is not None and len(out) >= limit:
                break
    return out


def resolve_group_key(key: str) -> str:
    """Expand CLI shorthand and validate one ``--group-by`` key."""
    key = GROUP_ALIASES.get(key, key)
    if key not in _GROUP_COLUMNS:
        raise ExperimentError(
            f"cannot group by {key!r}; group keys: "
            f"{', '.join(_GROUP_COLUMNS)} "
            f"(aliases: {', '.join(f'{a}={b}' for a, b in GROUP_ALIASES.items())})"
        )
    return key


def aggregate_runs(
    store,
    group_by: Sequence[str],
    agg: str = "mean",
    metrics: Optional[Sequence[str]] = None,
    experiment: Optional[str] = None,
    config_digest: Optional[str] = None,
    seed: Optional[int] = None,
    protocol: Optional[str] = None,
    where: Sequence[Predicate] = (),
) -> List[dict]:
    """Grouped reduction over a result store: ``query --agg``.

    Returns one dict per group, ordered by group key: the group-key
    values, ``n`` (rows in the group), and one reduced value per metric
    (``None`` when every row's metric is None — e.g. lifetime on runs
    nothing died in; None metrics are skipped, not zero-filled).

    Against a :class:`~repro.service.DbResultStore` the whole reduction
    pushes down into SQL (``json_extract`` + ``GROUP BY``) so only the
    reduced rows leave the database; JSONL/CSV stores — and any query
    with Python-side ``where`` predicates — reduce over decoded rows
    with identical semantics.
    """
    if agg not in _AGG_FUNCS:
        raise ExperimentError(
            f"unknown aggregate {agg!r} (know {', '.join(_AGG_FUNCS)})"
        )
    group_by = [resolve_group_key(k) for k in group_by]
    if metrics is None:
        metrics = DEFAULT_AGG_METRICS
    for field in metrics:
        if field not in _RESULT_FIELDS:
            raise ExperimentError(
                f"unknown RunResult field {field!r}; known fields: "
                f"{', '.join(sorted(_RESULT_FIELDS))}"
            )
    if not where and hasattr(store, "aggregate"):
        import sqlite3

        try:
            return store.aggregate(
                group_by,
                metrics,
                agg=agg,
                experiment=experiment,
                config_digest=config_digest,
                seed=seed,
                protocol=protocol,
            )
        except sqlite3.OperationalError:
            # SQLite built without JSON1 — reduce in Python instead.
            pass
    runs = query_runs(
        store,
        experiment=experiment,
        config_digest=config_digest,
        seed=seed,
        protocol=protocol,
        where=where,
    )
    groups: Dict[tuple, List[RunResult]] = {}
    for run in runs:
        key = tuple(getattr(run, k) for k in group_by)
        groups.setdefault(key, []).append(run)
    reduce = _AGG_FUNCS[agg]
    out: List[dict] = []
    # NULL-first ordering, matching SQLite's ORDER BY.
    for key in sorted(groups, key=lambda k: tuple((v is not None, v) for v in k)):
        rows = groups[key]
        record = dict(zip(group_by, key))
        record["n"] = len(rows)
        for field in metrics:
            values = [getattr(r, field) for r in rows if getattr(r, field) is not None]
            record[field] = reduce(values) if values else None
        out.append(record)
    return out
