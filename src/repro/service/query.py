"""Ad-hoc filtered reads over a result store: ``repro-caem query``.

Key filters (experiment / digest / seed / protocol) push down into the
database indexes when the store is a :class:`~repro.service.DbResultStore`;
metric predicates (``--where delivery_rate>0.9``) evaluate in Python on
the decoded rows, so they work identically against JSONL/CSV stores and
need no SQLite JSON extension.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, fields as dc_fields
from typing import Any, Callable, List, Optional, Sequence

from ..api.result import RunResult
from ..errors import ExperimentError

__all__ = ["Predicate", "parse_predicate", "query_runs", "DEFAULT_COLUMNS"]

#: What ``repro-caem query`` prints when no --columns are given.
DEFAULT_COLUMNS = (
    "experiment", "protocol", "load_pps", "seed", "n_nodes", "horizon_s",
    "delivery_rate", "energy_per_packet_j", "lifetime_s", "config_digest",
)

#: Two-char operators first so ``>=`` never parses as ``>`` + ``=0.9``.
_OPS: Sequence = (
    ("<=", operator.le),
    (">=", operator.ge),
    ("==", operator.eq),
    ("!=", operator.ne),
    ("<", operator.lt),
    (">", operator.gt),
    ("=", operator.eq),
)

_RESULT_FIELDS = {f.name for f in dc_fields(RunResult)}


@dataclass(frozen=True)
class Predicate:
    """One ``field OP value`` filter over :class:`RunResult` attributes."""

    field: str
    op_text: str
    op: Callable[[Any, Any], bool]
    value: Any

    def matches(self, run: RunResult) -> bool:
        actual = getattr(run, self.field)
        if actual is None:
            # None metrics (e.g. lifetime on a fixed-window run) match
            # nothing except an explicit equality test against None.
            return self.op is operator.eq and self.value is None
        try:
            return bool(self.op(actual, self.value))
        except TypeError:
            raise ExperimentError(
                f"predicate {self} cannot compare the stored "
                f"{type(actual).__name__} value {actual!r}"
            ) from None

    def __str__(self) -> str:
        return f"{self.field}{self.op_text}{self.value!r}"


def parse_predicate(text: str) -> Predicate:
    """Parse ``"delivery_rate>0.9"`` / ``"protocol=scheme1"`` forms."""
    for op_text, op in _OPS:
        if op_text in text:
            field, _, raw = text.partition(op_text)
            field = field.strip()
            raw = raw.strip()
            if not field or not raw:
                break
            if field not in _RESULT_FIELDS:
                raise ExperimentError(
                    f"unknown RunResult field {field!r} in predicate "
                    f"{text!r}; known fields: "
                    f"{', '.join(sorted(_RESULT_FIELDS))}"
                )
            value: Any
            if raw == "None":
                value = None
            else:
                try:
                    value = int(raw)
                except ValueError:
                    try:
                        value = float(raw)
                    except ValueError:
                        value = raw
            return Predicate(field=field, op_text=op_text, op=op, value=value)
    raise ExperimentError(
        f"malformed predicate {text!r}: expected FIELD OP VALUE with OP "
        f"one of {', '.join(op for op, _ in _OPS)} "
        f"(e.g. delivery_rate>0.9)"
    )


def query_runs(
    store,
    experiment: Optional[str] = None,
    config_digest: Optional[str] = None,
    seed: Optional[int] = None,
    protocol: Optional[str] = None,
    where: Sequence[Predicate] = (),
    limit: Optional[int] = None,
) -> List[RunResult]:
    """Filtered rows from any store backend, in insertion order.

    The key filters use the database indexes when available; ``where``
    predicates and ``limit`` always apply post-decode so the row set is
    identical across backends.
    """
    if hasattr(store, "query"):
        rows = store.query(
            experiment=experiment,
            config_digest=config_digest,
            seed=seed,
            protocol=protocol,
        )
    else:
        rows = [
            run for run in store.load()
            if (experiment is None or run.experiment == experiment)
            and (config_digest is None or run.config_digest == config_digest)
            and (seed is None or run.seed == seed)
            and (protocol is None or run.protocol == protocol)
        ]
    out: List[RunResult] = []
    for run in rows:
        if all(p.matches(run) for p in where):
            out.append(run)
            if limit is not None and len(out) >= limit:
                break
    return out
