"""The campaign server: a stdlib JSON-over-HTTP front on the service tier.

``repro-caem serve`` binds a :class:`ThreadingHTTPServer` whose handlers
talk to a shared :class:`~repro.service.db.DbResultStore` and
:class:`~repro.service.jobs.JobManager`.  No third-party web framework —
the paper repo stays dependency-light — just the endpoints a campaign
workflow needs:

==================================  ========================================
``GET  /health``                    liveness + row count + schema version
``GET  /experiments``               the experiment registry, as JSON
``POST /campaigns``                 submit a campaign spec → ``job_id``
``GET  /campaigns``                 all jobs, newest last
``GET  /campaigns/<id>``            one job's status snapshot
``GET  /campaigns/<id>/events``     NDJSON progress stream (long-poll)
``GET  /campaigns/<id>/figure``     rendered figure; ``?rerender=1``
                                    re-renders from the stored DB rows
``GET  /campaigns/<id>/agg``        grouped reduction over the job's
                                    stored rows: ``?agg=mean&group_by=
                                    protocol,load`` (+ ``metrics=``)
``POST /work/lease`` etc.           distributed-executor work endpoints
                                    (``serve --distributed`` only; see
                                    :mod:`repro.exec.coordinator`)
``GET  /runs``                      browse rows: ``experiment`` /
                                    ``digest`` / ``seed`` / ``protocol`` /
                                    repeated ``where=`` predicates /
                                    ``limit`` / ``full=1`` for series
==================================  ========================================

Concurrency: WAL mode on the database means the read endpoints serve
consistent snapshots while worker threads append mid-campaign.
"""

from __future__ import annotations

import json
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..api import get_experiment, list_experiments
from ..errors import ExperimentError, ReproError
from ..exec.coordinator import handle_work
from .db import DbResultStore
from .jobs import JobManager
from .migrations import SCHEMA_VERSION
from .query import aggregate_runs, parse_predicate, query_runs

__all__ = ["CampaignServer", "build_server"]

_MAX_BODY_BYTES = 1 << 20  # campaign specs are small; refuse megabyte bodies


class _HttpError(Exception):
    """An error with a specific HTTP status (413, 404, ...)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class CampaignServer(ThreadingHTTPServer):
    """HTTP server owning the shared result database and job manager."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        db: DbResultStore,
        manager: JobManager,
        quiet: bool = False,
        board=None,
    ):
        super().__init__(address, _Handler)
        self.db = db
        self.manager = manager
        self.quiet = quiet
        #: The distributed lease board (``serve --distributed``): when
        #: set, ``/work/*`` routes serve remote ``repro-caem worker``
        #: processes; when ``None`` those routes 404.
        self.board = board

    def close(self) -> None:
        """Stop serving and drain the worker pool (tests, SIGINT path)."""
        self.shutdown()
        self.server_close()
        self.manager.shutdown()


def build_server(
    db_path,
    host: str = "127.0.0.1",
    port: int = 8351,
    workers: int = 1,
    sim_jobs: int = 1,
    quiet: bool = False,
    distributed: bool = False,
    lease_timeout_s: float = 30.0,
) -> CampaignServer:
    """Wire db + job manager + HTTP server (port 0 picks a free port).

    ``distributed=True`` attaches a shared
    :class:`~repro.exec.board.LeaseBoard`: jobs submitted with
    ``{"executor": "distributed"}`` queue their cells on it, and remote
    ``repro-caem worker --connect`` processes lease them through the
    ``/work/*`` endpoints of this same server.
    """
    db = DbResultStore(db_path)
    board = None
    if distributed:
        from ..exec.board import LeaseBoard

        board = LeaseBoard(lease_timeout_s=lease_timeout_s)
    manager = JobManager(db, workers=workers, sim_jobs=sim_jobs, board=board)
    return CampaignServer((host, port), db, manager, quiet=quiet, board=board)


class _MemoryRows:
    """An in-memory row list behind the plain-store aggregate interface."""

    def __init__(self, rows):
        self._rows = list(rows)

    def load(self):
        return list(self._rows)


class _Handler(BaseHTTPRequestHandler):
    server: CampaignServer

    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ExperimentError(
                "malformed Content-Length header (expected an integer)"
            ) from None
        if length <= 0:
            raise ExperimentError("request body required (a JSON object)")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(
                413,
                f"request body too large ({length} bytes; the limit is "
                f"{_MAX_BODY_BYTES}) — campaign specs are small JSON objects",
            )
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw)
        except ValueError as exc:
            raise ExperimentError(f"request body is not JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ExperimentError("request body must be a JSON object")
        return data

    # -- routing ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        params = parse_qs(url.query)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["health"]:
                return self._get_health()
            if parts == ["experiments"]:
                return self._get_experiments()
            if parts == ["runs"]:
                return self._get_runs(params)
            if parts and parts[0] == "work":
                return self._work(parts, None, "GET")
            if parts and parts[0] == "campaigns":
                if len(parts) == 1:
                    return self._get_campaigns()
                job = self.server.manager.get(parts[1])
                if len(parts) == 2:
                    return self._send_json(job.snapshot())
                if len(parts) == 3 and parts[2] == "events":
                    return self._get_events(job, params)
                if len(parts) == 3 and parts[2] == "figure":
                    return self._get_figure(job, params)
                if len(parts) == 3 and parts[2] == "agg":
                    return self._get_agg(job, params)
            self._error(404, f"no such endpoint: {url.path}")
        except _HttpError as exc:
            self._error(exc.status, str(exc))
        except (ReproError, ValueError) as exc:
            self._error(400, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass  # streaming client went away — nothing to answer
        except Exception as exc:  # noqa: BLE001 - no tracebacks to clients
            self._internal_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["campaigns"]:
                spec = self._read_body()
                record = self.server.manager.submit(spec)
                return self._send_json(record.snapshot(), status=202)
            if parts and parts[0] == "work":
                return self._work(parts, self._read_body(), "POST")
            self._error(404, f"no such endpoint: {url.path}")
        except _HttpError as exc:
            self._error(exc.status, str(exc))
        except (ReproError, ValueError) as exc:
            self._error(400, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - no tracebacks to clients
            self._internal_error(exc)

    def _internal_error(self, exc: Exception) -> None:
        """A 500 as structured JSON — never an unhandled traceback.

        The traceback goes to the server log (unless quiet); the client
        gets the exception type and message only.
        """
        if not self.server.quiet:
            traceback.print_exc()
        try:
            self._error(500, f"internal error: {type(exc).__name__}: {exc}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # headers already sent or client gone — nothing to add

    # -- endpoints -------------------------------------------------------------

    def _get_health(self) -> None:
        self._send_json(
            {
                "ok": True,
                "db": str(self.server.db.path),
                "rows": len(self.server.db),
                "schema_version": SCHEMA_VERSION,
                "jobs": len(self.server.manager.list()),
            }
        )

    def _get_experiments(self) -> None:
        self._send_json(
            {
                "experiments": [spec.to_dict() for spec in list_experiments()],
            }
        )

    def _get_campaigns(self) -> None:
        self._send_json(
            {
                "jobs": [job.snapshot() for job in self.server.manager.list()],
            }
        )

    def _get_events(self, job, params: Dict[str, List[str]]) -> None:
        """NDJSON progress stream: replay from ``after``, then follow.

        Chunked so a client can iterate lines live; the stream closes once
        the job is terminal and everything was flushed (or ``timeout``
        seconds pass with no news — reconnect with ``after=<seq>``).
        """
        after = int(params.get("after", ["0"])[0])
        timeout = min(120.0, float(params.get("timeout", ["30"])[0]))
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def write_chunk(data: bytes) -> None:
            self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")

        seq = after
        while True:
            events = job.wait_events(seq, timeout=timeout)
            for event in events:
                write_chunk((json.dumps(event) + "\n").encode())
            self.wfile.flush()
            if events:
                seq = events[-1]["seq"] + 1
            if job.finished and len(job.events) <= seq:
                break
            if not events:
                break  # timed out quietly; client reconnects with after=
        self.wfile.write(b"0\r\n\r\n")

    def _get_figure(self, job, params: Dict[str, List[str]]) -> None:
        spec = job.spec
        if "experiment" not in spec:
            raise ExperimentError(
                "figures exist only for experiment jobs (grid jobs store "
                "raw rows — browse them via /runs)"
            )
        rerender = params.get("rerender", ["0"])[0] not in ("0", "", "false")
        if rerender:
            if not job.finished:
                return self._error(409, "job still running; poll until done")
            # Re-render purely from the stored rows — the service-tier
            # equivalent of `repro-caem run <exp> --from results.sqlite`.
            exp = get_experiment(spec["experiment"])
            rows = self.server.db.query(experiment=spec["experiment"])
            figure = exp.run(
                preset=spec.get("preset", "smoke"),
                seeds=tuple(int(s) for s in spec.get("seeds", (1,))),
                loads_pps=(
                    tuple(float(v) for v in spec["loads"])
                    if spec.get("loads") else None
                ),
                runs=rows,
            )
            return self._send_text(figure.render())
        if job.figure_text is None:
            return self._error(409, "figure not rendered yet; poll until done")
        self._send_text(job.figure_text)

    def _work(self, parts: List[str], body: Optional[Dict[str, Any]],
              method: str) -> None:
        """Delegate ``/work/*`` to the distributed coordinator routes."""
        board = self.server.board
        if board is None:
            return self._error(
                404,
                "this server has no distributed lease board — start it "
                "with 'repro-caem serve --distributed'",
            )
        routed = handle_work(board, method, parts, body)
        if routed is None:
            return self._error(404, f"no such endpoint: {self.path}")
        status, payload = routed
        self._send_json(payload, status=status)

    def _get_agg(self, job, params: Dict[str, List[str]]) -> None:
        """Grouped reduction over the rows this job put in the database.

        ``GET /campaigns/<id>/agg?agg=mean&group_by=protocol,load`` —
        the server-side equivalent of ``repro-caem query --agg``,
        reusing :func:`~repro.service.query.aggregate_runs`: experiment
        jobs push the whole reduction into SQL via the store's
        ``aggregate``; grid jobs scope the database to the job's own
        config digests first (recorded at submit time), then reduce.
        """
        def one(name: str, default: Optional[str] = None) -> Optional[str]:
            values = params.get(name)
            return values[0] if values else default

        agg = one("agg", "mean")
        group_by = [
            key.strip()
            for key in one("group_by", "protocol").split(",")
            if key.strip()
        ]
        metrics_raw = one("metrics")
        metrics = (
            [m.strip() for m in metrics_raw.split(",") if m.strip()]
            if metrics_raw else None
        )
        spec = job.spec
        if "experiment" in spec:
            groups = aggregate_runs(
                self.server.db, group_by, agg=agg, metrics=metrics,
                experiment=spec["experiment"],
            )
        else:
            if job._digests is None:
                raise ExperimentError(
                    "this job has no recorded grid cells to aggregate"
                )
            rows = [
                run for run, _ in
                self.server.db.rows_for_digests(job._digests)
            ]
            groups = aggregate_runs(
                _MemoryRows(rows), group_by, agg=agg, metrics=metrics,
            )
        self._send_json(
            {
                "job_id": job.job_id,
                "agg": agg,
                "group_by": group_by,
                "count": len(groups),
                "groups": groups,
            }
        )

    def _get_runs(self, params: Dict[str, List[str]]) -> None:
        def one(name: str) -> Optional[str]:
            values = params.get(name)
            return values[0] if values else None

        seed = one("seed")
        limit = one("limit")
        where = [parse_predicate(text) for text in params.get("where", [])]
        rows = query_runs(
            self.server.db,
            experiment=one("experiment"),
            config_digest=one("digest"),
            seed=int(seed) if seed is not None else None,
            protocol=one("protocol"),
            where=where,
            limit=int(limit) if limit is not None else None,
        )
        full = one("full") in ("1", "true")
        self._send_json(
            {
                "count": len(rows),
                "rows": [
                    run.to_dict() if full else run.scalar_summary() for run in rows
                ],
            }
        )
