"""Deterministic, seeded injection of network dynamics into a live run.

:class:`EventTimeline` turns a :class:`~repro.config.DynamicsConfig`
into simulation events: scripted kill/heal lists are scheduled verbatim
at start, and the stochastic mechanisms (per-node Poisson churn,
shadowing regime shifts) run as self-re-arming event chains.

Determinism discipline
----------------------
Every stochastic mechanism owns a dedicated named stream from the run's
:class:`~repro.rng.RngRegistry` (``dynamics/churn/<node>``,
``dynamics/regime``), and each chain consumes its stream in a fixed
order that does **not** depend on simulation state: a node's churn chain
draws (failure gap, downtime) pairs unconditionally, even when the
node is already battery-dead and the injection is a no-op.  Two runs
with the same seed therefore produce the same timeline regardless of
what the network does with it, and no ``dynamics/*`` draw ever perturbs
the static simulation's streams.

The timeline *injects*; the network *applies*.  Hooks (``fail``,
``recover``, ``regime_shift``) are provided by
:class:`~repro.network.SensorNetwork`, which owns the actual node and
link state transitions and the churn accounting in
:class:`~repro.network.stats.NetworkStats`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..config import DynamicsConfig
from ..errors import ConfigError
from ..rng import RngRegistry
from ..sim import Simulator

__all__ = ["EventTimeline"]


class EventTimeline:
    """Schedules one run's dynamics events (see module docstring).

    Parameters
    ----------
    sim:
        The run's simulator (events land on its clock).
    cfg:
        The dynamics block; an all-default block schedules nothing.
    rngs:
        The run's registry; the timeline draws only ``dynamics/*``
        streams from it.
    n_nodes:
        Node count, for validating scripted ids and sizing the churn
        chains.
    fail / recover:
        ``fn(node_id) -> None`` hooks; must be idempotent no-ops when
        the transition does not apply (node already down, battery dead).
    regime_shift:
        ``fn(offset_db) -> None`` hook applying a newly drawn
        network-wide mean attenuation offset.
    """

    def __init__(
        self,
        sim: Simulator,
        cfg: DynamicsConfig,
        rngs: RngRegistry,
        n_nodes: int,
        fail: Callable[[int], None],
        recover: Callable[[int], None],
        regime_shift: Callable[[float], None],
    ) -> None:
        for label, events in (
            ("scripted_failures", cfg.scripted_failures),
            ("scripted_recoveries", cfg.scripted_recoveries),
        ):
            for _t, node in events:
                if not 0 <= node < n_nodes:
                    raise ConfigError(
                        f"{label} names node {node}, but the network has "
                        f"{n_nodes} nodes (valid ids: 0..{n_nodes - 1})"
                    )
        self.sim = sim
        self.cfg = cfg
        self.n_nodes = n_nodes
        self._fail = fail
        self._recover = recover
        self._regime_shift = regime_shift
        self._rngs = rngs
        self._started = False
        #: Nodes killed by the scripted list and not yet scripted back.
        #: Scripted kills outrank the stochastic chain: a pending
        #: stochastic repair must not silently revive a node the
        #: kill-list says is down (the chain's draws continue untouched,
        #: so determinism is unaffected).
        self._scripted_down: set = set()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Schedule the scripted lists and arm the stochastic chains."""
        if self._started:
            return
        self._started = True
        for t, node in self.cfg.scripted_failures:
            self.sim.call_at(t, self._scripted_fail, node)
        for t, node in self.cfg.scripted_recoveries:
            self.sim.call_at(t, self._scripted_recover, node)
        if self.cfg.failure_rate_hz > 0:
            for node in range(self.n_nodes):
                self._arm_failure(node, self._churn_stream(node))
        if self.cfg.regime_mean_interval_s > 0 and self.cfg.regime_sigma_db > 0:
            self._arm_regime(self._rngs.stream("dynamics/regime"))

    # -- scripted churn --------------------------------------------------------

    def _scripted_fail(self, node: int) -> None:
        self._scripted_down.add(node)
        self._fail(node)

    def _scripted_recover(self, node: int) -> None:
        self._scripted_down.discard(node)
        self._recover(node)

    # -- stochastic churn ------------------------------------------------------

    def _churn_stream(self, node: int) -> np.random.Generator:
        return self._rngs.stream(f"dynamics/churn/{node}")

    def _arm_failure(self, node: int, rng: np.random.Generator) -> None:
        gap = float(rng.exponential(1.0 / self.cfg.failure_rate_hz))
        self.sim.call_in_strict(gap, self._stochastic_fail, node, rng)

    def _stochastic_fail(self, node: int, rng: np.random.Generator) -> None:
        # Draw the downtime *before* applying the failure so the stream
        # consumption order never depends on what the hook does.
        downtime = (
            float(rng.exponential(self.cfg.mean_downtime_s))
            if self.cfg.mean_downtime_s > 0
            else None
        )
        self._fail(node)
        if downtime is None:
            return  # permanent: the chain ends here
        self.sim.call_in_strict(downtime, self._stochastic_recover, node, rng)

    def _stochastic_recover(self, node: int, rng: np.random.Generator) -> None:
        # A scripted kill outranks the stochastic repair chain.
        if node not in self._scripted_down:
            self._recover(node)
        self._arm_failure(node, rng)

    # -- regime shifts ---------------------------------------------------------

    def _arm_regime(self, rng: np.random.Generator) -> None:
        gap = float(rng.exponential(self.cfg.regime_mean_interval_s))
        self.sim.call_in_strict(gap, self._regime_tick, rng)

    def _regime_tick(self, rng: np.random.Generator) -> None:
        offset_db = float(rng.normal(0.0, self.cfg.regime_sigma_db))
        self._regime_shift(offset_db)
        self._arm_regime(rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventTimeline(n={self.n_nodes}, "
            f"churn={self.cfg.failure_rate_hz:g}/s, "
            f"scripted={len(self.cfg.scripted_failures)}"
            f"+{len(self.cfg.scripted_recoveries)}, "
            f"regime={self.cfg.regime_mean_interval_s:g}s)"
        )
