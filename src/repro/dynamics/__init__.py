"""``repro.dynamics`` — scripted and stochastic network adversity.

The paper evaluates CAEM on a *static* network; this subsystem stresses
the protocols with the conditions channel-adaptive energy management
claims to survive: node churn (failure + recovery), heterogeneous
initial batteries, mid-run shadowing regime shifts, and bursty traffic.

Everything is driven by :class:`EventTimeline`, a deterministic seeded
injector owned by :class:`repro.network.SensorNetwork`; configuration
lives in :class:`repro.config.DynamicsConfig` (default: everything off,
bit-identical to the static network).
"""

from .timeline import EventTimeline

__all__ = ["EventTimeline"]
