"""Time-series collection driven by the simulation clock.

:class:`TimeSeriesCollector` samples a callable on a fixed cadence and
stores (time, value) pairs; it is how the figure experiments obtain the
paper's "versus elapsed time" curves (Figs. 8–9) and the queue-length
snapshots behind Fig. 12 ("we have taken several snapshots of the value
during the observed time [and] average them").
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..errors import ExperimentError
from ..sim import Simulator

__all__ = ["TimeSeriesCollector", "validate_max_samples"]


def validate_max_samples(value: Optional[int]) -> None:
    """Shared validity rule for series caps (collector + RunOptions).

    Even only: decimation runs at odd lengths (the newest sample must
    sit at an even index to survive), so an odd cap would let the series
    overshoot by one before shrinking.
    """
    if value is not None and (value < 2 or value % 2):
        raise ExperimentError("max_samples must be an even integer >= 2")


class TimeSeriesCollector:
    """Samples ``fn()`` every ``interval_s`` once started.

    Values may be scalars or small lists (e.g. per-node queue lengths);
    they are stored as-is and exposed as numpy arrays on demand.

    ``max_samples`` (an even integer) bounds memory for long or large
    runs (the scale tier): when the series exceeds the cap it is
    *decimated* — every second sample dropped, the sampling interval
    doubled — so the stored series stays uniformly spaced and between
    ``max_samples / 2`` and ``max_samples`` points, whatever the
    horizon.  :attr:`stride` reports the cumulative decimation factor
    (1 = exact).
    """

    def __init__(
        self,
        sim: Simulator,
        interval_s: float,
        fn: Callable[[], object],
        name: str = "series",
        sample_at_start: bool = True,
        max_samples: Optional[int] = None,
    ) -> None:
        if interval_s <= 0:
            raise ExperimentError("sample interval must be > 0")
        validate_max_samples(max_samples)
        self.sim = sim
        self.interval_s = interval_s
        self.fn = fn
        self.name = name
        self.max_samples = max_samples
        #: Cumulative decimation factor: stored samples are spaced
        #: ``stride`` original intervals apart.
        self.stride = 1
        self.times: List[float] = []
        self.values: List[object] = []
        self._handle = None
        self._sample_at_start = sample_at_start

    def start(self) -> "TimeSeriesCollector":
        """Begin sampling (first sample immediately unless disabled)."""
        if self._handle is not None:
            raise ExperimentError("collector already started")
        if self._sample_at_start:
            self._handle = self.sim.schedule_now(self._tick)
        else:
            self._handle = self.sim.call_in(self.interval_s, self._tick)
        return self

    def stop(self) -> None:
        """Cease sampling."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        self.times.append(self.sim.now)
        self.values.append(self.fn())
        n = len(self.times)
        if self.max_samples is not None and n > self.max_samples and n & 1:
            # Halving decimation: keep samples 0, 2, 4, ... and sample
            # half as often from here on.  Only at odd lengths, so the
            # newest sample (even index) survives and the doubled re-arm
            # continues the uniform spacing from it.
            del self.times[1::2]
            del self.values[1::2]
            self.interval_s *= 2.0
            self.stride *= 2
        # Strict re-arm: the sampling cadence must advance the clock even
        # when the interval underflows float resolution at large sim times.
        self._handle = self.sim.call_in_strict(self.interval_s, self._tick)

    # -- views -------------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Samples collected so far."""
        return len(self.times)

    def as_arrays(self):
        """(times, values) as numpy arrays (values must be scalar)."""
        return np.asarray(self.times), np.asarray(self.values, dtype=float)

    def value_at(self, t: float) -> object:
        """Last sampled value at or before ``t``."""
        times = np.asarray(self.times)
        idx = int(np.searchsorted(times, t, side="right")) - 1
        if idx < 0:
            raise ExperimentError(f"no sample at or before t={t}")
        return self.values[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TimeSeriesCollector {self.name!r} n={len(self.times)}>"
