"""Time-series collection driven by the simulation clock.

:class:`TimeSeriesCollector` samples a callable on a fixed cadence and
stores (time, value) pairs; it is how the figure experiments obtain the
paper's "versus elapsed time" curves (Figs. 8–9) and the queue-length
snapshots behind Fig. 12 ("we have taken several snapshots of the value
during the observed time [and] average them").
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..errors import ExperimentError
from ..sim import Simulator

__all__ = ["TimeSeriesCollector"]


class TimeSeriesCollector:
    """Samples ``fn()`` every ``interval_s`` once started.

    Values may be scalars or small lists (e.g. per-node queue lengths);
    they are stored as-is and exposed as numpy arrays on demand.
    """

    def __init__(
        self,
        sim: Simulator,
        interval_s: float,
        fn: Callable[[], object],
        name: str = "series",
        sample_at_start: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ExperimentError("sample interval must be > 0")
        self.sim = sim
        self.interval_s = interval_s
        self.fn = fn
        self.name = name
        self.times: List[float] = []
        self.values: List[object] = []
        self._handle = None
        self._sample_at_start = sample_at_start

    def start(self) -> "TimeSeriesCollector":
        """Begin sampling (first sample immediately unless disabled)."""
        if self._handle is not None:
            raise ExperimentError("collector already started")
        if self._sample_at_start:
            self._handle = self.sim.schedule_now(self._tick)
        else:
            self._handle = self.sim.call_in(self.interval_s, self._tick)
        return self

    def stop(self) -> None:
        """Cease sampling."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        self.times.append(self.sim.now)
        self.values.append(self.fn())
        # Strict re-arm: the sampling cadence must advance the clock even
        # when the interval underflows float resolution at large sim times.
        self._handle = self.sim.call_in_strict(self.interval_s, self._tick)

    # -- views -------------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Samples collected so far."""
        return len(self.times)

    def as_arrays(self):
        """(times, values) as numpy arrays (values must be scalar)."""
        return np.asarray(self.times), np.asarray(self.values, dtype=float)

    def value_at(self, t: float) -> object:
        """Last sampled value at or before ``t``."""
        times = np.asarray(self.times)
        idx = int(np.searchsorted(times, t, side="right")) - 1
        if idx < 0:
            raise ExperimentError(f"no sample at or before t={t}")
        return self.values[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TimeSeriesCollector {self.name!r} n={len(self.times)}>"
