"""Short-term fairness metrics (Fig. 12).

The paper's fairness measure: "we can define 'fairness' here as the
standard deviation of queue length" across sensor nodes, sampled at
several snapshots and averaged — homogeneous Poisson sources mean equal
service shares should keep queues statistically identical, so spread in
queue length is spread in service share.  Jain's index is included as the
conventional alternative for the extended experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..errors import ExperimentError

__all__ = ["queue_length_std", "mean_snapshot_std", "jain_index"]


def queue_length_std(queue_lengths: Sequence[float]) -> float:
    """Population standard deviation of one queue-length snapshot."""
    arr = np.asarray(queue_lengths, dtype=float)
    if arr.size == 0:
        raise ExperimentError("empty queue snapshot")
    return float(arr.std())


def mean_snapshot_std(snapshots: Iterable[Sequence[float]]) -> float:
    """The paper's Fig. 12 statistic: std per snapshot, averaged.

    "In our simulations, we have taken several snapshots of the value
    during the observed time, [and] average them."
    """
    stds: List[float] = []
    for snap in snapshots:
        arr = np.asarray(snap, dtype=float)
        if arr.size:
            stds.append(float(arr.std()))
    if not stds:
        raise ExperimentError("no non-empty snapshots")
    return float(np.mean(stds))


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index (1 = perfectly fair, 1/n = maximally unfair)."""
    arr = np.asarray(shares, dtype=float)
    if arr.size == 0:
        raise ExperimentError("empty share vector")
    if np.any(arr < 0):
        raise ExperimentError("shares must be non-negative")
    total = arr.sum()
    if total == 0.0:
        return 1.0  # nobody got anything: degenerately fair
    return float(total ** 2 / (arr.size * (arr ** 2).sum()))
