"""Metrics: the paper's evaluation quantities and extended diagnostics."""

from .collectors import TimeSeriesCollector
from .energy import energy_per_delivered_packet_j, energy_share, mean_remaining_energy_j
from .fairness import jain_index, mean_snapshot_std, queue_length_std
from .lifetime import death_spread_s, first_death_s, last_death_s, network_lifetime_s
from .performance import (
    aggregate_throughput_bps,
    delay_percentile_s,
    delivery_rate,
    mean_delay_s,
)
from .summary import Summary, summarize

__all__ = [
    "TimeSeriesCollector",
    "mean_remaining_energy_j",
    "energy_per_delivered_packet_j",
    "energy_share",
    "queue_length_std",
    "mean_snapshot_std",
    "jain_index",
    "network_lifetime_s",
    "first_death_s",
    "last_death_s",
    "death_spread_s",
    "mean_delay_s",
    "delay_percentile_s",
    "aggregate_throughput_bps",
    "delivery_rate",
    "Summary",
    "summarize",
]
