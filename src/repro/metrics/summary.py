"""Multi-seed aggregation: mean, standard deviation, confidence intervals.

Simulation papers report point estimates; we additionally aggregate across
replications (seeds) so EXPERIMENTS.md can state spread alongside means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as _scipy_stats

from ..errors import ExperimentError

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Point estimate + spread for one metric across replications."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g} ± {self.ci_half:.2g} (n={self.n})"

    @property
    def ci_half(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


def summarize(values: Sequence[Optional[float]], confidence: float = 0.95) -> Summary:
    """Aggregate replication values (None entries are dropped as censored).

    Uses the Student-t interval, the standard choice for small numbers of
    simulation replications.
    """
    clean = [v for v in values if v is not None and not math.isnan(v)]
    if not clean:
        raise ExperimentError("no usable values to summarize")
    if not 0.0 < confidence < 1.0:
        raise ExperimentError("confidence must be in (0, 1)")
    arr = np.asarray(clean, dtype=float)
    n = arr.size
    mean = float(arr.mean())
    if n == 1:
        return Summary(1, mean, 0.0, mean, mean)
    std = float(arr.std(ddof=1))
    sem = std / math.sqrt(n)
    t = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return Summary(n, mean, std, mean - t * sem, mean + t * sem)
