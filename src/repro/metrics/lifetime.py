"""Network-lifetime metrics (Figs. 9–10).

The paper: "we further call a network 'dead' if the percentage of nodes
exhausted exceeds [the threshold]" — the number is lost in the scan; we
default to 80 % and expose it everywhere (LEACH's rotation makes the
die-off so abrupt that the choice barely moves the metric, which the tests
verify on real runs).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..errors import ExperimentError

__all__ = ["network_lifetime_s", "first_death_s", "last_death_s", "death_spread_s"]


def _sorted_death_times(death_times: Sequence[Optional[float]]):
    return sorted(t for t in death_times if t is not None)


def network_lifetime_s(
    death_times: Sequence[Optional[float]],
    n_nodes: int,
    dead_fraction: float = 0.8,
) -> Optional[float]:
    """Time at which the dead fraction first *exceeds* the threshold.

    ``death_times`` holds one entry per node (None = still alive at the
    end of the run).  Returns None when the network never died (censored
    observation — the caller should extend the horizon).
    """
    if n_nodes <= 0:
        raise ExperimentError("n_nodes must be > 0")
    if not 0.0 < dead_fraction <= 1.0:
        raise ExperimentError("dead fraction must be in (0, 1]")
    deaths = _sorted_death_times(death_times)
    needed = math.floor(dead_fraction * n_nodes) + 1
    # With dead_fraction == 1 the fraction can never *exceed* it; dying
    # out completely is what we mean, so require all nodes instead.
    if dead_fraction >= 1.0:
        needed = n_nodes
    if len(deaths) < needed:
        return None
    return deaths[needed - 1]


def first_death_s(death_times: Sequence[Optional[float]]) -> Optional[float]:
    """Time of the first node exhaustion (None if nobody died)."""
    deaths = _sorted_death_times(death_times)
    return deaths[0] if deaths else None


def last_death_s(death_times: Sequence[Optional[float]]) -> Optional[float]:
    """Time of the last observed exhaustion (None if nobody died)."""
    deaths = _sorted_death_times(death_times)
    return deaths[-1] if deaths else None


def death_spread_s(death_times: Sequence[Optional[float]]) -> Optional[float]:
    """Last minus first death — the paper's "quite short" die-off window."""
    deaths = _sorted_death_times(death_times)
    if len(deaths) < 2:
        return None
    return deaths[-1] - deaths[0]
