"""Energy metrics (Figs. 8, 11).

* Fig. 8 — "average remaining power versus time": mean battery level over
  all deployed nodes (dead nodes count 0, as in the paper's monotone
  curves).
* Fig. 11 — "average energy consumed for successfully transmitting one
  data packet": total network energy drawn divided by packets delivered
  over the air.  Local (head-to-itself) aggregation is excluded from the
  denominator by default because it costs no radio energy and would
  flatter every protocol equally.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ExperimentError
from ..network import SensorNetwork

__all__ = ["mean_remaining_energy_j", "energy_per_delivered_packet_j", "energy_share"]


def mean_remaining_energy_j(network: SensorNetwork) -> float:
    """Fig. 8's y-axis at the current instant."""
    return network.mean_remaining_j()


def energy_per_delivered_packet_j(
    network: SensorNetwork, include_local: bool = False
) -> Optional[float]:
    """Fig. 11's y-axis over the run so far (None before any delivery)."""
    delivered = network.stats.delivered
    if include_local:
        delivered += network.stats.delivered_local
    if delivered == 0:
        return None
    return network.total_consumed_j() / delivered


def energy_share(network: SensorNetwork) -> Dict[str, float]:
    """Per-cause fraction of total consumption (ablation diagnostics)."""
    breakdown = network.energy_breakdown()
    total = sum(breakdown.values())
    if total <= 0.0:
        raise ExperimentError("no energy consumed yet")
    return {cause: joules / total for cause, joules in breakdown.items()}
