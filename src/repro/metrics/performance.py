"""Network-performance metrics (paper §IV, long-version set).

The paper defines three performance aspects and defers their plots to the
long version: average packet delay, aggregate network throughput, and
successful packet delivery rate.  We implement and report all three in
the ``ext-perf`` experiment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ExperimentError
from ..network import SensorNetwork

__all__ = [
    "mean_delay_s",
    "delay_percentile_s",
    "aggregate_throughput_bps",
    "delivery_rate",
]


def mean_delay_s(network: SensorNetwork) -> float:
    """"the time duration for a packet transmitted from its source to the
    sink (including queuing and [transmission] time)" — averaged."""
    return network.stats.mean_delay_s()


def delay_percentile_s(network: SensorNetwork, q: float) -> Optional[float]:
    """Delay percentile (q in [0, 100]); None before any delivery."""
    if not 0 <= q <= 100:
        raise ExperimentError("percentile must be in [0, 100]")
    delays = network.stats.delays_s
    if not delays:
        return None
    return float(np.percentile(np.asarray(delays), q))


def aggregate_throughput_bps(network: SensorNetwork, elapsed_s: float) -> float:
    """"the average number of data packets arriving at their destinations
    per second in the whole network, measured in kbps" (we return bps)."""
    if elapsed_s <= 0:
        raise ExperimentError("elapsed time must be > 0")
    return network.stats.delivered_bits / elapsed_s


def delivery_rate(network: SensorNetwork) -> Optional[float]:
    """"the ratio of the number of packets successfully received by sinks
    to the total number of packets generated"; None before any traffic."""
    generated = network.generated_packets()
    if generated == 0:
        return None
    return network.stats.total_delivered / generated
