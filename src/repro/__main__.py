"""``python -m repro`` — same as the ``repro-caem`` console script."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
