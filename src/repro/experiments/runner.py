"""Run one scenario, collect everything the figures need.

:func:`run_scenario` is the single entry point the figure experiments and
benches share: build a :class:`~repro.network.SensorNetwork`, attach
samplers, advance (optionally stopping at network death), and distil a
:class:`RunResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import NetworkConfig
from ..errors import ExperimentError
from ..metrics import TimeSeriesCollector
from ..metrics.lifetime import death_spread_s, first_death_s, network_lifetime_s
from ..network import SensorNetwork

__all__ = ["RunResult", "run_scenario"]


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    protocol: str
    seed: int
    load_pps: float
    horizon_s: float
    # Time series.
    sample_times_s: List[float] = field(default_factory=list)
    mean_energy_j: List[float] = field(default_factory=list)
    alive_counts: List[int] = field(default_factory=list)
    queue_snapshots: List[List[int]] = field(default_factory=list)
    # Scalars.
    death_times_s: List[Optional[float]] = field(default_factory=list)
    lifetime_s: Optional[float] = None
    first_death_s: Optional[float] = None
    death_spread_s: Optional[float] = None
    generated: int = 0
    delivered: int = 0
    delivered_local: int = 0
    lost_channel: int = 0
    dropped_overflow: int = 0
    dropped_retry: int = 0
    collisions: int = 0
    total_consumed_j: float = 0.0
    energy_per_packet_j: Optional[float] = None
    mean_delay_s: float = 0.0
    throughput_bps: float = 0.0
    delivery_rate: Optional[float] = None
    energy_breakdown: Dict[str, float] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def total_delivered(self) -> int:
        """Radio + local deliveries."""
        return self.delivered + self.delivered_local


def run_scenario(
    cfg: NetworkConfig,
    horizon_s: float,
    sample_interval_s: float = 5.0,
    stop_when_dead: bool = False,
    collect_queues: bool = False,
    tracer=None,
) -> RunResult:
    """Simulate one scenario and return its :class:`RunResult`.

    ``stop_when_dead`` ends the run early once the paper's dead-network
    rule triggers (saves wall time in lifetime sweeps).  ``collect_queues``
    stores per-node queue snapshots for the Fig. 12 fairness statistic.
    """
    if horizon_s <= 0:
        raise ExperimentError("horizon must be > 0")
    wall_start = time.perf_counter()
    net = SensorNetwork(cfg, tracer=tracer)
    result = RunResult(
        protocol=cfg.protocol.value,
        seed=cfg.seed,
        load_pps=cfg.traffic.packets_per_second,
        horizon_s=horizon_s,
    )

    def sample_energy() -> float:
        return net.mean_remaining_j()

    def sample_alive() -> int:
        return net.alive_count

    energy_series = TimeSeriesCollector(
        net.sim, sample_interval_s, sample_energy, "mean_energy"
    )
    alive_series = TimeSeriesCollector(
        net.sim, sample_interval_s, sample_alive, "alive"
    )
    queue_series = None
    if collect_queues:
        queue_series = TimeSeriesCollector(
            net.sim, sample_interval_s, net.queue_lengths, "queues"
        )

    net.start()
    energy_series.start()
    alive_series.start()
    if queue_series is not None:
        queue_series.start()

    # Advance in sampler-sized chunks so the death rule is checked often.
    t = 0.0
    while t < horizon_s:
        t = min(t + sample_interval_s, horizon_s)
        net.run_until(t)
        if stop_when_dead and net.is_dead:
            break

    # Harvest.
    result.sample_times_s = list(energy_series.times)
    result.mean_energy_j = [float(v) for v in energy_series.values]
    result.alive_counts = [int(v) for v in alive_series.values]
    if queue_series is not None:
        result.queue_snapshots = [list(v) for v in queue_series.values]

    deaths = [n.death_time_s for n in net.nodes]
    result.death_times_s = deaths
    result.lifetime_s = network_lifetime_s(
        deaths, cfg.n_nodes, cfg.dead_fraction
    )
    result.first_death_s = first_death_s(deaths)
    result.death_spread_s = death_spread_s(deaths)

    elapsed = net.sim.now
    result.generated = net.generated_packets()
    result.delivered = net.stats.delivered
    result.delivered_local = net.stats.delivered_local
    result.lost_channel = net.stats.lost_channel
    result.dropped_overflow = net.dropped_overflow()
    result.dropped_retry = net.dropped_retry()
    result.collisions = sum(n.mac.stats.collisions_heard for n in net.nodes)
    result.total_consumed_j = net.total_consumed_j()
    if result.delivered > 0:
        result.energy_per_packet_j = result.total_consumed_j / result.delivered
    result.mean_delay_s = net.stats.mean_delay_s()
    if elapsed > 0:
        result.throughput_bps = net.stats.delivered_bits / elapsed
    if result.generated > 0:
        result.delivery_rate = net.stats.total_delivered / result.generated
    result.energy_breakdown = net.energy_breakdown()
    result.wall_time_s = time.perf_counter() - wall_start
    return result
