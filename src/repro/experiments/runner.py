"""Compatibility shim over the :mod:`repro.api` engine.

Historically :func:`run_scenario` was the execution kernel; the body now
lives in :func:`repro.api.engine.simulate` (with :class:`RunResult` in
:mod:`repro.api.result`) so the Scenario/Campaign layer and the process
pool share one choke point.  This module keeps the original call
signature for existing scripts and tests — new code should prefer
``Scenario(...).run()`` or :class:`repro.api.Campaign`.
"""

from __future__ import annotations

from ..api.engine import RunOptions, simulate
from ..api.result import RunResult
from ..config import NetworkConfig

__all__ = ["RunResult", "run_scenario"]


def run_scenario(
    cfg: NetworkConfig,
    horizon_s: float,
    sample_interval_s: float = 5.0,
    stop_when_dead: bool = False,
    collect_queues: bool = False,
    tracer=None,
) -> RunResult:
    """Simulate one scenario and return its :class:`RunResult`.

    Thin wrapper over :func:`repro.api.simulate`; see
    :class:`repro.api.RunOptions` for the option semantics.
    """
    return simulate(
        cfg,
        RunOptions(
            horizon_s=horizon_s,
            sample_interval_s=sample_interval_s,
            stop_when_dead=stop_when_dead,
            collect_queues=collect_queues,
        ),
        tracer=tracer,
    )
