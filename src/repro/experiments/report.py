"""Result rendering: ASCII tables (paper-style) and CSV persistence."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..errors import ExperimentError

__all__ = ["render_table", "write_csv", "format_cell"]

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 4) -> str:
    """Uniform cell formatting: floats trimmed, None shown as em-dash."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a fixed-width ASCII table (the bench/CLI output format)."""
    rows = [list(r) for r in rows]
    for r in rows:
        if len(r) != len(headers):
            raise ExperimentError(
                f"row width {len(r)} != header width {len(headers)}"
            )
    text_rows = [[format_cell(c, precision) for c in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    sep = "-+-".join("-" * w for w in widths)
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip() + "\n")
    out.write(sep + "\n")
    for r in text_rows:
        out.write(" | ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip() + "\n")
    return out.getvalue()


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
) -> Path:
    """Persist a result table as CSV; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(["" if c is None else c for c in row])
    return path
