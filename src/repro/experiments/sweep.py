"""Generic parameter sweeps with replication.

The figure experiments cover the paper; :func:`sweep` is the general tool
behind the ablation benches — vary any config transform over a grid, run
replications, and get a tidy table back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..config import NetworkConfig
from ..errors import ExperimentError
from ..metrics.summary import Summary, summarize
from .runner import RunResult, run_scenario

__all__ = ["SweepPoint", "SweepResult", "sweep"]

ConfigTransform = Callable[[NetworkConfig, object], NetworkConfig]
MetricFn = Callable[[RunResult], Optional[float]]


@dataclass
class SweepPoint:
    """One grid point: parameter value + per-metric summaries."""

    value: object
    metrics: Dict[str, Summary] = field(default_factory=dict)
    runs: List[RunResult] = field(default_factory=list)


@dataclass
class SweepResult:
    """All grid points of one sweep."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def column(self, metric: str) -> List[Optional[float]]:
        """Mean of ``metric`` per grid point (None where unavailable)."""
        out: List[Optional[float]] = []
        for p in self.points:
            s = p.metrics.get(metric)
            out.append(s.mean if s is not None else None)
        return out

    def rows(self, metrics: Sequence[str]) -> List[List]:
        """Table rows: value + the requested metric means."""
        table = []
        for p in self.points:
            row: List = [p.value]
            for m in metrics:
                s = p.metrics.get(m)
                row.append(s.mean if s is not None else None)
            table.append(row)
        return table


def sweep(
    base_cfg: NetworkConfig,
    parameter: str,
    values: Sequence[object],
    transform: ConfigTransform,
    metrics: Dict[str, MetricFn],
    horizon_s: float,
    seeds: Sequence[int] = (1,),
    sample_interval_s: float = 5.0,
    stop_when_dead: bool = False,
    collect_queues: bool = False,
) -> SweepResult:
    """Run ``transform(base_cfg, v)`` for every v × seed; summarize metrics.

    ``metrics`` maps a column name to a function of :class:`RunResult`;
    functions may return None (censored), which :func:`summarize` drops.
    """
    if not values:
        raise ExperimentError("sweep needs at least one value")
    if not metrics:
        raise ExperimentError("sweep needs at least one metric")
    result = SweepResult(parameter=parameter)
    for value in values:
        point = SweepPoint(value=value)
        samples: Dict[str, List[Optional[float]]] = {m: [] for m in metrics}
        for seed in seeds:
            cfg = transform(base_cfg.with_(seed=seed), value)
            run = run_scenario(
                cfg,
                horizon_s=horizon_s,
                sample_interval_s=sample_interval_s,
                stop_when_dead=stop_when_dead,
                collect_queues=collect_queues,
            )
            point.runs.append(run)
            for name, fn in metrics.items():
                samples[name].append(fn(run))
        for name, vals in samples.items():
            usable = [v for v in vals if v is not None]
            if usable:
                point.metrics[name] = summarize(usable)
        result.points.append(point)
    return result
