"""Generic parameter sweeps with replication (compatibility layer).

:func:`sweep` predates :class:`repro.api.Campaign` and remains the tool
behind the ablation benches — vary any config transform over a grid, run
replications, and get a tidy table back.  It is now a thin planner on top
of :func:`repro.api.run_scenarios`, so it inherits the parallel executor:
pass ``jobs=N`` to fan the grid out over a process pool with bit-identical
results.  New code expressing plain config-field grids should prefer
:class:`repro.api.Campaign` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..api import RunOptions, RunResult, Scenario, run_scenarios
from ..config import NetworkConfig
from ..errors import ExperimentError
from ..metrics.summary import Summary, summarize

__all__ = ["SweepPoint", "SweepResult", "sweep"]

ConfigTransform = Callable[[NetworkConfig, object], NetworkConfig]
MetricFn = Callable[[RunResult], Optional[float]]


@dataclass
class SweepPoint:
    """One grid point: parameter value + per-metric summaries."""

    value: object
    metrics: Dict[str, Summary] = field(default_factory=dict)
    runs: List[RunResult] = field(default_factory=list)


@dataclass
class SweepResult:
    """All grid points of one sweep."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def column(self, metric: str) -> List[Optional[float]]:
        """Mean of ``metric`` per grid point (None where unavailable)."""
        out: List[Optional[float]] = []
        for p in self.points:
            s = p.metrics.get(metric)
            out.append(s.mean if s is not None else None)
        return out

    def rows(self, metrics: Sequence[str]) -> List[List]:
        """Table rows: value + the requested metric means."""
        table = []
        for p in self.points:
            row: List = [p.value]
            for m in metrics:
                s = p.metrics.get(m)
                row.append(s.mean if s is not None else None)
            table.append(row)
        return table


def sweep(
    base_cfg: NetworkConfig,
    parameter: str,
    values: Sequence[object],
    transform: ConfigTransform,
    metrics: Dict[str, MetricFn],
    horizon_s: float,
    seeds: Sequence[int] = (1,),
    sample_interval_s: float = 5.0,
    stop_when_dead: bool = False,
    collect_queues: bool = False,
    jobs: int = 1,
) -> SweepResult:
    """Run ``transform(base_cfg, v)`` for every v × seed; summarize metrics.

    ``metrics`` maps a column name to a function of :class:`RunResult`;
    functions may return None (censored), which :func:`summarize` drops.
    ``jobs > 1`` executes the v × seed grid through the process-pool
    backend (results identical to serial, just faster).
    """
    if not values:
        raise ExperimentError("sweep needs at least one value")
    if not metrics:
        raise ExperimentError("sweep needs at least one metric")
    options = RunOptions(
        horizon_s=horizon_s,
        sample_interval_s=sample_interval_s,
        stop_when_dead=stop_when_dead,
        collect_queues=collect_queues,
    )
    scenarios = [
        Scenario(
            config=transform(base_cfg.with_(seed=seed), value),
            options=options,
            tags={"parameter": parameter, "value": value, "seed": seed},
        )
        for value in values
        for seed in seeds
    ]
    runs = run_scenarios(scenarios, jobs=jobs)

    result = SweepResult(parameter=parameter)
    per_value = len(seeds)
    for i, value in enumerate(values):
        point = SweepPoint(value=value)
        point.runs = runs[i * per_value:(i + 1) * per_value]
        for name, fn in metrics.items():
            usable = [m for m in (fn(run) for run in point.runs)
                      if m is not None]
            if usable:
                point.metrics[name] = summarize(usable)
        result.points.append(point)
    return result
