"""Experiment presets: paper-scale ("full") and CI-scale ("quick").

``full`` reproduces Table II exactly: 100 nodes, 10 J batteries, 20 s
rounds — each lifetime run simulates hundreds to thousands of seconds.
``quick`` keeps every protocol mechanism identical but shrinks the world
(30 nodes, 2 J, 10 s rounds) so the whole benchmark suite finishes in
minutes; because all protocols shrink together, orderings and ratios are
preserved (verified by the cross-preset consistency test).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..config import EnergyConfig, LeachConfig, NetworkConfig, Protocol
from ..errors import ExperimentError

__all__ = ["Preset", "PRESETS", "preset_config", "get_preset"]


@dataclass(frozen=True)
class Preset:
    """Scaling knobs for one experiment tier."""

    name: str
    n_nodes: int
    initial_energy_j: float
    round_duration_s: float
    #: Horizon for fixed-window runs (fig8-style curves).
    energy_horizon_s: float
    #: Horizon cap for run-to-death experiments (fig9/fig10).
    lifetime_horizon_s: float
    #: Metric sampling cadence.
    sample_interval_s: float
    #: Steady-state window for rate metrics (fig11/fig12/ext-perf).
    rate_horizon_s: float

    def config(
        self,
        protocol: Protocol,
        load_pps: float = 5.0,
        seed: int = 1,
    ) -> NetworkConfig:
        """A NetworkConfig for this tier."""
        base = NetworkConfig(
            n_nodes=self.n_nodes,
            protocol=protocol,
            seed=seed,
            energy=dataclasses.replace(
                EnergyConfig(), initial_energy_j=self.initial_energy_j
            ),
            leach=dataclasses.replace(
                LeachConfig(), round_duration_s=self.round_duration_s
            ),
        )
        return base.with_traffic(packets_per_second=load_pps)


#: Paper scale: Table II verbatim.
FULL = Preset(
    name="full",
    n_nodes=100,
    initial_energy_j=10.0,
    round_duration_s=20.0,
    energy_horizon_s=600.0,
    lifetime_horizon_s=3000.0,
    sample_interval_s=10.0,
    rate_horizon_s=120.0,
)

#: CI scale: same mechanisms, ~25x cheaper.
QUICK = Preset(
    name="quick",
    n_nodes=30,
    initial_energy_j=2.0,
    round_duration_s=10.0,
    energy_horizon_s=120.0,
    lifetime_horizon_s=700.0,
    sample_interval_s=2.0,
    rate_horizon_s=40.0,
)

#: Smoke scale for unit tests of the harness itself.
SMOKE = Preset(
    name="smoke",
    n_nodes=12,
    initial_energy_j=0.5,
    round_duration_s=5.0,
    energy_horizon_s=30.0,
    lifetime_horizon_s=200.0,
    sample_interval_s=1.0,
    rate_horizon_s=15.0,
)

PRESETS = {p.name: p for p in (FULL, QUICK, SMOKE)}


def get_preset(name: str) -> Preset:
    """Look up a preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown preset {name!r}; have {sorted(PRESETS)}"
        ) from None


def preset_config(
    preset: str, protocol: Protocol, load_pps: float = 5.0, seed: int = 1
) -> NetworkConfig:
    """Convenience: ``get_preset(preset).config(...)``."""
    return get_preset(preset).config(protocol, load_pps, seed)
