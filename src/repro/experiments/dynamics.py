"""Extension experiment: the protocols under network adversity.

The paper's claim — channel-adaptive energy management extends lifetime —
is evaluated on a *static* network.  This experiment stresses it with the
:mod:`repro.dynamics` subsystem: every cell runs under a fixed adversity
profile (heterogeneous batteries, half the nodes bursty, periodic
shadowing regime shifts) and sweeps the per-node churn failure rate
crossed with the protocol (policy).  Reported per cell: applied
failures/recoveries, end-to-end delivery on both denominators (raw and
churn-aware ``delivery_rate_offered``), the first-failure time, what the
surviving nodes actually sustained (``survivor_throughput_bps``), and
the churn-aware network lifetime.

Like every figure, the run grid is bit-identical at any ``--jobs``
parallelism and can be persisted/re-rendered through a ResultStore.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api import RunOptions, RunResult, Scenario, experiment
from ..config import Protocol
from ..metrics.summary import summarize
from .figures import _LABELS, _PROTOCOLS, FigureResult, _resolve_runs
from .presets import get_preset

__all__ = ["ext_dynamics", "DEFAULT_CHURN_RATES_HZ"]

#: Per-node Poisson failure rates, 1/s (0 = adversity without churn).
DEFAULT_CHURN_RATES_HZ = (0.0, 0.002, 0.01)


def _dynamics_scenario(
    tier, proto: Protocol, churn_hz: float, seed: int
) -> Scenario:
    cfg = tier.config(proto, 5.0, seed)
    round_s = tier.round_duration_s
    return Scenario(
        config=cfg.with_dynamics(
            failure_rate_hz=churn_hz,
            # A failed node sits out ~2 rounds before repair.
            mean_downtime_s=2.0 * round_s,
            battery_jitter=0.3,
            regime_mean_interval_s=2.0 * round_s,
            regime_sigma_db=3.0,
            bursty_fraction=0.5,
        ),
        options=RunOptions(
            horizon_s=tier.lifetime_horizon_s,
            sample_interval_s=tier.sample_interval_s,
            stop_when_dead=True,
        ),
        tags={"protocol": proto.value, "churn_hz": churn_hz, "seed": seed},
    )


@experiment("ext-dynamics", kind="extension",
            summary="Churn-rate x policy sweep under network adversity")
def ext_dynamics(
    preset: str = "quick",
    seeds: Sequence[int] = (1,),
    churn_rates_hz: Sequence[float] = DEFAULT_CHURN_RATES_HZ,
    jobs: int = 1,
    runs: Optional[Sequence[RunResult]] = None,
) -> FigureResult:
    """Delivery/lifetime surface of the three protocols under churn."""
    tier = get_preset(preset)
    result = FigureResult(
        figure_id="ext-dynamics",
        title="Protocols under adversity: churn rate versus delivery and lifetime",
        x_label="per-node churn failure rate (1/s)",
        headers=[
            "protocol", "churn_hz",
            "failures", "recoveries", "orphaned",
            "delivery", "delivery_offered", "first_failure_s",
            "survivor_kbps", "lifetime_s",
        ],
        notes=(
            f"preset={preset}: {tier.n_nodes} nodes, 5 pkt/s, run to "
            "network death (80% rule); adversity profile: battery "
            "jitter 0.3, 50% bursty sources, 3 dB regime shifts every "
            "~2 rounds, repairs after ~2 rounds; lifetime_s is the "
            "churn-aware lifetime_effective_s"
        ),
    )
    scenarios = [
        _dynamics_scenario(tier, proto, churn, seed)
        for proto in _PROTOCOLS
        for churn in churn_rates_hz
        for seed in seeds
    ]
    result.runs = _resolve_runs(scenarios, jobs, runs, result.figure_id)

    it = iter(result.runs)
    for proto in _PROTOCOLS:
        for churn in churn_rates_hz:
            failures: List[float] = []
            recoveries: List[float] = []
            orphaned: List[float] = []
            rates: List[float] = []
            offered: List[float] = []
            first_fails: List[float] = []
            survivor_kbps: List[float] = []
            lifetimes: List[float] = []
            for _seed in seeds:
                run = next(it)
                failures.append(float(run.churn_failures))
                recoveries.append(float(run.churn_recoveries))
                orphaned.append(float(run.orphaned))
                if run.delivery_rate is not None:
                    rates.append(run.delivery_rate)
                if run.delivery_rate_offered is not None:
                    offered.append(run.delivery_rate_offered)
                if run.first_failure_s is not None:
                    first_fails.append(run.first_failure_s)
                survivor_kbps.append(run.survivor_throughput_bps / 1e3)
                if run.lifetime_effective_s is not None:
                    lifetimes.append(run.lifetime_effective_s)
            result.rows.append([
                _LABELS[proto],
                churn,
                summarize(failures).mean,
                summarize(recoveries).mean,
                summarize(orphaned).mean,
                summarize(rates).mean if rates else None,
                summarize(offered).mean if offered else None,
                summarize(first_fails).mean if first_fails else None,
                summarize(survivor_kbps).mean,
                summarize(lifetimes).mean if lifetimes else None,
            ])
    return result
