"""The paper's tables, regenerated from the live configuration objects.

* Table I — tone-channel pulse pattern per data-channel state;
* Table II — physical simulation parameters.

Regenerating them from :mod:`repro.config` (rather than hard-coding
strings) means any drift between code defaults and documented parameters
fails the table tests.
"""

from __future__ import annotations

from typing import List

from ..api import experiment
from ..config import NetworkConfig
from ..mac.tone import ToneChannelSpec
from .figures import FigureResult

__all__ = ["table1_tone_spec", "table2_parameters"]


@experiment("table1", kind="table",
            summary="Tone-channel pulse pattern per data-channel state")
def table1_tone_spec(cfg: NetworkConfig | None = None) -> FigureResult:
    """Table I: "using different pulse intervals to identify channel states"."""
    cfg = cfg or NetworkConfig()
    spec = ToneChannelSpec(cfg.tone)
    result = FigureResult(
        figure_id="table1",
        title="Tone channel: pulse duration/period per data-channel state",
        x_label="channel state",
        headers=["state", "pulse duration (ms)", "pulse period (ms)",
                 "duty cycle"],
        notes="'transmit' (CH→BS relay) is defined but never emitted — out "
              "of the paper's scope",
    )
    for row in spec.rows():
        result.rows.append([
            row.kind.value,
            row.duration_s * 1e3,
            None if row.period_s is None else row.period_s * 1e3,
            row.duty_cycle,
        ])
    return result


@experiment("table2", kind="table",
            summary="Physical simulation parameters (live defaults)")
def table2_parameters(cfg: NetworkConfig | None = None) -> FigureResult:
    """Table II: physical simulation parameters (live defaults)."""
    cfg = cfg or NetworkConfig()
    result = FigureResult(
        figure_id="table2",
        title="Physical simulation parameters",
        x_label="parameter",
        headers=["parameter", "value"],
    )
    rows: List[List] = [
        ["Testing field", f"{cfg.field_size_m:.0f} m × {cfg.field_size_m:.0f} m"],
        ["Number of nodes", cfg.n_nodes],
        ["Bandwidth (ABICM modes)",
         " / ".join(f"{r/1e6:g} Mbps" if r >= 1e6 else f"{r/1e3:g} kbps"
                    for r in reversed(cfg.phy.rates_bps))],
        ["Percentage of CH", f"{cfg.leach.ch_fraction * 100:g}%"],
        ["Transmit power (data)", f"{cfg.energy.data_tx_power_w} W"],
        ["Receive power (data)", f"{cfg.energy.data_rx_power_w} W"],
        ["Sleep power (data)", f"{cfg.energy.sleep_power_w * 1e3:g} mW"],
        ["Transmit power (tone)", f"{cfg.energy.tone_tx_power_w * 1e3:g} mW"],
        ["Receive power (tone)", f"{cfg.energy.tone_rx_power_w * 1e3:g} mW"],
        ["Packet length", f"{cfg.phy.packet_length_bits / 1e3:g} kbit"],
        ["Sensing delay", f"{cfg.tone.sensing_delay_s * 1e3:g} ms"],
        ["Contention window size", cfg.mac.contention_window],
        ["Buffer size", f"{cfg.traffic.buffer_packets} packets"],
        ["Radio startup time", f"{cfg.energy.startup_time_s * 1e6:g} µs"],
        ["Burst size", f"{cfg.mac.min_burst_packets}–{cfg.mac.max_burst_packets} packets"],
        ["Max retransmissions", cfg.mac.max_retries],
        ["Initial battery energy", f"{cfg.energy.initial_energy_j:g} J"],
        ["LEACH round duration", f"{cfg.leach.round_duration_s:g} s"],
    ]
    result.rows = rows
    return result
