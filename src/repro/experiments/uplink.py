"""Extension experiment: the head→sink uplink tier under load.

The paper stops at the cluster head; with :mod:`repro.routing` enabled a
whole new scenario axis opens — where the sink sits and how heads reach
it.  This experiment sweeps sink distance (from the field centre outward)
crossed with the relay policy (``direct`` vs greedy ``multihop``) and
reports the uplink's cost surface: end-to-end delay distribution markers
(the delay-CDF summary), radio hop counts, the uplink share of the energy
ledger, and the resulting network lifetime.

Like every figure, the run grid is bit-identical at any ``--jobs``
parallelism and can be persisted/re-rendered through a ResultStore.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api import RunOptions, RunResult, Scenario, experiment
from ..config import Protocol
from ..metrics.summary import summarize
from .figures import FigureResult, _resolve_runs
from .presets import get_preset

__all__ = ["ext_uplink", "DEFAULT_SINK_OFFSETS_M", "DEFAULT_RELAY_MODES"]

#: Sink distance from the field centre, metres (0 = centre; beyond
#: field_size/2 the sink sits outside the field).
DEFAULT_SINK_OFFSETS_M = (0.0, 40.0, 80.0)
DEFAULT_RELAY_MODES = ("direct", "multihop")


def _uplink_scenario(
    tier, mode: str, offset_m: float, seed: int
) -> Scenario:
    cfg = tier.config(Protocol.CAEM_ADAPTIVE, 5.0, seed)
    half = cfg.field_size_m / 2.0
    return Scenario(
        config=cfg.with_routing(
            mode=mode, sink_position=(half, half + offset_m)
        ),
        options=RunOptions(
            horizon_s=tier.lifetime_horizon_s,
            sample_interval_s=tier.sample_interval_s,
            stop_when_dead=True,
        ),
        tags={"mode": mode, "sink_offset_m": offset_m, "seed": seed},
    )


@experiment("ext-uplink", kind="extension",
            summary="Uplink relay tier: delay CDF and lifetime vs sink distance")
def ext_uplink(
    preset: str = "quick",
    seeds: Sequence[int] = (1,),
    sink_offsets_m: Sequence[float] = DEFAULT_SINK_OFFSETS_M,
    modes: Sequence[str] = DEFAULT_RELAY_MODES,
    jobs: int = 1,
    runs: Optional[Sequence[RunResult]] = None,
) -> FigureResult:
    """Delay/hop/energy/lifetime surface of the routed head→sink uplink."""
    tier = get_preset(preset)
    result = FigureResult(
        figure_id="ext-uplink",
        title="Uplink tier: delay CDF and lifetime versus sink distance",
        x_label="sink distance from field centre (m)",
        headers=[
            "mode", "sink_offset_m",
            "delivery", "delay_p50_ms", "delay_p90_ms", "delay_p99_ms",
            "mean_hops", "uplink_energy_%", "lifetime_s",
        ],
        notes=(
            f"preset={preset}: {tier.n_nodes} nodes, CAEM Scheme 1, "
            "5 pkt/s, run to network death (80% rule); "
            "uplink TX at the RoutingConfig boost power"
        ),
    )
    scenarios = [
        _uplink_scenario(tier, mode, offset, seed)
        for mode in modes
        for offset in sink_offsets_m
        for seed in seeds
    ]
    result.runs = _resolve_runs(scenarios, jobs, runs, result.figure_id)

    it = iter(result.runs)
    for mode in modes:
        for offset in sink_offsets_m:
            rates: List[float] = []
            p50s: List[float] = []
            p90s: List[float] = []
            p99s: List[float] = []
            hops: List[float] = []
            shares: List[float] = []
            lifetimes: List[float] = []
            for _seed in seeds:
                run = next(it)
                if run.delivery_rate is not None:
                    rates.append(run.delivery_rate)
                if run.delay_p50_s is not None:
                    p50s.append(run.delay_p50_s * 1e3)
                    p90s.append(run.delay_p90_s * 1e3)
                    p99s.append(run.delay_p99_s * 1e3)
                if run.mean_hop_count > 0:
                    hops.append(run.mean_hop_count)
                if run.total_consumed_j > 0:
                    shares.append(
                        100.0 * run.uplink_energy_j / run.total_consumed_j
                    )
                if run.lifetime_s is not None:
                    lifetimes.append(run.lifetime_s)
            result.rows.append([
                mode,
                offset,
                summarize(rates).mean if rates else None,
                summarize(p50s).mean if p50s else None,
                summarize(p90s).mean if p90s else None,
                summarize(p99s).mean if p99s else None,
                summarize(hops).mean if hops else None,
                summarize(shares).mean if shares else None,
                summarize(lifetimes).mean if lifetimes else None,
            ])
    return result
