"""Extension experiment: the protocols at 1000+ node scale.

The paper's evaluation runs ~100 nodes; the scale tier asks how the CAEM
machinery behaves — and how fast the reproduction runs it — as the
network grows to thousands of nodes at **constant density** (the field
edge grows with √N, so cluster geometry and per-link SNR statistics stay
comparable to Table II).  Each cell runs one protocol at one network
size for two full LEACH rounds and reports the deterministic workload
measures (kernel events, delivery, exact mean delay) alongside the
wall-clock scaling curve.

The runs exercise the scale subsystem end to end: the spatial grid index
and the link/MAC reuse pools are on (as everywhere — they are
output-neutral), and the memory-bounded stats knobs are set
(``ScaleConfig.max_delay_samples`` reservoir + series decimation), so a
sweep cell never grows unbounded state.  Everything reported except the
wall-time columns is bit-identical at any ``--jobs`` parallelism and
round-trips through a ResultStore; wall times are measurements of this
machine, stored with the run.
"""

from __future__ import annotations

import math
import os
from typing import Dict, Optional, Sequence, Tuple

from ..api import RunOptions, RunResult, Scenario, experiment
from ..config import NetworkConfig, Protocol
from ..errors import ExperimentError
from .figures import _LABELS, _PROTOCOLS, FigureResult, _resolve_runs

__all__ = ["ext_scale", "scale_config", "DEFAULT_NODE_COUNTS"]

#: Node-count ladder per preset.  ``full`` is the nightly sweep (the
#: 3000-node cells take ~minutes each on the 1-CPU container); ``quick``
#: is the acceptance tier (N=1000 must complete); ``smoke`` exists for
#: the harness tests and the CI diff gate.
DEFAULT_NODE_COUNTS: Dict[str, Tuple[int, ...]] = {
    "full": (100, 300, 1000, 3000),
    "quick": (100, 300, 1000),
    "smoke": (30, 60),
}

#: Two LEACH rounds (Table II round length) — enough to exercise
#: formation, steady state, teardown and re-formation.
_HORIZON_ROUNDS = 2.0

#: Memory bounds applied to every sweep cell (see module docstring).
_MAX_DELAY_SAMPLES = 50_000
_MAX_SERIES_SAMPLES = 64


def scale_config(
    n_nodes: int, protocol: Protocol, seed: int = 1, backend: str = "event"
) -> NetworkConfig:
    """A constant-density Table II configuration at ``n_nodes``.

    The 100-node paper field is 100 m; the edge scales with √N so the
    node density — and with it the member→head distance distribution —
    matches the paper's at every size.  ``backend="vector"`` runs the
    same cell on the population-scale array engine (see
    :mod:`repro.vector`); the default leaves every digest unchanged.
    """
    if n_nodes < 2:
        raise ExperimentError("scale tier needs at least 2 nodes")
    field = 100.0 * math.sqrt(n_nodes / 100.0)
    return NetworkConfig(
        n_nodes=n_nodes,
        field_size_m=field,
        protocol=protocol,
        seed=seed,
    ).with_scale(max_delay_samples=_MAX_DELAY_SAMPLES, backend=backend)


def _scale_scenario(
    n_nodes: int,
    proto: Protocol,
    seed: int,
    backend: str,
    profile_rounds: Optional[str] = None,
) -> Scenario:
    cfg = scale_config(n_nodes, proto, seed, backend=backend)
    round_s = cfg.leach.round_duration_s
    profile_path = None
    if profile_rounds is not None:
        from ..vector.support import resolve_backend

        if resolve_backend(cfg) == "vector":
            # One timeline file per vector cell; the event kernel has no
            # phase structure, so event cells write nothing.
            profile_path = os.path.join(
                profile_rounds,
                f"rounds_n{n_nodes}_{proto.value}_s{seed}.json",
            )
    return Scenario(
        config=cfg,
        options=RunOptions(
            horizon_s=_HORIZON_ROUNDS * round_s,
            sample_interval_s=round_s / 4.0,
            max_series_samples=_MAX_SERIES_SAMPLES,
            profile_rounds=profile_path,
        ),
        tags={"protocol": proto.value, "nodes": n_nodes, "seed": seed},
    )


_BACKENDS = ("event", "vector", "auto")


@experiment("ext-scale", kind="extension",
            summary="Scaling curve: nodes x protocol at constant density")
def ext_scale(
    preset: str = "quick",
    seeds: Sequence[int] = (1,),
    node_counts: Optional[Sequence[int]] = None,
    jobs: int = 1,
    backend: str = "event",
    profile_rounds: Optional[str] = None,
    runs: Optional[Sequence[RunResult]] = None,
) -> FigureResult:
    """Workload and wall-clock scaling of the three protocols with N.

    ``profile_rounds`` names a directory: every cell that resolves to
    the vector backend writes its per-round phase timeline there (see
    :mod:`repro.vector.profile`).  Observational only — rows and digests
    are identical with it on or off.
    """
    if backend not in _BACKENDS:
        raise ExperimentError(
            f"unknown backend {backend!r}; have {_BACKENDS}"
        )
    if profile_rounds is not None:
        os.makedirs(profile_rounds, exist_ok=True)
    if node_counts is None:
        try:
            node_counts = DEFAULT_NODE_COUNTS[preset]
        except KeyError:
            raise ExperimentError(
                f"unknown preset {preset!r}; have "
                f"{sorted(DEFAULT_NODE_COUNTS)}"
            ) from None
    result = FigureResult(
        figure_id="ext-scale",
        title="Scale tier: events, delivery and wall clock versus network size",
        x_label="network size (nodes)",
        headers=[
            "protocol", "nodes",
            "events", "delivery", "mean_delay_ms",
            "wall_s", "kev_per_s",
        ],
        notes=(
            f"preset={preset}"
            + (f", backend={backend}" if backend != "event" else "")
            + ": constant density (field edge = "
            "100 m x sqrt(N/100)), 5 pkt/s, two full 20 s LEACH rounds; "
            "spatial index + link/MAC pools on, delay reservoir "
            f"{_MAX_DELAY_SAMPLES}, series capped at "
            f"{_MAX_SERIES_SAMPLES} samples; wall_s/kev_per_s are "
            "measurements of the executing machine (everything else is "
            "seed-deterministic)"
        ),
    )
    scenarios = [
        _scale_scenario(n, proto, seed, backend, profile_rounds)
        for proto in _PROTOCOLS
        for n in node_counts
        for seed in seeds
    ]
    result.runs = _resolve_runs(scenarios, jobs, runs, result.figure_id)

    it = iter(result.runs)
    for proto in _PROTOCOLS:
        for n in node_counts:
            events = 0
            deliveries = []
            delays_ms = []
            wall = 0.0
            for _seed in seeds:
                run = next(it)
                events += run.events_processed
                if run.delivery_rate is not None:
                    deliveries.append(run.delivery_rate)
                delays_ms.append(run.mean_delay_s * 1e3)
                wall += run.wall_time_s
            n_seeds = len(list(seeds))
            mean_events = events / n_seeds
            mean_wall = wall / n_seeds
            result.rows.append([
                _LABELS[proto],
                n,
                int(mean_events),
                sum(deliveries) / len(deliveries) if deliveries else None,
                sum(delays_ms) / len(delays_ms),
                round(mean_wall, 3),
                round(mean_events / mean_wall / 1e3, 1) if mean_wall > 0 else None,
            ])
    return result
