"""Experiment harness: presets, runner, the paper's figures and tables."""

from .figures import (
    DEFAULT_LOADS_PPS,
    FigureResult,
    ext_performance,
    fig8_remaining_energy,
    fig9_nodes_alive,
    fig10_lifetime_vs_load,
    fig11_energy_per_packet,
    fig12_queue_stddev,
)
from .presets import PRESETS, Preset, get_preset, preset_config
from .report import render_table, write_csv
from .runner import RunResult, run_scenario
from .sweep import SweepPoint, SweepResult, sweep
from .tables import table1_tone_spec, table2_parameters

__all__ = [
    "FigureResult",
    "fig8_remaining_energy",
    "fig9_nodes_alive",
    "fig10_lifetime_vs_load",
    "fig11_energy_per_packet",
    "fig12_queue_stddev",
    "ext_performance",
    "DEFAULT_LOADS_PPS",
    "Preset",
    "PRESETS",
    "get_preset",
    "preset_config",
    "render_table",
    "write_csv",
    "RunResult",
    "run_scenario",
    "SweepPoint",
    "SweepResult",
    "sweep",
    "table1_tone_spec",
    "table2_parameters",
]
