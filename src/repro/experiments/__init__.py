"""Experiment harness: presets, the paper's figures/tables, legacy shims.

The figures and tables defined here are published through the
:mod:`repro.api` experiment registry — decorate any new study with
``@repro.api.experiment("name")`` and it immediately appears in
``repro-caem list`` / ``repro-caem run <name>`` alongside the built-ins
(fig8–fig12, table1–table2, ext-perf).  Execution goes through
:class:`repro.api.Scenario` grids and :func:`repro.api.run_scenarios`,
so every experiment accepts ``jobs=N`` for process-pool fan-out and
``runs=`` for re-rendering from a :class:`repro.api.ResultStore`.

:func:`run_scenario` and :func:`sweep` remain as thin compatibility
shims over the :mod:`repro.api` engine for pre-registry callers.
"""

from .figures import (
    DEFAULT_LOADS_PPS,
    FigureResult,
    ext_performance,
    fig8_remaining_energy,
    fig9_nodes_alive,
    fig10_lifetime_vs_load,
    fig11_energy_per_packet,
    fig12_queue_stddev,
)
from .presets import PRESETS, Preset, get_preset, preset_config
from .report import render_table, write_csv
from .runner import RunResult, run_scenario
from .sweep import SweepPoint, SweepResult, sweep
from .dynamics import ext_dynamics
from .tables import table1_tone_spec, table2_parameters
from .uplink import ext_uplink

__all__ = [
    "FigureResult",
    "fig8_remaining_energy",
    "fig9_nodes_alive",
    "fig10_lifetime_vs_load",
    "fig11_energy_per_packet",
    "fig12_queue_stddev",
    "ext_performance",
    "DEFAULT_LOADS_PPS",
    "Preset",
    "PRESETS",
    "get_preset",
    "preset_config",
    "render_table",
    "write_csv",
    "RunResult",
    "run_scenario",
    "SweepPoint",
    "SweepResult",
    "sweep",
    "table1_tone_spec",
    "table2_parameters",
    "ext_uplink",
    "ext_dynamics",
]
