"""The network data sink: the uplink tier's terminus.

The sink models the paper's implied base station: mains-powered (no
battery, no meter), always listening on the long-haul channel, positioned
anywhere in or around the field.  It only counts and forwards deliveries
to the stats layer; all radio/energy mechanics live in the relays.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..traffic.packet import Packet

__all__ = ["Sink"]

#: Sink delivery callback: (packets, hop counts, sender head id, now).
SinkDelivery = Callable[[List[Packet], List[int], int, float], None]


class Sink:
    """Mains-powered terminus of the head→sink relay stack."""

    def __init__(
        self,
        position: Tuple[float, float],
        on_delivered: Optional[SinkDelivery] = None,
    ) -> None:
        self.position = (float(position[0]), float(position[1]))
        self.on_delivered = on_delivered
        #: Total packets accepted.
        self.packets_received = 0
        #: Total radio hops over all accepted packets.
        self.total_hops = 0

    def deliver(
        self, packets: List[Packet], hops: List[int], sender_id: int, now: float
    ) -> None:
        """Accept packets that completed their final uplink hop."""
        self.packets_received += len(packets)
        self.total_hops += sum(hops)
        if self.on_delivered is not None:
            self.on_delivered(packets, hops, sender_id, now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        x, y = self.position
        return f"<Sink at ({x:.1f}, {y:.1f}) rx={self.packets_received}>"
