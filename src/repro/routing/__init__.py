"""Head→sink uplink tier: sink placement, relay policies, relay MAC.

The paper's §III topology terminates delivery at the cluster head (the
head *is* its cluster's sink), so the reproduction's baseline never pays
an uplink radio hop.  This package grows the routed transport that related
work (Ren et al.'s data-gathering channel access, Adapt-P's head→sink
modelling) treats as the dominant energy/delay term:

* :func:`plan_routes` — per-round next-hop table over the elected heads
  (``direct``: every head straight to the sink; ``multihop``: greedy
  forwarding by sink distance, loop-free by construction);
* :class:`Sink` — the mains-powered network terminus;
* :class:`UplinkRelay` — per-head forwarding MAC on a shared long-haul
  :class:`~repro.channel.medium.DataChannel` (orthogonal frequency to all
  cluster channels), with per-hop energy ledgered through the
  ``uplink_tx``/``uplink_rx`` causes and per-packet hop provenance traced
  through :class:`~repro.sim.trace.Tracer`.

With ``NetworkConfig.routing.mode == "local"`` (the default) none of this
is constructed and the paper's behaviour is preserved bit-for-bit.
"""

from .policies import plan_routes
from .sink import Sink
from .uplink import UplinkRelay

__all__ = ["plan_routes", "Sink", "UplinkRelay"]
