"""Per-head uplink relay: the forwarding MAC of the head→sink tier.

One :class:`UplinkRelay` serves one cluster head for one LEACH round.  It
owns a queue of ``(packet, hops_so_far)`` entries fed by the head's local
aggregation (its own sensed data, hop 0) and by completed member bursts
(hop 1), sends bursts over the **shared** long-haul
:class:`~repro.channel.medium.DataChannel` (one per network, orthogonal
frequency to every cluster channel, so relays contend only with each
other), and forwards cleanly received packets either to the next relay on
the route or to the :class:`~repro.routing.sink.Sink`.

Modelling choices (documented, deliberate):

* The head's data radio is already powered for cluster duty; retuning to
  the long-haul frequency is free, but the airtime of every uplink burst
  is charged at data-radio TX power under the dedicated ``uplink_tx``
  cause (receive side: ``uplink_rx``), so breakdowns show the uplink
  split exactly.
* Contention is carrier-sense with a real vulnerable window: a relay that
  senses the channel idle *commits*, keys up after the radio's
  ``turnaround_s`` (jittered per head) and begins **without re-sensing**.
  Two heads whose turnaround windows overlap collide on the transmission
  ledger and retry after a jittered ``retry_delay_s`` hold-off (up to
  ``max_retries``, then the burst is shed as ``uplink_dropped_retry``).
* Per-hop corruption uses the same ABICM mode table and per-packet PER
  machinery as the cluster hop, against a head→next-hop
  :class:`~repro.channel.link.Link` drawn fresh each round from the
  shared :class:`~repro.channel.budget.LinkBudget`.
* Packets displaced by a round boundary are returned to the head's own
  buffer: they re-enter as ordinary traffic, keeping their birth time (so
  end-to-end delay stays exact) but restarting their hop count — the
  recorded hops reflect the final path only, and a re-entering member
  packet counts another ``cluster_delivered`` hop completion when it is
  re-transmitted (that counter tallies cluster-hop *events*, not unique
  packets).  Packets stranded by a head death are counted
  ``uplink_stranded`` — never delivered *and* never double-counted among
  the terminal outcomes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..channel.link import Link
from ..channel.medium import DataChannel, TransmissionRecord
from ..config import PhyConfig, RoutingConfig
from ..energy.meter import EnergyMeter
from ..phy.abicm import AbicmTable
from ..phy.frame import BurstPlan, evaluate_burst, plan_burst
from ..sim import Simulator
from ..traffic.packet import Packet
from .sink import Sink

__all__ = ["UplinkRelay"]

#: One queued unit: the packet and the radio hops it has traversed so far.
Entry = Tuple[Packet, int]


class UplinkRelay:
    """Forwarding MAC for one cluster head on the shared uplink channel."""

    def __init__(
        self,
        sim: Simulator,
        head_id: int,
        meter: EnergyMeter,
        channel: DataChannel,
        abicm: AbicmTable,
        phy_cfg: PhyConfig,
        routing_cfg: RoutingConfig,
        rng: np.random.Generator,
        stats,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.head_id = head_id
        self.meter = meter
        self.channel = channel
        self.abicm = abicm
        self.phy_cfg = phy_cfg
        self.cfg = routing_cfg
        self.rng = rng
        self.stats = stats
        self.tracer = tracer

        #: Route wiring for this round (set by :meth:`wire`).
        self.link: Optional[Link] = None
        self.next_relay: Optional["UplinkRelay"] = None
        self.sink: Optional[Sink] = None

        self._queue: Deque[Entry] = deque()
        self._burst: List[Entry] = []
        self._plan: Optional[BurstPlan] = None
        self._snr_db = 0.0
        self._retries = 0
        self._retry_handle = None
        self._start_handle = None
        self._tx_handle = None
        self._record: Optional[TransmissionRecord] = None
        self._running = True

        # Diagnostics.
        self.bursts_sent = 0
        self.bursts_collided = 0

    # -- wiring ---------------------------------------------------------------

    def wire(
        self,
        link: Link,
        next_relay: Optional["UplinkRelay"],
        sink: Sink,
    ) -> None:
        """Attach this round's hop: the link and its far end."""
        self.link = link
        self.next_relay = next_relay
        self.sink = sink

    @property
    def is_running(self) -> bool:
        """True until the round ends or the head dies."""
        return self._running

    @property
    def queued(self) -> int:
        """Entries waiting (excluding any burst on the air)."""
        return len(self._queue)

    # -- ingress ----------------------------------------------------------------

    def offer(self, entries: List[Entry]) -> None:
        """Enqueue packets for the next uplink burst.

        Called by the network for head-local aggregation (hops 0) and
        completed member bursts (hops 1), and by upstream relays when a
        hop completes.  Overflow beyond ``relay_buffer_packets`` tail-drops
        the newest arrivals (the same policy as the member buffers).
        """
        if not self._running:
            self._strand(entries, reason="stopped")
            return
        room = max(self.cfg.relay_buffer_packets - len(self._queue), 0)
        # Tail-drop, like the member buffers: overflow falls on the newest
        # arrivals; packets already waiting keep their place.
        admitted, spilled = entries[:room], entries[room:]
        self._queue.extend(admitted)
        if spilled:
            self.stats.on_uplink_dropped_overflow(len(spilled))
            self._annotate("uplink.dropped", reason="overflow",
                           uids=[p.uid for p, _ in spilled])
        if admitted:
            self._maybe_send()

    # -- send loop ----------------------------------------------------------------

    def _maybe_send(self) -> None:
        if (
            not self._running
            or self._record is not None
            or self._start_handle is not None
            or self._retry_handle is not None
            or not self._queue
        ):
            return
        if not self.channel.is_idle:
            self._arm_retry()
            return
        # Channel sensed idle: commit.  The burst keys up after the radio
        # turnaround and does NOT re-sense — that window is the CSMA
        # vulnerable period in which another head can also commit, and the
        # ledger then corrupts both bursts.
        delay = self.cfg.turnaround_s * (0.5 + float(self.rng.random()))
        self._start_handle = self.sim.call_in_strict(delay, self._start_burst)

    def _arm_retry(self) -> None:
        # Jittered re-poll: breaks head-to-head ties deterministically via
        # the per-head stream.
        delay = self.cfg.retry_delay_s * (0.5 + float(self.rng.random()))
        self._retry_handle = self.sim.call_in_strict(delay, self._retry_expired)

    def _retry_expired(self) -> None:
        self._retry_handle = None
        self._maybe_send()

    def _start_burst(self) -> None:
        self._start_handle = None
        if not self._running or not self._queue:  # pragma: no cover - defensive
            return
        n = min(len(self._queue), self.cfg.max_burst_packets)
        self._burst = [self._queue.popleft() for _ in range(n)]
        packets = [p for p, _ in self._burst]
        now = self.sim.now
        snr = self.link.snr_db(now)
        mode = self.abicm.mode_for_snr(snr) or self.abicm.lowest
        plan = plan_burst(
            packets, mode, self.phy_cfg.packet_length_bits,
            self.phy_cfg.burst_overhead_bits,
        )
        self._plan, self._snr_db = plan, snr
        # TX energy first: the draw may empty the battery and tear this
        # relay down reentrantly (network death handler calls stop()).
        self.meter.charge("uplink_tx", plan.airtime_s)
        if not self._running:
            return
        self._record = self.channel.begin(self.head_id, plan.airtime_s)
        self._tx_handle = self.sim.call_in_strict(plan.airtime_s, self._tx_done)
        self.bursts_sent += 1
        self._annotate(
            "uplink.burst", n=plan.n_packets, mode=mode.index, snr_db=snr,
            next=self.next_relay.head_id if self.next_relay else "sink",
        )

    def _tx_done(self) -> None:
        self._tx_handle = None
        record, plan, burst = self._record, self._plan, self._burst
        self._record, self._plan, self._burst = None, None, []
        if record is None:  # pragma: no cover - defensive
            return
        corrupted = record.corrupted
        self.channel.end(record)
        if corrupted:
            self.bursts_collided += 1
            self._retries += 1
            if self._retries > self.cfg.max_retries:
                self.stats.on_uplink_dropped_retry(len(burst))
                self._annotate("uplink.dropped", reason="retry",
                               uids=[p.uid for p, _ in burst])
                self._retries = 0
            else:
                self._queue.extendleft(reversed(burst))
            self._arm_retry()
            return
        self._retries = 0
        self._forward(plan, burst)
        self._maybe_send()

    def _forward(self, plan: BurstPlan, burst: List[Entry]) -> None:
        """PER-evaluate a cleanly completed burst and pass survivors on."""
        result = evaluate_burst(
            plan, self._snr_db, self.phy_cfg.packet_length_bits, self.rng
        )
        now = self.sim.now
        hops_by_uid = {p.uid: h for p, h in burst}
        if result.corrupted:
            self.stats.on_uplink_lost(len(result.corrupted))
            self._annotate("uplink.lost",
                           uids=[p.uid for p in result.corrupted])
        if not result.delivered:
            return
        delivered = [(p, hops_by_uid[p.uid] + 1) for p in result.delivered]
        nxt = self.next_relay
        if nxt is None:
            self.sink.deliver(
                [p for p, _ in delivered], [h for _, h in delivered],
                self.head_id, now,
            )
            self._annotate("uplink.delivered",
                           uids=[p.uid for p, _ in delivered],
                           hops=[h for _, h in delivered])
            return
        # RX energy on the receiving head (may tear it down reentrantly).
        if nxt.is_running:
            nxt.meter.charge("uplink_rx", plan.airtime_s)
        if not nxt.is_running:
            self._strand(delivered, reason="next-hop dead")
            return
        over, ok = [], []
        for p, h in delivered:
            (over if h >= self.cfg.max_hops else ok).append((p, h))
        if over:
            self._strand(over, reason="hop-cap")
        if ok:
            nxt.offer(ok)

    # -- teardown ------------------------------------------------------------------

    def stop(self) -> List[Entry]:
        """End this relay's round; returns every undelivered entry.

        Cancels timers, aborts any burst on the air (recovering its
        packets), and hands the caller the queue so displaced packets can
        be re-buffered (round boundary) or stranded (head death) —
        accounted exactly once either way.
        """
        if not self._running:
            return []
        self._running = False
        for name in ("_retry_handle", "_start_handle", "_tx_handle"):
            handle = getattr(self, name)
            if handle is not None:
                handle.cancel()
                setattr(self, name, None)
        if self._record is not None and self._record.active:
            self.channel.abort(self._record)
        self._record = None
        self._plan = None
        leftovers = list(self._burst) + list(self._queue)
        self._burst = []
        self._queue.clear()
        return leftovers

    # -- internals ---------------------------------------------------------------------

    def _strand(self, entries: List[Entry], reason: str) -> None:
        if not entries:
            return
        self.stats.on_uplink_stranded(len(entries))
        self._annotate("uplink.dropped", reason=reason,
                       uids=[p.uid for p, _ in entries])

    def _annotate(self, kind: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, kind, head=self.head_id, **data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._running else "stopped"
        return (
            f"<UplinkRelay head={self.head_id} {state} q={len(self._queue)} "
            f"sent={self.bursts_sent}>"
        )
