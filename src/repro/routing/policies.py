"""Relay-route planning over one round's elected cluster heads.

Routes are recomputed at every LEACH round boundary because the head set
changes; the plan is a plain next-hop table (head id → head id, or None
for the sink), cheap enough to rebuild per round even at paper scale.

``multihop`` uses greedy geographic forwarding: a head hands its traffic
to the neighbouring head that makes the most progress toward the sink,
and falls back to the sink directly when no head is strictly closer.
Because every hop strictly decreases sink distance the route graph is a
DAG — no loops, no TTL needed (the packet-level hop cap in
:class:`~repro.config.RoutingConfig` is purely defensive).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..cluster.topology import Topology
from ..errors import ClusterError

__all__ = ["plan_routes"]


def plan_routes(
    mode: str,
    heads: Sequence[int],
    topology: Topology,
) -> Dict[int, Optional[int]]:
    """Next-hop table for this round: ``{head_id: next_head_id | None}``.

    ``None`` means the head transmits straight to the sink.  The topology
    must have a sink placed (:meth:`Topology.place_sink`).  Ties are
    broken by lower node id so the plan is deterministic for a given head
    set.

    The multihop plan is evaluated with vectorised distance rows (one per
    head) instead of the original nested Python scan — the selection rule
    is the same argmin-with-first-occurrence the scan implemented, so the
    table is identical for any head set.
    """
    if topology.sink_position is None:
        raise ClusterError("plan_routes requires a placed sink")
    if mode == "direct":
        return {h: None for h in heads}
    if mode != "multihop":
        raise ClusterError(f"unknown relay mode {mode!r}")

    routes: Dict[int, Optional[int]] = {}
    ordered = sorted(heads)  # ascending ids: ties resolve to the lower id
    idx = np.asarray(ordered, dtype=int)
    d_sink_all = np.array([topology.sink_distance(h) for h in ordered])
    for pos, h in enumerate(ordered):
        d_sink = d_sink_all[pos]
        # Strict progress toward the sink; the hop itself must also be
        # shorter than going direct, else relaying cannot save energy.
        hop_d = topology.distances_from(h)[idx]
        mask = (d_sink_all < d_sink) & (hop_d < d_sink)
        mask[pos] = False
        if mask.any():
            cand = np.where(mask, d_sink_all, np.inf)
            routes[h] = int(idx[int(np.argmin(cand))])
        else:
            routes[h] = None
    return routes
