"""Relay-route planning over one round's elected cluster heads.

Routes are recomputed at every LEACH round boundary because the head set
changes; the plan is a plain next-hop table (head id → head id, or None
for the sink), cheap enough to rebuild per round even at paper scale.

``multihop`` uses greedy geographic forwarding: a head hands its traffic
to the neighbouring head that makes the most progress toward the sink,
and falls back to the sink directly when no head is strictly closer.
Because every hop strictly decreases sink distance the route graph is a
DAG — no loops, no TTL needed (the packet-level hop cap in
:class:`~repro.config.RoutingConfig` is purely defensive).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..cluster.topology import Topology
from ..errors import ClusterError

__all__ = ["plan_routes"]


def plan_routes(
    mode: str,
    heads: Sequence[int],
    topology: Topology,
) -> Dict[int, Optional[int]]:
    """Next-hop table for this round: ``{head_id: next_head_id | None}``.

    ``None`` means the head transmits straight to the sink.  The topology
    must have a sink placed (:meth:`Topology.place_sink`).  Ties are
    broken by lower node id so the plan is deterministic for a given head
    set.
    """
    if topology.sink_position is None:
        raise ClusterError("plan_routes requires a placed sink")
    if mode == "direct":
        return {h: None for h in heads}
    if mode != "multihop":
        raise ClusterError(f"unknown relay mode {mode!r}")

    routes: Dict[int, Optional[int]] = {}
    ordered = sorted(heads)  # ascending ids: ties resolve to the lower id
    for h in ordered:
        d_sink = topology.sink_distance(h)
        best: Optional[int] = None
        best_d = d_sink
        for g in ordered:
            if g == h:
                continue
            d_g = topology.sink_distance(g)
            # Strict progress toward the sink; the hop itself must also be
            # shorter than going direct, else relaying cannot save energy.
            if d_g < best_d and topology.distance(h, g) < d_sink:
                best, best_d = g, d_g
        routes[h] = best
    return routes
